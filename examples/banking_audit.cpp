// Banking audit example: a small core-banking ledger with accounts and an
// append-only transfer journal, periodic digest uploads to (simulated)
// immutable blob storage, transaction receipts for customers, and an
// auditor pass at the end.
//
//   ./banking_audit [data_dir]

#include <cstdio>

#include "ledger/digest_store.h"
#include "ledger/receipt.h"
#include "ledger/verifier.h"
#include "util/random.h"

using namespace sqlledger;

namespace {
Status Transfer(LedgerDatabase* db, int64_t from, int64_t to, int64_t amount,
                int64_t journal_id, uint64_t* txn_id_out) {
  auto txn = db->Begin("teller");
  if (!txn.ok()) return txn.status();
  *txn_id_out = (*txn)->id();
  auto fail = [&](Status st) {
    db->Abort(*txn);
    return st;
  };

  auto src = db->Get(*txn, "accounts", {Value::BigInt(from)});
  if (!src.ok()) return fail(src.status());
  auto dst = db->Get(*txn, "accounts", {Value::BigInt(to)});
  if (!dst.ok()) return fail(dst.status());
  if ((*src)[1].AsInt64() < amount)
    return fail(Status::InvalidArgument("insufficient funds"));

  Status st = db->Update(*txn, "accounts",
                         {Value::BigInt(from),
                          Value::BigInt((*src)[1].AsInt64() - amount)});
  if (!st.ok()) return fail(st);
  st = db->Update(*txn, "accounts",
                  {Value::BigInt(to),
                   Value::BigInt((*dst)[1].AsInt64() + amount)});
  if (!st.ok()) return fail(st);
  // The journal is append-only: even DBAs cannot quietly rewrite it.
  st = db->Insert(*txn, "transfer_journal",
                  {Value::BigInt(journal_id), Value::BigInt(from),
                   Value::BigInt(to), Value::BigInt(amount),
                   Value::Timestamp(db->NowMicros())});
  if (!st.ok()) return fail(st);
  return db->Commit(*txn);
}
}  // namespace

int main(int argc, char** argv) {
  LedgerDatabaseOptions options;
  options.database_id = "corebank";
  options.block_size = 16;
  if (argc > 1) options.data_dir = argv[1];
  auto db_result = LedgerDatabase::Open(std::move(options));
  if (!db_result.ok()) {
    std::printf("open failed: %s\n", db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*db_result);

  Schema accounts;
  accounts.AddColumn("account_id", DataType::kBigInt, false);
  accounts.AddColumn("balance", DataType::kBigInt, false);
  accounts.SetPrimaryKey({0});
  Schema journal;
  journal.AddColumn("journal_id", DataType::kBigInt, false);
  journal.AddColumn("from_account", DataType::kBigInt, false);
  journal.AddColumn("to_account", DataType::kBigInt, false);
  journal.AddColumn("amount", DataType::kBigInt, false);
  journal.AddColumn("at", DataType::kTimestamp, false);
  journal.SetPrimaryKey({0});

  if (!db->CreateTable("accounts", accounts, TableKind::kUpdateable).ok() ||
      !db->CreateTable("transfer_journal", journal, TableKind::kAppendOnly)
           .ok()) {
    std::printf("schema setup failed\n");
    return 1;
  }

  // Open 10 accounts with 1000 each.
  {
    auto txn = db->Begin("onboarding");
    for (int64_t i = 1; i <= 10; i++) {
      if (!db->Insert(*txn, "accounts", {Value::BigInt(i), Value::BigInt(1000)})
               .ok()) {
        return 1;
      }
    }
    if (!db->Commit(*txn).ok()) return 1;
  }

  InMemoryDigestStore trusted_store;
  Random rng(2024);
  uint64_t receipt_txn = 0;
  int64_t journal_id = 1;
  for (int batch = 0; batch < 5; batch++) {
    for (int i = 0; i < 20; i++) {
      int64_t from = rng.UniformRange(1, 10);
      int64_t to = rng.UniformRange(1, 10);
      if (from == to) continue;
      uint64_t txn_id = 0;
      Status st = Transfer(db.get(), from, to, rng.UniformRange(1, 50),
                           journal_id++, &txn_id);
      if (st.ok()) receipt_txn = txn_id;
    }
    // Digests every "few seconds" (paper §2.4); the upload performs the
    // fork check against the previous digest.
    auto digest = GenerateAndUploadDigest(db.get(), &trusted_store);
    if (!digest.ok()) {
      std::printf("digest upload failed: %s\n",
                  digest.status().ToString().c_str());
      return 1;
    }
    std::printf("uploaded digest for block %llu\n",
                static_cast<unsigned long long>(digest->block_id));
  }

  // A customer asks for a receipt proving their transfer happened.
  auto receipt = MakeTransactionReceipt(db.get(), receipt_txn);
  if (!receipt.ok()) {
    std::printf("receipt failed: %s\n", receipt.status().ToString().c_str());
    return 1;
  }
  bool receipt_ok = VerifyTransactionReceipt(*receipt, db->signer());
  std::printf("\nreceipt for txn %llu verifies offline: %s\n",
              static_cast<unsigned long long>(receipt_txn),
              receipt_ok ? "yes" : "NO");
  std::printf("receipt JSON (%zu bytes, O(log block) proof)\n",
              receipt->ToJson().size());

  // Total balance must be conserved across all transfers.
  {
    auto txn = db->Begin("auditor");
    auto rows = db->Scan(*txn, "accounts");
    int64_t total = 0;
    for (const Row& row : *rows) total += row[1].AsInt64();
    (void)db->Commit(*txn);
    std::printf("total balance: %lld (expected 10000)\n",
                static_cast<long long>(total));
  }

  // The annual audit: verify everything against every digest ever issued.
  auto digests = trusted_store.ListAll();
  auto report = VerifyLedger(db.get(), *digests);
  std::printf("\naudit: %s\n", report->Summary().c_str());
  return report->ok() && receipt_ok ? 0 : 1;
}
