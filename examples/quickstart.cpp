// Quickstart: create a ledger table, run transactions, generate a digest,
// tamper with the data below the API, and catch it with verification.
//
//   ./quickstart

#include <cstdio>

#include "ledger/ledger_database.h"
#include "ledger/verifier.h"

using namespace sqlledger;

int main() {
  // 1. Open an (ephemeral) ledger database.
  LedgerDatabaseOptions options;
  options.database_id = "quickstart";
  options.block_size = 4;  // tiny blocks so the demo shows several
  auto db_result = LedgerDatabase::Open(std::move(options));
  if (!db_result.ok()) {
    std::printf("open failed: %s\n", db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*db_result);

  // 2. Create an updateable ledger table (paper Figure 2's schema).
  Schema accounts;
  accounts.AddColumn("name", DataType::kVarchar, /*nullable=*/false, 32);
  accounts.AddColumn("balance", DataType::kBigInt, false);
  accounts.SetPrimaryKey({0});
  Status st = db->CreateTable("accounts", accounts, TableKind::kUpdateable);
  if (!st.ok()) {
    std::printf("create table failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Run a few transactions.
  auto run = [&](const char* who, auto body) {
    auto txn = db->Begin(who);
    Status s = body(*txn);
    if (!s.ok()) {
      db->Abort(*txn);
      std::printf("txn failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    s = db->Commit(*txn);
    if (!s.ok()) std::exit(1);
  };
  run("alice", [&](Transaction* txn) {
    return db->Insert(txn, "accounts",
                      {Value::Varchar("Nick"), Value::BigInt(50)});
  });
  run("alice", [&](Transaction* txn) {
    return db->Insert(txn, "accounts",
                      {Value::Varchar("John"), Value::BigInt(500)});
  });
  run("bob", [&](Transaction* txn) {
    return db->Update(txn, "accounts",
                      {Value::Varchar("Nick"), Value::BigInt(100)});
  });

  // 4. Generate a Database Digest — this is what you store OUTSIDE the
  // database (immutable blob storage, a WORM device, a public blockchain).
  auto digest = db->GenerateDigest();
  std::printf("digest: %s\n", digest->ToJson().c_str());

  // 5. The ledger view shows every row operation with its transaction.
  auto view = db->GetLedgerView("accounts");
  auto ref = db->GetTableRef("accounts");
  std::printf("\nledger view:\n%s\n",
              FormatLedgerView(ref->main->schema(), *view).c_str());

  // 6. Verification passes on the untampered database...
  auto report = VerifyLedger(db.get(), {*digest});
  std::printf("%s\n", report->Summary().c_str());

  // 7. ...then an "attacker with storage access" edits a balance directly,
  // bypassing the database API entirely.
  TableStore* store = db->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({Value::Varchar("John")});
  (*row)[1] = Value::BigInt(5000000);
  std::printf("\n[attacker sets John's balance to 5000000 in storage]\n\n");

  // 8. Verification against the externally held digest exposes it.
  report = VerifyLedger(db.get(), {*digest});
  std::printf("%s\n", report->Summary().c_str());
  return report->ok() ? 1 : 0;  // we EXPECT the tampering to be caught
}
