// verify_tool: the auditor's command-line workflow. Points at a database
// directory and an immutable digest-store directory, downloads every digest
// for the database, runs full verification (optionally parallel / table
// subset), and prints the report. Exit code 0 = intact, 2 = tampering
// detected — suitable for cron-driven continuous monitoring (paper §2.3:
// "executed hourly or daily, for cases where the integrity of the database
// needs to be continuously monitored").
//
// --incremental resumes from the watermark a previous clean run persisted
// in <data_dir>/verify_state.sldb (DESIGN.md §11): identical verdicts,
// O(delta) cost — the steady state for that cron-driven auditor.
//
// --stats additionally dumps the metrics-registry snapshot as JSON after
// the report (DESIGN.md §13) — verification phase timings, fallback causes
// and recovery durations of exactly this run.
//
//   ./verify_tool [--incremental] [--stats] <data_dir> <digest_store_dir>
//                 [database_id] [table ...]

#include <cstdio>
#include <cstring>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"
#include "util/metrics.h"

using namespace sqlledger;

int main(int argc, char** argv) {
  bool incremental = false;
  bool stats_json = false;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strcmp(argv[arg], "--incremental") == 0) {
      incremental = true;
    } else if (std::strcmp(argv[arg], "--stats") == 0) {
      stats_json = true;
    } else {
      std::printf("unknown flag: %s\n", argv[arg]);
      return 64;
    }
    arg++;
  }
  if (argc - arg < 2) {
    std::printf(
        "usage: %s [--incremental] [--stats] <data_dir> <digest_store_dir> "
        "[database_id] [table ...]\n",
        argv[0]);
    return 64;
  }
  std::string data_dir = argv[arg++];
  std::string store_dir = argv[arg++];
  std::string database_id = arg < argc ? argv[arg++] : "sqlledger";

  LedgerDatabaseOptions options;
  options.data_dir = data_dir;
  options.database_id = database_id;
  auto db = LedgerDatabase::Open(std::move(options));
  if (!db.ok()) {
    std::printf("cannot open database: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto store = ImmutableBlobDigestStore::Open(store_dir);
  if (!store.ok()) {
    std::printf("cannot open digest store: %s\n",
                store.status().ToString().c_str());
    return 1;
  }

  VerificationOptions verify_options;
  verify_options.parallelism = 4;
  for (; arg < argc; arg++) verify_options.tables.push_back(argv[arg]);

  DatabaseStats stats = (*db)->GetStats();
  std::printf("database: %s (incarnation %s)\n", database_id.c_str(),
              (*db)->create_time().c_str());
  std::printf("state: %s\n\n", stats.ToString().c_str());

  auto report = VerifyLedgerAgainstStore(db->get(), **store, verify_options,
                                         incremental);
  if (!report.ok()) {
    std::printf("verification could not run: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  if (stats_json)
    std::printf("\n%s\n",
                MetricsToJson((*db)->MetricsSnapshot()).DumpPretty().c_str());
  return report->ok() ? 0 : 2;
}
