// Supply-chain recall example — the paper's §2.5.1 Contoso scenario, end to
// end: a car manufacturer tracks parts in a ledger table; years later a
// recall lawsuit motivates an insider to rewrite which batch a part came
// from; the externally stored digests prove the tampering, and the ledger
// view reconstructs the true history.
//
//   ./supply_chain_recall

#include <cstdio>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"

using namespace sqlledger;

int main() {
  LedgerDatabaseOptions options;
  options.database_id = "contoso-manufacturing";
  options.block_size = 8;
  auto db_result = LedgerDatabase::Open(std::move(options));
  if (!db_result.ok()) return 1;
  auto db = std::move(*db_result);

  Schema parts;
  parts.AddColumn("part_id", DataType::kBigInt, false);
  parts.AddColumn("part_type", DataType::kVarchar, false, 24);
  parts.AddColumn("batch", DataType::kVarchar, false, 24);
  parts.AddColumn("installed_vin", DataType::kVarchar, true, 20);
  parts.SetPrimaryKey({0});
  if (!db->CreateTable("parts", parts, TableKind::kUpdateable).ok()) return 1;

  InMemoryDigestStore trusted;

  // === 2018: honest manufacturing ===
  std::printf("2018: manufacturing and installing brake parts...\n");
  for (int64_t i = 1; i <= 30; i++) {
    auto txn = db->Begin("factory-floor");
    std::string batch = (i % 3 == 0) ? "BRK-2018-B7" : "BRK-2018-B6";
    Status st = db->Insert(
        *txn, "parts",
        {Value::BigInt(i), Value::Varchar("brake-caliper"),
         Value::Varchar(batch), Value::Null(DataType::kVarchar)});
    if (st.ok()) st = db->Commit(*txn);
    if (!st.ok()) return 1;
    if (i % 10 == 0) (void)GenerateAndUploadDigest(db.get(), &trusted);
  }
  // Part 12 (batch B7) goes into Bob's car.
  {
    auto txn = db->Begin("assembly");
    (void)db->Update(*txn, "parts",
                     {Value::BigInt(12), Value::Varchar("brake-caliper"),
                      Value::Varchar("BRK-2018-B7"),
                      Value::Varchar("VIN-BOB-001")});
    (void)db->Commit(*txn);
  }
  (void)GenerateAndUploadDigest(db.get(), &trusted);

  // === 2019: batch B7 is recalled ===
  std::printf("2019: batch BRK-2018-B7 recalled.\n");

  // === 2020: Bob's collision and lawsuit ===
  std::printf("2020: lawsuit — was Bob's caliper from the recalled batch?\n");

  // An insider rewrites part 12's batch at the storage layer AND plants a
  // consistent-looking history row — full DBA powers (threat model §2.5.2).
  auto ref = db->GetTableRef("parts");
  Row* live = ref->main->mutable_clustered()->MutableGet({Value::BigInt(12)});
  (*live)[2] = Value::Varchar("BRK-2018-B6");
  std::printf("\n[insider rewrites part 12's batch to BRK-2018-B6]\n\n");

  // The court-appointed auditor verifies against the digests Contoso's
  // partners have held since 2018.
  auto digests = trusted.ListAll();
  auto report = VerifyLedger(db.get(), *digests);
  std::printf("audit result: %s\n\n", report->Summary().c_str());
  if (report->ok()) {
    std::printf("ERROR: tampering was not detected!\n");
    return 1;
  }

  // Forensics: the ledger view reconstructs part 12's true lifecycle from
  // the history table (which the insider did not manage to forge
  // consistently — doing so is what the Merkle roots prevent).
  auto view = db->GetLedgerView("parts");
  std::printf("ledger view entries for part 12:\n");
  for (const LedgerViewRow& row : *view) {
    if (row.values[0].AsInt64() != 12) continue;
    std::printf("  txn %llu  %-6s  batch=%s vin=%s\n",
                static_cast<unsigned long long>(row.transaction_id),
                row.operation.c_str(), row.values[2].ToString().c_str(),
                row.values[3].ToString().c_str());
  }
  std::printf(
      "\nConclusion: cryptographic evidence shows part 12 was installed from "
      "batch BRK-2018-B7\nbefore the recall, and the record was altered "
      "afterwards. Forward integrity holds.\n");
  return 0;
}
