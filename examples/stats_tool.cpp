// stats_tool: exercises the full write / digest / verify pipeline against a
// scratch directory and prints the metrics-registry snapshot as JSON — the
// smoke surface for the observability layer (DESIGN.md §13).
//
//   ./stats_tool [--txns=N] [--sessions=S] [--data-dir=DIR]
//                [--trace-out=FILE]
//
// Runs S concurrent sessions committing N total transactions through the
// durable group-commit pipeline, pushes a digest through the upload
// pipeline's outbox, runs a full verification (seeding the incremental
// watermark) followed by an incremental one, then dumps the snapshot.
// --trace-out additionally writes the Chrome trace-event JSON
// (chrome://tracing / ui.perfetto.dev).
//
// The tool self-checks the snapshot: wal.sync_micros p99, the
// commit.group_size histogram, the digest.outbox_depth gauge and
// verify.incremental_micros must all be populated, so CI can gate on the
// exit code. 0 = snapshot complete, 1 = setup/verification failure,
// 3 = a required metric is missing or zero.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"
#include "util/metrics.h"
#include "util/trace.h"

using namespace sqlledger;

namespace {

Schema PayloadSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("payload", DataType::kVarchar, false, 64);
  s.SetPrimaryKey({0});
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int txns = 1200;
  int sessions = 4;
  std::string data_dir;
  std::string trace_out;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--txns=", 7) == 0)
      txns = std::atoi(argv[i] + 7);
    else if (std::strncmp(argv[i], "--sessions=", 11) == 0)
      sessions = std::atoi(argv[i] + 11);
    else if (std::strncmp(argv[i], "--data-dir=", 11) == 0)
      data_dir = argv[i] + 11;
    else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_out = argv[i] + 12;
    else {
      std::printf(
          "usage: %s [--txns=N] [--sessions=S] [--data-dir=DIR] "
          "[--trace-out=FILE]\n",
          argv[0]);
      return 64;
    }
  }
  if (sessions < 1) sessions = 1;
  if (data_dir.empty())
    data_dir =
        (std::filesystem::temp_directory_path() / "sl_stats_tool").string();
  std::filesystem::remove_all(data_dir);

  LedgerDatabaseOptions options;
  options.block_size = 256;
  options.database_id = "stats-tool";
  options.sync_wal = true;  // durability on: wal.sync_micros must populate
  options.data_dir = data_dir;
  auto opened = LedgerDatabase::Open(std::move(options));
  if (!opened.ok()) {
    std::printf("open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*opened);
  if (!db->CreateTable("t", PayloadSchema(), TableKind::kAppendOnly).ok())
    return 1;

  // Digest protection first, so the outbox-depth gauge tracks the workload.
  InMemoryDigestStore store;
  DigestPipelineOptions popts;
  popts.outbox_dir = data_dir + "/digest_outbox";
  popts.initial_backoff_micros = 0;
  popts.max_backoff_micros = 0;
  popts.jitter = 0;
  popts.probe_interval_micros = 0;
  if (!db->StartDigestProtection(&store, popts).ok()) return 1;

  const int per_session = txns / sessions;
  const std::string payload(64, 'x');
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; s++) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < per_session; i++) {
        int64_t id = static_cast<int64_t>(s) * per_session + i;
        auto txn = db->Begin("stats");
        if (!txn.ok()) std::exit(1);
        Status st = db->Insert(*txn, "t",
                               {Value::BigInt(id), Value::Varchar(payload)});
        if (st.ok()) st = db->Commit(*txn);
        if (!st.ok()) {
          std::printf("commit failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  if (!db->digest_pipeline()->GenerateAndSubmit().ok()) return 1;
  if (!db->digest_pipeline()->DrainFully().ok()) return 1;

  // Full verification seeds the watermark; the incremental run consumes it.
  auto full = VerifyLedgerAgainstStore(db.get(), store);
  if (!full.ok() || !full->ok()) {
    std::printf("full verification failed\n");
    return 1;
  }
  auto incr = VerifyLedgerAgainstStore(db.get(), store, {},
                                       /*incremental=*/true);
  if (!incr.ok() || !incr->ok()) {
    std::printf("incremental verification failed\n");
    return 1;
  }

  MetricsSnapshot snap = db->MetricsSnapshot();
  std::printf("%s\n", MetricsToJson(snap).DumpPretty().c_str());

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << db->tracer()->ToChromeJson().Dump() << "\n";
    std::fprintf(stderr, "wrote trace: %s\n", trace_out.c_str());
  }

  db.reset();
  std::filesystem::remove_all(data_dir);

  // Self-check: the acceptance metrics must be populated.
  auto hist_count = [&](const char* name) {
    auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? uint64_t{0} : it->second.count;
  };
  int rc = 0;
  auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "MISSING: %s\n", what);
      rc = 3;
    }
  };
  auto wal_sync = snap.histograms.find("wal.sync_micros");
  require(wal_sync != snap.histograms.end() &&
              wal_sync->second.Percentile(99) > 0,
          "nonzero wal.sync_micros p99");
  require(hist_count("commit.group_size") > 0, "commit.group_size histogram");
  require(snap.gauges.count("digest.outbox_depth") == 1,
          "digest.outbox_depth gauge");
  require(hist_count("verify.incremental_micros") > 0,
          "nonzero verify.incremental_micros");
  return rc;
}
