// Interactive SQL shell over a ledger database. Run a script of the
// paper's Figure 2 when invoked with --demo, or read statements from stdin.
//
//   ./sql_repl [--demo] [data_dir]

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "sql/session.h"

using namespace sqlledger;

namespace {

void RunStatement(SqlSession* session, const std::string& sql, bool echo) {
  if (echo) std::printf("sql> %s\n", sql.c_str());
  auto result = session->Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return;
  }
  std::string text = result->ToString();
  if (!text.empty()) std::printf("%s\n", text.c_str());
}

int RunDemo(SqlSession* session) {
  // The paper's Figure 2 account-balance scenario, in SQL.
  const char* kScript[] = {
      "CREATE TABLE accounts (name VARCHAR(32) NOT NULL, balance BIGINT NOT "
      "NULL, PRIMARY KEY (name)) WITH (LEDGER = ON)",
      "INSERT INTO accounts VALUES ('Nick', 50)",
      "INSERT INTO accounts VALUES ('John', 500)",
      "INSERT INTO accounts VALUES ('Joe', 30)",
      "INSERT INTO accounts VALUES ('Mary', 200)",
      "UPDATE accounts SET balance = 100 WHERE name = 'Nick'",
      "DELETE FROM accounts WHERE name = 'Joe'",
      "SELECT * FROM accounts ORDER BY name",
      "SELECT * FROM LEDGER_VIEW(accounts)",
      "GENERATE DIGEST",
      "VERIFY LEDGER",
      // Savepoints (paper §3.2.1).
      "BEGIN",
      "INSERT INTO accounts VALUES ('Eve', 1)",
      "SAVEPOINT before_mistake",
      "UPDATE accounts SET balance = 0 WHERE name = 'John'",
      "ROLLBACK TO SAVEPOINT before_mistake",
      "COMMIT",
      "SELECT name, balance FROM accounts WHERE balance >= 100 ORDER BY "
      "balance DESC",
      // Aggregates and GROUP BY over the audit view and the table.
      "SELECT COUNT(*), SUM(balance), AVG(balance) FROM accounts",
      "SELECT operation, COUNT(*) FROM LEDGER_VIEW(accounts) GROUP BY "
      "operation",
  };
  for (const char* sql : kScript) RunStatement(session, sql, /*echo=*/true);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  std::string data_dir;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      data_dir = argv[i];
    }
  }

  LedgerDatabaseOptions options;
  options.database_id = "sqlrepl";
  options.data_dir = data_dir;
  options.block_size = 16;
  auto db = LedgerDatabase::Open(std::move(options));
  if (!db.ok()) {
    std::printf("open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  SqlSession session(db->get());

  if (demo) return RunDemo(&session);

  std::printf("sqlledger SQL shell — end statements with a newline, Ctrl-D "
              "to exit.\n");
  std::string line;
  while (true) {
    std::printf(session.in_transaction() ? "sql*> " : "sql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "exit" || line == "quit") break;
    RunStatement(&session, line, /*echo=*/false);
  }
  return 0;
}
