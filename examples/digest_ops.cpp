// Digest-management operations example (paper §2.4, §3.6): periodic digest
// uploads to a directory-backed immutable blob store, fork detection at
// upload time, durable restart, and a point-in-time-restore producing a new
// database incarnation whose digests coexist with the original's.
//
//   ./digest_ops <work_dir>

#include <cstdio>
#include <filesystem>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"

using namespace sqlledger;

namespace {
std::unique_ptr<LedgerDatabase> OpenDb(const std::string& dir,
                                       bool new_incarnation = false) {
  LedgerDatabaseOptions options;
  options.data_dir = dir;
  options.database_id = "digest-demo";
  options.block_size = 4;
  options.force_new_incarnation = new_incarnation;
  auto db = LedgerDatabase::Open(std::move(options));
  if (!db.ok()) {
    std::printf("open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*db);
}

void MustInsert(LedgerDatabase* db, int64_t id, const std::string& note) {
  auto txn = db->Begin("app");
  Status st = db->Insert(*txn, "events",
                         {Value::BigInt(id), Value::Varchar(note)});
  if (st.ok()) st = db->Commit(*txn);
  if (!st.ok()) {
    std::printf("insert failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  std::string work_dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "sqlledger_digest_ops")
                     .string();
  std::filesystem::remove_all(work_dir);
  std::string db_dir = work_dir + "/db";
  std::string blob_dir = work_dir + "/immutable_blobs";

  auto store_result = ImmutableBlobDigestStore::Open(blob_dir);
  if (!store_result.ok()) return 1;
  auto store = std::move(*store_result);

  // Phase 1: create, load, upload digests on a cadence.
  {
    auto db = OpenDb(db_dir);
    Schema events;
    events.AddColumn("event_id", DataType::kBigInt, false);
    events.AddColumn("note", DataType::kVarchar, false, 64);
    events.SetPrimaryKey({0});
    if (!db->CreateTable("events", events, TableKind::kAppendOnly).ok())
      return 1;
    for (int64_t i = 1; i <= 12; i++) {
      MustInsert(db.get(), i, "event " + std::to_string(i));
      if (i % 4 == 0) {
        auto digest = GenerateAndUploadDigest(db.get(), store.get());
        std::printf("uploaded digest: block=%llu incarnation=%s\n",
                    static_cast<unsigned long long>(digest->block_id),
                    digest->database_create_time.c_str());
      }
    }
    if (!db->Checkpoint().ok()) return 1;
  }

  // Phase 2: restart and continue — digests keep chaining, no fork.
  {
    auto db = OpenDb(db_dir);
    MustInsert(db.get(), 13, "after restart");
    auto digest = GenerateAndUploadDigest(db.get(), store.get());
    if (!digest.ok()) {
      std::printf("fork check failed after restart: %s\n",
                  digest.status().ToString().c_str());
      return 1;
    }
    std::printf("post-restart digest chains cleanly (block %llu)\n",
                static_cast<unsigned long long>(digest->block_id));
    if (!db->Checkpoint().ok()) return 1;
  }

  // Phase 3: point-in-time restore via the Restore helper — copies the
  // durable state and opens it as a new incarnation. Digests of BOTH
  // incarnations are retained in the store.
  std::string restored_dir = work_dir + "/db_restored";
  {
    LedgerDatabaseOptions restore_options;
    restore_options.data_dir = restored_dir;
    restore_options.database_id = "digest-demo";
    restore_options.block_size = 4;
    auto restore_result =
        LedgerDatabase::Restore(db_dir, std::move(restore_options));
    if (!restore_result.ok()) {
      std::printf("restore failed: %s\n",
                  restore_result.status().ToString().c_str());
      return 1;
    }
    auto restored = std::move(*restore_result);
    MustInsert(restored.get(), 14, "diverged after restore");
    auto digest = GenerateAndUploadDigest(restored.get(), store.get());
    std::printf("restored incarnation digest: incarnation=%s\n",
                digest->database_create_time.c_str());

    auto all = store->ListAll();
    std::printf("\ndigest store now holds %zu digests:\n", all->size());
    for (const DatabaseDigest& d : *all) {
      std::printf("  incarnation=%s block=%llu\n",
                  d.database_create_time.c_str(),
                  static_cast<unsigned long long>(d.block_id));
    }

    // Verify the restored database with its incarnation's digests plus the
    // original digests it inherited (they cover shared prefix blocks).
    auto report = VerifyLedger(restored.get(), *all);
    std::printf("\nrestored-db verification: %s\n", report->Summary().c_str());
    if (!report->ok()) return 1;
  }

  std::printf("\ndone. blobs under %s are write-protected (try editing one).\n",
              blob_dir.c_str());
  return 0;
}
