// Merkle trees (paper §3.2.1 and §3.3.1).
//
// MerkleBuilder implements the paper's streaming algorithm: the root of a
// Merkle tree is computed while leaves arrive, in O(N) time and O(log N)
// space, by keeping at most one pending node per level. The pending-node
// state is copyable, which is exactly what enables savepoints / partial
// rollback: a savepoint snapshots the state and a rollback restores it.
//
// MerkleTree is the materialized variant used by the Database Ledger to
// produce Merkle *proofs* of transaction inclusion (paper §3.3.1 req. 4,
// §5.1 receipts). Its root always matches MerkleBuilder over the same
// leaves.
//
// Domain separation follows RFC 6962: leaf = H(0x00 || data),
// node = H(0x01 || left || right). A lone node at the end of a level is
// promoted unchanged to the parent level, per the paper.

#ifndef SQLLEDGER_CRYPTO_MERKLE_H_
#define SQLLEDGER_CRYPTO_MERKLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/sha256.h"
#include "util/slice.h"

namespace sqlledger {

/// Hash of a leaf's content with leaf domain separation.
Hash256 MerkleLeafHash(Slice data);
/// Combine two child hashes with node domain separation.
Hash256 MerkleNodeHash(const Hash256& left, const Hash256& right);

/// Batched leaf hashing: out[i] = MerkleLeafHash(inputs[i]) through the
/// dispatched SHA-256 kernel. The entry point for hot callers that hash
/// many independent leaves (commit-path block closes, verification).
void MerkleLeafHashMany(const Slice* inputs, size_t n, Hash256* out);

/// Snapshot of a MerkleBuilder: O(log N) pending nodes plus the leaf count.
/// Stored in savepoint records so a partial rollback can restore the tree.
struct MerkleBuilderState {
  std::vector<std::optional<Hash256>> pending;
  uint64_t leaf_count = 0;
};

/// Streaming Merkle-root computation.
class MerkleBuilder {
 public:
  MerkleBuilder() = default;

  /// Append a leaf given its raw content (hashed with leaf prefix).
  void AddLeaf(Slice data) { AddLeafHash(MerkleLeafHash(data)); }
  /// Append a leaf given its already-computed leaf hash.
  void AddLeafHash(const Hash256& leaf_hash);

  uint64_t leaf_count() const { return state_.leaf_count; }
  bool empty() const { return state_.leaf_count == 0; }
  /// Number of pending nodes currently held (== space usage; <= log2(N)+1).
  size_t pending_nodes() const;

  /// Finalize and return the root. Does not modify the builder; may be
  /// called repeatedly as leaves continue to arrive. The root of an empty
  /// tree is the all-zero hash.
  Hash256 Root() const;

  /// Savepoint support (paper §3.2.1).
  MerkleBuilderState GetState() const { return state_; }
  void RestoreState(MerkleBuilderState state) { state_ = std::move(state); }
  void Reset() { state_ = MerkleBuilderState{}; }

 private:
  MerkleBuilderState state_;
};

/// One step of a Merkle proof: the sibling hash and which side it is on.
struct MerkleProofStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

/// An inclusion proof for one leaf. Levels where the node had no sibling
/// (it was promoted) contribute no step.
struct MerkleProof {
  uint64_t leaf_index = 0;
  uint64_t leaf_count = 0;
  std::vector<MerkleProofStep> steps;
};

/// Materialized Merkle tree over a list of leaf hashes; supports root and
/// proof extraction. Used when closing a ledger block and when issuing
/// transaction receipts.
class MerkleTree {
 public:
  /// `leaf_hashes` are the domain-separated leaf hashes (MerkleLeafHash).
  explicit MerkleTree(std::vector<Hash256> leaf_hashes);

  uint64_t leaf_count() const { return leaf_count_; }
  /// Root; all-zero for an empty tree (matches MerkleBuilder).
  Hash256 Root() const;
  /// Proof that leaf `index` is included. Pre-condition: index < leaf_count.
  MerkleProof Prove(uint64_t index) const;

  /// Recompute the root implied by `proof` for `leaf_hash` and compare with
  /// `root`. Also checks the index/count are consistent with the step count.
  static bool VerifyProof(const Hash256& leaf_hash, const MerkleProof& proof,
                          const Hash256& root);

 private:
  // levels_[0] = leaves, levels_.back() = {root}. Odd tail nodes are
  // promoted (copied) upward.
  std::vector<std::vector<Hash256>> levels_;
  uint64_t leaf_count_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_CRYPTO_MERKLE_H_
