#include "crypto/hmac.h"

#include <cstring>

namespace sqlledger {

Hash256 HmacSha256(Slice key, Slice data) {
  uint8_t key_block[64];
  std::memset(key_block, 0, sizeof(key_block));
  if (key.size() > 64) {
    Hash256 kh = Sha256::Digest(key);
    std::memcpy(key_block, kh.bytes.data(), 32);
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; i++) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, 64);
  inner.Update(data);
  Hash256 inner_hash = inner.Finish();

  Sha256 outer;
  outer.Update(opad, 64);
  outer.Update(inner_hash.AsSlice());
  return outer.Finish();
}

std::vector<uint8_t> HmacSigner::Sign(const Hash256& digest) const {
  Hash256 mac = HmacSha256(Slice(key_), digest.AsSlice());
  return std::vector<uint8_t>(mac.bytes.begin(), mac.bytes.end());
}

bool HmacSigner::Verify(const Hash256& digest, Slice signature) const {
  std::vector<uint8_t> expected = Sign(digest);
  if (signature.size() != expected.size()) return false;
  return ConstantTimeEqual(expected.data(), signature.data(), expected.size());
}

}  // namespace sqlledger
