#include "crypto/merkle.h"

#include <cstring>

#include "crypto/sha256_kernel.h"

namespace sqlledger {

namespace {
constexpr uint8_t kLeafPrefix = 0x00;
constexpr uint8_t kNodePrefix = 0x01;
}  // namespace

Hash256 MerkleLeafHash(Slice data) {
  return Sha256DigestWithKernel(ActiveSha256Kernel(), Slice(&kLeafPrefix, 1),
                                data);
}

Hash256 MerkleNodeHash(const Hash256& left, const Hash256& right) {
  uint8_t buf[64];
  std::memcpy(buf, left.bytes.data(), 32);
  std::memcpy(buf + 32, right.bytes.data(), 32);
  return Sha256DigestWithKernel(ActiveSha256Kernel(), Slice(&kNodePrefix, 1),
                                Slice(buf, 64));
}

void MerkleLeafHashMany(const Slice* inputs, size_t n, Hash256* out) {
  HashManyWithPrefix(kLeafPrefix, inputs, n, out);
}

void MerkleBuilder::AddLeafHash(const Hash256& leaf_hash) {
  state_.leaf_count++;
  Hash256 carry = leaf_hash;
  // Carry up: an arriving node pairs with the pending node of its level (the
  // pending node is the left child, the new node the right), and the combined
  // hash propagates to the parent level.
  for (size_t level = 0;; level++) {
    if (level == state_.pending.size()) state_.pending.emplace_back();
    if (!state_.pending[level].has_value()) {
      state_.pending[level] = carry;
      return;
    }
    carry = MerkleNodeHash(*state_.pending[level], carry);
    state_.pending[level].reset();
  }
}

size_t MerkleBuilder::pending_nodes() const {
  size_t n = 0;
  for (const auto& p : state_.pending)
    if (p.has_value()) n++;
  return n;
}

Hash256 MerkleBuilder::Root() const {
  // Fold remaining pending nodes from the bottom up. A lone node is promoted
  // unchanged; when it meets a pending node of a higher level, that node is
  // the left child (it was appended earlier).
  std::optional<Hash256> carry;
  for (const auto& p : state_.pending) {
    if (!p.has_value()) continue;
    if (carry.has_value()) {
      carry = MerkleNodeHash(*p, *carry);
    } else {
      carry = *p;
    }
  }
  return carry.value_or(Hash256{});
}

MerkleTree::MerkleTree(std::vector<Hash256> leaf_hashes)
    : leaf_count_(leaf_hashes.size()) {
  static_assert(sizeof(Hash256) == 32, "adjacent hashes must be contiguous");
  levels_.push_back(std::move(leaf_hashes));
  std::vector<Slice> pair_inputs;
  while (levels_.back().size() > 1) {
    const std::vector<Hash256>& cur = levels_.back();
    // Each parent's preimage (left || right) is 64 contiguous bytes inside
    // the level vector, so the whole level batches with zero copies.
    size_t pairs = cur.size() / 2;
    pair_inputs.resize(pairs);
    for (size_t i = 0; i < pairs; i++)
      pair_inputs[i] = Slice(cur[2 * i].bytes.data(), 64);
    std::vector<Hash256> next((cur.size() + 1) / 2);
    HashManyWithPrefix(kNodePrefix, pair_inputs.data(), pairs, next.data());
    if (cur.size() % 2 != 0) next.back() = cur.back();  // promote lone tail
    levels_.push_back(std::move(next));
  }
}

Hash256 MerkleTree::Root() const {
  if (leaf_count_ == 0) return Hash256{};
  return levels_.back()[0];
}

MerkleProof MerkleTree::Prove(uint64_t index) const {
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count_;
  uint64_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); level++) {
    uint64_t sibling = i ^ 1;
    if (sibling < levels_[level].size()) {
      proof.steps.push_back(
          MerkleProofStep{levels_[level][sibling], /*sibling_is_left=*/(i & 1) != 0});
    }
    // If the node had no sibling it was promoted; no step is emitted.
    i /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Hash256& leaf_hash, const MerkleProof& proof,
                             const Hash256& root) {
  if (proof.leaf_count == 0 || proof.leaf_index >= proof.leaf_count)
    return false;
  Hash256 h = leaf_hash;
  for (const MerkleProofStep& step : proof.steps) {
    h = step.sibling_is_left ? MerkleNodeHash(step.sibling, h)
                             : MerkleNodeHash(h, step.sibling);
  }
  return ConstantTimeEqual(h, root);
}

}  // namespace sqlledger
