// HMAC-SHA256 (RFC 2104) and the Signer abstraction used for transaction
// receipts and digest attestation (paper §5.1). The paper amortizes one
// asymmetric signature per 100K-transaction block; we keep the identical
// protocol shape but sign with HMAC under a held key (see DESIGN.md §1.3
// for the substitution rationale). Signer is an interface so an asymmetric
// implementation can be dropped in.

#ifndef SQLLEDGER_CRYPTO_HMAC_H_
#define SQLLEDGER_CRYPTO_HMAC_H_

#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/slice.h"

namespace sqlledger {

/// HMAC-SHA256 over `data` with `key`. One-shot.
Hash256 HmacSha256(Slice key, Slice data);

/// Signs/verifies 32-byte digests (block Merkle roots, database digests).
class Signer {
 public:
  virtual ~Signer() = default;
  /// Opaque signature bytes over `digest`.
  virtual std::vector<uint8_t> Sign(const Hash256& digest) const = 0;
  virtual bool Verify(const Hash256& digest,
                      Slice signature) const = 0;
  /// Identifier embedded in receipts so verifiers pick the right key.
  virtual std::string KeyId() const = 0;
};

/// HMAC-based Signer: signature = HMAC-SHA256(key, digest).
class HmacSigner : public Signer {
 public:
  HmacSigner(std::string key_id, std::vector<uint8_t> key)
      : key_id_(std::move(key_id)), key_(std::move(key)) {}

  std::vector<uint8_t> Sign(const Hash256& digest) const override;
  bool Verify(const Hash256& digest, Slice signature) const override;
  std::string KeyId() const override { return key_id_; }

 private:
  std::string key_id_;
  std::vector<uint8_t> key_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_CRYPTO_HMAC_H_
