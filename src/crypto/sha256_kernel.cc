#include "crypto/sha256_kernel.h"

#include <cstdlib>
#include <cstring>

namespace sqlledger {

namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t RotR(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

bool ForceScalar() {
#if defined(SQLLEDGER_FORCE_SCALAR_SHA)
  return true;
#else
  const char* env = std::getenv("SQLLEDGER_FORCE_SCALAR_SHA");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
#endif
}

Sha256Kernel SelectKernel() {
  if (!ForceScalar()) {
#if defined(SQLLEDGER_HAVE_SHA_NI)
    if (__builtin_cpu_supports("sha"))
      return Sha256Kernel{"sha-ni", &Sha256CompressShaNi};
#endif
#if defined(SQLLEDGER_HAVE_ARMV8_SHA)
    if (Armv8ShaSupported())
      return Sha256Kernel{"armv8-ce", &Sha256CompressArmv8};
#endif
  }
  return Sha256Kernel{"scalar", &Sha256CompressScalar};
}

}  // namespace

void Sha256CompressScalar(uint32_t state[8], const uint8_t* blocks,
                          size_t n_blocks) {
  for (size_t blk = 0; blk < n_blocks; blk++, blocks += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; i++) {
      w[i] = static_cast<uint32_t>(blocks[i * 4]) << 24 |
             static_cast<uint32_t>(blocks[i * 4 + 1]) << 16 |
             static_cast<uint32_t>(blocks[i * 4 + 2]) << 8 |
             static_cast<uint32_t>(blocks[i * 4 + 3]);
    }
    for (int i = 16; i < 64; i++) {
      uint32_t s0 =
          RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; i++) {
      uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
      uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

const Sha256Kernel& ActiveSha256Kernel() {
  static const Sha256Kernel kernel = SelectKernel();
  return kernel;
}

std::vector<Sha256Kernel> AvailableSha256Kernels() {
  std::vector<Sha256Kernel> kernels;
  kernels.push_back(Sha256Kernel{"scalar", &Sha256CompressScalar});
#if defined(SQLLEDGER_HAVE_SHA_NI)
  if (__builtin_cpu_supports("sha"))
    kernels.push_back(Sha256Kernel{"sha-ni", &Sha256CompressShaNi});
#endif
#if defined(SQLLEDGER_HAVE_ARMV8_SHA)
  if (Armv8ShaSupported())
    kernels.push_back(Sha256Kernel{"armv8-ce", &Sha256CompressArmv8});
#endif
  return kernels;
}

Hash256 Sha256DigestWithKernel(const Sha256Kernel& kernel, Slice prefix,
                               Slice data) {
  uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                       0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  uint8_t buf[128];
  size_t buffered = 0;
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t total = prefix.size() + n;

  if (!prefix.empty()) {
    // Fold the (short) prefix into the first block, topping it up from the
    // payload; subsequent whole blocks stream straight from the payload.
    std::memcpy(buf, prefix.data(), prefix.size());
    buffered = prefix.size();
    size_t take = 64 - buffered;
    if (take > n) take = n;
    std::memcpy(buf + buffered, p, take);
    buffered += take;
    p += take;
    n -= take;
    if (buffered == 64) {
      kernel.compress(state, buf, 1);
      buffered = 0;
    }
  }
  size_t whole = n / 64;
  if (whole > 0) {
    kernel.compress(state, p, whole);
    p += whole * 64;
    n -= whole * 64;
  }
  if (buffered == 0 && n > 0) {
    std::memcpy(buf, p, n);
    buffered = n;
  }

  buf[buffered++] = 0x80;
  size_t pad_to = buffered <= 56 ? 56 : 120;
  std::memset(buf + buffered, 0, pad_to - buffered);
  uint64_t bit_len = total * 8;
  for (int i = 0; i < 8; i++)
    buf[pad_to + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  kernel.compress(state, buf, pad_to == 56 ? 1 : 2);

  Hash256 out;
  for (int i = 0; i < 8; i++) {
    out.bytes[i * 4] = static_cast<uint8_t>(state[i] >> 24);
    out.bytes[i * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    out.bytes[i * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    out.bytes[i * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
  return out;
}

}  // namespace sqlledger
