// SHA-256 (FIPS 180-4), implemented from scratch. Every row version,
// transaction entry and block in the ledger is hashed with this primitive
// (paper §2.1), so it sits on the hot path of all DML. The compression
// function is runtime-dispatched to a hardware kernel (x86 SHA-NI or ARMv8
// crypto extensions) when available — see crypto/sha256_kernel.h. The
// batched HashMany/Sha256Batch interface below is the preferred entry point
// for hot callers with many independent inputs: it skips the incremental
// context's buffering and resolves the kernel once per call.

#ifndef SQLLEDGER_CRYPTO_SHA256_H_
#define SQLLEDGER_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/constant_time.h"
#include "util/slice.h"

namespace sqlledger {

/// A 256-bit hash value. Comparable and hashable so it can key maps.
/// Equality is constant-time by construction (util/constant_time.h): hash
/// values are routinely compared against trusted digests, MACs and receipt
/// roots, and a short-circuiting compare would leak the first differing
/// byte through timing. operator< is NOT constant-time; it exists only for
/// deterministic container ordering and must never gate trust decisions.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& o) const {
    return ConstantTimeEqual(bytes, o.bytes);
  }
  bool operator!=(const Hash256& o) const { return !(*this == o); }
  bool operator<(const Hash256& o) const { return bytes < o.bytes; }

  bool IsZero() const {
    for (uint8_t b : bytes)
      if (b != 0) return false;
    return true;
  }

  Slice AsSlice() const { return Slice(bytes.data(), bytes.size()); }
  /// 64-character lowercase hex.
  std::string ToHex() const;
  /// Parse a 64-character hex string; returns all-zero hash on bad input
  /// via the bool flag.
  static bool FromHex(const std::string& hex, Hash256* out);
};

/// Explicit constant-time comparison of two hash values. Identical to
/// operator== (which already routes through ConstantTimeEqual); use this
/// spelling at sites where the comparison gates a trust decision so the
/// timing discipline is visible at the call site.
inline bool ConstantTimeEqual(const Hash256& a, const Hash256& b) {
  return ConstantTimeEqual(a.bytes, b.bytes);
}

/// Incremental SHA-256 context. Usage: Update(...) any number of times,
/// then Finish(). Reset() restores the initial state for reuse.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(Slice data);
  void Update(const uint8_t* data, size_t n) { Update(Slice(data, n)); }
  /// Finalizes and returns the digest. The context must be Reset() before
  /// further use.
  Hash256 Finish();

  /// One-shot convenience. Pads on the stack instead of buffering, so it is
  /// also the fastest single-input path.
  static Hash256 Digest(Slice data);
  /// Hash the concatenation of two inputs (Merkle node combine).
  static Hash256 Digest2(Slice a, Slice b);

  /// Name of the compression kernel in use: "scalar", "sha-ni", "armv8-ce".
  static const char* KernelName();

 private:
  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Hashes `n` independent inputs: out[i] = SHA256(inputs[i]). One kernel
/// resolution and zero context buffering per call — the batched interface
/// the Merkle/commit/verification hot paths feed (paper §4: hashing
/// dominates ledger overhead).
void HashMany(const Slice* inputs, size_t n, Hash256* out);

/// As HashMany, but each digest is SHA256(prefix_byte || inputs[i]) —
/// matches the RFC 6962 domain-separated Merkle leaf/node hashes without
/// materializing the concatenation.
void HashManyWithPrefix(uint8_t prefix_byte, const Slice* inputs, size_t n,
                        Hash256* out);

/// Accumulates (input, output-slot) pairs and hashes them in one Run().
/// Inputs are borrowed: the referenced bytes must stay alive until Run()
/// returns. Reusable after Run() (the pending list is cleared).
class Sha256Batch {
 public:
  /// Queue `data` to be hashed into `*out` (with an optional leading
  /// domain-separation byte folded in front of the payload).
  void Add(Slice data, Hash256* out) { Add(0, false, data, out); }
  void AddWithPrefix(uint8_t prefix_byte, Slice data, Hash256* out) {
    Add(prefix_byte, true, data, out);
  }

  size_t pending() const { return jobs_.size(); }

  /// Hashes every queued input through the dispatched kernel.
  void Run();

 private:
  struct Job {
    uint8_t prefix = 0;
    bool has_prefix = false;
    Slice data;
    Hash256* out = nullptr;
  };
  void Add(uint8_t prefix, bool has_prefix, Slice data, Hash256* out) {
    jobs_.push_back(Job{prefix, has_prefix, data, out});
  }
  std::vector<Job> jobs_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_CRYPTO_SHA256_H_
