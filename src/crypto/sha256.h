// SHA-256 (FIPS 180-4), implemented from scratch. Every row version,
// transaction entry and block in the ledger is hashed with this primitive
// (paper §2.1), so it sits on the hot path of all DML.

#ifndef SQLLEDGER_CRYPTO_SHA256_H_
#define SQLLEDGER_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/slice.h"

namespace sqlledger {

/// A 256-bit hash value. Comparable and hashable so it can key maps.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& o) const { return bytes == o.bytes; }
  bool operator!=(const Hash256& o) const { return bytes != o.bytes; }
  bool operator<(const Hash256& o) const { return bytes < o.bytes; }

  bool IsZero() const {
    for (uint8_t b : bytes)
      if (b != 0) return false;
    return true;
  }

  Slice AsSlice() const { return Slice(bytes.data(), bytes.size()); }
  /// 64-character lowercase hex.
  std::string ToHex() const;
  /// Parse a 64-character hex string; returns all-zero hash on bad input
  /// via the bool flag.
  static bool FromHex(const std::string& hex, Hash256* out);
};

/// Incremental SHA-256 context. Usage: Update(...) any number of times,
/// then Finish(). Reset() restores the initial state for reuse.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(Slice data);
  void Update(const uint8_t* data, size_t n) { Update(Slice(data, n)); }
  /// Finalizes and returns the digest. The context must be Reset() before
  /// further use.
  Hash256 Finish();

  /// One-shot convenience.
  static Hash256 Digest(Slice data);
  /// Hash the concatenation of two inputs (Merkle node combine).
  static Hash256 Digest2(Slice a, Slice b);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_CRYPTO_SHA256_H_
