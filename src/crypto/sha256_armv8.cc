// ARMv8 crypto-extension compression kernel (sha256h/sha256h2/sha256su0/
// sha256su1). Compiled with -march=armv8-a+crypto on aarch64 builds (see
// src/CMakeLists.txt) and only called when the kernel reports the SHA2
// HWCAP at runtime, mirroring the x86 SHA-NI gating.

#include "crypto/sha256_kernel.h"

#if defined(SQLLEDGER_HAVE_ARMV8_SHA)

#include <arm_neon.h>

#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_SHA2
#define HWCAP_SHA2 (1 << 6)
#endif
#endif

namespace sqlledger {

namespace {
alignas(16) constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
}  // namespace

bool Armv8ShaSupported() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_SHA2) != 0;
#elif defined(__APPLE__)
  return true;  // all Apple aarch64 cores implement the SHA2 extension
#else
  return false;
#endif
}

void Sha256CompressArmv8(uint32_t state[8], const uint8_t* blocks,
                         size_t n_blocks) {
  uint32x4_t st0 = vld1q_u32(&state[0]);  // a b c d
  uint32x4_t st1 = vld1q_u32(&state[4]);  // e f g h

  while (n_blocks-- > 0) {
    const uint32x4_t abcd_save = st0;
    const uint32x4_t efgh_save = st1;

    // Load the 16 message words, big-endian.
    uint32x4_t msg0 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks)));
    uint32x4_t msg1 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 16)));
    uint32x4_t msg2 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 32)));
    uint32x4_t msg3 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 48)));
    blocks += 64;

    // Quartet i consumes the register currently rotated into msg0 with
    // K[4i..4i+3]; quartets 0-11 also extend the schedule four words
    // (W[16+4i..19+4i]), which rotate back into consumption position four
    // quartets later. The compiler fully unrolls this.
    for (int i = 0; i < 16; i++) {
      uint32x4_t wk = vaddq_u32(msg0, vld1q_u32(&kK[4 * i]));
      uint32x4_t prev_st0 = st0;
      st0 = vsha256hq_u32(st0, st1, wk);
      st1 = vsha256h2q_u32(st1, prev_st0, wk);
      uint32x4_t next = msg0;
      if (i < 12)
        next = vsha256su1q_u32(vsha256su0q_u32(msg0, msg1), msg2, msg3);
      msg0 = msg1;
      msg1 = msg2;
      msg2 = msg3;
      msg3 = next;
    }

    st0 = vaddq_u32(st0, abcd_save);
    st1 = vaddq_u32(st1, efgh_save);
  }

  vst1q_u32(&state[0], st0);
  vst1q_u32(&state[4], st1);
}

}  // namespace sqlledger

#endif  // SQLLEDGER_HAVE_ARMV8_SHA
