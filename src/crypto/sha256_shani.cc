// x86 SHA-NI compression kernel. Compiled with -msha -msse4.1 (see
// src/CMakeLists.txt); only ever *called* when __builtin_cpu_supports("sha")
// says the CPU has the extension, so building it on any x86 toolchain is
// safe. The round structure follows the Intel SHA extensions white paper:
// state is held as two 128-bit lanes in the ABEF/CDGH layout that
// sha256rnds2 expects, four message words are consumed per round quartet,
// and the message schedule is advanced with sha256msg1/sha256msg2. The 16
// quartets are fully unrolled — the schedule-update dependency pattern
// rotates across four message registers and resists clean rolling.

#include "crypto/sha256_kernel.h"

#if defined(SQLLEDGER_HAVE_SHA_NI)

#include <immintrin.h>

namespace sqlledger {

namespace {
alignas(16) constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
}  // namespace

void Sha256CompressShaNi(uint32_t state[8], const uint8_t* blocks,
                         size_t n_blocks) {
  const __m128i* k = reinterpret_cast<const __m128i*>(kK);
  const __m128i kShuffleMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // state[] holds a..h as plain uint32. Pack into the ABEF / CDGH lanes.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);            // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);            // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);    // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);         // CDGH

  while (n_blocks-- > 0) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;
    __m128i msg, tmsg;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks)),
        kShuffleMask);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)),
        kShuffleMask);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)),
        kShuffleMask);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)),
        kShuffleMask);
    blocks += 64;

    // Rounds 0-3.
    msg = _mm_add_epi32(msg0, _mm_load_si128(k + 0));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 4-7.
    msg = _mm_add_epi32(msg1, _mm_load_si128(k + 1));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg = _mm_add_epi32(msg2, _mm_load_si128(k + 2));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg = _mm_add_epi32(msg3, _mm_load_si128(k + 3));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmsg);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19.
    msg = _mm_add_epi32(msg0, _mm_load_si128(k + 4));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmsg);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23.
    msg = _mm_add_epi32(msg1, _mm_load_si128(k + 5));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmsg);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27.
    msg = _mm_add_epi32(msg2, _mm_load_si128(k + 6));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmsg);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31.
    msg = _mm_add_epi32(msg3, _mm_load_si128(k + 7));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmsg);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35.
    msg = _mm_add_epi32(msg0, _mm_load_si128(k + 8));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmsg);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39.
    msg = _mm_add_epi32(msg1, _mm_load_si128(k + 9));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmsg);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43.
    msg = _mm_add_epi32(msg2, _mm_load_si128(k + 10));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmsg);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47.
    msg = _mm_add_epi32(msg3, _mm_load_si128(k + 11));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmsg);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51.
    msg = _mm_add_epi32(msg0, _mm_load_si128(k + 12));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmsg);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55.
    msg = _mm_add_epi32(msg1, _mm_load_si128(k + 13));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmsg);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(msg2, _mm_load_si128(k + 14));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmsg = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmsg);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, _mm_load_si128(k + 15));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
  }

  // Unpack ABEF/CDGH back into a..h.
  tmp = _mm_shuffle_epi32(st0, 0x1B);            // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);            // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);         // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);            // ABEF -> HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

}  // namespace sqlledger

#endif  // SQLLEDGER_HAVE_SHA_NI
