// SHA-256 compression-kernel dispatch. The FIPS 180-4 compression function
// has hardware implementations on modern x86 (SHA-NI) and ARMv8 (crypto
// extensions) that run an order of magnitude faster than the portable
// scalar loop. Since every row version, transaction entry and block hash
// funnels through this one function (paper §4: hashing dominates ledger
// overhead), the kernel is selected once at startup and every Sha256
// context calls through the selected function pointer.
//
// Selection order: SHA-NI > ARMv8-CE > scalar. Hardware kernels are only
// candidates when (a) the compiler could build them (per-file ISA flags,
// see src/CMakeLists.txt) and (b) the CPU reports the feature at runtime.
// The CMake option SQLLEDGER_FORCE_SCALAR_SHA, or the environment variable
// of the same name, pins the scalar kernel — used by CI to keep both
// dispatch arms tested.

#ifndef SQLLEDGER_CRYPTO_SHA256_KERNEL_H_
#define SQLLEDGER_CRYPTO_SHA256_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "util/slice.h"

namespace sqlledger {

/// Applies the SHA-256 compression function to `n_blocks` consecutive
/// 64-byte blocks starting at `blocks`, updating `state` in place.
/// `blocks` need not be aligned.
using Sha256CompressFn = void (*)(uint32_t state[8], const uint8_t* blocks,
                                  size_t n_blocks);

struct Sha256Kernel {
  const char* name;  // "scalar", "sha-ni", "armv8-ce"
  Sha256CompressFn compress;
};

/// The kernel every Sha256 context uses. Resolved once, on first call.
const Sha256Kernel& ActiveSha256Kernel();

/// Every kernel usable on this machine, scalar always included. Exposed so
/// equivalence tests and benches can compare implementations directly.
std::vector<Sha256Kernel> AvailableSha256Kernels();

/// One-shot digest through a specific kernel (kernel-equivalence tests and
/// A/B benches). `prefix` (may be empty) is hashed before `data`, which is
/// how Merkle domain-separation bytes are folded in without concatenating.
Hash256 Sha256DigestWithKernel(const Sha256Kernel& kernel, Slice prefix,
                               Slice data);

// ---- Individual kernels (internal; prefer ActiveSha256Kernel). ----

/// Portable scalar compression — the reference all others must match.
void Sha256CompressScalar(uint32_t state[8], const uint8_t* blocks,
                          size_t n_blocks);

#if defined(SQLLEDGER_HAVE_SHA_NI)
void Sha256CompressShaNi(uint32_t state[8], const uint8_t* blocks,
                         size_t n_blocks);
#endif

#if defined(SQLLEDGER_HAVE_ARMV8_SHA)
void Sha256CompressArmv8(uint32_t state[8], const uint8_t* blocks,
                         size_t n_blocks);
/// Runtime check for the ARMv8 SHA2 crypto extension (HWCAP probe).
bool Armv8ShaSupported();
#endif

}  // namespace sqlledger

#endif  // SQLLEDGER_CRYPTO_SHA256_KERNEL_H_
