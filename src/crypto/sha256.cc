#include "crypto/sha256.h"

#include <cstring>

#include "crypto/sha256_kernel.h"
#include "util/hex.h"

namespace sqlledger {

std::string Hash256::ToHex() const { return HexEncode(AsSlice()); }

bool Hash256::FromHex(const std::string& hex, Hash256* out) {
  auto decoded = HexDecode(hex);
  if (!decoded.ok() || decoded->size() != 32) return false;
  std::memcpy(out->bytes.data(), decoded->data(), 32);
  return true;
}

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(Slice data) {
  const Sha256CompressFn compress = ActiveSha256Kernel().compress;
  const uint8_t* p = data.data();
  size_t n = data.size();
  total_len_ += n;

  if (buffer_len_ > 0) {
    size_t take = 64 - buffer_len_;
    if (take > n) take = n;
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == 64) {
      compress(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  size_t whole = n / 64;
  if (whole > 0) {
    compress(state_, p, whole);
    p += whole * 64;
    n -= whole * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

Hash256 Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian length.
  uint8_t pad[72];
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; i++)
    pad[pad_len + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  Update(Slice(pad, pad_len + 8));

  Hash256 out;
  for (int i = 0; i < 8; i++) {
    out.bytes[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out.bytes[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out.bytes[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out.bytes[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Hash256 Sha256::Digest(Slice data) {
  return Sha256DigestWithKernel(ActiveSha256Kernel(), Slice(), data);
}

Hash256 Sha256::Digest2(Slice a, Slice b) {
  Sha256 ctx;
  ctx.Update(a);
  ctx.Update(b);
  return ctx.Finish();
}

const char* Sha256::KernelName() { return ActiveSha256Kernel().name; }

void HashMany(const Slice* inputs, size_t n, Hash256* out) {
  const Sha256Kernel& kernel = ActiveSha256Kernel();
  for (size_t i = 0; i < n; i++)
    out[i] = Sha256DigestWithKernel(kernel, Slice(), inputs[i]);
}

void HashManyWithPrefix(uint8_t prefix_byte, const Slice* inputs, size_t n,
                        Hash256* out) {
  const Sha256Kernel& kernel = ActiveSha256Kernel();
  Slice prefix(&prefix_byte, 1);
  for (size_t i = 0; i < n; i++)
    out[i] = Sha256DigestWithKernel(kernel, prefix, inputs[i]);
}

void Sha256Batch::Run() {
  const Sha256Kernel& kernel = ActiveSha256Kernel();
  for (const Job& job : jobs_) {
    Slice prefix = job.has_prefix ? Slice(&job.prefix, 1) : Slice();
    *job.out = Sha256DigestWithKernel(kernel, prefix, job.data);
  }
  jobs_.clear();
}

}  // namespace sqlledger
