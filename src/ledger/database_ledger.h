// The Database Ledger (paper §2.2, §3.3): a blockchain of blocks, each
// holding the Merkle root over up to block_size transaction entries.
// Transactions and blocks are physically stored as rows in two system
// tables ("database_ledger_transactions", "database_ledger_blocks"); the
// commit path only touches in-memory state (slot assignment + queue
// append), and the queue is drained into the transactions system table at
// checkpoint time (paper §3.3.2).

#ifndef SQLLEDGER_LEDGER_DATABASE_LEDGER_H_
#define SQLLEDGER_LEDGER_DATABASE_LEDGER_H_

#include <deque>
#include <functional>
#include <vector>

#include "crypto/merkle.h"
#include "ledger/digest.h"
#include "ledger/types.h"
#include "storage/table_store.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace sqlledger {

/// Schemas for the two ledger system tables.
Schema MakeLedgerTransactionsSchema();
Schema MakeLedgerBlocksSchema();

/// Row <-> struct conversions, shared with the verifier.
Row TransactionEntryToRow(const TransactionEntry& entry);
Result<TransactionEntry> RowToTransactionEntry(const Row& row);
Row BlockRecordToRow(const BlockRecord& block);
Result<BlockRecord> RowToBlockRecord(const Row& row);

struct DatabaseLedgerOptions {
  /// Transactions per block (the paper uses 100K; benches sweep this).
  uint64_t block_size = 100000;
  /// Injectable clock (microseconds since epoch).
  std::function<int64_t()> clock;
};

class DatabaseLedger {
 public:
  /// The system table stores are owned by the database facade; the ledger
  /// reads and writes them directly (they are internal tables, not subject
  /// to user transactions).
  DatabaseLedger(TableStore* transactions_table, TableStore* blocks_table,
                 DatabaseLedgerOptions options);

  // ---- Commit path (paper §3.3.2). ----

  /// Assigns the next (block id, ordinal) slot. Called while forming the
  /// WAL commit record.
  std::pair<uint64_t, uint64_t> AssignSlot();

  /// Assigns `n` contiguous slots for a commit group in one critical
  /// section. Slots roll over block boundaries (block_size ordinals per
  /// block), so a single group may span blocks; the subsequent Append calls
  /// close each block as its last ordinal arrives. Assignment is tracked
  /// separately from the append position, so slots handed out here stay
  /// reserved while the leader does WAL I/O.
  std::vector<std::pair<uint64_t, uint64_t>> AssignSlots(size_t n);

  /// Rolls back the last `n` slots handed out by AssignSlots. Only valid
  /// when none of those slots has been appended (the group-commit leader
  /// calls this after a failed batched WAL append, before anything reached
  /// the ledger) — otherwise recovery would see an ordinal gap.
  void ReleaseSlots(size_t n);

  /// Appends a committed transaction's entry to the open block and the
  /// in-memory durability queue, then closes the block if it is full.
  /// The entry's (block_id, block_ordinal) must come from AssignSlot.
  Status Append(TransactionEntry entry);

  // ---- Digest generation (paper §2.2). ----

  /// Closes the open block if it has entries (or materializes an initial
  /// empty block for a pristine database) and returns a digest of the
  /// latest closed block.
  Result<DatabaseDigest> GenerateDigest(const std::string& database_id,
                                        const std::string& create_time);

  /// Verifies that `newer` is derivable from `older` by walking the block
  /// chain in the current blocks table and recomputing hashes — the fork
  /// detection of paper §3.3.1 (requirement 3). OK result `false` means a
  /// clean "not derivable" answer; an error Status means the chain itself
  /// is unreadable.
  Result<bool> VerifyDigestChain(const DatabaseDigest& older,
                                 const DatabaseDigest& newer) const;

  // ---- Durability integration. ----

  /// Drains the in-memory queue into the transactions system table
  /// (checkpoint time, paper §3.3.2). Idempotent.
  Status DrainQueue();

  /// Re-appends an entry recovered from a WAL commit record. Skips entries
  /// already present (replay after a crash between checkpoint and WAL
  /// reset). Entries must be replayed in commit order; an entry addressed
  /// past the open block implies the open block was closed before the
  /// crash, so it is re-closed first (block closes are deterministic: the
  /// close timestamp is the last entry's commit timestamp).
  Status RecoverEntry(const TransactionEntry& entry);

  /// Replays a digest-generation block close from its WAL marker.
  Status RecoverBlockClose(uint64_t block_id);

  /// Rebuilds open-block state from the system tables after loading a
  /// checkpoint and before WAL replay.
  Status LoadFromTables();

  // ---- Introspection. ----

  uint64_t open_block_id() const;
  uint64_t open_block_entry_count() const;
  uint64_t closed_block_count() const;
  uint64_t queue_depth() const;
  uint64_t total_entries() const;
  uint64_t block_size() const { return options_.block_size; }

  /// Entries of the still-open block plus undrained queue entries, used by
  /// the verifier so verification covers the most recent transactions.
  std::vector<TransactionEntry> PendingEntries() const;

  /// Every entry persisted in the transactions system table. Call
  /// DrainQueue first for a complete picture.
  std::vector<TransactionEntry> AllEntries() const;

  /// Ledger truncation support (paper §5.2): transaction ids recorded in
  /// blocks below `below_block`, with their min/max.
  struct TxnRange {
    std::vector<uint64_t> txn_ids;
    uint64_t min_txn_id = 0;
    uint64_t max_txn_id = 0;
  };
  Result<TxnRange> CollectTxnsBelow(uint64_t below_block) const;

  /// Physically removes blocks and transaction entries below `below_block`.
  /// Callers must have re-homed any live data first (TruncateLedger does).
  Status TruncateBelow(uint64_t below_block);

  /// Looks up an entry by transaction id across the system table and the
  /// open block.
  Result<TransactionEntry> FindEntry(uint64_t txn_id) const;

  /// Looks up a closed block.
  Result<BlockRecord> FindBlock(uint64_t block_id) const;

  /// Every closed block in id (clustered) order — one ordered scan of the
  /// blocks system table. Rows that fail to parse are omitted; the verifier
  /// reports the resulting gaps. Preferred over FindBlock loops.
  std::vector<BlockRecord> AllBlocks() const;

  /// Consistent snapshot of both system tables plus the open-block id,
  /// taken in ONE critical section. The verifier needs this atomicity: a
  /// concurrent block close (digest generation is not stopped by the
  /// verification quiesce) sliding between separate AllBlocks/AllEntries
  /// calls would make freshly closed transactions reference a block the
  /// earlier blocks scan never saw.
  struct LedgerSnapshot {
    std::vector<TransactionEntry> entries;
    std::vector<BlockRecord> blocks;
    uint64_t open_block_id = 0;
  };
  LedgerSnapshot Snapshot() const;

  /// Merkle proof that the given transaction is part of its (closed)
  /// block's transaction tree (paper §3.3.1 requirement 4; receipts §5.1).
  Result<MerkleProof> ProveTransaction(uint64_t txn_id) const;

  /// Raw system stores, exposed only for tamper-simulation tests (the
  /// storage-level attacker of §2.5.2).
  TableStore* transactions_table_for_testing() { return transactions_table_; }
  TableStore* blocks_table_for_testing() { return blocks_table_; }

  // ---- Oracle support (differential simulator, src/sim/). ----

  /// Starts recording every entry accepted by Append/RecoverEntry in
  /// arrival order. The log lets an external oracle observe entries created
  /// by internal transactions (DDL metadata, truncation audit records)
  /// without re-deriving their contents.
  void EnableAppendLog();
  /// Entries appended since index `start` of the log (in arrival order).
  std::vector<TransactionEntry> AppendLogSince(size_t start) const;
  size_t append_log_size() const;

  /// Hash of the newest closed block (zero if none) — the chain tip an
  /// oracle checks its own recomputation against.
  Hash256 last_block_hash() const;

 private:
  Status CloseOpenBlockLocked() REQUIRES(mu_);
  Result<TransactionEntry> FindEntryLocked(uint64_t txn_id) const
      REQUIRES(mu_);
  std::vector<TransactionEntry> AllEntriesLocked() const REQUIRES(mu_);
  std::vector<BlockRecord> AllBlocksLocked() const REQUIRES(mu_);
  int64_t Now() const { return options_.clock(); }

  // The system tables are mutated only with mu_ held (Append block closes,
  // DrainQueue, recovery, TruncateBelow); readers that scan them directly
  // also take mu_ so scans never race a block close.
  TableStore* const transactions_table_ PT_GUARDED_BY(mu_);
  TableStore* const blocks_table_ PT_GUARDED_BY(mu_);
  DatabaseLedgerOptions options_;

  mutable Mutex mu_;
  uint64_t open_block_id_ GUARDED_BY(mu_) = 0;
  // Next slot to hand out (AssignSlot/AssignSlots). Runs ahead of the
  // append position while a commit group is in flight: a batch may reserve
  // slots spanning into blocks that are not open yet. Invariant when no
  // group is in flight: (assign_block_id_, assign_ordinal_) ==
  // (open_block_id_, open_entries_.size()).
  uint64_t assign_block_id_ GUARDED_BY(mu_) = 0;
  uint64_t assign_ordinal_ GUARDED_BY(mu_) = 0;
  std::vector<TransactionEntry> open_entries_ GUARDED_BY(mu_);
  // Hash of the newest closed block (zero if none).
  Hash256 last_block_hash_ GUARDED_BY(mu_);
  int64_t last_commit_ts_ GUARDED_BY(mu_) = 0;
  // Entries not yet drained into the system table.
  std::deque<TransactionEntry> queue_ GUARDED_BY(mu_);
  uint64_t total_entries_ GUARDED_BY(mu_) = 0;

  bool append_log_enabled_ GUARDED_BY(mu_) = false;
  std::vector<TransactionEntry> append_log_ GUARDED_BY(mu_);
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_DATABASE_LEDGER_H_
