// Fault-tolerant digest upload pipeline (DESIGN.md §9). The paper's trust
// model hangs on digests reaching trusted external storage "every few
// seconds" (§2.4, §3.6); that store is remote and unreliable, so the
// pipeline must survive timeouts, outages, lost acks and crashes without
// losing the digest cadence or reordering the chain:
//
//   submit ──► chain check ──► durable outbox ──► retry loop ──► store
//                 (fork?)        (Env, CRC'd)     (backoff +
//                                                  breaker)
//
//   - Every submitted digest is chained against the previous submission
//     (VerifyDigestChain) and appended to a DigestOutbox BEFORE the first
//     upload attempt; an outage plus a crash replays the outbox in order.
//   - An error classifier splits retryable failures (timeout, unavailable,
//     throttled) from fatal ones (fork detected, corruption); only fatal
//     errors latch and stop the pipeline.
//   - Retries use exponential backoff with seeded jitter, governed by a
//     circuit breaker: healthy -> degraded (first consecutive failures) ->
//     open (sustained failure; only periodic probes go out) -> healthy on
//     the first probe that lands.
//   - Ambiguous outcomes ("stored but the ack was lost") are recovered
//     idempotently: the retry re-uploads identical bytes and the store
//     answers OK; mismatched content for an already-stored block raises
//     the fork alarm instead (see DigestStore::Upload).
//
// The synchronous core (SubmitDigest / GenerateAndSubmit / Pump) is what
// the deterministic simulator and tests drive; Start() wraps it in the
// background cadence thread that replaces PeriodicDigestUploader's loop.
// All time comes from the database's injectable clock, so backoff and
// breaker transitions replay deterministically under the simulator.

#ifndef SQLLEDGER_LEDGER_DIGEST_PIPELINE_H_
#define SQLLEDGER_LEDGER_DIGEST_PIPELINE_H_

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "ledger/digest.h"
#include "storage/digest_outbox.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace sqlledger {

class DigestStore;
class LedgerDatabase;
class Tracer;

/// Retryable errors are the store misbehaving (network weather); fatal
/// errors mean the *ledger* or the *stored digests* are wrong and retrying
/// would paper over an attack.
enum class DigestErrorClass { kRetryable, kFatal };
DigestErrorClass ClassifyDigestUploadError(const Status& status);

enum class DigestBreakerState { kHealthy, kDegraded, kOpen };
const char* DigestBreakerStateName(DigestBreakerState state);

struct DigestPipelineOptions {
  /// Directory for the durable outbox (required).
  std::string outbox_dir;
  /// Env for outbox I/O. nullptr = Env::Default(). Not owned.
  Env* env = nullptr;
  /// Maximum digests queued while the store is unreachable; submissions
  /// beyond it are rejected (and counted) — the next successful digest
  /// covers the whole chain anyway, so cadence resumes at recovery.
  size_t outbox_capacity = 64;

  // Exponential backoff between retry rounds (micros of database time).
  int64_t initial_backoff_micros = 200 * 1000;
  int64_t max_backoff_micros = 5 * 1000 * 1000;
  double backoff_multiplier = 2.0;
  /// Jitter fraction: each backoff is scaled by a seeded uniform draw from
  /// [1 - jitter, 1 + jitter] to avoid retry convoys.
  double jitter = 0.2;

  // Circuit breaker thresholds (consecutive retryable failures).
  int degraded_after_failures = 1;
  int open_after_failures = 4;
  /// While open, one probe upload is allowed per interval.
  int64_t probe_interval_micros = 1 * 1000 * 1000;

  /// Seed for the jitter PRNG (deterministic under the simulator).
  uint64_t seed = 42;
};

/// Graceful-degradation surface: how far behind trusted storage the ledger
/// currently is. Callers assert protection staleness instead of discovering
/// a gap at verification time.
struct DigestProtectionStatus {
  DigestBreakerState breaker = DigestBreakerState::kHealthy;
  /// Closed blocks not yet covered by a digest the store acknowledged.
  uint64_t blocks_behind = 0;
  /// Database-clock seconds since the last durable digest; -1 = never.
  double seconds_since_last_durable = -1;
  uint64_t outbox_pending = 0;

  // Counters.
  uint64_t uploads_ok = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;             // attempts beyond the first per digest
  uint64_t transient_errors = 0;
  uint64_t recovered_after_retry = 0;  // incl. idempotent ack-loss recovery
  uint64_t submissions_rejected = 0;   // outbox full
  int consecutive_failures = 0;

  /// Latched fatal error (fork / corruption); OK while the pipeline lives.
  Status fatal;

  /// Every closed block is covered by trusted storage and no alarm fired.
  bool fully_protected() const { return blocks_behind == 0 && fatal.ok(); }
  std::string ToString() const;
};

class DigestUploadPipeline {
 public:
  /// Opens the durable outbox (replaying any digests a previous process
  /// left pending, in order) and builds the pipeline. `db` and `store` are
  /// not owned and must outlive it.
  static Result<std::unique_ptr<DigestUploadPipeline>> Open(
      LedgerDatabase* db, DigestStore* store, DigestPipelineOptions options);
  ~DigestUploadPipeline();

  DigestUploadPipeline(const DigestUploadPipeline&) = delete;
  DigestUploadPipeline& operator=(const DigestUploadPipeline&) = delete;

  // ---- Synchronous core ----

  /// Chain-checks `digest` against the previous submission and durably
  /// queues it. Does NOT attempt the upload (call Pump). Fails with Busy
  /// when the outbox is full and with the latched error once fatal.
  Status SubmitDigest(const DatabaseDigest& digest);
  /// GenerateDigest() + SubmitDigest().
  Status GenerateAndSubmit();
  /// Attempts pending uploads, oldest first, honoring backoff and breaker
  /// state against the database clock. Stops at the first failure of the
  /// round. Returns the number of digests the store acknowledged.
  size_t Pump();
  /// Pump until the outbox drains, a fatal error latches, or a round makes
  /// no progress while backoff blocks further attempts. For tests and
  /// benches with real or fast-ticking clocks.
  Status DrainFully();

  // ---- Background cadence (replaces PeriodicDigestUploader's loop) ----

  /// Starts the background thread: every `interval`, GenerateAndSubmit +
  /// Pump. No-op if already started.
  void Start(std::chrono::milliseconds interval);
  void Stop();

  DigestProtectionStatus status() const;

  /// The durable queue, for auditing/replay inspection (thread-safe).
  DigestOutbox* outbox() { return outbox_.get(); }

 private:
  DigestUploadPipeline(LedgerDatabase* db, DigestStore* store,
                       DigestPipelineOptions options,
                       std::unique_ptr<DigestOutbox> outbox);

  void Loop(std::chrono::milliseconds interval);
  size_t PumpLocked(int64_t now) REQUIRES(mu_);
  void OnRetryableFailureLocked(int64_t now, const Status& st) REQUIRES(mu_);
  /// Moves the circuit breaker, counting the transition and emitting a
  /// trace instant when the state actually changes.
  void SetBreakerLocked(DigestBreakerState next) REQUIRES(mu_);

  LedgerDatabase* const db_;
  DigestStore* const store_;
  const DigestPipelineOptions options_;
  std::unique_ptr<DigestOutbox> outbox_;

  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  DigestBreakerState breaker_ GUARDED_BY(mu_) = DigestBreakerState::kHealthy;
  Status fatal_ GUARDED_BY(mu_);
  /// Chain anchor: the digest most recently accepted by SubmitDigest.
  bool have_last_submitted_ GUARDED_BY(mu_) = false;
  DatabaseDigest last_submitted_ GUARDED_BY(mu_);
  /// The digest most recently acknowledged by the store.
  bool have_last_durable_ GUARDED_BY(mu_) = false;
  DatabaseDigest last_durable_ GUARDED_BY(mu_);
  int64_t last_durable_at_micros_ GUARDED_BY(mu_) = 0;
  /// Backoff: no upload attempt before this database time.
  int64_t next_attempt_micros_ GUARDED_BY(mu_) = 0;
  int64_t next_probe_micros_ GUARDED_BY(mu_) = 0;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  /// Attempts already spent on the digest at the head of the outbox.
  uint64_t head_attempts_ GUARDED_BY(mu_) = 0;

  // Counters, gauges and latencies live in the database's metric registry
  // (digest.*; DESIGN.md §13) — status() reads the same storage, so there
  // is exactly one accounting of truth. Pointers are resolved once in Open;
  // recording is lock-free and adds no lock-order edge under mu_. Trace
  // instants under mu_ use the Tracer's leaf mutex (edge declared in
  // scripts/lock_hierarchy.txt).
  Counter* m_uploads_ok_ = nullptr;        // digest.uploads_total
  Counter* m_attempts_ = nullptr;          // digest.attempts_total
  Counter* m_retries_ = nullptr;           // digest.retries_total
  Counter* m_transient_errors_ = nullptr;  // digest.transient_errors_total
  Counter* m_recoveries_ = nullptr;        // digest.recoveries_total
  Counter* m_rejected_ = nullptr;          // digest.rejected_total
  Counter* m_breaker_transitions_ = nullptr;
  // ^ digest.breaker_transitions_total
  Gauge* m_outbox_depth_ = nullptr;        // digest.outbox_depth
  Gauge* m_breaker_state_ = nullptr;       // digest.breaker_state
  Histogram* m_upload_micros_ = nullptr;   // digest.upload_micros
  Tracer* tracer_ = nullptr;

  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_DIGEST_PIPELINE_H_
