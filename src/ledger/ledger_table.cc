#include "ledger/ledger_table.h"

#include "ledger/row_serializer.h"

namespace sqlledger {

void LedgerTableRef::RefreshOrdinals() {
  if (main == nullptr) return;
  const Schema& s = main->schema();
  start_txn_ord = s.FindColumn(kColStartTxn);
  start_seq_ord = s.FindColumn(kColStartSeq);
  end_txn_ord = s.FindColumn(kColEndTxn);
  end_seq_ord = s.FindColumn(kColEndSeq);
}

Schema MakeLedgerSchema(const Schema& user_schema, TableKind kind) {
  Schema s = user_schema;
  if (kind == TableKind::kRegular) return s;
  s.AddColumn(kColStartTxn, DataType::kBigInt, /*nullable=*/true, 0,
              /*hidden=*/true);
  s.AddColumn(kColStartSeq, DataType::kBigInt, true, 0, true);
  if (kind == TableKind::kUpdateable) {
    s.AddColumn(kColEndTxn, DataType::kBigInt, true, 0, true);
    s.AddColumn(kColEndSeq, DataType::kBigInt, true, 0, true);
  }
  return s;
}

Schema MakeHistorySchema(const Schema& ledger_schema) {
  Schema s = ledger_schema;
  std::vector<size_t> key;
  int end_txn = s.FindColumn(kColEndTxn);
  int end_seq = s.FindColumn(kColEndSeq);
  // MakeLedgerSchema always adds the end columns for updateable tables, and
  // only updateable tables have histories.
  key.push_back(static_cast<size_t>(end_txn));
  key.push_back(static_cast<size_t>(end_seq));
  s.SetPrimaryKey(std::move(key));
  return s;
}

namespace {
Hash256 VersionLeaf(const LedgerTableRef& t, const Row& row, RowOp op,
                    uint64_t txn_id, uint64_t seq) {
  return RowVersionLeafHash(t.main->schema(), row, op, t.table_id, txn_id,
                            seq);
}
}  // namespace

Status LedgerInsert(Transaction* txn, const LedgerTableRef& t,
                    const Row& user_row) {
  if (!txn->active()) return Status::InvalidArgument("transaction not active");
  auto padded = t.main->schema().PadRow(user_row);
  if (!padded.ok()) return padded.status();
  Row full = std::move(*padded);

  if (t.kind == TableKind::kRegular) {
    KeyTuple key = t.main->KeyOf(full);
    SL_RETURN_IF_ERROR(t.main->Insert(full));
    txn->RecordInsert(t.main, key, full);
    return Status::OK();
  }

  uint64_t seq = txn->NextSequence();
  full[t.start_txn_ord] = Value::BigInt(static_cast<int64_t>(txn->id()));
  full[t.start_seq_ord] = Value::BigInt(static_cast<int64_t>(seq));
  KeyTuple key = t.main->KeyOf(full);
  SL_RETURN_IF_ERROR(t.main->Insert(full));
  txn->RecordInsert(t.main, key, full);
  txn->MerkleForTable(t.table_id)
      ->AddLeafHash(VersionLeaf(t, full, RowOp::kInsert, txn->id(), seq));
  return Status::OK();
}

Status LedgerDelete(Transaction* txn, const LedgerTableRef& t,
                    const KeyTuple& key) {
  if (!txn->active()) return Status::InvalidArgument("transaction not active");
  if (t.kind == TableKind::kAppendOnly)
    return Status::NotSupported(
        "DELETE is not allowed on append-only ledger tables");

  auto current = t.main->GetCopy(key);
  if (!current.has_value()) return Status::NotFound("row not found");

  if (t.kind == TableKind::kRegular) {
    SL_RETURN_IF_ERROR(t.main->Delete(key));
    txn->RecordDelete(t.main, key, *current);
    return Status::OK();
  }

  Row old_row = std::move(*current);
  uint64_t seq = txn->NextSequence();
  Row retired = old_row;
  retired[t.end_txn_ord] = Value::BigInt(static_cast<int64_t>(txn->id()));
  retired[t.end_seq_ord] = Value::BigInt(static_cast<int64_t>(seq));

  SL_RETURN_IF_ERROR(t.main->Delete(key));
  txn->RecordDelete(t.main, key, old_row);

  KeyTuple history_key = t.history->KeyOf(retired);
  SL_RETURN_IF_ERROR(t.history->Insert(retired));
  txn->RecordInsert(t.history, history_key, retired);

  txn->MerkleForTable(t.table_id)
      ->AddLeafHash(VersionLeaf(t, retired, RowOp::kDelete, txn->id(), seq));
  return Status::OK();
}

Status LedgerUpdate(Transaction* txn, const LedgerTableRef& t,
                    const Row& user_row) {
  if (!txn->active()) return Status::InvalidArgument("transaction not active");
  if (t.kind == TableKind::kAppendOnly)
    return Status::NotSupported(
        "UPDATE is not allowed on append-only ledger tables");

  auto padded = t.main->schema().PadRow(user_row);
  if (!padded.ok()) return padded.status();
  Row full = std::move(*padded);
  KeyTuple key = t.main->KeyOf(full);

  auto current = t.main->GetCopy(key);
  if (!current.has_value()) return Status::NotFound("row not found");

  if (t.kind == TableKind::kRegular) {
    SL_RETURN_IF_ERROR(t.main->Update(full));
    txn->RecordUpdate(t.main, key, *current, full);
    return Status::OK();
  }

  Row old_row = std::move(*current);
  // Retire the old version into the history table (delete half of the
  // update, paper §3.2)...
  uint64_t seq_del = txn->NextSequence();
  Row retired = old_row;
  retired[t.end_txn_ord] = Value::BigInt(static_cast<int64_t>(txn->id()));
  retired[t.end_seq_ord] = Value::BigInt(static_cast<int64_t>(seq_del));
  KeyTuple history_key = t.history->KeyOf(retired);
  SL_RETURN_IF_ERROR(t.history->Insert(retired));
  txn->RecordInsert(t.history, history_key, retired);

  // ...then install the new version in the ledger table.
  uint64_t seq_ins = txn->NextSequence();
  full[t.start_txn_ord] = Value::BigInt(static_cast<int64_t>(txn->id()));
  full[t.start_seq_ord] = Value::BigInt(static_cast<int64_t>(seq_ins));
  SL_RETURN_IF_ERROR(t.main->Update(full));
  txn->RecordUpdate(t.main, key, old_row, full);

  MerkleBuilder* merkle = txn->MerkleForTable(t.table_id);
  merkle->AddLeafHash(VersionLeaf(t, retired, RowOp::kDelete, txn->id(),
                                  seq_del));
  merkle->AddLeafHash(VersionLeaf(t, full, RowOp::kInsert, txn->id(),
                                  seq_ins));
  return Status::OK();
}

}  // namespace sqlledger
