#include "ledger/receipt.h"

#include "util/hex.h"
#include "util/json.h"

namespace sqlledger {

std::string TransactionReceipt::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("transaction_id", JsonValue::Int(static_cast<int64_t>(entry.txn_id)));
  doc.Set("block_id", JsonValue::Int(static_cast<int64_t>(entry.block_id)));
  doc.Set("block_ordinal",
          JsonValue::Int(static_cast<int64_t>(entry.block_ordinal)));
  doc.Set("commit_ts", JsonValue::Int(entry.commit_ts_micros));
  doc.Set("user_name", JsonValue::Str(entry.user_name));
  JsonValue roots = JsonValue::Array();
  for (const auto& [table_id, root] : entry.table_roots) {
    JsonValue r = JsonValue::Object();
    r.Set("table_id", JsonValue::Int(table_id));
    r.Set("root", JsonValue::Str(root.ToHex()));
    roots.Append(std::move(r));
  }
  doc.Set("table_roots", std::move(roots));

  JsonValue steps = JsonValue::Array();
  for (const MerkleProofStep& step : proof.steps) {
    JsonValue s = JsonValue::Object();
    s.Set("sibling", JsonValue::Str(step.sibling.ToHex()));
    s.Set("left", JsonValue::Bool(step.sibling_is_left));
    steps.Append(std::move(s));
  }
  JsonValue p = JsonValue::Object();
  p.Set("leaf_index", JsonValue::Int(static_cast<int64_t>(proof.leaf_index)));
  p.Set("leaf_count", JsonValue::Int(static_cast<int64_t>(proof.leaf_count)));
  p.Set("steps", std::move(steps));
  doc.Set("proof", std::move(p));

  doc.Set("transactions_root", JsonValue::Str(transactions_root.ToHex()));
  doc.Set("key_id", JsonValue::Str(key_id));
  doc.Set("signature", JsonValue::Str(HexEncode(Slice(signature))));
  return doc.Dump();
}

Result<TransactionReceipt> TransactionReceipt::FromJson(
    const std::string& json) {
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = *parsed;
  if (!doc.is_object())
    return Status::InvalidArgument("receipt JSON is not an object");

  TransactionReceipt r;
  auto txn_id = doc.GetInt("transaction_id");
  if (!txn_id.ok()) return txn_id.status();
  r.entry.txn_id = static_cast<uint64_t>(*txn_id);
  auto block_id = doc.GetInt("block_id");
  if (!block_id.ok()) return block_id.status();
  r.entry.block_id = static_cast<uint64_t>(*block_id);
  auto ordinal = doc.GetInt("block_ordinal");
  if (!ordinal.ok()) return ordinal.status();
  r.entry.block_ordinal = static_cast<uint64_t>(*ordinal);
  auto ts = doc.GetInt("commit_ts");
  if (!ts.ok()) return ts.status();
  r.entry.commit_ts_micros = *ts;
  auto user = doc.GetString("user_name");
  if (!user.ok()) return user.status();
  r.entry.user_name = *user;

  const JsonValue& roots = doc.Get("table_roots");
  if (!roots.is_array())
    return Status::InvalidArgument("receipt missing table_roots");
  for (size_t i = 0; i < roots.size(); i++) {
    auto table_id = roots[i].GetInt("table_id");
    if (!table_id.ok()) return table_id.status();
    auto root_hex = roots[i].GetString("root");
    if (!root_hex.ok()) return root_hex.status();
    Hash256 root;
    if (!Hash256::FromHex(*root_hex, &root))
      return Status::InvalidArgument("malformed root hash in receipt");
    r.entry.table_roots.emplace_back(static_cast<uint32_t>(*table_id), root);
  }

  const JsonValue& p = doc.Get("proof");
  if (!p.is_object()) return Status::InvalidArgument("receipt missing proof");
  auto leaf_index = p.GetInt("leaf_index");
  if (!leaf_index.ok()) return leaf_index.status();
  r.proof.leaf_index = static_cast<uint64_t>(*leaf_index);
  auto leaf_count = p.GetInt("leaf_count");
  if (!leaf_count.ok()) return leaf_count.status();
  r.proof.leaf_count = static_cast<uint64_t>(*leaf_count);
  const JsonValue& steps = p.Get("steps");
  if (!steps.is_array())
    return Status::InvalidArgument("receipt proof missing steps");
  for (size_t i = 0; i < steps.size(); i++) {
    auto sibling_hex = steps[i].GetString("sibling");
    if (!sibling_hex.ok()) return sibling_hex.status();
    MerkleProofStep step;
    if (!Hash256::FromHex(*sibling_hex, &step.sibling))
      return Status::InvalidArgument("malformed sibling hash in receipt");
    step.sibling_is_left = steps[i].Get("left").bool_value();
    r.proof.steps.push_back(step);
  }

  auto root_hex = doc.GetString("transactions_root");
  if (!root_hex.ok()) return root_hex.status();
  if (!Hash256::FromHex(*root_hex, &r.transactions_root))
    return Status::InvalidArgument("malformed transactions_root in receipt");
  auto key_id = doc.GetString("key_id");
  if (!key_id.ok()) return key_id.status();
  r.key_id = *key_id;
  auto sig_hex = doc.GetString("signature");
  if (!sig_hex.ok()) return sig_hex.status();
  auto sig = HexDecode(*sig_hex);
  if (!sig.ok()) return sig.status();
  r.signature = std::move(*sig);
  return r;
}

Result<TransactionReceipt> MakeTransactionReceipt(LedgerDatabase* db,
                                                  uint64_t txn_id) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");
  auto entry = ledger->FindEntry(txn_id);
  if (!entry.ok()) return entry.status();
  auto proof = ledger->ProveTransaction(txn_id);
  if (!proof.ok()) return proof.status();
  auto block = ledger->FindBlock(entry->block_id);
  if (!block.ok()) return block.status();

  TransactionReceipt receipt;
  receipt.entry = std::move(*entry);
  receipt.proof = std::move(*proof);
  receipt.transactions_root = block->transactions_root;
  receipt.key_id = db->signer().KeyId();
  receipt.signature = db->signer().Sign(receipt.transactions_root);
  return receipt;
}

bool VerifyTransactionReceipt(const TransactionReceipt& receipt,
                              const Signer& signer) {
  if (!signer.Verify(receipt.transactions_root, Slice(receipt.signature)))
    return false;
  if (receipt.proof.leaf_index != receipt.entry.block_ordinal) return false;
  return MerkleTree::VerifyProof(receipt.entry.LeafHash(), receipt.proof,
                                 receipt.transactions_root);
}

}  // namespace sqlledger
