#include "ledger/digest_store.h"

#include <algorithm>
#include <cstdio>

#include "ledger/digest_pipeline.h"
#include "util/coding.h"
#include "util/hex.h"
#include "util/json.h"

namespace sqlledger {

namespace {

/// Implements the DigestStore::Upload idempotency contract against the
/// digests already stored for the incarnation: OK (skip the store) for a
/// byte-identical retry, IntegrityViolation for a fork (same block of the
/// same database+incarnation, different hash), nullopt-style fallthrough
/// (kNotFound) when the digest is genuinely new and should be stored.
Status CheckDuplicateUpload(const std::vector<DatabaseDigest>& existing,
                            const DatabaseDigest& digest) {
  for (const DatabaseDigest& d : existing) {
    if (d == digest)
      return Status::OK();  // idempotent retry / duplicate delivery
    if (d.database_id == digest.database_id &&
        d.database_create_time == digest.database_create_time &&
        d.block_id == digest.block_id &&
        !ConstantTimeEqual(d.block_hash, digest.block_hash))
      return Status::IntegrityViolation(
          "fork detected at upload: block " + std::to_string(digest.block_id) +
          " of incarnation '" + digest.database_create_time +
          "' is already stored with a different hash");
  }
  return Status::NotFound("new digest");
}

/// Wraps a digest document in a CRC-carrying envelope so blob corruption is
/// detected at read time rather than trusted.
std::string EncodeBlobEnvelope(const std::string& digest_json) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32c(Slice(digest_json)));
  JsonValue doc = JsonValue::Object();
  doc.Set("crc32c", JsonValue::Str(crc_hex));
  doc.Set("payload", JsonValue::Str(digest_json));
  return doc.Dump();
}

Result<DatabaseDigest> DecodeBlobEnvelope(const std::string& blob,
                                          const std::string& path) {
  auto corrupt = [&path](const std::string& why) {
    return Status::Corruption("digest blob " + path + " is corrupt: " + why);
  };
  auto parsed = JsonValue::Parse(blob);
  if (!parsed.ok()) return corrupt(parsed.status().message());
  auto crc_hex = parsed->GetString("crc32c");
  if (!crc_hex.ok()) return corrupt("missing crc32c field");
  auto payload = parsed->GetString("payload");
  if (!payload.ok()) return corrupt("missing payload field");
  char expect_hex[16];
  std::snprintf(expect_hex, sizeof(expect_hex), "%08x",
                Crc32c(Slice(*payload)));
  if (*crc_hex != expect_hex) return corrupt("CRC mismatch");
  auto digest = DatabaseDigest::FromJson(*payload);
  if (!digest.ok()) return corrupt(digest.status().message());
  return digest;
}

}  // namespace

Status InMemoryDigestStore::Upload(const DatabaseDigest& digest) {
  MutexLock lock(&mu_);
  std::vector<DatabaseDigest>& digests =
      by_incarnation_[digest.database_create_time];
  Status dup = CheckDuplicateUpload(digests, digest);
  if (!dup.IsNotFound()) return dup;
  digests.push_back(digest);
  return Status::OK();
}

Result<std::vector<DatabaseDigest>> InMemoryDigestStore::ListAll() const {
  MutexLock lock(&mu_);
  std::vector<DatabaseDigest> out;
  for (const auto& [incarnation, digests] : by_incarnation_)
    out.insert(out.end(), digests.begin(), digests.end());
  return out;
}

Result<DatabaseDigest> InMemoryDigestStore::Latest(
    const std::string& create_time) const {
  MutexLock lock(&mu_);
  const DatabaseDigest* best = nullptr;
  for (const auto& [incarnation, digests] : by_incarnation_) {
    if (!create_time.empty() && incarnation != create_time) continue;
    for (const DatabaseDigest& d : digests) {
      if (best == nullptr || d.generated_at_micros > best->generated_at_micros)
        best = &d;
    }
  }
  if (best == nullptr) return Status::NotFound("digest store is empty");
  return *best;
}

Result<std::unique_ptr<ImmutableBlobDigestStore>> ImmutableBlobDigestStore::Open(
    const std::string& root_dir, Env* env) {
  if (env == nullptr) env = Env::Default();
  Status st = env->CreateDirs(root_dir);
  if (!st.ok())
    return Status::IOError("cannot create digest store root: " + st.message());
  return std::unique_ptr<ImmutableBlobDigestStore>(
      new ImmutableBlobDigestStore(root_dir, env));
}

Status ImmutableBlobDigestStore::Upload(const DatabaseDigest& digest) {
  std::string incarnation =
      digest.database_create_time.empty() ? "default"
                                          : digest.database_create_time;
  std::string dir = root_dir_ + "/" + incarnation;
  Status st = env_->CreateDirs(dir);
  if (!st.ok())
    return Status::IOError("cannot create incarnation dir: " + st.message());

  // Idempotency pass over the incarnation's stored blobs: a retried upload
  // of identical content (ambiguous first attempt, duplicate delivery)
  // returns OK without a second blob, while divergent content for an
  // already-stored block is a fork. O(blobs) reads per upload is fine at
  // digest cadence; a real blob service answers this with a content ETag.
  {
    std::vector<DatabaseDigest> existing;
    auto blobs = env_->GetChildren(dir);
    if (blobs.ok()) {
      for (const std::string& blob_name : *blobs) {
        std::string path = dir + "/" + blob_name;
        auto bytes = env_->ReadFile(path);
        if (!bytes.ok())
          return Status::IOError("cannot read digest blob " + path + ": " +
                                 bytes.status().message());
        auto stored = DecodeBlobEnvelope(
            std::string(bytes->begin(), bytes->end()), path);
        if (!stored.ok()) return stored.status();
        existing.push_back(std::move(*stored));
      }
    }
    Status dup = CheckDuplicateUpload(existing, digest);
    if (!dup.IsNotFound()) return dup;
  }

  // Sequence number = number of existing blobs. The exclusive create is
  // the write-once enforcement: an existing blob is NEVER opened for
  // writing, and a name collision (concurrent uploader) moves on to the
  // next sequence number instead of overwriting.
  std::string blob = EncodeBlobEnvelope(digest.ToJson());
  auto children = env_->GetChildren(dir);
  size_t seq = children.ok() ? children->size() : 0;
  for (int attempt = 0; attempt < 1000; attempt++, seq++) {
    char name[32];
    std::snprintf(name, sizeof(name), "digest-%08zu.json", seq);
    std::string path = dir + "/" + name;
    auto file = env_->NewWritableFile(
        path, WritableFileOptions{.truncate = false, .exclusive = true});
    if (!file.ok()) {
      if (file.status().code() == StatusCode::kAlreadyExists) continue;
      return Status::IOError("cannot create digest blob " + path + ": " +
                             file.status().message());
    }
    st = (*file)->Append(Slice(blob));
    // Digests are the trusted side of verification; an upload must not be
    // reported successful until the blob (and its directory entry) would
    // survive a crash of the storage host.
    if (st.ok()) st = (*file)->Sync();
    Status close_st = (*file)->Close();
    if (st.ok()) st = close_st;
    if (!st.ok()) {
      (void)env_->RemoveFile(path);  // best-effort cleanup
      return Status::IOError("failed writing digest blob " + path + ": " +
                             st.message());
    }
    SL_RETURN_IF_ERROR(env_->SyncDir(dir));
    // Emulate the storage service's immutability policy: strip write
    // permission from the stored blob. Advisory — the digest is durable
    // either way.
    (void)env_->MakeReadOnly(path);
    return Status::OK();
  }
  return Status::Busy("could not allocate a digest blob name");
}

Result<std::vector<DatabaseDigest>> ImmutableBlobDigestStore::ListAll() const {
  std::vector<DatabaseDigest> out;
  auto incarnations = env_->GetChildren(root_dir_);
  if (!incarnations.ok()) {
    if (incarnations.status().IsNotFound()) return out;
    return incarnations.status();
  }
  std::vector<std::string> files;
  for (const std::string& incarnation : *incarnations) {
    std::string dir = root_dir_ + "/" + incarnation;
    if (!env_->IsDirectory(dir)) continue;
    auto blobs = env_->GetChildren(dir);
    if (!blobs.ok()) return blobs.status();
    for (const std::string& blob : *blobs) files.push_back(dir + "/" + blob);
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    auto bytes = env_->ReadFile(path);
    if (!bytes.ok())
      return Status::IOError("cannot read digest blob " + path + ": " +
                             bytes.status().message());
    auto digest = DecodeBlobEnvelope(
        std::string(bytes->begin(), bytes->end()), path);
    if (!digest.ok()) return digest.status();
    out.push_back(std::move(*digest));
  }
  return out;
}

Result<DatabaseDigest> ImmutableBlobDigestStore::Latest(
    const std::string& create_time) const {
  auto all = ListAll();
  if (!all.ok()) return all.status();
  const DatabaseDigest* best = nullptr;
  for (const DatabaseDigest& d : *all) {
    if (!create_time.empty() && d.database_create_time != create_time)
      continue;
    if (best == nullptr || d.generated_at_micros > best->generated_at_micros)
      best = &d;
  }
  if (best == nullptr) return Status::NotFound("digest store is empty");
  return *best;
}

Result<VerificationReport> VerifyLedgerAgainstStore(
    LedgerDatabase* db, const DigestStore& store,
    const VerificationOptions& options, bool incremental) {
  auto all = store.ListAll();
  if (!all.ok()) return all.status();
  uint64_t open_block = db->database_ledger()->open_block_id();
  std::vector<DatabaseDigest> relevant;
  for (DatabaseDigest& digest : *all) {
    if (digest.database_id != db->options().database_id) continue;
    // Digests from OTHER incarnations cover the shared block prefix only:
    // a restored sibling keeps appending its own blocks, which this
    // incarnation legitimately never has (paper §3.6). Digests of THIS
    // incarnation are never dropped — a reference to a missing block then
    // means a rollback attack and must be flagged.
    if (digest.database_create_time != db->create_time() &&
        digest.block_id >= open_block)
      continue;
    relevant.push_back(std::move(digest));
  }
  if (incremental) return VerifyLedgerIncremental(db, relevant, options);
  return VerifyLedger(db, relevant, options);
}

std::string SignedDigest::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("digest", JsonValue::Str(digest.ToJson()));
  doc.Set("key_id", JsonValue::Str(key_id));
  doc.Set("signature", JsonValue::Str(HexEncode(Slice(signature))));
  return doc.Dump();
}

Result<SignedDigest> SignedDigest::FromJson(const std::string& json) {
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  SignedDigest out;
  auto digest_json = parsed->GetString("digest");
  if (!digest_json.ok()) return digest_json.status();
  auto digest = DatabaseDigest::FromJson(*digest_json);
  if (!digest.ok()) return digest.status();
  out.digest = *digest;
  auto key_id = parsed->GetString("key_id");
  if (!key_id.ok()) return key_id.status();
  out.key_id = *key_id;
  auto sig_hex = parsed->GetString("signature");
  if (!sig_hex.ok()) return sig_hex.status();
  auto sig = HexDecode(*sig_hex);
  if (!sig.ok()) return sig.status();
  out.signature = std::move(*sig);
  return out;
}

SignedDigest SignDigest(const DatabaseDigest& digest, const Signer& signer) {
  SignedDigest out;
  out.digest = digest;
  out.key_id = signer.KeyId();
  out.signature = signer.Sign(Sha256::Digest(Slice(digest.ToJson())));
  return out;
}

bool VerifySignedDigest(const SignedDigest& signed_digest,
                        const Signer& signer) {
  return signer.Verify(
      Sha256::Digest(Slice(signed_digest.digest.ToJson())),
      Slice(signed_digest.signature));
}

PeriodicDigestUploader::PeriodicDigestUploader(
    LedgerDatabase* db, DigestStore* store, std::chrono::milliseconds interval)
    : db_(db), store_(store), interval_(interval) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicDigestUploader::~PeriodicDigestUploader() { Stop(); }

void PeriodicDigestUploader::Stop() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.SignalAll();
  if (thread_.joinable()) thread_.join();
}

Status PeriodicDigestUploader::last_error() const {
  MutexLock lock(&mu_);
  return error_;
}

void PeriodicDigestUploader::Loop() {
  mu_.Lock();
  while (!stop_) {
    // Sleep out the interval, waking early only for Stop. A timeout with
    // stop_ still false means the interval elapsed: time to upload.
    auto deadline = std::chrono::steady_clock::now() + interval_;
    while (!stop_) {
      if (!cv_.WaitUntil(&mu_, deadline)) break;
    }
    if (stop_) break;
    mu_.Unlock();
    auto uploaded = GenerateAndUploadDigest(db_, store_);
    mu_.Lock();
    if (!uploaded.ok()) {
      error_ = uploaded.status();
      // Only fatal errors (fork detected, corruption) latch and stop the
      // cadence — the paper's alert-and-stop behaviour. A transient store
      // failure (timeout, outage) must NOT end digest protection: record
      // it and keep trying on the next tick.
      if (ClassifyDigestUploadError(uploaded.status()) ==
          DigestErrorClass::kFatal)
        break;
      continue;
    }
    error_ = Status::OK();
    uploads_++;
  }
  mu_.Unlock();
}

Result<DatabaseDigest> GenerateAndUploadDigest(LedgerDatabase* db,
                                               DigestStore* store) {
  auto digest = db->GenerateDigest();
  if (!digest.ok()) return digest;

  auto previous = store->Latest(db->create_time());
  if (previous.ok()) {
    auto derivable =
        db->database_ledger()->VerifyDigestChain(*previous, *digest);
    if (!derivable.ok()) return derivable.status();
    if (!*derivable)
      return Status::IntegrityViolation(
          "fork detected: the new digest is not derivable from the "
          "previously uploaded digest (block " +
          std::to_string(previous->block_id) + ")");
  } else if (previous.status().code() != StatusCode::kNotFound) {
    return previous.status();
  }

  SL_RETURN_IF_ERROR(store->Upload(*digest));
  return digest;
}

}  // namespace sqlledger
