#include "ledger/digest_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/hex.h"
#include "util/json.h"

namespace sqlledger {

Status InMemoryDigestStore::Upload(const DatabaseDigest& digest) {
  by_incarnation_[digest.database_create_time].push_back(digest);
  return Status::OK();
}

Result<std::vector<DatabaseDigest>> InMemoryDigestStore::ListAll() const {
  std::vector<DatabaseDigest> out;
  for (const auto& [incarnation, digests] : by_incarnation_)
    out.insert(out.end(), digests.begin(), digests.end());
  return out;
}

Result<DatabaseDigest> InMemoryDigestStore::Latest(
    const std::string& create_time) const {
  const DatabaseDigest* best = nullptr;
  for (const auto& [incarnation, digests] : by_incarnation_) {
    if (!create_time.empty() && incarnation != create_time) continue;
    for (const DatabaseDigest& d : digests) {
      if (best == nullptr || d.generated_at_micros > best->generated_at_micros)
        best = &d;
    }
  }
  if (best == nullptr) return Status::NotFound("digest store is empty");
  return *best;
}

Result<std::unique_ptr<ImmutableBlobDigestStore>> ImmutableBlobDigestStore::Open(
    const std::string& root_dir) {
  std::error_code ec;
  std::filesystem::create_directories(root_dir, ec);
  if (ec)
    return Status::IOError("cannot create digest store root: " + ec.message());
  return std::unique_ptr<ImmutableBlobDigestStore>(
      new ImmutableBlobDigestStore(root_dir));
}

Status ImmutableBlobDigestStore::Upload(const DatabaseDigest& digest) {
  std::string incarnation =
      digest.database_create_time.empty() ? "default"
                                          : digest.database_create_time;
  std::string dir = root_dir_ + "/" + incarnation;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return Status::IOError("cannot create incarnation dir: " + ec.message());

  // Sequence number = number of existing blobs; retry on collision so
  // concurrent uploaders never overwrite (write-once contract).
  for (int attempt = 0; attempt < 1000; attempt++) {
    size_t seq = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator(dir))
      seq++;
    char name[32];
    std::snprintf(name, sizeof(name), "digest-%08zu.json", seq + attempt);
    std::string path = dir + "/" + name;
    if (std::filesystem::exists(path)) continue;
    std::ofstream out(path, std::ios::out);
    if (!out) return Status::IOError("cannot create digest blob: " + path);
    out << digest.ToJson();
    out.close();
    if (!out) return Status::IOError("failed writing digest blob: " + path);
    // Emulate the storage service's immutability policy: strip write
    // permission from the stored blob.
    std::filesystem::permissions(path,
                                 std::filesystem::perms::owner_read |
                                     std::filesystem::perms::group_read |
                                     std::filesystem::perms::others_read,
                                 ec);
    return Status::OK();
  }
  return Status::Busy("could not allocate a digest blob name");
}

Result<std::vector<DatabaseDigest>> ImmutableBlobDigestStore::ListAll() const {
  std::vector<DatabaseDigest> out;
  if (!std::filesystem::exists(root_dir_)) return out;
  std::vector<std::string> files;
  for (const auto& incarnation :
       std::filesystem::directory_iterator(root_dir_)) {
    if (!incarnation.is_directory()) continue;
    for (const auto& blob :
         std::filesystem::directory_iterator(incarnation.path()))
      files.push_back(blob.path().string());
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot read digest blob: " + path);
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto digest = DatabaseDigest::FromJson(json);
    if (!digest.ok())
      return Status::Corruption("malformed digest blob " + path + ": " +
                                digest.status().ToString());
    out.push_back(std::move(*digest));
  }
  return out;
}

Result<DatabaseDigest> ImmutableBlobDigestStore::Latest(
    const std::string& create_time) const {
  auto all = ListAll();
  if (!all.ok()) return all.status();
  const DatabaseDigest* best = nullptr;
  for (const DatabaseDigest& d : *all) {
    if (!create_time.empty() && d.database_create_time != create_time)
      continue;
    if (best == nullptr || d.generated_at_micros > best->generated_at_micros)
      best = &d;
  }
  if (best == nullptr) return Status::NotFound("digest store is empty");
  return *best;
}

Result<VerificationReport> VerifyLedgerAgainstStore(
    LedgerDatabase* db, const DigestStore& store,
    const VerificationOptions& options) {
  auto all = store.ListAll();
  if (!all.ok()) return all.status();
  uint64_t open_block = db->database_ledger()->open_block_id();
  std::vector<DatabaseDigest> relevant;
  for (DatabaseDigest& digest : *all) {
    if (digest.database_id != db->options().database_id) continue;
    // Digests from OTHER incarnations cover the shared block prefix only:
    // a restored sibling keeps appending its own blocks, which this
    // incarnation legitimately never has (paper §3.6). Digests of THIS
    // incarnation are never dropped — a reference to a missing block then
    // means a rollback attack and must be flagged.
    if (digest.database_create_time != db->create_time() &&
        digest.block_id >= open_block)
      continue;
    relevant.push_back(std::move(digest));
  }
  return VerifyLedger(db, relevant, options);
}

std::string SignedDigest::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("digest", JsonValue::Str(digest.ToJson()));
  doc.Set("key_id", JsonValue::Str(key_id));
  doc.Set("signature", JsonValue::Str(HexEncode(Slice(signature))));
  return doc.Dump();
}

Result<SignedDigest> SignedDigest::FromJson(const std::string& json) {
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  SignedDigest out;
  auto digest_json = parsed->GetString("digest");
  if (!digest_json.ok()) return digest_json.status();
  auto digest = DatabaseDigest::FromJson(*digest_json);
  if (!digest.ok()) return digest.status();
  out.digest = *digest;
  auto key_id = parsed->GetString("key_id");
  if (!key_id.ok()) return key_id.status();
  out.key_id = *key_id;
  auto sig_hex = parsed->GetString("signature");
  if (!sig_hex.ok()) return sig_hex.status();
  auto sig = HexDecode(*sig_hex);
  if (!sig.ok()) return sig.status();
  out.signature = std::move(*sig);
  return out;
}

SignedDigest SignDigest(const DatabaseDigest& digest, const Signer& signer) {
  SignedDigest out;
  out.digest = digest;
  out.key_id = signer.KeyId();
  out.signature = signer.Sign(Sha256::Digest(Slice(digest.ToJson())));
  return out;
}

bool VerifySignedDigest(const SignedDigest& signed_digest,
                        const Signer& signer) {
  return signer.Verify(
      Sha256::Digest(Slice(signed_digest.digest.ToJson())),
      Slice(signed_digest.signature));
}

PeriodicDigestUploader::PeriodicDigestUploader(
    LedgerDatabase* db, DigestStore* store, std::chrono::milliseconds interval)
    : db_(db), store_(store), interval_(interval) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicDigestUploader::~PeriodicDigestUploader() { Stop(); }

void PeriodicDigestUploader::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Status PeriodicDigestUploader::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void PeriodicDigestUploader::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    auto uploaded = GenerateAndUploadDigest(db_, store_);
    lock.lock();
    if (!uploaded.ok()) {
      // A fork detection (or storage) failure is a serious event: latch it
      // and stop uploading, mirroring the paper's alert-and-stop behaviour.
      error_ = uploaded.status();
      return;
    }
    uploads_++;
  }
}

Result<DatabaseDigest> GenerateAndUploadDigest(LedgerDatabase* db,
                                               DigestStore* store) {
  auto digest = db->GenerateDigest();
  if (!digest.ok()) return digest;

  auto previous = store->Latest(db->create_time());
  if (previous.ok()) {
    auto derivable =
        db->database_ledger()->VerifyDigestChain(*previous, *digest);
    if (!derivable.ok()) return derivable.status();
    if (!*derivable)
      return Status::IntegrityViolation(
          "fork detected: the new digest is not derivable from the "
          "previously uploaded digest (block " +
          std::to_string(previous->block_id) + ")");
  } else if (previous.status().code() != StatusCode::kNotFound) {
    return previous.status();
  }

  SL_RETURN_IF_ERROR(store->Upload(*digest));
  return digest;
}

}  // namespace sqlledger
