// Geo-replication-aware digest generation (paper §3.6). Replication to
// geographic secondaries is asynchronous, so a digest must never reference
// data that could be lost in a failover: SQL Ledger "will only issue
// Database Digests for data that has been replicated to geographic
// secondaries", and if replication falls far behind it raises an alert and
// eventually stops accepting digest requests.
//
// The replica itself is simulated (a commit-timestamp high-water mark that
// tests/benches advance), but the gating policy — the piece of the paper's
// design — is real and fully exercised.

#ifndef SQLLEDGER_LEDGER_GEO_REPLICATION_H_
#define SQLLEDGER_LEDGER_GEO_REPLICATION_H_

#include <atomic>
#include <cstdint>

#include "ledger/digest.h"
#include "ledger/ledger_database.h"
#include "util/result.h"

namespace sqlledger {

/// A simulated geographic secondary: tracks the commit timestamp through
/// which it has applied the primary's log. Thread-safe.
class SimulatedGeoReplica {
 public:
  /// Marks everything committed at or before `commit_ts_micros` replicated.
  void AdvanceTo(int64_t commit_ts_micros) {
    int64_t current = replicated_through_.load();
    while (commit_ts_micros > current &&
           !replicated_through_.compare_exchange_weak(current,
                                                      commit_ts_micros)) {
    }
  }

  int64_t replicated_through() const { return replicated_through_.load(); }

 private:
  std::atomic<int64_t> replicated_through_{0};
};

struct GeoDigestOptions {
  /// Replication lag (primary last-commit vs replica high-water mark) above
  /// which digest generation is refused with Busy — the paper's "stop
  /// accepting new requests until the secondaries are caught up". The
  /// normal geo delay is below one second.
  int64_t max_lag_micros = 1000000;
  /// Lag above which the returned digest carries an alert flag (the paper's
  /// "trigger an alert") while still being issued.
  int64_t alert_lag_micros = 500000;
};

struct GeoGatedDigest {
  DatabaseDigest digest;
  int64_t lag_micros = 0;
  bool alert = false;  // lag exceeded alert_lag_micros
};

/// Generates a digest only if the replica has caught up to within
/// `options.max_lag_micros` of the primary's last commit. Returns Busy when
/// the replica is too far behind (the digest would reference data that a
/// geo-failover could lose).
Result<GeoGatedDigest> GenerateGeoGatedDigest(LedgerDatabase* db,
                                              const SimulatedGeoReplica& replica,
                                              const GeoDigestOptions& options);

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_GEO_REPLICATION_H_
