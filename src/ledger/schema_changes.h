// Logical schema changes on ledger tables (paper §3.5). The operations are
// member functions of LedgerDatabase (declared in ledger_database.h) and
// implemented here; this header only documents the semantics:
//
//   AddColumn        — nullable only; NULLs are skipped by the canonical
//                      row format, so existing row hashes are unaffected
//                      (§3.5.1).
//   DropColumn       — logical: the column is marked dropped and hidden
//                      from the user schema, its data stays and keeps
//                      verifying (§3.5.2).
//   DropTable        — rename-and-hide: the table (and its history) stays
//                      physically present, verifiable by object id; the
//                      rename is recorded through the ledger metadata
//                      tables (Figure 6).
//   AlterColumnType  — drop + re-add under the original name + transactional
//                      repopulation with cast values (§3.5.3), so every
//                      converted row version is hashed into the ledger.

#ifndef SQLLEDGER_LEDGER_SCHEMA_CHANGES_H_
#define SQLLEDGER_LEDGER_SCHEMA_CHANGES_H_

#include "ledger/ledger_database.h"

#endif  // SQLLEDGER_LEDGER_SCHEMA_CHANGES_H_
