#include "ledger/types.h"

#include <cstring>

#include "crypto/merkle.h"
#include "util/coding.h"

namespace sqlledger {

const char* TableKindName(TableKind kind) {
  switch (kind) {
    case TableKind::kRegular:
      return "REGULAR";
    case TableKind::kAppendOnly:
      return "APPEND_ONLY";
    case TableKind::kUpdateable:
      return "UPDATEABLE";
  }
  return "UNKNOWN";
}

std::vector<uint8_t> TransactionEntry::CanonicalBytes() const {
  std::vector<uint8_t> out;
  PutFixed64(&out, txn_id);
  PutFixed64(&out, block_id);
  PutFixed64(&out, block_ordinal);
  PutFixed64(&out, static_cast<uint64_t>(commit_ts_micros));
  PutLengthPrefixed(&out, Slice(user_name));
  PutVarint32(&out, static_cast<uint32_t>(table_roots.size()));
  for (const auto& [table_id, root] : table_roots) {
    PutFixed32(&out, table_id);
    out.insert(out.end(), root.bytes.begin(), root.bytes.end());
  }
  return out;
}

Hash256 TransactionEntry::LeafHash() const {
  return MerkleLeafHash(Slice(CanonicalBytes()));
}

std::vector<Hash256> TransactionLeafHashes(
    const std::vector<TransactionEntry>& entries) {
  std::vector<uint8_t> arena;
  std::vector<size_t> offsets;
  offsets.reserve(entries.size() + 1);
  for (const TransactionEntry& e : entries) {
    offsets.push_back(arena.size());
    std::vector<uint8_t> bytes = e.CanonicalBytes();
    arena.insert(arena.end(), bytes.begin(), bytes.end());
  }
  offsets.push_back(arena.size());

  std::vector<Slice> inputs(entries.size());
  for (size_t i = 0; i < entries.size(); i++)
    inputs[i] = Slice(arena.data() + offsets[i], offsets[i + 1] - offsets[i]);
  std::vector<Hash256> out(entries.size());
  MerkleLeafHashMany(inputs.data(), inputs.size(), out.data());
  return out;
}

Result<TransactionEntry> TransactionEntry::FromCanonicalBytes(Slice bytes) {
  Decoder dec(bytes);
  TransactionEntry entry;
  auto txn_id = dec.GetFixed64();
  if (!txn_id.ok()) return txn_id.status();
  entry.txn_id = *txn_id;
  auto block_id = dec.GetFixed64();
  if (!block_id.ok()) return block_id.status();
  entry.block_id = *block_id;
  auto ordinal = dec.GetFixed64();
  if (!ordinal.ok()) return ordinal.status();
  entry.block_ordinal = *ordinal;
  auto ts = dec.GetFixed64();
  if (!ts.ok()) return ts.status();
  entry.commit_ts_micros = static_cast<int64_t>(*ts);
  auto user = dec.GetLengthPrefixed();
  if (!user.ok()) return user.status();
  entry.user_name = user->ToString();
  auto num_roots = dec.GetVarint32();
  if (!num_roots.ok()) return num_roots.status();
  for (uint32_t i = 0; i < *num_roots; i++) {
    auto table_id = dec.GetFixed32();
    if (!table_id.ok()) return table_id.status();
    auto hash_bytes = dec.GetBytes(32);
    if (!hash_bytes.ok()) return hash_bytes.status();
    Hash256 root;
    std::memcpy(root.bytes.data(), hash_bytes->data(), 32);
    entry.table_roots.emplace_back(*table_id, root);
  }
  if (!dec.done())
    return Status::Corruption("trailing bytes in transaction entry");
  return entry;
}

void BlockRecord::AppendCanonicalBytes(std::vector<uint8_t>* out) const {
  PutFixed64(out, block_id);
  out->insert(out->end(), previous_block_hash.bytes.begin(),
              previous_block_hash.bytes.end());
  out->insert(out->end(), transactions_root.bytes.begin(),
              transactions_root.bytes.end());
  PutFixed64(out, transaction_count);
  PutFixed64(out, static_cast<uint64_t>(closed_ts_micros));
}

Hash256 BlockRecord::ComputeHash() const {
  std::vector<uint8_t> buf;
  AppendCanonicalBytes(&buf);
  return Sha256::Digest(Slice(buf));
}

}  // namespace sqlledger
