// Database Digests (paper §2.2): a compact JSON document capturing the
// state of all ledger tables at a point in time — the hash of the latest
// closed block plus metadata. Digests are stored *outside* the database
// (digest_store.h) and fed back to the verifier.

#ifndef SQLLEDGER_LEDGER_DIGEST_H_
#define SQLLEDGER_LEDGER_DIGEST_H_

#include <cstdint>
#include <string>

#include "crypto/sha256.h"
#include "util/result.h"

namespace sqlledger {

struct DatabaseDigest {
  /// Logical database identifier.
  std::string database_id;
  /// Incarnation tag: the database "create time". A point-in-time restore
  /// produces a new incarnation; digests across incarnations are all
  /// retained by the digest store (paper §3.6).
  std::string database_create_time;
  /// The latest closed block this digest covers.
  uint64_t block_id = 0;
  /// Hash of that block.
  Hash256 block_hash;
  /// Wall-clock time the digest was generated.
  int64_t generated_at_micros = 0;
  /// Commit timestamp of the last transaction in the covered block.
  int64_t last_commit_ts_micros = 0;

  /// Serialize to the JSON interchange form.
  std::string ToJson() const;
  static Result<DatabaseDigest> FromJson(const std::string& json);

  bool operator==(const DatabaseDigest& o) const {
    return database_id == o.database_id &&
           database_create_time == o.database_create_time &&
           block_id == o.block_id && block_hash == o.block_hash &&
           generated_at_micros == o.generated_at_micros &&
           last_commit_ts_micros == o.last_commit_ts_micros;
  }
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_DIGEST_H_
