// Canonical row-version serialization for ledger hashing (paper §3.2,
// Figure 4). The format deliberately covers column *metadata* — stable
// column ids, type ids and value lengths — so that an attacker who swaps a
// column's declared type (the paper's INT/SMALLINT example) or tampers with
// NULL bookkeeping (§3.5.1) changes the recomputed hash even when the raw
// value bytes are untouched.
//
// NULL values are skipped entirely, which is what makes adding a nullable
// column a metadata-only operation: old rows hash identically before and
// after the schema change. Non-NULL columns carry their explicit column id,
// preventing NULL-map reinterpretation attacks.
//
// Hidden ledger system columns are not serialized as columns; the version's
// identity (transaction id, sequence number) and the operation kind are part
// of the header instead.

#ifndef SQLLEDGER_LEDGER_ROW_SERIALIZER_H_
#define SQLLEDGER_LEDGER_ROW_SERIALIZER_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "crypto/sha256.h"

namespace sqlledger {

/// The operation that produced (or retired) a row version. Part of the
/// hashed header, so an INSERT leaf can never be replayed as a DELETE leaf.
enum class RowOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
};

/// Serializes one row version into the canonical ledger format.
/// `row` is a full physical row matching `schema`; hidden columns are
/// skipped (their information content is the header), dropped columns are
/// serialized when non-NULL so historical versions keep verifying after a
/// logical drop (paper §3.5.2).
std::vector<uint8_t> SerializeRowVersion(const Schema& schema, const Row& row,
                                         RowOp op, uint32_t table_id,
                                         uint64_t txn_id, uint64_t sequence);

/// As SerializeRowVersion, but appends to `out` (batch serialization into a
/// shared arena without per-row allocations).
void AppendRowVersion(const Schema& schema, const Row& row, RowOp op,
                      uint32_t table_id, uint64_t txn_id, uint64_t sequence,
                      std::vector<uint8_t>* out);

/// Merkle leaf hash of the serialized version — what DML appends to the
/// transaction's per-table streaming Merkle tree and what verification
/// recomputes.
Hash256 RowVersionLeafHash(const Schema& schema, const Row& row, RowOp op,
                           uint32_t table_id, uint64_t txn_id,
                           uint64_t sequence);

/// One row version in a batched leaf-hash request. The referenced schema
/// and row must stay alive until the call returns.
struct RowVersionHashJob {
  const Schema* schema = nullptr;
  const Row* row = nullptr;
  RowOp op = RowOp::kInsert;
  uint32_t table_id = 0;
  uint64_t txn_id = 0;
  uint64_t sequence = 0;
};

/// Batched version of RowVersionLeafHash: serializes every job into one
/// arena and hashes through the batched SHA-256 interface. out[i] matches
/// RowVersionLeafHash(jobs[i]...) bit for bit. The verifier's leaf
/// recomputation — the dominant verification cost (paper §4.2) — runs
/// through this.
void RowVersionLeafHashMany(const RowVersionHashJob* jobs, size_t n,
                            Hash256* out);

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_ROW_SERIALIZER_H_
