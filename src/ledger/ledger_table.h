// Ledger-table DML (paper §3.2): every mutation of a ledger table
//   1. stamps the hidden (transaction id, sequence number) system columns,
//   2. preserves retired row versions in the history table, and
//   3. appends the canonical leaf hash of each touched version to the
//      transaction's per-table streaming Merkle tree.
// Regular tables take the plain path — they are the baseline the paper
// compares against in §4.

#ifndef SQLLEDGER_LEDGER_LEDGER_TABLE_H_
#define SQLLEDGER_LEDGER_LEDGER_TABLE_H_

#include "catalog/schema.h"
#include "ledger/types.h"
#include "storage/table_store.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace sqlledger {

/// A resolved reference to one table's physical stores plus the cached
/// ordinals of the hidden system columns.
struct LedgerTableRef {
  uint32_t table_id = 0;
  TableKind kind = TableKind::kRegular;
  TableStore* main = nullptr;
  TableStore* history = nullptr;  // updateable ledger tables only

  int start_txn_ord = -1;
  int start_seq_ord = -1;
  int end_txn_ord = -1;  // -1 for append-only tables
  int end_seq_ord = -1;

  /// Re-derives the hidden-column ordinals from the current schema. Must be
  /// called after any schema change.
  void RefreshOrdinals();
};

/// Builds a ledger table's full schema from the user schema: appends the
/// hidden system columns (paper §3.1). Append-only tables get only the
/// start pair (rows are never retired).
Schema MakeLedgerSchema(const Schema& user_schema, TableKind kind);

/// The mirrored history-table schema: same columns and column ids, keyed by
/// (end transaction id, end sequence number) — unique per retired version.
Schema MakeHistorySchema(const Schema& ledger_schema);

/// Inserts `user_row` (visible columns only, ordinal order).
Status LedgerInsert(Transaction* txn, const LedgerTableRef& table,
                    const Row& user_row);

/// Replaces the row whose primary key matches `user_row`'s key columns.
/// Primary-key columns must be unchanged (delete + insert to move a row).
Status LedgerUpdate(Transaction* txn, const LedgerTableRef& table,
                    const Row& user_row);

/// Deletes the row with the given primary key (user key columns).
Status LedgerDelete(Transaction* txn, const LedgerTableRef& table,
                    const KeyTuple& key);

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_LEDGER_TABLE_H_
