#include "ledger/truncation.h"

#include <set>

#include "ledger/verifier.h"

namespace sqlledger {

Status TruncateLedger(LedgerDatabase* db, uint64_t below_block,
                      const std::vector<DatabaseDigest>& digests) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");
  if (digests.empty())
    return Status::InvalidArgument(
        "truncation requires trusted digests for the pre-truncation "
        "verification");
  if (below_block >= ledger->open_block_id())
    return Status::InvalidArgument("cannot truncate the open block or beyond");

  // 1. Refuse to truncate a database that does not verify (§5.2: "first
  // trigger the verification process to guarantee that any current data is
  // consistent").
  auto report = VerifyLedger(db, digests);
  if (!report.ok()) return report.status();
  if (!report->ok())
    return Status::IntegrityViolation(
        "pre-truncation verification failed: " + report->Summary());

  SL_RETURN_IF_ERROR(ledger->DrainQueue());
  auto range = ledger->CollectTxnsBelow(below_block);
  if (!range.ok()) return range.status();
  if (range->txn_ids.empty()) return Status::OK();  // nothing to truncate
  std::set<uint64_t> truncated(range->txn_ids.begin(), range->txn_ids.end());

  // 2. Dummy-update live rows still anchored in blocks being truncated so
  // their digests move into fresh transactions.
  for (CatalogEntry* entry : db->AllTables()) {
    if (entry->kind == TableKind::kRegular) continue;
    const Schema& schema = entry->main->schema();
    std::vector<size_t> visible = schema.VisibleOrdinals();

    std::vector<Row> anchored;
    for (BTree::Iterator it = entry->main->Scan(); it.Valid(); it.Next()) {
      const Value& start_txn = it.value()[entry->ref.start_txn_ord];
      if (start_txn.is_null()) continue;
      if (truncated.count(static_cast<uint64_t>(start_txn.AsInt64())))
        anchored.push_back(it.value());
    }
    if (anchored.empty()) continue;

    if (entry->kind == TableKind::kAppendOnly) {
      if (entry->is_system) {
        // Prior truncation-audit records cannot be re-homed (append-only);
        // the verifier accepts their dangling references because they fall
        // inside recorded truncation ranges.
        continue;
      }
      return Status::NotSupported(
          "append-only table '" + entry->name + "' still holds rows in the "
          "truncated range; they cannot be dummy-updated");
    }

    auto txn = db->Begin("system:truncation");
    if (!txn.ok()) return txn.status();
    Status st = db->AcquireTableLock(*txn, *entry, LockMode::kExclusive);
    for (const Row& physical : anchored) {
      if (!st.ok()) break;
      Row user_row;
      user_row.reserve(visible.size());
      for (size_t ord : visible) user_row.push_back(physical[ord]);
      st = LedgerUpdate(*txn, entry->ref, user_row);
    }
    if (!st.ok()) {
      db->Abort(*txn);
      return st;
    }
    SL_RETURN_IF_ERROR(db->Commit(*txn));
  }

  // 3. Close the block holding the dummy updates so the re-homed data is
  // immediately digest-coverable.
  SL_RETURN_IF_ERROR(db->GenerateDigest().status());
  SL_RETURN_IF_ERROR(ledger->DrainQueue());

  // 4. Delete history rows retired by truncated transactions (historical
  // data "is easy to truncate because no other data elements reference
  // it"). The physical deletions bypass transactional locking, so the
  // database is quiesced for steps 4-5.
  {
    LedgerDatabase::QuiesceGuard guard(db);
    for (CatalogEntry* entry : db->AllTables()) {
      if (entry->history == nullptr) continue;
      std::vector<KeyTuple> doomed;
      for (BTree::Iterator it = entry->history->Scan(); it.Valid();
           it.Next()) {
        const Value& end_txn = it.value()[entry->ref.end_txn_ord];
        if (end_txn.is_null()) continue;
        if (truncated.count(static_cast<uint64_t>(end_txn.AsInt64())))
          doomed.push_back(it.key());
      }
      for (const KeyTuple& key : doomed)
        SL_RETURN_IF_ERROR(entry->history->Delete(key));
    }

    // 5. Delete the truncated blocks and transaction entries.
    SL_RETURN_IF_ERROR(ledger->TruncateBelow(below_block));
  }

  // 6. Audit the truncation through the ledger itself.
  TruncationRecord record;
  record.truncated_below_block = below_block;
  record.min_txn_id = range->min_txn_id;
  record.max_txn_id = range->max_txn_id;
  SL_RETURN_IF_ERROR(db->RecordTruncation(record));

  // 7. Invalidate the incremental-verification watermark: truncation
  // changed which transaction references are exempt and may have removed
  // the watermark block itself. (The verifier's re-anchor checks would
  // also catch a stale watermark; clearing keeps the next incremental run
  // from paying a guaranteed fallback.)
  db->ClearVerificationState();

  return db->Checkpoint();
}

}  // namespace sqlledger
