#include "ledger/ledger_database.h"

#include <algorithm>
#include <chrono>

#include "catalog/row.h"
#include "storage/checkpoint.h"
#include "util/coding.h"

namespace sqlledger {

namespace {
// WAL record kinds (first payload byte).
constexpr uint8_t kWalKindCommit = 1;
constexpr uint8_t kWalKindBlockClose = 2;

int64_t SystemClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Schema MakeSysTablesSchema() {
  Schema s;
  s.AddColumn("table_name", DataType::kVarchar, /*nullable=*/false);
  s.AddColumn("table_id", DataType::kBigInt, false);
  s.AddColumn("kind", DataType::kVarchar, false);
  s.SetPrimaryKey({1});
  return s;
}

Schema MakeSysColumnsSchema() {
  Schema s;
  s.AddColumn("table_id", DataType::kBigInt, false);
  s.AddColumn("column_id", DataType::kBigInt, false);
  s.AddColumn("column_name", DataType::kVarchar, false);
  s.AddColumn("data_type", DataType::kVarchar, false);
  s.SetPrimaryKey({0, 1});
  return s;
}

Schema MakeSysTruncationsSchema() {
  Schema s;
  s.AddColumn("truncated_below_block", DataType::kBigInt, false);
  s.AddColumn("min_txn_id", DataType::kBigInt, false);
  s.AddColumn("max_txn_id", DataType::kBigInt, false);
  s.AddColumn("truncated_at", DataType::kTimestamp, false);
  s.SetPrimaryKey({0});
  return s;
}
}  // namespace

LedgerDatabase::LedgerDatabase(LedgerDatabaseOptions options)
    : options_(std::move(options)),
      locks_(options_.lock_timeout),
      signer_(options_.signing_key_id, options_.signing_key) {
  if (!options_.clock) options_.clock = SystemClockMicros;
  env_ = options_.env != nullptr ? options_.env : Env::Default();

  // Observability (DESIGN.md §13): one registry + trace ring per database.
  // Every metric the database itself records is resolved here, once;
  // subsystems with their own instrumentation (WAL, lock manager, digest
  // pipeline, verifier) resolve theirs from metrics() at their own setup.
  metrics_ = std::make_unique<MetricRegistry>(options_.metrics_clock);
  tracer_ = std::make_unique<Tracer>(metrics_.get(), options_.trace_capacity);
  m_commit_txns_ = metrics_->GetCounter("commit.txns_total");
  m_commit_aborts_ = metrics_->GetCounter("commit.aborts_total");
  m_commit_groups_ = metrics_->GetCounter("commit.groups_total");
  m_commit_group_txns_ = metrics_->GetCounter("commit.group_txns_total");
  m_commit_group_size_ = metrics_->GetHistogram("commit.group_size");
  m_commit_wait_ = metrics_->GetHistogram("commit.wait_micros");
  m_checkpoint_micros_ = metrics_->GetHistogram("checkpoint.duration_micros");
  m_checkpoint_runs_ = metrics_->GetCounter("checkpoint.runs_total");
  m_recovery_micros_ = metrics_->GetHistogram("recovery.duration_micros");
  m_recovery_runs_ = metrics_->GetCounter("recovery.runs_total");
  m_verify_incremental_runs_ = metrics_->GetCounter("verify.incremental_total");
  m_verify_fallbacks_ = metrics_->GetCounter("verify.fallbacks_total");
  m_blocks_reverified_ = metrics_->GetCounter("verify.blocks_reverified_total");
  m_blocks_skipped_ = metrics_->GetCounter("verify.blocks_skipped_total");
  m_row_versions_skipped_ =
      metrics_->GetCounter("verify.row_versions_skipped_total");
  locks_.SetMetrics(metrics_.get());
}

LedgerDatabase::~LedgerDatabase() {
  // The pipeline's cadence thread calls back into this database; stop it
  // before any member it touches is destroyed.
  StopDigestProtection();
}

Result<std::unique_ptr<LedgerDatabase>> LedgerDatabase::Open(
    LedgerDatabaseOptions options) {
  std::unique_ptr<LedgerDatabase> db(new LedgerDatabase(std::move(options)));

  if (db->options_.data_dir.empty()) {
    SL_RETURN_IF_ERROR(db->InitFresh());
    return db;
  }

  Env* env = db->env_;
  Status mkdir_st = env->CreateDirs(db->options_.data_dir);
  if (!mkdir_st.ok())
    return Status::IOError("cannot create data dir: " + mkdir_st.message());
  db->checkpoint_path_ = db->options_.data_dir + "/checkpoint.sldb";
  db->wal_path_ = db->options_.data_dir + "/wal.log";

  WalOptions wal_options;
  wal_options.sync = db->options_.sync_wal;
  wal_options.env = env;

  // A crash between the two checkpoint renames can leave only the ".prev"
  // generation on disk — that is still an existing database, not a fresh one.
  if (env->FileExists(db->checkpoint_path_) ||
      env->FileExists(db->checkpoint_path_ + ".prev")) {
    const int64_t recover_start = db->metrics_->NowMicros();
    SL_RETURN_IF_ERROR(db->Recover());
    db->m_recovery_micros_->Record(static_cast<uint64_t>(
        std::max<int64_t>(0, db->metrics_->NowMicros() - recover_start)));
    db->m_recovery_runs_->Add();
    auto wal = Wal::Open(db->wal_path_, wal_options);
    if (!wal.ok()) return wal.status();
    db->wal_ = std::move(*wal);
    db->wal_->SetMetrics(db->metrics_.get());
    db->wal_enabled_ = true;
  } else {
    SL_RETURN_IF_ERROR(db->InitFresh());
    auto wal = Wal::Open(db->wal_path_, wal_options);
    if (!wal.ok()) return wal.status();
    db->wal_ = std::move(*wal);
    db->wal_->SetMetrics(db->metrics_.get());
    db->wal_enabled_ = true;
    // First checkpoint, so recovery never sees a WAL without a catalog.
    SL_RETURN_IF_ERROR(db->Checkpoint());
  }

  // Load the verifier watermark if a trustworthy one exists. Missing, torn
  // or stale (other database / other incarnation) state is not an error —
  // it only means the next incremental verification starts from scratch.
  db->verification_state_path_ = db->options_.data_dir + "/verify_state.sldb";
  auto vstate = VerificationState::Load(env, db->verification_state_path_);
  if (vstate.ok() && vstate->database_id == db->options_.database_id &&
      vstate->database_create_time == db->create_time_) {
    MutexLock lock(&db->verify_mu_);
    db->verification_state_ = std::move(*vstate);
  }
  return db;
}

Result<std::unique_ptr<LedgerDatabase>> LedgerDatabase::Restore(
    const std::string& source_dir, LedgerDatabaseOptions options) {
  if (options.data_dir.empty())
    return Status::InvalidArgument("Restore requires a target data_dir");
  if (options.data_dir == source_dir)
    return Status::InvalidArgument("restore target must differ from source");
  // All restore I/O goes through Env so FaultInjectionEnv covers the copy:
  // a crash mid-restore must leave either no target or a fully durable one.
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (!env->FileExists(source_dir + "/checkpoint.sldb"))
    return Status::NotFound("no checkpoint in source directory " + source_dir);
  SL_RETURN_IF_ERROR(RemoveDirRecursive(env, options.data_dir));
  SL_RETURN_IF_ERROR(env->CreateDirs(options.data_dir));
  SL_RETURN_IF_ERROR(CopyDirRecursive(env, source_dir, options.data_dir));
  options.force_new_incarnation = true;
  return Open(std::move(options));
}

Status LedgerDatabase::InitFresh() {
  create_time_ = std::to_string(options_.clock());

  ledger_txns_store_ = std::make_unique<TableStore>(
      kLedgerTransactionsTableId, "database_ledger_transactions",
      MakeLedgerTransactionsSchema());
  ledger_blocks_store_ = std::make_unique<TableStore>(
      kLedgerBlocksTableId, "database_ledger_blocks",
      MakeLedgerBlocksSchema());

  if (!options_.enable_ledger) return Status::OK();

  DatabaseLedgerOptions lopts;
  lopts.block_size = options_.block_size;
  lopts.clock = options_.clock;
  ledger_ = std::make_unique<DatabaseLedger>(ledger_txns_store_.get(),
                                             ledger_blocks_store_.get(),
                                             std::move(lopts));

  // Bootstrap the ledger metadata system tables (paper §3.5.2, Figure 6).
  auto make_sys = [&](uint32_t id, uint32_t history_id,
                      const std::string& name, const Schema& user_schema,
                      TableKind kind) {
    auto entry = std::make_unique<CatalogEntry>();
    entry->table_id = id;
    entry->name = name;
    entry->kind = kind;
    entry->is_system = true;
    Schema full = MakeLedgerSchema(user_schema, kind);
    entry->main = std::make_unique<TableStore>(id, name, full);
    if (kind == TableKind::kUpdateable) {
      entry->history = std::make_unique<TableStore>(
          history_id, name + "_history", MakeHistorySchema(full));
    }
    entry->ref.table_id = id;
    entry->ref.kind = kind;
    entry->ref.main = entry->main.get();
    entry->ref.history = entry->history ? entry->history.get() : nullptr;
    entry->ref.RefreshOrdinals();
    // The lock lives inside the lambda (not around the call) because the
    // analysis treats lambda bodies as independent functions.
    WriterMutexLock lock(&catalog_mu_);
    name_index_[name] = id;
    catalog_[id] = std::move(entry);
  };
  make_sys(kSysTablesTableId, kSysTablesHistoryTableId, "sys_ledger_tables",
           MakeSysTablesSchema(), TableKind::kUpdateable);
  make_sys(kSysColumnsTableId, kSysColumnsHistoryTableId,
           "sys_ledger_columns", MakeSysColumnsSchema(),
           TableKind::kUpdateable);
  make_sys(kSysTruncationsTableId, 0, "sys_ledger_truncations",
           MakeSysTruncationsSchema(), TableKind::kAppendOnly);

  // Record the system tables' own metadata through the ledger, so even the
  // bootstrap is auditable.
  auto txn = Begin("system");
  if (!txn.ok()) return txn.status();
  for (uint32_t id :
       {kSysTablesTableId, kSysColumnsTableId, kSysTruncationsTableId}) {
    CatalogEntry* entry = FindTableById(id);
    Status st = RecordTableMetadata(*txn, *entry);
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
  }
  return Commit(*txn);
}

std::vector<uint8_t> LedgerDatabase::EncodeCatalogMeta() const {
  ReaderMutexLock catalog_lock(&catalog_mu_);
  std::vector<uint8_t> out;
  PutLengthPrefixed(&out, Slice(create_time_));
  PutVarint32(&out, next_table_id_);
  {
    MutexLock txn_lock(&txn_mu_);
    PutVarint64(&out, next_txn_id_);
  }
  PutVarint64(&out, m_commit_txns_->value());
  out.push_back(options_.enable_ledger ? 1 : 0);
  PutVarint32(&out, static_cast<uint32_t>(catalog_.size()));
  for (const auto& [id, entry] : catalog_) {
    PutVarint32(&out, entry->table_id);
    PutLengthPrefixed(&out, Slice(entry->name));
    out.push_back(static_cast<uint8_t>(entry->kind));
    out.push_back(entry->dropped ? 1 : 0);
    out.push_back(entry->is_system ? 1 : 0);
    PutVarint32(&out, entry->history ? entry->history->table_id() : 0);
  }
  return out;
}

Status LedgerDatabase::DecodeCatalogMeta(
    Slice meta, std::vector<std::unique_ptr<TableStore>> stores) {
  // Recovery is single-threaded; the locks satisfy the guarded-member
  // contracts rather than excluding real contention.
  WriterMutexLock catalog_lock(&catalog_mu_);
  MutexLock txn_lock(&txn_mu_);
  std::map<uint32_t, std::unique_ptr<TableStore>> by_id;
  for (auto& store : stores) {
    uint32_t id = store->table_id();
    by_id[id] = std::move(store);
  }

  Decoder dec(meta);
  auto create_time = dec.GetLengthPrefixed();
  if (!create_time.ok()) return create_time.status();
  create_time_ = options_.force_new_incarnation
                     ? std::to_string(options_.clock())
                     : create_time->ToString();

  auto next_table = dec.GetVarint32();
  if (!next_table.ok()) return next_table.status();
  next_table_id_ = *next_table;
  auto next_txn = dec.GetVarint64();
  if (!next_txn.ok()) return next_txn.status();
  next_txn_id_ = *next_txn;
  auto committed = dec.GetVarint64();
  if (!committed.ok()) return committed.status();
  // Seed the registry counter with the checkpointed lifetime count.
  // Recovery is single-threaded and the counter starts at zero.
  m_commit_txns_->Add(*committed);
  auto ledger_enabled = dec.GetBytes(1);
  if (!ledger_enabled.ok()) return ledger_enabled.status();
  if (((*ledger_enabled)[0] != 0) != options_.enable_ledger)
    return Status::InvalidArgument(
        "enable_ledger option does not match on-disk database");

  auto take_store = [&by_id](uint32_t id) -> std::unique_ptr<TableStore> {
    auto it = by_id.find(id);
    if (it == by_id.end()) return nullptr;
    auto store = std::move(it->second);
    by_id.erase(it);
    return store;
  };

  ledger_txns_store_ = take_store(kLedgerTransactionsTableId);
  ledger_blocks_store_ = take_store(kLedgerBlocksTableId);
  if (ledger_txns_store_ == nullptr || ledger_blocks_store_ == nullptr)
    return Status::Corruption("checkpoint missing ledger system tables");

  auto num_entries = dec.GetVarint32();
  if (!num_entries.ok()) return num_entries.status();
  for (uint32_t i = 0; i < *num_entries; i++) {
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    auto name = dec.GetLengthPrefixed();
    if (!name.ok()) return name.status();
    auto kind_b = dec.GetBytes(1);
    if (!kind_b.ok()) return kind_b.status();
    auto dropped_b = dec.GetBytes(1);
    if (!dropped_b.ok()) return dropped_b.status();
    auto system_b = dec.GetBytes(1);
    if (!system_b.ok()) return system_b.status();
    auto history_id = dec.GetVarint32();
    if (!history_id.ok()) return history_id.status();

    auto entry = std::make_unique<CatalogEntry>();
    entry->table_id = *table_id;
    entry->name = name->ToString();
    entry->kind = static_cast<TableKind>((*kind_b)[0]);
    entry->dropped = (*dropped_b)[0] != 0;
    entry->is_system = (*system_b)[0] != 0;
    entry->main = take_store(*table_id);
    if (entry->main == nullptr)
      return Status::Corruption("checkpoint missing store for table '" +
                                entry->name + "'");
    if (*history_id != 0) {
      entry->history = take_store(*history_id);
      if (entry->history == nullptr)
        return Status::Corruption("checkpoint missing history store for '" +
                                  entry->name + "'");
    }
    entry->ref.table_id = entry->table_id;
    entry->ref.kind = entry->kind;
    entry->ref.main = entry->main.get();
    entry->ref.history = entry->history ? entry->history.get() : nullptr;
    entry->ref.RefreshOrdinals();
    if (!entry->dropped) name_index_[entry->name] = entry->table_id;
    catalog_[entry->table_id] = std::move(entry);
  }
  if (!dec.done()) return Status::Corruption("trailing bytes in catalog meta");
  return Status::OK();
}

Status LedgerDatabase::Recover() {
  // Load the newest checkpoint; if it is missing or torn (a crash during
  // WriteCheckpoint), fall back to the retained previous generation. The
  // fallback additionally replays the rotated WAL ("wal.log.prev", which
  // spans previous-checkpoint -> newest-checkpoint), so either path
  // reconstructs the same state — replay is idempotent.
  bool used_fallback = false;
  auto checkpoint = ReadCheckpoint(checkpoint_path_, env_);
  if (!checkpoint.ok()) {
    if (checkpoint.status().IsNotFound() ||
        checkpoint.status().code() == StatusCode::kCorruption) {
      checkpoint = ReadCheckpoint(checkpoint_path_ + ".prev", env_);
      if (!checkpoint.ok())
        return Status::Corruption(
            "cannot load checkpoint (newest is missing/torn and no usable "
            "previous generation): " +
            checkpoint.status().message());
      used_fallback = true;
    } else {
      return checkpoint.status();
    }
  }
  SL_RETURN_IF_ERROR(DecodeCatalogMeta(Slice(checkpoint->meta),
                                       std::move(checkpoint->tables)));
  if (options_.enable_ledger) {
    DatabaseLedgerOptions lopts;
    lopts.block_size = options_.block_size;
    lopts.clock = options_.clock;
    ledger_ = std::make_unique<DatabaseLedger>(ledger_txns_store_.get(),
                                               ledger_blocks_store_.get(),
                                               std::move(lopts));
    SL_RETURN_IF_ERROR(ledger_->LoadFromTables());
  }
  // Replay the WAL tail: redo row operations idempotently and rebuild the
  // Database Ledger's in-memory queue from the commit records (the Analysis
  // phase of paper §3.3.2).
  if (used_fallback) {
    auto prev = Wal::Replay(
        wal_path_ + ".prev",
        [this](Slice payload) { return ReplayWalRecord(payload); }, env_);
    if (!prev.ok()) return prev.status();
  }
  uint64_t valid_bytes = 0;
  auto replayed = Wal::Replay(
      wal_path_,
      [this, &valid_bytes](Slice payload) {
        SL_RETURN_IF_ERROR(ReplayWalRecord(payload));
        valid_bytes += 8 + payload.size();  // frame header + payload
        return Status::OK();
      },
      env_);
  if (!replayed.ok()) return replayed.status();
  // Chop off any torn tail NOW: the WAL is reopened for append, and a
  // record written after un-replayable garbage would be unreachable to
  // every future replay (it sits past the point where replay stops).
  auto wal_size = env_->GetFileSize(wal_path_);
  if (wal_size.ok() && *wal_size > valid_bytes)
    SL_RETURN_IF_ERROR(env_->TruncateFile(wal_path_, valid_bytes));
  if (options_.enable_ledger) ReconcileDdlCounters();
  return Status::OK();
}

// A DDL's metadata transaction is WAL-durable at commit, but the structural
// change it describes only becomes durable with the trailing checkpoint. A
// crash during that checkpoint therefore recovers the old catalog (and old
// id allocators) while WAL replay re-applies the sys_ledger_* rows — leaving
// orphaned metadata rows whose ids the rolled-back allocators would hand out
// again, colliding on the metadata tables' primary keys. Floor the
// allocators above every id the metadata history mentions so an orphaned
// row can never cause id reuse.
void LedgerDatabase::ReconcileDdlCounters() {
  WriterMutexLock lock(&catalog_mu_);
  CatalogEntry* sys_tables = FindTableByIdLocked(kSysTablesTableId);
  if (sys_tables != nullptr) {
    for (BTree::Iterator it = sys_tables->main->Scan(); it.Valid(); it.Next()) {
      const Row& row = it.value();
      uint32_t id = static_cast<uint32_t>(row[1].AsInt64());
      // An updateable table consumed a second id for its history store.
      uint32_t consumed =
          row[2].string_value() == TableKindName(TableKind::kUpdateable) ? 2
                                                                         : 1;
      if (id + consumed > next_table_id_) next_table_id_ = id + consumed;
    }
  }
  CatalogEntry* sys_cols = FindTableByIdLocked(kSysColumnsTableId);
  if (sys_cols != nullptr) {
    for (BTree::Iterator it = sys_cols->main->Scan(); it.Valid(); it.Next()) {
      const Row& row = it.value();
      CatalogEntry* entry =
          FindTableByIdLocked(static_cast<uint32_t>(row[0].AsInt64()));
      if (entry == nullptr) continue;
      uint32_t floor = static_cast<uint32_t>(row[1].AsInt64()) + 1;
      if (entry->main->schema().next_column_id() < floor)
        entry->main->mutable_schema()->set_next_column_id(floor);
      if (entry->history != nullptr &&
          entry->history->schema().next_column_id() < floor)
        entry->history->mutable_schema()->set_next_column_id(floor);
    }
  }
}

Status LedgerDatabase::ReplayWalRecord(Slice payload) {
  if (payload.empty()) return Status::Corruption("empty WAL record");
  uint8_t kind = payload[0];
  Slice body(payload.data() + 1, payload.size() - 1);

  if (kind == kWalKindBlockClose) {
    Decoder dec(body);
    auto block_id = dec.GetVarint64();
    if (!block_id.ok()) return block_id.status();
    if (ledger_ != nullptr) return ledger_->RecoverBlockClose(*block_id);
    return Status::OK();
  }
  if (kind != kWalKindCommit)
    return Status::Corruption("unknown WAL record kind");

  auto record = WalCommitRecord::Decode(body);
  if (!record.ok()) return record.status();

  // Redo row operations, idempotently.
  ReaderMutexLock catalog_lock(&catalog_mu_);
  for (const WalOp& op : record->ops) {
    TableStore* store = nullptr;
    for (const auto& [id, entry] : catalog_) {
      if (entry->main->table_id() == op.table_id) {
        store = entry->main.get();
        break;
      }
      if (entry->history && entry->history->table_id() == op.table_id) {
        store = entry->history.get();
        break;
      }
    }
    if (store == nullptr)
      return Status::Corruption("WAL references unknown table id " +
                                std::to_string(op.table_id));
    switch (op.type) {
      case WalOpType::kInsert: {
        if (store->Get(op.key) == nullptr)
          SL_RETURN_IF_ERROR(store->Insert(op.new_row));
        break;
      }
      case WalOpType::kUpdate: {
        if (store->Get(op.key) == nullptr) {
          SL_RETURN_IF_ERROR(store->Insert(op.new_row));
        } else {
          SL_RETURN_IF_ERROR(store->Update(op.new_row));
        }
        break;
      }
      case WalOpType::kDelete: {
        if (store->Get(op.key) != nullptr)
          SL_RETURN_IF_ERROR(store->Delete(op.key));
        break;
      }
    }
  }

  if (ledger_ != nullptr) {
    TransactionEntry entry;
    entry.txn_id = record->txn_id;
    entry.block_id = record->block_id;
    entry.block_ordinal = record->block_ordinal;
    entry.commit_ts_micros = record->commit_ts_micros;
    entry.user_name = record->user_name;
    entry.table_roots = record->table_roots;
    SL_RETURN_IF_ERROR(ledger_->RecoverEntry(entry));
  }
  m_commit_txns_->Add();
  MutexLock txn_lock(&txn_mu_);
  if (record->txn_id >= next_txn_id_) next_txn_id_ = record->txn_id + 1;
  return Status::OK();
}

// ---- Catalog helpers ----

CatalogEntry* LedgerDatabase::FindTable(const std::string& name) {
  ReaderMutexLock lock(&catalog_mu_);
  auto it = name_index_.find(name);
  if (it == name_index_.end()) return nullptr;
  auto entry = catalog_.find(it->second);
  return entry == catalog_.end() ? nullptr : entry->second.get();
}

CatalogEntry* LedgerDatabase::FindTableByIdLocked(uint32_t table_id) {
  auto it = catalog_.find(table_id);
  return it == catalog_.end() ? nullptr : it->second.get();
}

CatalogEntry* LedgerDatabase::FindTableById(uint32_t table_id) {
  ReaderMutexLock lock(&catalog_mu_);
  return FindTableByIdLocked(table_id);
}

Result<LedgerTableRef> LedgerDatabase::GetTableRef(const std::string& name) {
  CatalogEntry* entry = FindTable(name);
  if (entry == nullptr) return Status::NotFound("table '" + name + "' not found");
  return entry->ref;
}

std::vector<CatalogEntry*> LedgerDatabase::AllTables() {
  ReaderMutexLock lock(&catalog_mu_);
  std::vector<CatalogEntry*> out;
  out.reserve(catalog_.size());
  for (auto& [id, entry] : catalog_) out.push_back(entry.get());
  return out;
}

TableStore* LedgerDatabase::GetStoreForTesting(const std::string& table,
                                               bool history) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return nullptr;
  return history ? entry->history.get() : entry->main.get();
}

// ---- DDL ----

Status LedgerDatabase::CreateTable(const std::string& name,
                                   const Schema& user_schema, TableKind kind) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  if (FindTable(name) != nullptr)
    return Status::AlreadyExists("table '" + name + "' already exists");
  if (!user_schema.HasPrimaryKey())
    return Status::InvalidArgument("table requires a primary key");
  if (!options_.enable_ledger) kind = TableKind::kRegular;

  auto entry = std::make_unique<CatalogEntry>();
  entry->name = name;
  entry->kind = kind;
  Schema full = MakeLedgerSchema(user_schema, kind);

  CatalogEntry* raw = entry.get();
  {
    // Allocate table ids inside the same critical section that publishes
    // the entry, so two concurrent CreateTable calls cannot race the
    // next_table_id_ counter.
    WriterMutexLock lock(&catalog_mu_);
    entry->table_id = next_table_id_++;
    entry->main = std::make_unique<TableStore>(entry->table_id, name, full);
    if (kind == TableKind::kUpdateable) {
      uint32_t history_id = next_table_id_++;
      entry->history = std::make_unique<TableStore>(
          history_id, name + "_history", MakeHistorySchema(full));
    }
    entry->ref.table_id = entry->table_id;
    entry->ref.kind = kind;
    entry->ref.main = entry->main.get();
    entry->ref.history = entry->history ? entry->history.get() : nullptr;
    entry->ref.RefreshOrdinals();
    name_index_[name] = entry->table_id;
    catalog_[entry->table_id] = std::move(entry);
  }

  if (options_.enable_ledger) {
    auto txn = Begin("system:ddl");
    if (!txn.ok()) return txn.status();
    Status st = RecordTableMetadata(*txn, *raw);
    if (st.ok()) {
      for (const ColumnDef& col : raw->main->schema().columns()) {
        if (col.hidden) continue;
        st = RecordColumnMetadata(*txn, raw->table_id, col);
        if (!st.ok()) break;
      }
    }
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
    SL_RETURN_IF_ERROR(Commit(*txn));
  }
  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

Status LedgerDatabase::CreateIndex(const std::string& table,
                                   const std::string& index_name,
                                   const std::vector<std::string>& columns,
                                   bool unique) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  std::vector<size_t> ordinals;
  for (const std::string& col : columns) {
    int ord = entry->main->schema().FindColumn(col);
    if (ord < 0)
      return Status::NotFound("column '" + col + "' not found in '" + table +
                              "'");
    ordinals.push_back(static_cast<size_t>(ord));
  }
  SL_RETURN_IF_ERROR(entry->main->CreateIndex(index_name, ordinals, unique));
  if (entry->history != nullptr) {
    // Mirror the index on the history table so historical queries are
    // equally served; invariant 5 verifies both.
    Status st = entry->history->CreateIndex(index_name, ordinals,
                                            /*unique=*/false);
    if (!st.ok()) {
      // Best-effort rollback of the main-table index just created.
      (void)entry->main->DropIndex(index_name);
      return st;
    }
  }
  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

Status LedgerDatabase::DropIndex(const std::string& table,
                                 const std::string& index_name) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  SL_RETURN_IF_ERROR(entry->main->DropIndex(index_name));
  // History mirror may lack the index (pre-mirror checkpoints); tolerated.
  if (entry->history != nullptr) (void)entry->history->DropIndex(index_name);
  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

// ---- Transactions ----

Result<Transaction*> LedgerDatabase::Begin(const std::string& user) {
  MutexLock lock(&txn_mu_);
  while (quiescing_) txn_cv_.Wait(&txn_mu_);
  uint64_t id = next_txn_id_++;
  auto txn = std::make_unique<Transaction>(id, user);
  Transaction* raw = txn.get();
  active_txns_[id] = std::move(txn);
  return raw;
}

Status LedgerDatabase::Commit(Transaction* txn) {
  if (txn == nullptr || !txn->active())
    return Status::InvalidArgument("transaction not active");

  if (!txn->ops().empty()) {
    // All per-transaction CPU work runs before joining the commit group,
    // outside every lock: the SHA-heavy Merkle root computation and the
    // WAL record encoding (including the ops copy). Concurrent committers
    // do this in parallel; the group leader's critical section is left
    // with ordering + one batched append.
    txn->FinalizeForCommit();
    CommitRequest req;
    req.txn = txn;
    req.commit_ts_micros = options_.clock();
    if (wal_enabled_) {
      WalCommitRecord record;
      record.txn_id = txn->id();
      record.commit_ts_micros = req.commit_ts_micros;
      record.user_name = txn->user_name();
      // Placeholder slot; the leader patches the real one in at
      // req.slot_offset once AssignSlots has run.
      record.block_id = 0;
      record.block_ordinal = 0;
      record.table_roots = txn->TableRoots();
      record.ops = txn->ops();
      req.payload.push_back(kWalKindCommit);
      req.slot_offset = record.EncodeTo(&req.payload);
    }
    SL_RETURN_IF_ERROR(CommitThroughGroup(&req));
  }

  txn->MarkCommitted();
  locks_.ReleaseAll(txn->id());
  m_commit_txns_->Add();
  {
    MutexLock lock(&txn_mu_);
    active_txns_.erase(txn->id());
    txn_cv_.SignalAll();
  }
  return Status::OK();
}

Status LedgerDatabase::CommitThroughGroup(CommitRequest* req) {
  // commit.wait_micros covers the whole group-commit interaction: queueing,
  // waiting for a leader (or leading), the group's WAL fsync, and wakeup.
  const int64_t wait_start = metrics_->NowMicros();
  group_mu_.Lock();
  commit_queue_.push_back(req);
  // Wake a lingering leader so it can re-check its group size.
  group_cv_.SignalAll();

  // Follower until proven leader: the oldest undrained request whose
  // thread finds no active leader takes leadership of the queue. Everyone
  // else sleeps until a leader marks their request done. front() is only
  // evaluated when no leader is active, in which case this request is
  // still queued (a leader drains requests only after setting
  // commit_leader_active_, and marks them done before clearing it).
  while (!req->done &&
         (commit_leader_active_ || commit_queue_.front() != req))
    group_cv_.Wait(&group_mu_);
  if (req->done) {
    Status result = req->result;
    group_mu_.Unlock();
    m_commit_wait_->Record(static_cast<uint64_t>(
        std::max<int64_t>(0, metrics_->NowMicros() - wait_start)));
    return result;
  }

  // Leader. Optionally linger so a group can form, then seal it.
  commit_leader_active_ = true;
  size_t max_group = std::max<size_t>(1, options_.commit.max_group_size);
  if (options_.commit.max_group_wait_micros > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        options_.commit.max_group_wait_micros);
    while (commit_queue_.size() < max_group &&
           group_cv_.WaitUntil(&group_mu_, deadline)) {
    }
  }
  std::vector<CommitRequest*> group;
  group.reserve(std::min(commit_queue_.size(), max_group));
  while (!commit_queue_.empty() && group.size() < max_group) {
    group.push_back(commit_queue_.front());
    commit_queue_.pop_front();
  }
  group_mu_.Unlock();

  // I/O outside group_mu_: later committers keep enqueuing (and will form
  // the next group) while this group's fsync is in flight.
  const int64_t process_start = metrics_->NowMicros();
  ProcessGroup(group);
  const int64_t process_end = metrics_->NowMicros();

  group_mu_.Lock();
  for (CommitRequest* r : group) r->done = true;
  commit_leader_active_ = false;
  group_cv_.SignalAll();
  Status result = req->result;
  group_mu_.Unlock();

  // Leader-side accounting, outside every lock (atomics + the tracer's own
  // leaf mutex). The group counters used to live under group_mu_; the
  // registry is now the single accounting of truth.
  m_commit_groups_->Add();
  m_commit_group_txns_->Add(group.size());
  m_commit_group_size_->Record(group.size());
  m_commit_wait_->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, metrics_->NowMicros() - wait_start)));
  tracer_->RecordComplete("commit.group", "commit", process_start,
                          process_end - process_start);
  return result;
}

void LedgerDatabase::ProcessGroup(const std::vector<CommitRequest*>& group) {
  MutexLock commit_lock(&commit_mu_);

  std::vector<std::pair<uint64_t, uint64_t>> slots;
  if (ledger_ != nullptr) slots = ledger_->AssignSlots(group.size());

  if (wal_ != nullptr) {
    std::vector<Slice> payloads;
    payloads.reserve(group.size());
    for (size_t i = 0; i < group.size(); i++) {
      CommitRequest* r = group[i];
      if (ledger_ != nullptr)
        WalCommitRecord::PatchSlot(&r->payload, r->slot_offset,
                                   slots[i].first, slots[i].second);
      payloads.emplace_back(r->payload);
    }
    // WAL first: one buffered append, one fsync for the whole group. On
    // failure nothing reached the ledger — roll the slot reservation back
    // so a post-checkpoint WAL (sticky error cleared) resumes with dense
    // ordinals — and fail every member: the WAL is poisoned, so none of
    // them is durable.
    Status st = wal_->AppendBatch(payloads);
    if (!st.ok()) {
      if (ledger_ != nullptr) ledger_->ReleaseSlots(group.size());
      for (CommitRequest* r : group) r->result = st;
      return;
    }
  }

  if (ledger_ != nullptr) {
    for (size_t i = 0; i < group.size(); i++) {
      CommitRequest* r = group[i];
      TransactionEntry entry;
      entry.txn_id = r->txn->id();
      entry.block_id = slots[i].first;
      entry.block_ordinal = slots[i].second;
      entry.commit_ts_micros = r->commit_ts_micros;
      entry.user_name = r->txn->user_name();
      entry.table_roots = r->txn->TableRoots();
      r->result = ledger_->Append(std::move(entry));
    }
  } else {
    for (CommitRequest* r : group) r->result = Status::OK();
  }
}

void LedgerDatabase::Abort(Transaction* txn) {
  if (txn == nullptr) return;
  txn->Abort();
  locks_.ReleaseAll(txn->id());
  m_commit_aborts_->Add();
  MutexLock lock(&txn_mu_);
  active_txns_.erase(txn->id());
  txn_cv_.SignalAll();
}

Status LedgerDatabase::Savepoint(Transaction* txn, const std::string& name) {
  if (txn == nullptr) return Status::InvalidArgument("null transaction");
  return txn->CreateSavepoint(name);
}

Status LedgerDatabase::RollbackToSavepoint(Transaction* txn,
                                           const std::string& name) {
  if (txn == nullptr) return Status::InvalidArgument("null transaction");
  return txn->RollbackToSavepoint(name);
}

// ---- DML ----

Status LedgerDatabase::AcquireTableLock(Transaction* txn,
                                        const CatalogEntry& entry,
                                        LockMode mode) {
  Status st = locks_.AcquireTable(txn->id(), entry.table_id, mode);
  if (!st.ok())
    return Status::Aborted("lock acquisition failed on '" + entry.name +
                           "': " + st.message());
  return Status::OK();
}

Status LedgerDatabase::AcquireRowLock(Transaction* txn,
                                      const CatalogEntry& entry,
                                      const KeyTuple& key, LockMode mode) {
  Status st = locks_.AcquireRow(txn->id(), entry.table_id, key, mode);
  if (!st.ok())
    return Status::Aborted("row lock acquisition failed on '" + entry.name +
                           "': " + st.message());
  return Status::OK();
}

Result<KeyTuple> LedgerDatabase::UserKeyOf(const CatalogEntry& entry,
                                           const Row& user_row) {
  const Schema& schema = entry.main->schema();
  std::vector<size_t> visible = schema.VisibleOrdinals();
  KeyTuple key;
  for (size_t key_ord : schema.key_ordinals()) {
    bool found = false;
    for (size_t j = 0; j < visible.size(); j++) {
      if (visible[j] == key_ord) {
        if (j >= user_row.size())
          return Status::InvalidArgument(
              "row is missing primary-key columns");
        key.push_back(user_row[j]);
        found = true;
        break;
      }
    }
    if (!found)
      return Status::Internal("primary-key column is not visible");
  }
  return key;
}

Status LedgerDatabase::WithTableExclusive(
    CatalogEntry* entry, const std::function<Status()>& body) {
  auto txn = Begin("system:ddl-lock");
  if (!txn.ok()) return txn.status();
  Status st = AcquireTableLock(*txn, *entry, LockMode::kExclusive);
  if (st.ok()) st = body();
  if (!st.ok()) {
    Abort(*txn);
    return st;
  }
  return Commit(*txn);
}

Status LedgerDatabase::Insert(Transaction* txn, const std::string& table,
                              const Row& user_row) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  auto key = UserKeyOf(*entry, user_row);
  if (!key.ok()) return key.status();
  SL_RETURN_IF_ERROR(
      AcquireTableLock(txn, *entry, LockMode::kIntentionExclusive));
  SL_RETURN_IF_ERROR(AcquireRowLock(txn, *entry, *key, LockMode::kExclusive));
  return LedgerInsert(txn, entry->ref, user_row);
}

Status LedgerDatabase::Update(Transaction* txn, const std::string& table,
                              const Row& user_row) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  auto key = UserKeyOf(*entry, user_row);
  if (!key.ok()) return key.status();
  SL_RETURN_IF_ERROR(
      AcquireTableLock(txn, *entry, LockMode::kIntentionExclusive));
  SL_RETURN_IF_ERROR(AcquireRowLock(txn, *entry, *key, LockMode::kExclusive));
  return LedgerUpdate(txn, entry->ref, user_row);
}

Status LedgerDatabase::Delete(Transaction* txn, const std::string& table,
                              const KeyTuple& key) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  SL_RETURN_IF_ERROR(
      AcquireTableLock(txn, *entry, LockMode::kIntentionExclusive));
  SL_RETURN_IF_ERROR(AcquireRowLock(txn, *entry, key, LockMode::kExclusive));
  return LedgerDelete(txn, entry->ref, key);
}

Result<Row> LedgerDatabase::Get(Transaction* txn, const std::string& table,
                                const KeyTuple& key) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  SL_RETURN_IF_ERROR(
      AcquireTableLock(txn, *entry, LockMode::kIntentionShared));
  SL_RETURN_IF_ERROR(AcquireRowLock(txn, *entry, key, LockMode::kShared));
  auto row = entry->main->GetCopy(key);
  if (!row.has_value()) return Status::NotFound("row not found");
  Row out;
  for (size_t ord : entry->main->schema().VisibleOrdinals())
    out.push_back((*row)[ord]);
  return out;
}

Result<std::vector<Row>> LedgerDatabase::Scan(Transaction* txn,
                                              const std::string& table) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  SL_RETURN_IF_ERROR(AcquireTableLock(txn, *entry, LockMode::kShared));
  std::vector<Row> out;
  std::vector<size_t> visible = entry->main->schema().VisibleOrdinals();
  for (BTree::Iterator it = entry->main->Scan(); it.Valid(); it.Next()) {
    Row row;
    for (size_t ord : visible) row.push_back(it.value()[ord]);
    out.push_back(std::move(row));
  }
  return out;
}

Result<Row> LedgerDatabase::SeekFirst(Transaction* txn,
                                      const std::string& table,
                                      const KeyTuple& prefix) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  SL_RETURN_IF_ERROR(AcquireTableLock(txn, *entry, LockMode::kShared));
  auto row = entry->main->SeekFirstCopy(prefix);
  if (!row.has_value())
    return Status::NotFound("no row with the given key prefix");
  Row out;
  for (size_t ord : entry->main->schema().VisibleOrdinals())
    out.push_back((*row)[ord]);
  return out;
}

// ---- Ledger features ----

Result<DatabaseDigest> LedgerDatabase::GenerateDigest() {
  if (ledger_ == nullptr)
    return Status::NotSupported("ledger is disabled for this database");
  MutexLock commit_lock(&commit_mu_);
  uint64_t closed_before = ledger_->closed_block_count();
  auto digest = ledger_->GenerateDigest(options_.database_id, create_time_);
  if (!digest.ok()) return digest;
  if (wal_ != nullptr && ledger_->closed_block_count() > closed_before) {
    // Make the block close durable so a post-crash recovery rebuilds the
    // exact block this digest covers.
    std::vector<uint8_t> payload{kWalKindBlockClose};
    PutVarint64(&payload, digest->block_id);
    SL_RETURN_IF_ERROR(wal_->AppendRecord(Slice(payload)));
  }
  return digest;
}

Status LedgerDatabase::StartDigestProtection(
    DigestStore* store, DigestPipelineOptions pipeline_options,
    std::chrono::milliseconds interval) {
  if (ledger_ == nullptr)
    return Status::NotSupported("ledger is disabled for this database");
  if (digest_pipeline_ != nullptr)
    return Status::Busy("digest protection is already running");
  if (pipeline_options.outbox_dir.empty()) {
    if (options_.data_dir.empty())
      return Status::InvalidArgument(
          "ephemeral database: digest protection needs an explicit "
          "outbox_dir");
    pipeline_options.outbox_dir = options_.data_dir + "/digest_outbox";
  }
  if (pipeline_options.env == nullptr) pipeline_options.env = env_;
  auto pipeline =
      DigestUploadPipeline::Open(this, store, std::move(pipeline_options));
  if (!pipeline.ok()) return pipeline.status();
  digest_pipeline_ = std::move(*pipeline);
  if (interval != std::chrono::milliseconds::zero())
    digest_pipeline_->Start(interval);
  return Status::OK();
}

void LedgerDatabase::StopDigestProtection() { digest_pipeline_.reset(); }

DigestProtectionStatus LedgerDatabase::GetDigestProtectionStatus() const {
  if (digest_pipeline_ != nullptr) return digest_pipeline_->status();
  DigestProtectionStatus s;
  s.blocks_behind = ledger_ != nullptr ? ledger_->open_block_id() : 0;
  return s;
}

Result<std::vector<LedgerViewRow>> LedgerDatabase::GetLedgerView(
    const std::string& table) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr) return Status::NotFound("table '" + table + "' not found");
  // A table S lock excludes writers (their IX conflicts) for the duration
  // of the scan over the ledger and history stores.
  auto txn = Begin("system:view");
  if (!txn.ok()) return txn.status();
  Status st = AcquireTableLock(*txn, *entry, LockMode::kShared);
  if (!st.ok()) {
    Abort(*txn);
    return st;
  }
  auto view = BuildLedgerView(entry->ref);
  SL_RETURN_IF_ERROR(Commit(*txn));
  return view;
}

Result<std::vector<TableOperationRow>> LedgerDatabase::GetTableOperationsView() {
  CatalogEntry* sys = FindTableById(kSysTablesTableId);
  if (sys == nullptr)
    return Status::NotSupported("ledger is disabled for this database");
  auto txn = Begin("system:view");
  if (!txn.ok()) return txn.status();
  Status lock_st = AcquireTableLock(*txn, *sys, LockMode::kShared);
  if (!lock_st.ok()) {
    Abort(*txn);
    return lock_st;
  }
  auto view = BuildLedgerView(sys->ref);
  SL_RETURN_IF_ERROR(Commit(*txn));
  if (!view.ok()) return view.status();
  std::vector<TableOperationRow> out;
  for (const LedgerViewRow& row : *view) {
    if (row.operation != "INSERT") continue;  // DELETE halves of updates
    TableOperationRow op;
    op.table_name = row.values[0].string_value();
    op.table_id = static_cast<uint32_t>(row.values[1].AsInt64());
    op.operation =
        op.table_name.rfind("DroppedTable_", 0) == 0 ? "DROP" : "CREATE";
    op.transaction_id = row.transaction_id;
    out.push_back(std::move(op));
  }
  return out;
}

std::string DatabaseStats::ToString() const {
  return "txns=" + std::to_string(committed_transactions) +
         " aborts=" + std::to_string(aborted_transactions) +
         " commit_groups=" + std::to_string(commit_groups) + " (" +
         std::to_string(group_commit_txns) + " txns, largest " +
         std::to_string(largest_commit_group) + ", " +
         std::to_string(wal_syncs) + " wal syncs)" +
         " blocks=" + std::to_string(closed_blocks) +
         " open_block_entries=" + std::to_string(open_block_entries) +
         " queue=" + std::to_string(ledger_queue_depth) +
         " ledger_entries=" + std::to_string(total_ledger_entries) +
         " tables=" + std::to_string(table_count) + " (" +
         std::to_string(ledger_table_count) + " ledger)" +
         " live_rows=" + std::to_string(live_rows) +
         " history_rows=" + std::to_string(history_rows) +
         " incr_verifies=" + std::to_string(incremental_verifications) + " (" +
         std::to_string(verification_fallbacks) + " fallbacks, " +
         std::to_string(blocks_reverified) + " blocks reverified, " +
         std::to_string(blocks_skipped) + " skipped, " +
         std::to_string(row_versions_skipped) + " row versions skipped)";
}

uint64_t LedgerDatabase::committed_txn_count() const {
  return m_commit_txns_->value();
}

DatabaseStats LedgerDatabase::GetStats() {
  // Counter fields come from the metric registry — the single accounting of
  // truth (DESIGN.md §13); this struct is a stable facade over it.
  DatabaseStats stats;
  stats.committed_transactions = m_commit_txns_->value();
  stats.aborted_transactions = m_commit_aborts_->value();
  stats.commit_groups = m_commit_groups_->value();
  stats.group_commit_txns = m_commit_group_txns_->value();
  stats.largest_commit_group = m_commit_group_size_->Snapshot().max;
  {
    MutexLock lock(&commit_mu_);
    if (wal_ != nullptr) stats.wal_syncs = wal_->sync_count();
  }
  if (ledger_ != nullptr) {
    stats.closed_blocks = ledger_->closed_block_count();
    stats.open_block_entries = ledger_->open_block_entry_count();
    stats.ledger_queue_depth = ledger_->queue_depth();
    stats.total_ledger_entries = ledger_->total_entries();
  }
  for (CatalogEntry* entry : AllTables()) {
    if (entry->is_system) continue;
    stats.table_count++;
    if (entry->kind != TableKind::kRegular) stats.ledger_table_count++;
    stats.live_rows += entry->main->row_count();
    if (entry->history != nullptr)
      stats.history_rows += entry->history->row_count();
  }
  stats.incremental_verifications = m_verify_incremental_runs_->value();
  stats.verification_fallbacks = m_verify_fallbacks_->value();
  stats.blocks_reverified = m_blocks_reverified_->value();
  stats.blocks_skipped = m_blocks_skipped_->value();
  stats.row_versions_skipped = m_row_versions_skipped_->value();
  return stats;
}

// ---- Incremental verification state (DESIGN.md §11) ----

std::optional<VerificationState> LedgerDatabase::GetVerificationState() const {
  MutexLock lock(&verify_mu_);
  return verification_state_;
}

Status LedgerDatabase::StoreVerificationState(const VerificationState& state) {
  if (state.database_id != options_.database_id ||
      state.database_create_time != create_time_) {
    return Status::InvalidArgument(
        "verification state belongs to a different database or incarnation");
  }
  {
    MutexLock lock(&verify_mu_);
    verification_state_ = state;
  }
  // Persist outside verify_mu_: the save syncs, and leaf locks are never
  // held across I/O. Concurrent stores are already serialized by the
  // verifier's quiesce; a racing overwrite would only lose a watermark.
  if (!verification_state_path_.empty())
    return state.Save(env_, verification_state_path_);
  return Status::OK();
}

void LedgerDatabase::ClearVerificationState() {
  {
    MutexLock lock(&verify_mu_);
    verification_state_.reset();
  }
  if (!verification_state_path_.empty()) {
    // Best-effort: a leftover file is stale (wrong watermark for the new
    // truncation set) but still CRC-valid, so it must also be droppable by
    // the verifier's re-anchor checks — and it is, because truncation
    // removes the watermark block's predecessors and changes accumulators.
    (void)VerificationState::Remove(env_, verification_state_path_);  // see above
  }
}

void LedgerDatabase::NoteDurableDigest(const DatabaseDigest& digest) {
  MutexLock lock(&verify_mu_);
  if (!latest_durable_digest_.has_value() ||
      digest.block_id >= latest_durable_digest_->block_id) {
    latest_durable_digest_ = digest;
  }
}

std::optional<DatabaseDigest> LedgerDatabase::latest_durable_digest() const {
  MutexLock lock(&verify_mu_);
  return latest_durable_digest_;
}

void LedgerDatabase::RecordIncrementalVerification(
    bool fell_back, uint64_t blocks_reverified, uint64_t blocks_skipped,
    uint64_t row_versions_skipped) {
  m_verify_incremental_runs_->Add();
  if (fell_back) m_verify_fallbacks_->Add();
  m_blocks_reverified_->Add(blocks_reverified);
  m_blocks_skipped_->Add(blocks_skipped);
  m_row_versions_skipped_->Add(row_versions_skipped);
}

std::vector<TruncationRecord> LedgerDatabase::GetTruncationRecords() {
  std::vector<TruncationRecord> out;
  CatalogEntry* sys = FindTableById(kSysTruncationsTableId);
  if (sys == nullptr) return out;
  for (BTree::Iterator it = sys->main->Scan(); it.Valid(); it.Next()) {
    TruncationRecord rec;
    rec.truncated_below_block =
        static_cast<uint64_t>(it.value()[0].AsInt64());
    rec.min_txn_id = static_cast<uint64_t>(it.value()[1].AsInt64());
    rec.max_txn_id = static_cast<uint64_t>(it.value()[2].AsInt64());
    out.push_back(rec);
  }
  return out;
}

Status LedgerDatabase::RecordTruncation(const TruncationRecord& record) {
  CatalogEntry* sys = FindTableById(kSysTruncationsTableId);
  if (sys == nullptr)
    return Status::NotSupported("ledger is disabled for this database");
  auto txn = Begin("system:truncation");
  if (!txn.ok()) return txn.status();
  Row row{Value::BigInt(static_cast<int64_t>(record.truncated_below_block)),
          Value::BigInt(static_cast<int64_t>(record.min_txn_id)),
          Value::BigInt(static_cast<int64_t>(record.max_txn_id)),
          Value::Timestamp(options_.clock())};
  Status st = Insert(*txn, "sys_ledger_truncations", row);
  if (!st.ok()) {
    Abort(*txn);
    return st;
  }
  return Commit(*txn);
}

// ---- Durability ----

Status LedgerDatabase::Checkpoint() {
  if (options_.data_dir.empty())
    return Status::OK();  // ephemeral database: nothing to persist
  const int64_t start = metrics_->NowMicros();
  Status st = CheckpointImpl();
  const int64_t end = metrics_->NowMicros();
  m_checkpoint_micros_->Record(static_cast<uint64_t>(std::max<int64_t>(
      0, end - start)));
  m_checkpoint_runs_->Add();
  tracer_->RecordComplete("checkpoint", "storage", start, end - start);
  return st;
}

Status LedgerDatabase::CheckpointImpl() {
  QuiesceGuard guard(this);
  // Quiescing only drains user transactions; digest generation still runs
  // concurrently and appends block-close records under commit_mu_. Hold
  // commit_mu_ across the drain/snapshot/WAL-reset so the checkpoint and
  // the WAL cannot disagree about which blocks closed.
  MutexLock commit_lock(&commit_mu_);

  if (ledger_ != nullptr) SL_RETURN_IF_ERROR(ledger_->DrainQueue());

  std::vector<const TableStore*> stores;
  stores.push_back(ledger_txns_store_.get());
  stores.push_back(ledger_blocks_store_.get());
  {
    ReaderMutexLock catalog_lock(&catalog_mu_);
    for (const auto& [id, entry] : catalog_) {
      stores.push_back(entry->main.get());
      if (entry->history) stores.push_back(entry->history.get());
    }
  }
  std::vector<uint8_t> meta = EncodeCatalogMeta();
  SL_RETURN_IF_ERROR(
      WriteCheckpoint(checkpoint_path_, Slice(meta), stores, env_));
  if (wal_ != nullptr) SL_RETURN_IF_ERROR(wal_->Reset());
  return Status::OK();
}

// ---- Quiescing ----

LedgerDatabase::QuiesceGuard::QuiesceGuard(LedgerDatabase* db) : db_(db) {
  MutexLock lock(&db_->txn_mu_);
  while (db_->quiescing_) db_->txn_cv_.Wait(&db_->txn_mu_);
  db_->quiescing_ = true;
  while (!db_->active_txns_.empty()) db_->txn_cv_.Wait(&db_->txn_mu_);
}

LedgerDatabase::QuiesceGuard::~QuiesceGuard() {
  MutexLock lock(&db_->txn_mu_);
  db_->quiescing_ = false;
  db_->txn_cv_.SignalAll();
}

}  // namespace sqlledger
