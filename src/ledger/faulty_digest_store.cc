#include "ledger/faulty_digest_store.h"

namespace sqlledger {

namespace {

/// Status factories are the only public constructors; map the configured
/// code onto one (unknown codes degrade to IOError, the generic network
/// failure).
Status MakeInjectedStatus(StatusCode code, const std::string& msg) {
  switch (code) {
    case StatusCode::kBusy:
      return Status::Busy(msg);
    case StatusCode::kAborted:
      return Status::Aborted(msg);
    case StatusCode::kInternal:
      return Status::Internal(msg);
    case StatusCode::kNotSupported:
      return Status::NotSupported(msg);
    case StatusCode::kPermissionDenied:
      return Status::PermissionDenied(msg);
    default:
      return Status::IOError(msg);
  }
}

}  // namespace

FaultyDigestStore::FaultyDigestStore(DigestStore* target, uint64_t seed)
    : target_(target), rng_(seed) {}

void FaultyDigestStore::SetOutage(bool active) {
  MutexLock lock(&mu_);
  outage_ = active;
}

bool FaultyDigestStore::outage() const {
  MutexLock lock(&mu_);
  return outage_;
}

void FaultyDigestStore::FailUploads(int n, StatusCode code) {
  MutexLock lock(&mu_);
  fail_countdown_ = n;
  fail_code_ = code;
}

void FaultyDigestStore::LoseAcks(int n) {
  MutexLock lock(&mu_);
  lose_ack_countdown_ = n;
}

void FaultyDigestStore::DeliverDuplicates(int n) {
  MutexLock lock(&mu_);
  duplicate_countdown_ = n;
}

void FaultyDigestStore::SetProbabilities(const Probabilities& p) {
  MutexLock lock(&mu_);
  prob_ = p;
}

uint64_t FaultyDigestStore::upload_attempts() const {
  MutexLock lock(&mu_);
  return attempts_;
}

uint64_t FaultyDigestStore::injected_failures() const {
  MutexLock lock(&mu_);
  return injected_failures_;
}

uint64_t FaultyDigestStore::lost_acks() const {
  MutexLock lock(&mu_);
  return lost_acks_;
}

uint64_t FaultyDigestStore::duplicates_delivered() const {
  MutexLock lock(&mu_);
  return duplicates_;
}

Status FaultyDigestStore::CheckReadLocked() const {
  if (outage_)
    return Status::IOError(
        "digest store unreachable (injected outage)");
  return Status::OK();
}

Status FaultyDigestStore::Upload(const DatabaseDigest& digest) {
  // Decide the fault under the lock, perform target I/O outside it, so a
  // slow (real) store never serializes fault scheduling.
  enum class Action { kReject, kAckLost, kDuplicate, kPass };
  Action action = Action::kPass;
  Status reject = Status::OK();
  {
    MutexLock lock(&mu_);
    attempts_++;
    if (outage_) {
      injected_failures_++;
      action = Action::kReject;
      reject = Status::IOError("digest store unreachable (injected outage)");
    } else if (fail_countdown_ > 0) {
      fail_countdown_--;
      injected_failures_++;
      action = Action::kReject;
      reject =
          MakeInjectedStatus(fail_code_, "injected transient upload failure");
    } else if (lose_ack_countdown_ > 0) {
      lose_ack_countdown_--;
      action = Action::kAckLost;
    } else if (duplicate_countdown_ > 0) {
      duplicate_countdown_--;
      action = Action::kDuplicate;
    } else if (prob_.transient_error > 0 && rng_.Bernoulli(prob_.transient_error)) {
      injected_failures_++;
      action = Action::kReject;
      reject = Status::IOError("injected transient upload failure (seeded)");
    } else if (prob_.ack_lost > 0 && rng_.Bernoulli(prob_.ack_lost)) {
      action = Action::kAckLost;
    } else if (prob_.duplicate > 0 && rng_.Bernoulli(prob_.duplicate)) {
      action = Action::kDuplicate;
    }
  }

  switch (action) {
    case Action::kReject:
      return reject;
    case Action::kAckLost: {
      Status st = target_->Upload(digest);
      if (!st.ok()) return st;  // the store really failed; report that
      MutexLock lock(&mu_);
      lost_acks_++;
      return Status::IOError(
          "injected ack loss: upload stored but response dropped");
    }
    case Action::kDuplicate: {
      SL_RETURN_IF_ERROR(target_->Upload(digest));
      {
        MutexLock lock(&mu_);
        duplicates_++;
      }
      // The duplicate rides the retry path of a real network: identical
      // bytes arriving twice. An idempotent store absorbs it.
      return target_->Upload(digest);
    }
    case Action::kPass:
      return target_->Upload(digest);
  }
  return target_->Upload(digest);
}

Result<std::vector<DatabaseDigest>> FaultyDigestStore::ListAll() const {
  {
    MutexLock lock(&mu_);
    SL_RETURN_IF_ERROR(CheckReadLocked());
  }
  return target_->ListAll();
}

Result<DatabaseDigest> FaultyDigestStore::Latest(
    const std::string& create_time) const {
  {
    MutexLock lock(&mu_);
    SL_RETURN_IF_ERROR(CheckReadLocked());
  }
  return target_->Latest(create_time);
}

}  // namespace sqlledger
