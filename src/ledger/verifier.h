// Ledger verification (paper §2.3, §3.4). Given externally-stored Database
// Digests, recompute every hash in the Database Ledger from the *current*
// state of the database and report all inconsistencies. The five invariants
// (§3.4.1):
//
//   1. each digest's block hash matches the recomputed hash of that block;
//   2. each block's recorded previous-block hash matches the recomputed
//      hash of its predecessor (block 0's is all-zero);
//   3. each block's recorded transactions Merkle root matches the root
//      recomputed over its transaction entries, and every entry belongs to
//      an existing block;
//   4. each transaction entry's per-table Merkle root matches the root
//      recomputed over the row versions it updated (ordered by sequence
//      number), and no row references an unrecorded transaction;
//   5. every non-clustered index is equivalent to its base table.
//
// Plus the ledger-view definition check from §3.4.2. References to
// transactions removed by a recorded ledger truncation (§5.2) are not
// violations.
//
// Data in blocks newer than the highest input digest is verified for
// internal consistency only, exactly as the paper describes.

#ifndef SQLLEDGER_LEDGER_VERIFIER_H_
#define SQLLEDGER_LEDGER_VERIFIER_H_

#include <string>
#include <vector>

#include "ledger/digest.h"
#include "ledger/ledger_database.h"
#include "util/result.h"

namespace sqlledger {

struct VerificationOptions {
  /// Restrict invariants 4/5 to these tables (current names). Empty = all
  /// ledger tables, including logically dropped and system tables
  /// (the paper's subset-verification option, §2.3).
  std::vector<std::string> tables;
  /// Verify non-clustered indexes against base tables (invariant 5).
  bool check_indexes = true;
  /// Run the ledger-view definition check.
  bool check_views = true;
  /// Worker threads for hash recomputation. 1 = inline. Parallelism applies
  /// *within* a table, not just across tables: store scans, row-version leaf
  /// hashing, per-transaction Merkle roots and per-block transaction roots
  /// all partition into chunks over one shared pool — the counterpart of the
  /// paper's reliance on parallel query execution for the verification
  /// queries (§3.4.2), effective even for a single large table.
  unsigned parallelism = 1;
};

struct Violation {
  int invariant = 0;  // 1..5, 6 = view definition, 0 = input problem
  std::string message;
};

struct VerificationReport {
  std::vector<Violation> violations;
  uint64_t blocks_checked = 0;
  uint64_t transactions_checked = 0;
  uint64_t row_versions_checked = 0;
  /// Highest block covered by an input digest; data in later blocks was
  /// only checked for internal consistency.
  uint64_t highest_digest_block = 0;
  bool has_digest_coverage = false;

  // ---- Incremental verification (DESIGN.md §11) ----
  /// True when produced by VerifyLedgerIncremental (even if it fell back).
  bool incremental = false;
  /// The run started from a watermark but failed to re-anchor (or found a
  /// prefix inconsistency) and reran as a full verification; `violations`
  /// then holds the full run's findings verbatim.
  bool fell_back_to_full = false;
  std::string fallback_reason;
  /// Watermark the run resumed from (0 when verifying from scratch).
  uint64_t watermark_block = 0;
  /// Blocks whose transaction-tree and row-version hashing was skipped
  /// (id <= watermark) vs redone. Block headers are always re-hashed — that
  /// linear pass is what re-anchors the chain cheaply.
  uint64_t blocks_skipped = 0;
  uint64_t blocks_reverified = 0;
  /// Transactions / row versions whose Merkle leaf hashing was skipped.
  /// row_versions_checked counts only the versions actually hashed, so
  /// checked + skipped equals the full run's row_versions_checked.
  uint64_t transactions_skipped = 0;
  uint64_t row_versions_skipped = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Runs full verification. The database is quiesced for the duration.
/// Returns the report; an error Status only for operational failures
/// (ledger disabled, storage errors) — tampering is reported via
/// report.violations, not via Status.
Result<VerificationReport> VerifyLedger(
    LedgerDatabase* db, const std::vector<DatabaseDigest>& digests,
    const VerificationOptions& options = {});

/// Incremental verification (DESIGN.md §11): resumes from the database's
/// persisted VerificationState watermark and skips re-hashing the
/// transaction trees and row versions of blocks already verified (block id
/// <= watermark). Invariants 1-2 (digests, block chain) are always
/// re-checked in full — that linear block-header pass re-anchors the
/// watermark and commits to every stored per-block transactions root — and
/// the verified prefix is re-checked via compact accumulators: a
/// count+fingerprint over the prefix's transaction entries (full content)
/// plus per-table count+fingerprint accumulators over its row-version
/// structure. Any re-anchor failure, prefix inconsistency or accumulator
/// mismatch falls back to a full verification under the same quiesce, so
/// the returned violation set is identical to VerifyLedger's for every such
/// case. The database's latest durable digest (from the upload pipeline) is
/// unioned into `digests` as an anchor. On a clean, unfiltered run the
/// refreshed watermark is persisted (best-effort) and stats counters are
/// updated.
Result<VerificationReport> VerifyLedgerIncremental(
    LedgerDatabase* db, const std::vector<DatabaseDigest>& digests,
    const VerificationOptions& options = {});

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_VERIFIER_H_
