// Ledger views (paper §2.1, Figure 2): for every ledger table, a generated
// view reporting each row operation (INSERT / DELETE) together with the id
// of the transaction that performed it, built by unioning the ledger table
// with its history table. An UPDATE appears as a DELETE of the old version
// followed by an INSERT of the new one within the same transaction.

#ifndef SQLLEDGER_LEDGER_LEDGER_VIEW_H_
#define SQLLEDGER_LEDGER_LEDGER_VIEW_H_

#include <string>
#include <vector>

#include "ledger/ledger_table.h"
#include "util/result.h"

namespace sqlledger {

struct LedgerViewRow {
  /// Application-visible column values of the row version.
  Row values;
  /// "INSERT" or "DELETE".
  std::string operation;
  uint64_t transaction_id = 0;
  uint64_t sequence_number = 0;
};

/// Materializes the ledger view for one table, ordered by
/// (transaction id, sequence number). Fails on regular tables.
Result<std::vector<LedgerViewRow>> BuildLedgerView(const LedgerTableRef& table);

/// Renders view rows as a fixed-width text table (examples and debugging).
std::string FormatLedgerView(const Schema& schema,
                             const std::vector<LedgerViewRow>& rows);

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_LEDGER_VIEW_H_
