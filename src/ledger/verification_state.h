// Durable verifier watermark state (incremental verification, §2.3 /
// DESIGN.md §11). A VerificationState records how far a previous successful
// verification got — the last verified block, its recomputed hash, the digest
// the run was anchored to, and a compact per-table accumulator over the row
// versions of already-verified transactions. VerifyLedgerIncremental uses it
// to re-anchor and skip re-hashing the verified prefix; anything that fails
// to re-anchor falls back to a full verification.
//
// The file is written with the same crash discipline as checkpoints:
// temp file + Sync before Rename + parent-directory sync, and the payload
// carries a magic tag, format version and CRC32C so a torn or tampered file
// is never trusted — a bad state file simply means "verify from scratch".

#ifndef SQLLEDGER_LEDGER_VERIFICATION_STATE_H_
#define SQLLEDGER_LEDGER_VERIFICATION_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "ledger/digest.h"
#include "ledger/types.h"
#include "storage/env.h"
#include "util/result.h"

namespace sqlledger {

/// Order-independent structural fingerprint of one table's verified prefix:
/// the number of row versions belonging to verified transactions and an
/// XOR-accumulated mix of their (transaction, sequence, operation) tuples.
/// Any insert, delete or re-stamping of a prefix row version changes it;
/// flipping cell *contents* without touching version structure does not
/// (see DESIGN.md §11 for the fallback matrix and trust argument).
struct TableAccumulator {
  uint64_t table_id = 0;
  uint64_t prefix_versions = 0;
  uint64_t fingerprint = 0;

  bool operator==(const TableAccumulator& o) const {
    return table_id == o.table_id && prefix_versions == o.prefix_versions &&
           fingerprint == o.fingerprint;
  }
};

/// Mixes one row version into a TableAccumulator fingerprint. op is the
/// stored operation code (insert/delete) for the version.
uint64_t MixVersionFingerprint(uint64_t txn_id, uint64_t sequence, int op);

/// Content fingerprint of one ledger transaction entry: every field that
/// feeds the entry's canonical serialization (id, block, ordinal, commit
/// time, user, per-table Merkle roots) runs through a fast non-cryptographic
/// mix. XOR-combined across the verified prefix, it lets incremental
/// verification skip re-hashing trusted blocks' transaction trees: any edit
/// to a prefix entry flips the accumulator and forces the full fallback.
uint64_t MixEntryFingerprint(const TransactionEntry& entry);

struct VerificationState {
  /// Identity of the database the watermark belongs to; a state file for a
  /// different database or incarnation is ignored.
  std::string database_id;
  std::string database_create_time;

  /// Last block fully verified (all invariants held up to and including it).
  uint64_t last_verified_block = 0;
  /// Recomputed hash of that block at verification time; re-anchoring
  /// recomputes it from current storage and compares.
  Hash256 block_hash;

  /// The digest the verification run was anchored to (highest input digest).
  DatabaseDigest anchor;
  /// True if the anchor is known durable in the external digest store.
  bool anchor_durable = false;

  /// Per-table accumulators over row versions of verified transactions,
  /// sorted by table_id.
  std::vector<TableAccumulator> tables;

  /// Accumulator over the transaction entries of blocks <= the watermark:
  /// their count and the XOR of their MixEntryFingerprint values. Lets the
  /// incremental pass skip re-hashing trusted blocks' transaction Merkle
  /// trees while still forcing a full fallback on any prefix entry edit.
  uint64_t entry_count = 0;
  uint64_t entry_fingerprint = 0;

  bool operator==(const VerificationState& o) const {
    return database_id == o.database_id &&
           database_create_time == o.database_create_time &&
           last_verified_block == o.last_verified_block &&
           block_hash == o.block_hash && anchor == o.anchor &&
           anchor_durable == o.anchor_durable && tables == o.tables &&
           entry_count == o.entry_count &&
           entry_fingerprint == o.entry_fingerprint;
  }

  /// Binary serialization: magic + format version + payload + CRC32C.
  std::string Encode() const;
  /// Decode; Corruption for bad magic/version/CRC/truncation.
  static Result<VerificationState> Decode(const std::string& data);

  /// Atomically persist to `path` (temp file + Sync + Rename + SyncDir).
  Status Save(Env* env, const std::string& path) const;
  /// Load and decode. NotFound if the file does not exist; Corruption if it
  /// exists but cannot be trusted. Callers treat both as "no watermark".
  static Result<VerificationState> Load(Env* env, const std::string& path);
  /// Remove the state file; missing file is not an error.
  static Status Remove(Env* env, const std::string& path);
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_VERIFICATION_STATE_H_
