#include "ledger/ledger_view.h"

#include <algorithm>

namespace sqlledger {

namespace {
Row VisibleValues(const Schema& schema, const Row& row) {
  Row out;
  for (size_t ord : schema.VisibleOrdinals()) out.push_back(row[ord]);
  return out;
}

void AppendVersionOps(const LedgerTableRef& t, const Schema& schema,
                      const Row& row, bool include_delete,
                      std::vector<LedgerViewRow>* out) {
  const Value& start_txn = row[t.start_txn_ord];
  if (!start_txn.is_null()) {
    LedgerViewRow v;
    v.values = VisibleValues(schema, row);
    v.operation = "INSERT";
    v.transaction_id = static_cast<uint64_t>(start_txn.AsInt64());
    v.sequence_number =
        static_cast<uint64_t>(row[t.start_seq_ord].AsInt64());
    out->push_back(std::move(v));
  }
  if (include_delete && t.end_txn_ord >= 0) {
    const Value& end_txn = row[t.end_txn_ord];
    if (!end_txn.is_null()) {
      LedgerViewRow v;
      v.values = VisibleValues(schema, row);
      v.operation = "DELETE";
      v.transaction_id = static_cast<uint64_t>(end_txn.AsInt64());
      v.sequence_number =
          static_cast<uint64_t>(row[t.end_seq_ord].AsInt64());
      out->push_back(std::move(v));
    }
  }
}
}  // namespace

Result<std::vector<LedgerViewRow>> BuildLedgerView(
    const LedgerTableRef& table) {
  if (table.kind == TableKind::kRegular)
    return Status::InvalidArgument("table is not a ledger table");

  std::vector<LedgerViewRow> out;
  const Schema& schema = table.main->schema();
  for (BTree::Iterator it = table.main->Scan(); it.Valid(); it.Next()) {
    // Live versions are never retired, so no DELETE op can exist for them.
    AppendVersionOps(table, schema, it.value(), /*include_delete=*/false,
                     &out);
  }
  if (table.history != nullptr) {
    for (BTree::Iterator it = table.history->Scan(); it.Valid(); it.Next()) {
      AppendVersionOps(table, schema, it.value(), /*include_delete=*/true,
                       &out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LedgerViewRow& a, const LedgerViewRow& b) {
              if (a.transaction_id != b.transaction_id)
                return a.transaction_id < b.transaction_id;
              return a.sequence_number < b.sequence_number;
            });
  return out;
}

std::string FormatLedgerView(const Schema& schema,
                             const std::vector<LedgerViewRow>& rows) {
  std::string out;
  for (size_t ord : schema.VisibleOrdinals()) {
    out += schema.column(ord).name;
    out += "\t";
  }
  out += "Operation\tTransaction ID\n";
  for (const LedgerViewRow& row : rows) {
    for (const Value& v : row.values) {
      out += v.ToString();
      out += "\t";
    }
    out += row.operation;
    out += "\t";
    out += std::to_string(row.transaction_id);
    out += "\n";
  }
  return out;
}

}  // namespace sqlledger
