#include "ledger/row_serializer.h"

#include <cstring>

#include "crypto/merkle.h"
#include "util/coding.h"

namespace sqlledger {

namespace {
constexpr uint8_t kFormatVersion = 0x01;

void SerializeValue(const Value& v, std::vector<uint8_t>* out) {
  switch (v.type()) {
    case DataType::kBool: {
      PutVarint32(out, 1);
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    }
    case DataType::kSmallInt: {
      PutVarint32(out, 2);
      uint16_t u = static_cast<uint16_t>(v.smallint_value());
      PutFixed16(out, u);
      break;
    }
    case DataType::kInt: {
      PutVarint32(out, 4);
      PutFixed32(out, static_cast<uint32_t>(v.int_value()));
      break;
    }
    case DataType::kBigInt:
    case DataType::kTimestamp: {
      PutVarint32(out, 8);
      PutFixed64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    }
    case DataType::kDouble: {
      PutVarint32(out, 8);
      uint64_t bits = 0;
      double d = v.double_value();
      std::memcpy(&bits, &d, 8);
      PutFixed64(out, bits);
      break;
    }
    case DataType::kVarchar:
    case DataType::kVarbinary: {
      const std::string& s = v.string_value();
      PutVarint32(out, static_cast<uint32_t>(s.size()));
      out->insert(out->end(), s.begin(), s.end());
      break;
    }
  }
}
}  // namespace

void AppendRowVersion(const Schema& schema, const Row& row, RowOp op,
                      uint32_t table_id, uint64_t txn_id, uint64_t sequence,
                      std::vector<uint8_t>* out) {
  out->push_back(kFormatVersion);
  out->push_back(static_cast<uint8_t>(op));
  PutFixed32(out, table_id);
  PutFixed64(out, txn_id);
  PutFixed64(out, sequence);

  // Count non-NULL, non-hidden columns first: the column count is part of
  // the hashed metadata (Figure 4).
  uint32_t count = 0;
  for (size_t i = 0; i < schema.num_columns(); i++) {
    if (schema.column(i).hidden) continue;
    if (!row[i].is_null()) count++;
  }
  PutVarint32(out, count);

  for (size_t i = 0; i < schema.num_columns(); i++) {
    const ColumnDef& col = schema.column(i);
    if (col.hidden) continue;
    const Value& v = row[i];
    if (v.is_null()) continue;  // NULLs skipped (paper §3.5.1)
    PutVarint32(out, col.column_id);                  // stable column id
    out->push_back(static_cast<uint8_t>(col.type));   // declared type
    SerializeValue(v, out);                           // length + raw bytes
  }
}

std::vector<uint8_t> SerializeRowVersion(const Schema& schema, const Row& row,
                                         RowOp op, uint32_t table_id,
                                         uint64_t txn_id, uint64_t sequence) {
  std::vector<uint8_t> out;
  AppendRowVersion(schema, row, op, table_id, txn_id, sequence, &out);
  return out;
}

Hash256 RowVersionLeafHash(const Schema& schema, const Row& row, RowOp op,
                           uint32_t table_id, uint64_t txn_id,
                           uint64_t sequence) {
  return MerkleLeafHash(
      Slice(SerializeRowVersion(schema, row, op, table_id, txn_id, sequence)));
}

void RowVersionLeafHashMany(const RowVersionHashJob* jobs, size_t n,
                            Hash256* out) {
  std::vector<uint8_t> arena;
  std::vector<size_t> offsets;
  offsets.reserve(n + 1);
  for (size_t i = 0; i < n; i++) {
    offsets.push_back(arena.size());
    const RowVersionHashJob& j = jobs[i];
    AppendRowVersion(*j.schema, *j.row, j.op, j.table_id, j.txn_id,
                     j.sequence, &arena);
  }
  offsets.push_back(arena.size());

  std::vector<Slice> inputs(n);
  for (size_t i = 0; i < n; i++)
    inputs[i] = Slice(arena.data() + offsets[i], offsets[i + 1] - offsets[i]);
  MerkleLeafHashMany(inputs.data(), n, out);
}

}  // namespace sqlledger
