// Ledger truncation (paper §5.2): bounded retention of historical ledger
// data. The procedure:
//   1. verify the ledger against trusted digests (refuse to truncate an
//      inconsistent database);
//   2. dummy-update every live ledger-table row whose digest still lives in
//      a block about to be truncated, moving its protection into fresh
//      transactions and blocks;
//   3. generate a digest (closes the block holding the dummy updates);
//   4. delete history rows retired by truncated transactions;
//   5. delete the truncated blocks and transaction entries;
//   6. record the truncation in the append-only sys_ledger_truncations
//      table so the operation is itself audited, and so the verifier can
//      distinguish truncated references from tampering.
//
// Digests older than the truncation point stop being verifiable — callers
// must keep (at least) digests at or after the cutoff.

#ifndef SQLLEDGER_LEDGER_TRUNCATION_H_
#define SQLLEDGER_LEDGER_TRUNCATION_H_

#include <vector>

#include "ledger/digest.h"
#include "ledger/ledger_database.h"
#include "util/status.h"

namespace sqlledger {

/// Truncates all ledger data in blocks below `below_block`. `digests` are
/// the trusted digests used for the pre-truncation verification; they must
/// cover the database state (verification must pass). Fails with
/// NotSupported if an append-only ledger table still holds rows anchored in
/// the truncated range (they cannot be dummy-updated).
Status TruncateLedger(LedgerDatabase* db, uint64_t below_block,
                      const std::vector<DatabaseDigest>& digests);

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_TRUNCATION_H_
