#include "ledger/schema_changes.h"

namespace sqlledger {

// ---- Ledger metadata recording (paper §3.5.2, Figure 6) ----

Status LedgerDatabase::RecordTableMetadata(Transaction* txn,
                                           const CatalogEntry& entry) {
  CatalogEntry* sys = FindTableById(kSysTablesTableId);
  if (sys == nullptr) return Status::OK();  // ledger disabled
  SL_RETURN_IF_ERROR(AcquireTableLock(txn, *sys, LockMode::kExclusive));
  Row row{Value::Varchar(entry.name),
          Value::BigInt(static_cast<int64_t>(entry.table_id)),
          Value::Varchar(TableKindName(entry.kind))};
  return LedgerInsert(txn, sys->ref, row);
}

Status LedgerDatabase::RecordColumnMetadata(Transaction* txn,
                                            uint32_t table_id,
                                            const ColumnDef& col) {
  CatalogEntry* sys = FindTableById(kSysColumnsTableId);
  if (sys == nullptr) return Status::OK();  // ledger disabled
  SL_RETURN_IF_ERROR(AcquireTableLock(txn, *sys, LockMode::kExclusive));
  Row row{Value::BigInt(static_cast<int64_t>(table_id)),
          Value::BigInt(static_cast<int64_t>(col.column_id)),
          Value::Varchar(col.name), Value::Varchar(DataTypeName(col.type))};
  return LedgerInsert(txn, sys->ref, row);
}

namespace {
/// Updates the sys_ledger_columns row for (table_id, column_id), renaming it.
Status UpdateColumnMetadata(LedgerDatabase* db, Transaction* txn,
                            uint32_t table_id, uint32_t column_id,
                            const std::string& new_name,
                            const std::string& data_type) {
  Row row{Value::BigInt(static_cast<int64_t>(table_id)),
          Value::BigInt(static_cast<int64_t>(column_id)),
          Value::Varchar(new_name), Value::Varchar(data_type)};
  return db->Update(txn, "sys_ledger_columns", row);
}
}  // namespace

// ---- AddColumn (paper §3.5.1) ----

Status LedgerDatabase::AddColumn(const std::string& table,
                                 const std::string& column, DataType type,
                                 uint32_t max_length) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr)
    return Status::NotFound("table '" + table + "' not found");
  if (entry->main->schema().FindColumn(column) >= 0)
    return Status::AlreadyExists("column '" + column + "' already exists");

  // Only nullable columns can be added: NULLs are skipped by the canonical
  // row format, so existing hashes stay valid. The table X lock excludes
  // all concurrent readers/writers for the duration of the change.
  SL_RETURN_IF_ERROR(WithTableExclusive(entry, [&]() -> Status {
    entry->main->mutable_schema()->AddColumn(column, type, /*nullable=*/true,
                                             max_length);
    entry->main->ExtendRows(Value::Null(type));
    if (entry->history != nullptr) {
      entry->history->mutable_schema()->AddColumn(column, type, true,
                                                  max_length);
      entry->history->ExtendRows(Value::Null(type));
    }
    entry->ref.RefreshOrdinals();
    return Status::OK();
  }));

  if (options_.enable_ledger && !entry->is_system) {
    const Schema& schema = entry->main->schema();
    const ColumnDef& col = schema.column(schema.num_columns() - 1);
    auto txn = Begin("system:ddl");
    if (!txn.ok()) return txn.status();
    Status st = RecordColumnMetadata(*txn, entry->table_id, col);
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
    SL_RETURN_IF_ERROR(Commit(*txn));
  }
  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

// ---- DropColumn (paper §3.5.2) ----

Status LedgerDatabase::DropColumn(const std::string& table,
                                  const std::string& column) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr)
    return Status::NotFound("table '" + table + "' not found");
  int ord = entry->main->schema().FindColumn(column);
  if (ord < 0) return Status::NotFound("column '" + column + "' not found");
  const ColumnDef& col = entry->main->schema().column(ord);
  if (col.hidden)
    return Status::InvalidArgument("cannot drop a system column");
  for (size_t key_ord : entry->main->schema().key_ordinals()) {
    if (static_cast<int>(key_ord) == ord)
      return Status::InvalidArgument("cannot drop a primary-key column");
  }
  uint32_t column_id = col.column_id;
  std::string dropped_name =
      "DroppedColumn_" + column + "_" + std::to_string(column_id);

  // Logical drop: data stays, the column disappears from the user schema
  // but keeps participating in hashes of historical versions.
  SL_RETURN_IF_ERROR(WithTableExclusive(entry, [&]() -> Status {
    entry->main->mutable_schema()->mutable_column(ord)->dropped = true;
    if (entry->history != nullptr) {
      int history_ord = entry->history->schema().FindColumn(column);
      if (history_ord >= 0)
        entry->history->mutable_schema()
            ->mutable_column(history_ord)
            ->dropped = true;
    }
    entry->ref.RefreshOrdinals();
    return Status::OK();
  }));

  if (options_.enable_ledger && !entry->is_system) {
    auto txn = Begin("system:ddl");
    if (!txn.ok()) return txn.status();
    Status st = UpdateColumnMetadata(this, *txn, entry->table_id, column_id,
                                     dropped_name, DataTypeName(col.type));
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
    SL_RETURN_IF_ERROR(Commit(*txn));
  }
  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

// ---- DropTable (paper §3.5.2, Figure 6) ----

Status LedgerDatabase::DropTable(const std::string& table) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr)
    return Status::NotFound("table '" + table + "' not found");
  if (entry->is_system)
    return Status::InvalidArgument("cannot drop a system table");

  std::string dropped_name =
      "DroppedTable_" + table + "_" + std::to_string(entry->table_id);

  if (options_.enable_ledger) {
    auto txn = Begin("system:ddl");
    if (!txn.ok()) return txn.status();
    Row row{Value::Varchar(dropped_name),
            Value::BigInt(static_cast<int64_t>(entry->table_id)),
            Value::Varchar(TableKindName(entry->kind))};
    Status st = Update(*txn, "sys_ledger_tables", row);
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
    SL_RETURN_IF_ERROR(Commit(*txn));
  }

  {
    WriterMutexLock lock(&catalog_mu_);
    name_index_.erase(table);
    entry->name = dropped_name;
    entry->main->set_name(dropped_name);
    entry->dropped = true;
  }

  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

// ---- AlterColumnType (paper §3.5.3) ----

Status LedgerDatabase::AlterColumnType(const std::string& table,
                                       const std::string& column,
                                       DataType new_type) {
  CatalogEntry* entry = FindTable(table);
  if (entry == nullptr)
    return Status::NotFound("table '" + table + "' not found");
  if (entry->kind == TableKind::kAppendOnly)
    return Status::NotSupported(
        "ALTER COLUMN TYPE needs UPDATE and is not available on append-only "
        "tables");
  int old_ord = entry->main->schema().FindColumn(column);
  if (old_ord < 0) return Status::NotFound("column '" + column + "' not found");
  const ColumnDef old_col = entry->main->schema().column(old_ord);
  if (old_col.type == new_type) return Status::OK();
  for (size_t key_ord : entry->main->schema().key_ordinals()) {
    if (static_cast<int>(key_ord) == old_ord)
      return Status::InvalidArgument(
          "cannot alter the type of a primary-key column");
  }

  // Drop the old column and add the replacement under the original name,
  // excluding concurrent users of the table for the structural phase.
  SL_RETURN_IF_ERROR(WithTableExclusive(entry, [&]() -> Status {
    entry->main->mutable_schema()->mutable_column(old_ord)->dropped = true;
    entry->main->mutable_schema()->AddColumn(column, new_type,
                                             /*nullable=*/true, 0);
    entry->main->ExtendRows(Value::Null(new_type));
    if (entry->history != nullptr) {
      int history_old_ord = entry->history->schema().FindColumn(column);
      entry->history->mutable_schema()
          ->mutable_column(history_old_ord)
          ->dropped = true;
      entry->history->mutable_schema()->AddColumn(column, new_type, true, 0);
      entry->history->ExtendRows(Value::Null(new_type));
    }
    entry->ref.RefreshOrdinals();
    return Status::OK();
  }));

  const Schema& schema = entry->main->schema();

  // Capture the physical rows (already extended with the NULL cell for the
  // new column) before repopulation churns the table.
  std::vector<Row> current_rows;
  for (BTree::Iterator it = entry->main->Scan(); it.Valid(); it.Next())
    current_rows.push_back(it.value());

  // Repopulate through regular ledger DML so every converted version is
  // hashed into the ledger (§3.5.3).
  auto txn = Begin("system:ddl");
  if (!txn.ok()) return txn.status();
  std::vector<size_t> visible = schema.VisibleOrdinals();
  for (const Row& old_physical : current_rows) {
    Row user_row;
    user_row.reserve(visible.size());
    for (size_t ord : visible) user_row.push_back(old_physical[ord]);
    auto converted = old_physical[old_ord].CastTo(new_type);
    if (!converted.ok()) {
      Abort(*txn);
      return converted.status();
    }
    user_row.back() = std::move(*converted);  // new column is last visible
    Status st = Update(*txn, table, user_row);
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
  }
  if (options_.enable_ledger && !entry->is_system) {
    Status st = UpdateColumnMetadata(
        this, *txn, entry->table_id, old_col.column_id,
        "DroppedColumn_" + column + "_" + std::to_string(old_col.column_id),
        DataTypeName(old_col.type));
    if (st.ok()) {
      ColumnDef new_col = schema.column(schema.num_columns() - 1);
      st = RecordColumnMetadata(*txn, entry->table_id, new_col);
    }
    if (!st.ok()) {
      Abort(*txn);
      return st;
    }
  }
  SL_RETURN_IF_ERROR(Commit(*txn));
  if (!options_.data_dir.empty()) return Checkpoint();
  return Status::OK();
}

}  // namespace sqlledger
