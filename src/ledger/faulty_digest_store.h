// Network-fault decorator for DigestStore (DESIGN.md §9). The paper's
// digest store is a *remote* service (Azure Immutable Blob Storage) that
// times out, throttles and partitions; every local implementation is
// perfectly reliable, so nothing exercised the upload pipeline's failure
// handling. This wrapper injects the faults a remote store actually
// produces, with the same seeded-RNG conventions as FaultInjectionEnv:
//
//   - sustained outages (scripted begin/end; all calls fail while active),
//   - one-shot transient upload errors (scripted countdowns),
//   - ambiguous outcomes: the upload IS stored but the ack is lost, so the
//     caller sees an error for a digest the store now holds,
//   - duplicate delivery: one Upload reaches the store twice,
//   - seeded probabilistic mixes of the above for torture tests.
//
// The wrapper never alters payloads — integrity faults (forks, corruption)
// are the domain of the tamper machinery, not the network.

#ifndef SQLLEDGER_LEDGER_FAULTY_DIGEST_STORE_H_
#define SQLLEDGER_LEDGER_FAULTY_DIGEST_STORE_H_

#include <string>
#include <vector>

#include "ledger/digest_store.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace sqlledger {

class FaultyDigestStore : public DigestStore {
 public:
  /// Per-Upload fault probabilities for the seeded mode. Scripted controls
  /// take precedence; probabilities apply only when no script fires.
  struct Probabilities {
    double transient_error = 0;  // upload fails, nothing stored
    double ack_lost = 0;         // upload stored, error returned
    double duplicate = 0;        // upload delivered twice
  };

  /// `target` is not owned and must outlive the wrapper.
  explicit FaultyDigestStore(DigestStore* target, uint64_t seed = 42);

  // ---- Scripted fault controls ----

  /// Sustained outage: while active, Upload/ListAll/Latest all fail with
  /// IOError (nothing reaches the target). Idempotent.
  void SetOutage(bool active);
  bool outage() const;
  /// The next `n` uploads fail with `code` without reaching the target.
  void FailUploads(int n, StatusCode code = StatusCode::kIOError);
  /// The next `n` uploads are stored but report IOError ("ack lost").
  void LoseAcks(int n);
  /// The next `n` uploads are delivered to the target twice.
  void DeliverDuplicates(int n);
  /// Seeded probabilistic faults, rolled per upload in a fixed order
  /// (transient, ack-lost, duplicate) so a seed replays byte-for-byte.
  void SetProbabilities(const Probabilities& p);

  // ---- Counters ----
  uint64_t upload_attempts() const;
  uint64_t injected_failures() const;  // outage + transient rejections
  uint64_t lost_acks() const;
  uint64_t duplicates_delivered() const;

  // ---- DigestStore ----
  Status Upload(const DatabaseDigest& digest) override;
  Result<std::vector<DatabaseDigest>> ListAll() const override;
  Result<DatabaseDigest> Latest(const std::string& create_time) const override;

 private:
  Status CheckReadLocked() const REQUIRES(mu_);

  DigestStore* const target_;
  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  bool outage_ GUARDED_BY(mu_) = false;
  int fail_countdown_ GUARDED_BY(mu_) = 0;
  StatusCode fail_code_ GUARDED_BY(mu_) = StatusCode::kIOError;
  int lose_ack_countdown_ GUARDED_BY(mu_) = 0;
  int duplicate_countdown_ GUARDED_BY(mu_) = 0;
  Probabilities prob_ GUARDED_BY(mu_);
  uint64_t attempts_ GUARDED_BY(mu_) = 0;
  uint64_t injected_failures_ GUARDED_BY(mu_) = 0;
  uint64_t lost_acks_ GUARDED_BY(mu_) = 0;
  uint64_t duplicates_ GUARDED_BY(mu_) = 0;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_FAULTY_DIGEST_STORE_H_
