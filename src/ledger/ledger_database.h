// LedgerDatabase: the public facade composing the storage engine, the
// transaction layer and the ledger core into the system described by the
// paper — transparent ledger tables over a transactional engine, with
// digest generation, verification, receipts, schema evolution and
// truncation.
//
// Concurrency model: strict two-phase hierarchical locking — point DML
// takes an intention lock on the table plus a row lock (IS+S for reads,
// IX+X for writes), scans take a table S lock, DDL takes table X — so
// transactions touching different rows of the same table run concurrently.
// Commits serialize through the WAL append and the Database Ledger's slot
// assignment. Checkpoints, verification and ledger truncation quiesce the
// database (wait for active transactions to drain, block new ones),
// mirroring the paper's advice to run verification on an idle replica
// (§4.2).

#ifndef SQLLEDGER_LEDGER_LEDGER_DATABASE_H_
#define SQLLEDGER_LEDGER_LEDGER_DATABASE_H_

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "ledger/database_ledger.h"
#include "ledger/digest.h"
#include "ledger/digest_pipeline.h"
#include "ledger/ledger_table.h"
#include "ledger/ledger_view.h"
#include "ledger/verification_state.h"
#include "storage/wal.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/trace.h"

namespace sqlledger {

/// Group-commit tuning (DESIGN.md §10). Commits from concurrent sessions
/// are batched: one leader drains the queue of encoded commit records,
/// appends them to the WAL as a single write with a single fsync, and
/// wakes the followers. These knobs bound the batch.
struct CommitOptions {
  /// Maximum transactions the leader drains into one group (one WAL batch
  /// + one fsync).
  size_t max_group_size = 64;
  /// How long a newly elected leader lingers for company before sealing
  /// the group. 0 = never wait: the leader takes whatever has already
  /// accumulated (groups still form under contention, because committers
  /// queue up while the previous leader's fsync is in flight). Nonzero
  /// trades commit latency for larger groups. Must stay 0 under the
  /// deterministic simulator: a timed wait would make group boundaries
  /// depend on wall-clock scheduling.
  uint64_t max_group_wait_micros = 0;
};

struct LedgerDatabaseOptions {
  /// Directory for the WAL and checkpoints; empty = ephemeral (no
  /// durability, used by short-lived tests and benchmarks).
  std::string data_dir;
  /// Logical database id embedded in digests.
  std::string database_id = "sqlledger";
  /// false = plain transactional engine with no ledger machinery at all —
  /// the "traditional SQL Server" baseline of the paper's §4 experiments.
  /// All tables are forced to TableKind::kRegular.
  bool enable_ledger = true;
  /// Transactions per Database Ledger block (paper default: 100K).
  uint64_t block_size = 100000;
  /// fsync the WAL on every commit group.
  bool sync_wal = false;
  /// Group-commit batching knobs.
  CommitOptions commit;
  /// Lock wait budget before a transaction is aborted (deadlock handling).
  std::chrono::milliseconds lock_timeout{1000};
  /// Injectable clock, microseconds since epoch. Defaults to system clock.
  std::function<int64_t()> clock;
  /// Injectable clock for metrics + trace timing (monotonic microseconds),
  /// DISTINCT from `clock`: instrumentation must never change how often the
  /// commit-timestamp clock is read, or simulated commit timestamps would
  /// shift (the simulator pins both clocks, separately; DESIGN.md §13).
  /// Defaults to steady-clock microseconds.
  MetricsClock metrics_clock;
  /// Capacity of the in-memory trace-event ring buffer (DESIGN.md §13).
  size_t trace_capacity = 4096;
  /// Key for the receipt/digest HMAC signer (see DESIGN.md §1.3).
  std::vector<uint8_t> signing_key = {'d', 'e', 'v', '-', 'k', 'e', 'y'};
  std::string signing_key_id = "dev-key-1";
  /// Force a fresh incarnation tag even when reopening existing data —
  /// set by point-in-time-restore simulation (paper §3.6).
  bool force_new_incarnation = false;
  /// Storage environment for all file I/O (WAL, checkpoints, recovery).
  /// nullptr = Env::Default(); tests inject a FaultInjectionEnv here.
  /// Not owned; must outlive the database.
  Env* env = nullptr;
};

/// Catalog entry for one table (regular or ledger).
struct CatalogEntry {
  uint32_t table_id = 0;
  std::string name;
  TableKind kind = TableKind::kRegular;
  bool dropped = false;
  bool is_system = false;
  std::unique_ptr<TableStore> main;
  std::unique_ptr<TableStore> history;  // updateable ledger tables only
  LedgerTableRef ref;                   // cached physical reference
};

/// Row of the table-operations system view (paper Figure 6).
struct TableOperationRow {
  std::string table_name;
  uint32_t table_id = 0;
  std::string operation;  // "CREATE" or "DROP"
  uint64_t transaction_id = 0;
};

/// Point-in-time operational statistics (monitoring surface).
struct DatabaseStats {
  uint64_t committed_transactions = 0;
  uint64_t aborted_transactions = 0;
  // Group-commit counters (DESIGN.md §10): groups formed, transactions
  // that committed through a group, the largest group seen, and the
  // fsyncs actually issued against the WAL. syncs saved by batching =
  // group_commit_txns - commit_groups.
  uint64_t commit_groups = 0;
  uint64_t group_commit_txns = 0;
  uint64_t largest_commit_group = 0;
  uint64_t wal_syncs = 0;
  uint64_t closed_blocks = 0;
  uint64_t open_block_entries = 0;
  uint64_t ledger_queue_depth = 0;
  uint64_t total_ledger_entries = 0;
  uint64_t table_count = 0;         // excluding system tables
  uint64_t ledger_table_count = 0;  // append-only + updateable user tables
  uint64_t live_rows = 0;
  uint64_t history_rows = 0;
  // Incremental verification counters (DESIGN.md §11): runs of
  // VerifyLedgerIncremental, how many of them fell back to a full pass,
  // and the cumulative block / row-version hashing work done vs skipped.
  uint64_t incremental_verifications = 0;
  uint64_t verification_fallbacks = 0;
  uint64_t blocks_reverified = 0;
  uint64_t blocks_skipped = 0;
  uint64_t row_versions_skipped = 0;

  std::string ToString() const;
};

/// A recorded ledger truncation (paper §5.2), used by the verifier to
/// distinguish truncated references from tampering.
struct TruncationRecord {
  uint64_t truncated_below_block = 0;
  uint64_t min_txn_id = 0;
  uint64_t max_txn_id = 0;
};

class LedgerDatabase {
 public:
  /// Opens (or creates) a database. Runs recovery if `data_dir` holds a
  /// checkpoint and/or WAL: checkpoint load, then idempotent WAL replay
  /// that also reconstructs the Database Ledger's in-memory queue from the
  /// commit records (paper §3.3.2).
  static Result<std::unique_ptr<LedgerDatabase>> Open(
      LedgerDatabaseOptions options);

  /// Point-in-time restore (paper §3.6): copies the durable state at
  /// `source_dir` into `options.data_dir` and opens it as a NEW incarnation
  /// of the database (fresh create-time tag), so its digests coexist with
  /// the original's in the digest store. `source_dir` must hold a
  /// checkpointed database; it is opened read-only (copied).
  static Result<std::unique_ptr<LedgerDatabase>> Restore(
      const std::string& source_dir, LedgerDatabaseOptions options);

  ~LedgerDatabase();

  LedgerDatabase(const LedgerDatabase&) = delete;
  LedgerDatabase& operator=(const LedgerDatabase&) = delete;

  // ---- DDL ----

  /// Creates a table. `user_schema` holds the application columns with the
  /// primary key set; ledger system columns are appended automatically
  /// (paper §3.1) and a history table is created for updateable ledger
  /// tables. The creation is recorded in the ledger metadata tables.
  Status CreateTable(const std::string& name, const Schema& user_schema,
                     TableKind kind);
  /// Non-clustered index management (physical schema change, §3.5).
  Status CreateIndex(const std::string& table, const std::string& index_name,
                     const std::vector<std::string>& columns, bool unique);
  Status DropIndex(const std::string& table, const std::string& index_name);

  // Logical schema changes (§3.5; implemented in schema_changes.cc).
  Status AddColumn(const std::string& table, const std::string& column,
                   DataType type, uint32_t max_length = 0);
  Status DropColumn(const std::string& table, const std::string& column);
  Status DropTable(const std::string& table);
  Status AlterColumnType(const std::string& table, const std::string& column,
                         DataType new_type);

  // ---- Transactions ----

  /// Starts a transaction on behalf of `user`. The returned pointer stays
  /// valid until Commit/Abort.
  Result<Transaction*> Begin(const std::string& user = "app");
  /// Commits: forms the ledger transaction entry from the per-table Merkle
  /// roots, assigns its block slot, writes the WAL commit record and
  /// appends to the Database Ledger (paper §3.3.2).
  Status Commit(Transaction* txn);
  void Abort(Transaction* txn);
  Status Savepoint(Transaction* txn, const std::string& name);
  Status RollbackToSavepoint(Transaction* txn, const std::string& name);

  // ---- DML (visible-column rows; locks acquired automatically) ----

  Status Insert(Transaction* txn, const std::string& table,
                const Row& user_row);
  Status Update(Transaction* txn, const std::string& table,
                const Row& user_row);
  Status Delete(Transaction* txn, const std::string& table,
                const KeyTuple& key);
  /// Point lookup returning visible columns.
  Result<Row> Get(Transaction* txn, const std::string& table,
                  const KeyTuple& key);
  /// Full scan returning visible columns in clustered-key order.
  Result<std::vector<Row>> Scan(Transaction* txn, const std::string& table);
  /// First row whose clustered key starts with `prefix` (visible columns);
  /// NotFound when no such row exists.
  Result<Row> SeekFirst(Transaction* txn, const std::string& table,
                        const KeyTuple& prefix);

  // ---- Ledger features ----

  /// Generates a Database Digest (paper §2.2): closes the open block and
  /// returns the JSON-serializable digest of the newest block.
  Result<DatabaseDigest> GenerateDigest();

  /// Starts fault-tolerant digest protection (DESIGN.md §9): builds a
  /// DigestUploadPipeline targeting `store` (not owned, must outlive the
  /// database or StopDigestProtection) and, when `interval` is non-zero,
  /// starts its background cadence thread. An empty options.outbox_dir
  /// defaults to "<data_dir>/digest_outbox"; an unset options.env defaults
  /// to the database's Env. Fails if protection is already running or if
  /// the database is ephemeral with no outbox_dir given.
  Status StartDigestProtection(
      DigestStore* store, DigestPipelineOptions pipeline_options = {},
      std::chrono::milliseconds interval = std::chrono::milliseconds::zero());
  /// Stops the cadence thread (if any) and tears down the pipeline. The
  /// durable outbox stays on disk for the next StartDigestProtection.
  void StopDigestProtection();
  /// The running pipeline, or nullptr when protection is not started.
  /// Tests and the simulator drive its synchronous core directly.
  DigestUploadPipeline* digest_pipeline() { return digest_pipeline_.get(); }
  /// Health snapshot. Without a pipeline this reports the honest worst
  /// case: every closed block unprotected, no durable digest ever.
  DigestProtectionStatus GetDigestProtectionStatus() const;
  /// Ledger view of one table (paper §2.1, Figure 2).
  Result<std::vector<LedgerViewRow>> GetLedgerView(const std::string& table);
  /// Table create/drop audit view (paper Figure 6).
  Result<std::vector<TableOperationRow>> GetTableOperationsView();

  // ---- Durability ----

  /// Quiesces, drains the ledger queue into its system table, snapshots
  /// all tables + catalog, and resets the WAL (paper §3.3.2).
  Status Checkpoint();

  // ---- Introspection (used by the verifier, receipts, truncation, tests
  // and benchmarks) ----

  Result<LedgerTableRef> GetTableRef(const std::string& name);
  /// All catalog entries, id-ordered.
  std::vector<CatalogEntry*> AllTables();
  DatabaseLedger* database_ledger() { return ledger_.get(); }
  const Signer& signer() const { return signer_; }
  const LedgerDatabaseOptions& options() const { return options_; }
  const std::string& create_time() const { return create_time_; }
  int64_t NowMicros() const { return options_.clock(); }
  uint64_t committed_txn_count() const;
  /// Snapshot of operational counters.
  DatabaseStats GetStats();

  // ---- Observability (DESIGN.md §13) ----

  /// The database-wide metric registry. All Stats counters are registry-
  /// backed; subsystems (WAL, lock manager, digest pipeline, verifier)
  /// record through pointers resolved from it at construction time.
  MetricRegistry* metrics() const { return metrics_.get(); }
  /// The bounded in-memory trace ring (Chrome trace-event export).
  Tracer* tracer() const { return tracer_.get(); }
  /// Point-in-time copy of every registered metric.
  sqlledger::MetricsSnapshot MetricsSnapshot() const {
    return metrics_->Snapshot();
  }

  /// Truncation records, newest watermark last (paper §5.2).
  std::vector<TruncationRecord> GetTruncationRecords();
  /// Appends a truncation record (called by TruncateLedger).
  Status RecordTruncation(const TruncationRecord& record);

  // ---- Incremental verification state (DESIGN.md §11) ----

  /// The cached verifier watermark, if one was loaded at Open or stored by
  /// a successful incremental verification. Empty = verify from scratch.
  std::optional<VerificationState> GetVerificationState() const;
  /// Caches `state` and, for durable databases, persists it next to the
  /// checkpoint (atomic temp+rename). The state must belong to this
  /// database and incarnation.
  Status StoreVerificationState(const VerificationState& state);
  /// Drops the cached watermark and removes the on-disk state file.
  /// Called by TruncateLedger: a truncation changes which transaction
  /// references are exempt, so the old watermark no longer attests what it
  /// claims. Best-effort on the file removal.
  void ClearVerificationState();
  /// Called by the digest pipeline when a digest is acknowledged durable in
  /// the external store; incremental verification anchors to it.
  void NoteDurableDigest(const DatabaseDigest& digest);
  /// Latest digest known durable in the external store, if any.
  std::optional<DatabaseDigest> latest_durable_digest() const;
  /// Accumulates one VerifyLedgerIncremental run into GetStats counters.
  void RecordIncrementalVerification(bool fell_back, uint64_t blocks_reverified,
                                     uint64_t blocks_skipped,
                                     uint64_t row_versions_skipped);

  /// Waits for active transactions to finish and blocks new ones while the
  /// returned guard lives. Used by checkpoint, verification and truncation.
  class QuiesceGuard {
   public:
    explicit QuiesceGuard(LedgerDatabase* db);
    ~QuiesceGuard();

   private:
    LedgerDatabase* db_;
  };

  /// Direct store access for tamper-simulation in tests/benches (the
  /// storage-level attacker of §2.5.2). Never used by library code paths.
  TableStore* GetStoreForTesting(const std::string& table,
                                 bool history = false);

 private:
  explicit LedgerDatabase(LedgerDatabaseOptions options);

  /// One committer's seat in the group-commit queue (DESIGN.md §10). The
  /// WAL payload is fully encoded (with a placeholder slot) before the
  /// request is enqueued; the leader patches the slot in once assigned.
  struct CommitRequest {
    Transaction* txn = nullptr;
    int64_t commit_ts_micros = 0;
    std::vector<uint8_t> payload;  // kind byte + encoded WalCommitRecord
    size_t slot_offset = 0;        // offset of the patchable slot pair
    bool done = false;
    Status result;
  };

  /// Enqueues `req` and blocks until a leader (possibly this thread) has
  /// committed or failed it. Returns the request's individual Status.
  Status CommitThroughGroup(CommitRequest* req);
  /// Leader body: assigns contiguous slots, patches + batch-appends the
  /// WAL records (one fsync), applies the ledger entries, and fills each
  /// member's result. Runs under commit_mu_ only — group_mu_ is released
  /// so new committers keep enqueuing while the fsync is in flight.
  void ProcessGroup(const std::vector<CommitRequest*>& group)
      EXCLUDES(group_mu_);

  Status InitFresh();
  Status Recover();
  /// Checkpoint body; Checkpoint() wraps it with duration metrics/trace so
  /// recording happens after every lock scope has exited.
  Status CheckpointImpl();
  Status ReplayWalRecord(Slice payload);
  void ReconcileDdlCounters();
  std::vector<uint8_t> EncodeCatalogMeta() const;
  Status DecodeCatalogMeta(Slice meta,
                           std::vector<std::unique_ptr<TableStore>> stores);

  CatalogEntry* FindTable(const std::string& name);
  CatalogEntry* FindTableById(uint32_t table_id);
  CatalogEntry* FindTableByIdLocked(uint32_t table_id)
      REQUIRES_SHARED(catalog_mu_);
  Status AcquireTableLock(Transaction* txn, const CatalogEntry& entry,
                          LockMode mode);
  Status AcquireRowLock(Transaction* txn, const CatalogEntry& entry,
                        const KeyTuple& key, LockMode mode);
  /// Clustered key of `user_row` (visible-column order), for row locking.
  Result<KeyTuple> UserKeyOf(const CatalogEntry& entry, const Row& user_row);
  /// Runs a short internal transaction holding the table X lock around a
  /// schema mutation, excluding all concurrent users of the table.
  Status WithTableExclusive(CatalogEntry* entry,
                            const std::function<Status()>& body);
  /// Records a CREATE/DROP/column metadata operation through the ledger
  /// metadata tables inside `txn` (implemented in schema_changes.cc).
  Status RecordTableMetadata(Transaction* txn, const CatalogEntry& entry);
  Status RecordColumnMetadata(Transaction* txn, uint32_t table_id,
                              const ColumnDef& col);
  friend Status TruncateLedger(LedgerDatabase* db, uint64_t below_block,
                               const std::vector<DatabaseDigest>& digests);

  LedgerDatabaseOptions options_;
  Env* env_ = nullptr;  // resolved from options_.env (never null after ctor)
  std::string create_time_;
  std::string wal_path_;
  std::string checkpoint_path_;
  std::string verification_state_path_;  // empty for ephemeral databases

  // Metrics + tracing (DESIGN.md §13). Declared before every subsystem that
  // records into them (WAL, lock manager, digest pipeline), so they are
  // destroyed last. The m_* pointers below are resolved once in the
  // constructor and never change; recording through them is lock-free.
  std::unique_ptr<MetricRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  Counter* m_commit_txns_ = nullptr;       // commit.txns_total
  Counter* m_commit_aborts_ = nullptr;     // commit.aborts_total
  Counter* m_commit_groups_ = nullptr;     // commit.groups_total
  Counter* m_commit_group_txns_ = nullptr; // commit.group_txns_total
  Histogram* m_commit_group_size_ = nullptr;  // commit.group_size
  Histogram* m_commit_wait_ = nullptr;        // commit.wait_micros
  Histogram* m_checkpoint_micros_ = nullptr;  // checkpoint.duration_micros
  Counter* m_checkpoint_runs_ = nullptr;      // checkpoint.runs_total
  Histogram* m_recovery_micros_ = nullptr;    // recovery.duration_micros
  Counter* m_recovery_runs_ = nullptr;        // recovery.runs_total
  Counter* m_verify_incremental_runs_ = nullptr;  // verify.incremental_total
  Counter* m_verify_fallbacks_ = nullptr;         // verify.fallbacks_total
  Counter* m_blocks_reverified_ = nullptr;   // verify.blocks_reverified_total
  Counter* m_blocks_skipped_ = nullptr;      // verify.blocks_skipped_total
  Counter* m_row_versions_skipped_ = nullptr;
  // ^ verify.row_versions_skipped_total

  // Lock hierarchy (see DESIGN.md §8):
  //   group_mu_ -> commit_mu_ -> catalog_mu_ -> txn_mu_.
  // Never acquire a lock to the left while holding one to the right. (The
  // group-commit leader in fact releases group_mu_ before taking
  // commit_mu_, so the two are never held together; the ordering exists so
  // the rule stays checkable.)

  mutable SharedMutex catalog_mu_;
  std::map<uint32_t, std::unique_ptr<CatalogEntry>> catalog_
      GUARDED_BY(catalog_mu_);
  std::map<std::string, uint32_t> name_index_ GUARDED_BY(catalog_mu_);
  uint32_t next_table_id_ GUARDED_BY(catalog_mu_) = kFirstUserTableId;

  // Database-ledger system stores (not in catalog_; internal). Set once
  // during single-threaded InitFresh/Recover, immutable afterwards.
  std::unique_ptr<TableStore> ledger_txns_store_;
  std::unique_ptr<TableStore> ledger_blocks_store_;
  std::unique_ptr<DatabaseLedger> ledger_;

  // The Wal object itself is set once at Open; commit_mu_ serializes every
  // append/reset against the paired ledger slot assignment, so digests,
  // commits and WAL resets see one consistent order.
  std::unique_ptr<Wal> wal_ PT_GUARDED_BY(commit_mu_);
  // Whether wal_ was created at Open. Set once before any concurrency,
  // read without commit_mu_ by committers deciding whether to encode.
  bool wal_enabled_ = false;
  Mutex commit_mu_;

  // Group-commit queue (leader–follower; DESIGN.md §10). group_mu_ only
  // protects the queue, leader flag and group counters — it is never held
  // across I/O.
  Mutex group_mu_;
  CondVar group_cv_;
  std::deque<CommitRequest*> commit_queue_ GUARDED_BY(group_mu_);
  bool commit_leader_active_ GUARDED_BY(group_mu_) = false;
  // Group counters live in the registry (commit.groups_total,
  // commit.group_txns_total, commit.group_size) — recorded lock-free by the
  // leader after it releases group_mu_.

  LockManager locks_;
  HmacSigner signer_;

  // Digest protection. Destroyed before ledger_/stores (member order: the
  // destructor resets it explicitly first) since the pipeline calls back
  // into the database.
  std::unique_ptr<DigestUploadPipeline> digest_pipeline_;

  // Transaction registry + quiescing.
  mutable Mutex txn_mu_;
  CondVar txn_cv_;
  std::map<uint64_t, std::unique_ptr<Transaction>> active_txns_
      GUARDED_BY(txn_mu_);
  uint64_t next_txn_id_ GUARDED_BY(txn_mu_) = 1;
  bool quiescing_ GUARDED_BY(txn_mu_) = false;
  // committed/aborted counts live in the registry (commit.txns_total,
  // commit.aborts_total).

  // Incremental-verification watermark + counters (DESIGN.md §11).
  // verify_mu_ is a leaf: it is never held while acquiring any other lock,
  // and may be taken from the digest pipeline's ack path (NoteDurableDigest)
  // and from the verifier.
  mutable Mutex verify_mu_;
  std::optional<VerificationState> verification_state_ GUARDED_BY(verify_mu_);
  std::optional<DatabaseDigest> latest_durable_digest_ GUARDED_BY(verify_mu_);
  // Incremental-verification counters live in the registry
  // (verify.incremental_total, verify.fallbacks_total, verify.*_total).
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_LEDGER_DATABASE_H_
