// Shared ledger-core types: table kinds, transaction entries, block records,
// and the reserved system-table ids.

#ifndef SQLLEDGER_LEDGER_TYPES_H_
#define SQLLEDGER_LEDGER_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/result.h"
#include "util/slice.h"

namespace sqlledger {

/// How a table participates in the ledger (paper §2.1).
enum class TableKind : uint8_t {
  kRegular = 0,     // no ledger protection (baseline for the experiments)
  kAppendOnly = 1,  // insert-only ledger table, no history table
  kUpdateable = 2,  // full DML; prior versions preserved in a history table
};

const char* TableKindName(TableKind kind);

/// Reserved table ids. User tables start at kFirstUserTableId.
/// The two database-ledger tables are the tamper-evident structure itself;
/// the sys_ledger_* tables are updateable ledger tables recording schema
/// metadata operations (paper §3.5.2, Figure 6).
constexpr uint32_t kLedgerTransactionsTableId = 1;
constexpr uint32_t kLedgerBlocksTableId = 2;
constexpr uint32_t kSysTablesTableId = 3;
constexpr uint32_t kSysTablesHistoryTableId = 4;
constexpr uint32_t kSysColumnsTableId = 5;
constexpr uint32_t kSysColumnsHistoryTableId = 6;
constexpr uint32_t kSysTruncationsTableId = 7;
constexpr uint32_t kFirstUserTableId = 100;

/// Names of the hidden system columns appended to every ledger table
/// (paper §3.1).
inline constexpr char kColStartTxn[] = "ledger_start_transaction_id";
inline constexpr char kColStartSeq[] = "ledger_start_sequence_number";
inline constexpr char kColEndTxn[] = "ledger_end_transaction_id";
inline constexpr char kColEndSeq[] = "ledger_end_sequence_number";

/// One transaction's entry in the Database Ledger (paper §3.3.1).
struct TransactionEntry {
  uint64_t txn_id = 0;
  uint64_t block_id = 0;
  uint64_t block_ordinal = 0;
  int64_t commit_ts_micros = 0;
  std::string user_name;
  /// (ledger table id, Merkle root of row versions updated in that table).
  std::vector<std::pair<uint32_t, Hash256>> table_roots;

  /// Canonical serialization — the preimage of the entry's Merkle leaf in
  /// the block's transaction tree.
  std::vector<uint8_t> CanonicalBytes() const;
  Hash256 LeafHash() const;
  static Result<TransactionEntry> FromCanonicalBytes(Slice bytes);
};

/// Batched leaf hashes: out[i] = entries[i].LeafHash(), serialized into one
/// arena and hashed through the batched SHA-256 interface. Used by block
/// closes and verification, where whole blocks of entries hash at once.
std::vector<Hash256> TransactionLeafHashes(
    const std::vector<TransactionEntry>& entries);

/// One closed block of the Database Ledger blockchain (paper §3.3.1,
/// Figure 5). The block's own hash is never stored — verification always
/// recomputes it from current state.
struct BlockRecord {
  uint64_t block_id = 0;
  Hash256 previous_block_hash;  // all-zero for block 0
  Hash256 transactions_root;    // Merkle root over the block's entries
  uint64_t transaction_count = 0;
  int64_t closed_ts_micros = 0;

  /// Canonical block serialization — the preimage of ComputeHash. Appended
  /// to `out` so many blocks can share one arena for batched hashing.
  void AppendCanonicalBytes(std::vector<uint8_t>* out) const;

  /// SHA-256 over the canonical block serialization.
  Hash256 ComputeHash() const;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_TYPES_H_
