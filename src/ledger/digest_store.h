// Digest management (paper §2.4, §3.6). Database Digests must live in
// trusted storage outside the database. The paper integrates with Azure
// Immutable Blob Storage; this module provides the equivalent contract:
//   - write-once, append-only storage of digest documents,
//   - no modify/delete surface at all,
//   - digests grouped by database "incarnation" (create time), so
//     point-in-time restores retain the digests of every incarnation.
// GenerateAndUploadDigest additionally performs the fork check of §3.3.1
// (requirement 3): each new digest must be derivable from the previously
// uploaded one, otherwise the upload is refused and the fork reported.

#ifndef SQLLEDGER_LEDGER_DIGEST_STORE_H_
#define SQLLEDGER_LEDGER_DIGEST_STORE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/hmac.h"

#include "ledger/digest.h"
#include "ledger/ledger_database.h"
#include "ledger/verifier.h"
#include "storage/env.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace sqlledger {

/// Trusted external digest storage.
class DigestStore {
 public:
  virtual ~DigestStore() = default;

  /// Stores a digest. Write-once: implementations never overwrite.
  ///
  /// Idempotency contract (DESIGN.md §9): uploads ride a retrying network
  /// path, so a digest may arrive more than once — including after an
  /// ambiguous outcome where the first upload was stored but its ack lost.
  /// Re-uploading byte-identical content returns OK without storing a
  /// second copy. A digest that covers an already-stored block of the same
  /// database+incarnation with a DIFFERENT block hash is a fork and fails
  /// with IntegrityViolation. (Same block with the same hash but different
  /// generation time is a legitimate re-digest of a quiet database and is
  /// stored normally.)
  virtual Status Upload(const DatabaseDigest& digest) = 0;
  /// Every stored digest, across all incarnations, upload order preserved
  /// within an incarnation.
  virtual Result<std::vector<DatabaseDigest>> ListAll() const = 0;
  /// The most recently generated digest for the given incarnation
  /// (empty create_time = across all incarnations). NotFound when empty.
  virtual Result<DatabaseDigest> Latest(
      const std::string& create_time = "") const = 0;
};

/// In-process store for tests and examples. Thread-safe: a background
/// uploader and concurrent verifiers may share one instance.
class InMemoryDigestStore : public DigestStore {
 public:
  Status Upload(const DatabaseDigest& digest) override;
  Result<std::vector<DatabaseDigest>> ListAll() const override;
  Result<DatabaseDigest> Latest(const std::string& create_time) const override;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::vector<DatabaseDigest>> by_incarnation_
      GUARDED_BY(mu_);
};

/// Directory-backed simulation of Azure Immutable Blob Storage: one
/// subdirectory per incarnation, one write-once file per digest. Every blob
/// is a JSON envelope carrying the digest document plus a CRC32C of it, so
/// storage-level corruption (bit rot, truncation) surfaces as an explicit
/// Corruption status instead of a silently wrong digest. Write-once is
/// enforced at the filesystem layer (exclusive create — an existing blob is
/// never opened for writing), and each blob is fsynced plus dir-synced
/// before Upload returns, matching the durability contract of a real
/// immutable blob service. All I/O flows through Env for fault injection.
class ImmutableBlobDigestStore : public DigestStore {
 public:
  /// `root_dir` is created if absent. `env` = nullptr uses Env::Default().
  static Result<std::unique_ptr<ImmutableBlobDigestStore>> Open(
      const std::string& root_dir, Env* env = nullptr);

  Status Upload(const DatabaseDigest& digest) override;
  Result<std::vector<DatabaseDigest>> ListAll() const override;
  Result<DatabaseDigest> Latest(const std::string& create_time) const override;

 private:
  ImmutableBlobDigestStore(std::string root_dir, Env* env)
      : root_dir_(std::move(root_dir)), env_(env) {}

  std::string root_dir_;
  Env* env_;
};

/// Generates a digest from `db` and uploads it to `store`, first verifying
/// that the new digest is derivable from the incarnation's previous digest
/// (fork detection, paper §3.3.1). Returns the uploaded digest.
Result<DatabaseDigest> GenerateAndUploadDigest(LedgerDatabase* db,
                                               DigestStore* store);

/// Downloads every digest stored for this database (across incarnations)
/// and runs full verification against them — the automated flow of paper
/// §3.6 ("during verification, these digests are automatically downloaded
/// and used to verify the integrity of the database"). Digests belonging
/// to other databases in the same store are ignored, as are digests from
/// *other incarnations* that cover blocks past this database's chain (a
/// restored sibling's own future — legitimately absent here). Digests of
/// this incarnation are always used, so a same-incarnation digest pointing
/// past the chain is correctly reported as a rollback attack. With
/// `incremental` set, runs VerifyLedgerIncremental instead — the cron-driven
/// auditor's steady state (DESIGN.md §11): same verdicts, O(delta) cost when
/// the persisted watermark re-anchors.
Result<VerificationReport> VerifyLedgerAgainstStore(
    LedgerDatabase* db, const DigestStore& store,
    const VerificationOptions& options = {}, bool incremental = false);

/// A digest signed with the organization's key (paper §2.4: digests can be
/// "signed with the company's private/public key pair, to guarantee their
/// authenticity, and shared with any customers, partners or auditors").
/// The signature covers the SHA-256 of the digest's canonical JSON.
struct SignedDigest {
  DatabaseDigest digest;
  std::string key_id;
  std::vector<uint8_t> signature;

  std::string ToJson() const;
  static Result<SignedDigest> FromJson(const std::string& json);
};

/// Signs `digest` with the database's signer.
SignedDigest SignDigest(const DatabaseDigest& digest, const Signer& signer);
/// Offline authenticity check for a shared digest document.
bool VerifySignedDigest(const SignedDigest& signed_digest,
                        const Signer& signer);

/// Automates the paper's "every few seconds" digest cadence (§2.4): a
/// background thread that calls GenerateAndUploadDigest on an interval.
/// Stops on destruction. Only FATAL errors (fork detected, corruption —
/// see ClassifyDigestUploadError) latch and stop the uploader; transient
/// store errors (timeouts, outages) are recorded in last_error() and the
/// cadence keeps retrying, so a network blip never silently ends digest
/// protection. For retry backoff, a durable outbox and a health surface,
/// use DigestUploadPipeline (digest_pipeline.h) instead.
class PeriodicDigestUploader {
 public:
  PeriodicDigestUploader(LedgerDatabase* db, DigestStore* store,
                         std::chrono::milliseconds interval);
  ~PeriodicDigestUploader();

  PeriodicDigestUploader(const PeriodicDigestUploader&) = delete;
  PeriodicDigestUploader& operator=(const PeriodicDigestUploader&) = delete;

  void Stop();
  uint64_t uploads() const { return uploads_.load(); }
  /// Most recent upload error: cleared by the next success, permanent once
  /// a fatal error latches. OK while healthy.
  Status last_error() const;

 private:
  void Loop();

  LedgerDatabase* db_;
  DigestStore* store_;
  std::chrono::milliseconds interval_;
  std::atomic<uint64_t> uploads_{0};
  mutable Mutex mu_;
  Status error_ GUARDED_BY(mu_);
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_DIGEST_STORE_H_
