#include "ledger/geo_replication.h"

namespace sqlledger {

Result<GeoGatedDigest> GenerateGeoGatedDigest(
    LedgerDatabase* db, const SimulatedGeoReplica& replica,
    const GeoDigestOptions& options) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");

  // Compare the newest pending commit timestamp against the replica's
  // high-water mark. Everything already inside closed blocks was committed
  // earlier, so the pending tail bounds the exposure.
  int64_t last_commit = 0;
  for (const TransactionEntry& e : ledger->PendingEntries()) {
    if (e.commit_ts_micros > last_commit) last_commit = e.commit_ts_micros;
  }

  int64_t lag = last_commit - replica.replicated_through();
  if (lag < 0) lag = 0;
  if (last_commit != 0 && lag > options.max_lag_micros) {
    return Status::Busy(
        "geo replication lag " + std::to_string(lag) +
        "us exceeds the digest gating threshold; digests are deferred until "
        "the secondary catches up");
  }

  auto digest = db->GenerateDigest();
  if (!digest.ok()) return digest.status();

  GeoGatedDigest out;
  out.digest = *digest;
  out.lag_micros = lag;
  out.alert = lag > options.alert_lag_micros;
  return out;
}

}  // namespace sqlledger
