#include "ledger/digest.h"

#include "util/json.h"

namespace sqlledger {

std::string DatabaseDigest::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("database_id", JsonValue::Str(database_id));
  doc.Set("database_create_time", JsonValue::Str(database_create_time));
  doc.Set("block_id", JsonValue::Int(static_cast<int64_t>(block_id)));
  doc.Set("block_hash", JsonValue::Str(block_hash.ToHex()));
  doc.Set("generated_at", JsonValue::Int(generated_at_micros));
  doc.Set("last_commit_ts", JsonValue::Int(last_commit_ts_micros));
  return doc.Dump();
}

Result<DatabaseDigest> DatabaseDigest::FromJson(const std::string& json) {
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object())
    return Status::InvalidArgument("digest JSON is not an object");

  DatabaseDigest d;
  auto db_id = parsed->GetString("database_id");
  if (!db_id.ok()) return db_id.status();
  d.database_id = *db_id;

  auto create_time = parsed->GetString("database_create_time");
  if (!create_time.ok()) return create_time.status();
  d.database_create_time = *create_time;

  auto block_id = parsed->GetInt("block_id");
  if (!block_id.ok()) return block_id.status();
  d.block_id = static_cast<uint64_t>(*block_id);

  auto hash_hex = parsed->GetString("block_hash");
  if (!hash_hex.ok()) return hash_hex.status();
  if (!Hash256::FromHex(*hash_hex, &d.block_hash))
    return Status::InvalidArgument("malformed block_hash in digest");

  auto generated = parsed->GetInt("generated_at");
  if (!generated.ok()) return generated.status();
  d.generated_at_micros = *generated;

  auto last_ts = parsed->GetInt("last_commit_ts");
  if (!last_ts.ok()) return last_ts.status();
  d.last_commit_ts_micros = *last_ts;
  return d;
}

}  // namespace sqlledger
