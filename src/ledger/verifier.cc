#include "ledger/verifier.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>


#include "catalog/row.h"
#include "crypto/merkle.h"
#include "ledger/ledger_view.h"
#include "ledger/row_serializer.h"
#include "util/threadpool.h"

namespace sqlledger {

namespace {

struct VersionLeaf {
  uint64_t sequence = 0;
  Hash256 leaf;
};

/// One row version discovered by the collection scans. Rows are borrowed
/// from the B-trees — stable for the whole verification because the
/// database is quiesced — so the scan itself stays cheap and the expensive
/// leaf hashing is deferred to the parallel batched phase.
struct VersionItem {
  const Row* row = nullptr;
  RowOp op = RowOp::kInsert;
  uint64_t txn = 0;
  uint64_t seq = 0;
};

/// Collects the row versions contributed by one physical store of a ledger
/// table: the main store yields one INSERT version per row; the history
/// store yields the original INSERT plus the retiring DELETE per row — the
/// equivalent of the paper's LEDGERHASH + MERKLETREEAGG GROUP BY
/// Transaction ID query (§3.4.2), split per store so scans partition
/// across the thread pool.
void CollectStoreVersions(const LedgerTableRef& table, bool from_history,
                          std::vector<VersionItem>* out) {
  out->reserve(out->size() + (from_history ? 2 * table.history->row_count()
                                           : table.main->row_count()));
  auto add = [&](const Row& row, bool as_delete) {
    int txn_ord = as_delete ? table.end_txn_ord : table.start_txn_ord;
    int seq_ord = as_delete ? table.end_seq_ord : table.start_seq_ord;
    const Value& txn_val = row[txn_ord];
    if (txn_val.is_null()) return;
    out->push_back(VersionItem{
        &row, as_delete ? RowOp::kDelete : RowOp::kInsert,
        static_cast<uint64_t>(txn_val.AsInt64()),
        static_cast<uint64_t>(row[seq_ord].AsInt64())});
  };
  if (from_history) {
    for (BTree::Iterator it = table.history->Scan(); it.Valid(); it.Next()) {
      add(it.value(), /*as_delete=*/false);
      add(it.value(), /*as_delete=*/true);
    }
  } else {
    for (BTree::Iterator it = table.main->Scan(); it.Valid(); it.Next())
      add(it.value(), /*as_delete=*/false);
  }
}

Hash256 RootOfLeaves(std::vector<VersionLeaf>* leaves) {
  std::sort(leaves->begin(), leaves->end(),
            [](const VersionLeaf& a, const VersionLeaf& b) {
              return a.sequence < b.sequence;
            });
  MerkleBuilder builder;
  for (const VersionLeaf& l : *leaves) builder.AddLeafHash(l.leaf);
  return builder.Root();
}

bool InTruncatedRange(const std::vector<TruncationRecord>& truncations,
                      uint64_t txn_id) {
  for (const TruncationRecord& t : truncations) {
    if (txn_id >= t.min_txn_id && txn_id <= t.max_txn_id) return true;
  }
  return false;
}

/// Merkle root over pre-encoded tuples packed in `arena` at `offsets`
/// boundaries (invariant 5). Leaf hashes run through the batched interface.
Hash256 RootOfEncodedTuples(const std::vector<uint8_t>& arena,
                            const std::vector<size_t>& offsets) {
  size_t n = offsets.size() - 1;
  std::vector<Slice> inputs(n);
  for (size_t i = 0; i < n; i++)
    inputs[i] = Slice(arena.data() + offsets[i], offsets[i + 1] - offsets[i]);
  std::vector<Hash256> leaves(n);
  MerkleLeafHashMany(inputs.data(), n, leaves.data());
  MerkleBuilder builder;
  for (const Hash256& leaf : leaves) builder.AddLeafHash(leaf);
  return builder.Root();
}

void CheckIndexes(const TableStore& store, VerificationReport* report) {
  for (const auto& idx : store.indexes()) {
    // Base side: project (index columns + primary key) from each base row,
    // order by the projected tuple.
    std::vector<KeyTuple> base_tuples;
    base_tuples.reserve(store.row_count());
    for (BTree::Iterator it = store.Scan(); it.Valid(); it.Next()) {
      KeyTuple tuple = Schema::ExtractColumns(it.value(), idx->ordinals);
      KeyTuple pk = store.schema().ExtractKey(it.value());
      tuple.insert(tuple.end(), pk.begin(), pk.end());
      base_tuples.push_back(std::move(tuple));
    }
    std::sort(base_tuples.begin(), base_tuples.end(),
              [](const KeyTuple& a, const KeyTuple& b) {
                return CompareKeys(a, b) < 0;
              });
    std::vector<uint8_t> base_arena;
    std::vector<size_t> base_offsets;
    base_offsets.reserve(base_tuples.size() + 1);
    for (const KeyTuple& t : base_tuples) {
      base_offsets.push_back(base_arena.size());
      EncodeRow(t, &base_arena);
    }
    base_offsets.push_back(base_arena.size());

    // Index side: the stored keys, already in order.
    std::vector<uint8_t> index_arena;
    std::vector<size_t> index_offsets;
    for (BTree::Iterator it = idx->tree.Begin(); it.Valid(); it.Next()) {
      index_offsets.push_back(index_arena.size());
      EncodeRow(it.key(), &index_arena);
    }
    index_offsets.push_back(index_arena.size());
    size_t index_count = index_offsets.size() - 1;

    if (index_count != base_tuples.size() ||
        RootOfEncodedTuples(base_arena, base_offsets) !=
            RootOfEncodedTuples(index_arena, index_offsets)) {
      report->violations.push_back(
          {5, "non-clustered index '" + idx->name + "' on table '" +
                  store.name() + "' is not equivalent to the base table"});
    }
  }
}

}  // namespace

std::string VerificationReport::Summary() const {
  std::string out = ok() ? "VERIFICATION PASSED" : "VERIFICATION FAILED";
  out += " (blocks=" + std::to_string(blocks_checked) +
         ", transactions=" + std::to_string(transactions_checked) +
         ", row_versions=" + std::to_string(row_versions_checked);
  if (has_digest_coverage)
    out += ", covered_through_block=" + std::to_string(highest_digest_block);
  if (incremental) {
    out += fell_back_to_full
               ? ", incremental: FELL BACK TO FULL (" + fallback_reason + ")"
               : ", incremental: watermark=" + std::to_string(watermark_block) +
                     ", blocks_skipped=" + std::to_string(blocks_skipped) +
                     ", row_versions_skipped=" +
                     std::to_string(row_versions_skipped);
  }
  out += ")";
  for (const Violation& v : violations) {
    out += "\n  [invariant " + std::to_string(v.invariant) + "] " + v.message;
  }
  return out;
}

namespace {

/// The verification body. Runs under the caller's QuiesceGuard with the
/// ledger queue already drained (QuiesceGuard is not re-entrant, and the
/// incremental path may need two passes under ONE quiesce).
///
/// `state` != nullptr requests an incremental run: transaction entries and
/// row versions belonging to blocks <= state->last_verified_block are not
/// re-hashed; the prefix is covered by the re-anchor check, the always-full
/// invariants 1-2, and the entry/per-table accumulators. When any of those
/// fail, the core returns early with report.fallback_reason set and the
/// caller re-runs with state == nullptr.
///
/// `out_state` != nullptr asks for a refreshed watermark: filled (marked by
/// a non-empty database_id) only when the run is clean and digest-covered.
Result<VerificationReport> VerifyLedgerCore(
    LedgerDatabase* db, const std::vector<DatabaseDigest>& digests,
    const VerificationOptions& options, const VerificationState* state,
    VerificationState* out_state) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");

  VerificationReport report;
  std::vector<TruncationRecord> truncations = db->GetTruncationRecords();

  // Phase timers (DESIGN.md §13): re-anchor (snapshot + block hashing +
  // watermark check), tree hashing (row-version collection through group
  // roots), view check (reverse/index/view pass + merge). Only the
  // coordinator thread reads the metrics clock — ParallelFor workers never
  // touch it, keeping clock call counts deterministic under the simulator.
  // Early fallback returns skip the remaining phase records.
  MetricRegistry* metrics = db->metrics();
  Histogram* reanchor_hist = metrics->GetHistogram("verify.reanchor_micros");
  Histogram* tree_hist = metrics->GetHistogram("verify.tree_hash_micros");
  Histogram* view_hist = metrics->GetHistogram("verify.view_check_micros");
  int64_t phase_start = metrics->NowMicros();
  auto end_phase = [&](Histogram* hist) {
    const int64_t now = metrics->NowMicros();
    hist->Record(static_cast<uint64_t>(std::max<int64_t>(0, now - phase_start)));
    phase_start = now;
  };

  // All hash recomputation below partitions across this pool: blocks and
  // transaction groups in chunks, tables per task — the counterpart of the
  // paper's reliance on SQL Server parallel query execution (§3.4.2),
  // except the partitioning also splits *within* a single large table.
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (options.parallelism > 1) {
    pool_storage.emplace(options.parallelism);
    pool = &*pool_storage;
  }

  // Load both system tables and the open-block id in ONE critical section
  // (tampering may have removed arbitrary rows; gaps are reported by the
  // invariant 2/3 checks below). The atomicity matters: digest generation
  // keeps closing blocks while verification runs, and a close sliding
  // between separate blocks/entries scans would make the freshest
  // transactions reference a block the blocks scan never saw.
  // Each block's hash is computed exactly once here, batched, and shared
  // by invariants 1 and 2.
  DatabaseLedger::LedgerSnapshot snapshot = ledger->Snapshot();
  std::vector<BlockRecord> blocks = std::move(snapshot.blocks);
  std::vector<Hash256> block_hashes(blocks.size());
  {
    std::vector<uint8_t> arena;
    std::vector<size_t> offsets;
    offsets.reserve(blocks.size() + 1);
    for (const BlockRecord& b : blocks) {
      offsets.push_back(arena.size());
      b.AppendCanonicalBytes(&arena);
    }
    offsets.push_back(arena.size());
    std::vector<Slice> inputs(blocks.size());
    for (size_t i = 0; i < blocks.size(); i++)
      inputs[i] =
          Slice(arena.data() + offsets[i], offsets[i + 1] - offsets[i]);
    HashMany(inputs.data(), inputs.size(), block_hashes.data());
  }
  auto find_block = [&](uint64_t id) -> size_t {
    auto it = std::lower_bound(
        blocks.begin(), blocks.end(), id,
        [](const BlockRecord& b, uint64_t v) { return b.block_id < v; });
    if (it == blocks.end() || it->block_id != id) return blocks.size();
    return static_cast<size_t>(it - blocks.begin());
  };

  // ---- Incremental re-anchoring (DESIGN.md §11). The watermark block must
  // still exist and its freshly recomputed hash must equal the hash stored
  // when it was last verified; through the chained previous-block hashes
  // this commits to the entire prefix. Truncation removes the watermark
  // block (or its predecessors) and so lands here too. ----
  uint64_t watermark = 0;
  bool trusted_active = false;
  if (state != nullptr) {
    size_t widx = find_block(state->last_verified_block);
    if (widx == blocks.size()) {
      report.fallback_reason =
          "watermark block " + std::to_string(state->last_verified_block) +
          " is not present in the ledger (truncated or tampered)";
      return report;
    }
    if (!ConstantTimeEqual(block_hashes[widx], state->block_hash)) {
      report.fallback_reason =
          "recomputed hash of watermark block " +
          std::to_string(state->last_verified_block) +
          " does not match the stored watermark";
      return report;
    }
    watermark = state->last_verified_block;
    trusted_active = true;
    report.watermark_block = watermark;
  }
  end_phase(reanchor_hist);

  // Index the snapshot's transaction entries without copying them. The
  // by-block index keeps every physical row (a tampered duplicate txn id
  // must still distort its block's recomputed root); the by-txn index
  // dedupes, keeping the last occurrence — the overwrite semantics the
  // previous std::map<txn_id, entry> index had. The snapshot scan is keyed
  // by txn id, so the sort below is a no-op on untampered data.
  const std::vector<TransactionEntry> entries = std::move(snapshot.entries);
  std::map<uint64_t, std::vector<const TransactionEntry*>> entries_by_block;
  for (const TransactionEntry& e : entries)
    entries_by_block[e.block_id].push_back(&e);
  std::vector<const TransactionEntry*> txn_index;
  txn_index.reserve(entries.size());
  for (const TransactionEntry& e : entries) txn_index.push_back(&e);
  std::stable_sort(txn_index.begin(), txn_index.end(),
                   [](const TransactionEntry* a, const TransactionEntry* b) {
                     return a->txn_id < b->txn_id;
                   });
  {
    size_t w = 0;
    for (size_t r = 0; r < txn_index.size(); r++) {
      if (r + 1 < txn_index.size() &&
          txn_index[r + 1]->txn_id == txn_index[r]->txn_id)
        continue;
      txn_index[w++] = txn_index[r];
    }
    txn_index.resize(w);
  }
  auto find_entry = [&](uint64_t txn_id) -> const TransactionEntry* {
    auto it = std::lower_bound(
        txn_index.begin(), txn_index.end(), txn_id,
        [](const TransactionEntry* e, uint64_t v) { return e->txn_id < v; });
    if (it == txn_index.end() || (*it)->txn_id != txn_id) return nullptr;
    return *it;
  };
  report.transactions_checked = txn_index.size();

  // ---- Invariant 1: digests vs recomputed block hashes. ----
  for (const DatabaseDigest& digest : digests) {
    if (digest.database_id != db->options().database_id) {
      report.violations.push_back(
          {0, "digest for database '" + digest.database_id +
                  "' does not match this database"});
      continue;
    }
    size_t idx = find_block(digest.block_id);
    if (idx == blocks.size()) {
      report.violations.push_back(
          {1, "digest references block " + std::to_string(digest.block_id) +
                  " which is not present in the ledger"});
      continue;
    }
    if (!ConstantTimeEqual(block_hashes[idx], digest.block_hash)) {
      report.violations.push_back(
          {1, "hash mismatch for block " + std::to_string(digest.block_id) +
                  ": the block does not match the trusted digest"});
    }
    if (!report.has_digest_coverage ||
        digest.block_id > report.highest_digest_block) {
      report.highest_digest_block = digest.block_id;
      report.has_digest_coverage = true;
    }
  }

  // ---- Invariant 2: the block chain (hashes from the shared cache). ----
  for (size_t i = 0; i < blocks.size(); i++) {
    const BlockRecord& block = blocks[i];
    report.blocks_checked++;
    if (i == 0) {
      // First retained block: only block 0 can assert a null predecessor.
      if (block.block_id == 0 && !block.previous_block_hash.IsZero()) {
        report.violations.push_back(
            {2, "block 0 records a non-null previous-block hash"});
      }
    } else if (block.block_id == blocks[i - 1].block_id + 1) {
      if (!ConstantTimeEqual(block.previous_block_hash, block_hashes[i - 1])) {
        report.violations.push_back(
            {2, "block " + std::to_string(block.block_id) +
                    " records a previous-block hash that does not match "
                    "block " +
                    std::to_string(blocks[i - 1].block_id)});
      }
    } else {
      report.violations.push_back(
          {2, "gap in the block chain: block " +
                  std::to_string(blocks[i - 1].block_id) +
                  " is followed by block " + std::to_string(block.block_id)});
    }
  }

  // ---- Invariant 3: per-block transaction Merkle roots. ----
  // Entries in blocks <= the watermark skip leaf hashing and root
  // recomputation entirely: the re-anchored watermark hash chains over every
  // prefix block header (committing to each stored transactions_root), and
  // the entry accumulator below covers the entries' *content* — any edit a
  // root recomputation would catch flips the fingerprint and forces the full
  // fallback. Fresh blocks hash exactly as in a full run.
  const uint64_t new_watermark =
      report.has_digest_coverage ? report.highest_digest_block : 0;
  uint64_t trusted_entry_count = 0, trusted_entry_fp = 0;
  uint64_t refreshed_entry_count = 0, refreshed_entry_fp = 0;
  // Duplicate txn ids (impossible without tampering — the system table is
  // keyed by txn id) disable the trusted skip outright: the accumulator
  // then cannot match a state recorded over unique entries, so the run
  // falls back and the full pass attributes the damage.
  const bool entries_unique = entries.size() == txn_index.size();
  std::vector<const TransactionEntry*> flat_entries;
  flat_entries.reserve(txn_index.size());
  for (const TransactionEntry* e : txn_index) {
    const bool trusted_entry =
        trusted_active && entries_unique && e->block_id <= watermark;
    const bool refresh_entry = out_state != nullptr &&
                               report.has_digest_coverage &&
                               e->block_id <= new_watermark;
    if (trusted_entry || refresh_entry) {
      uint64_t fp = MixEntryFingerprint(*e);
      if (refresh_entry) {
        refreshed_entry_count++;
        refreshed_entry_fp ^= fp;
      }
      if (trusted_entry) {
        trusted_entry_count++;
        trusted_entry_fp ^= fp;
        continue;  // no leaf hash needed: its block's root check is skipped
      }
    }
    flat_entries.push_back(e);
  }
  if (trusted_active && (trusted_entry_count != state->entry_count ||
                         trusted_entry_fp != state->entry_fingerprint)) {
    report.fallback_reason =
        "transaction-entry accumulator mismatch for the verified prefix";
    return report;
  }
  std::vector<Hash256> flat_entry_leaves(flat_entries.size());
  ParallelFor(
      pool, flat_entries.size(),
      [&](size_t begin, size_t end) {
        std::vector<uint8_t> arena;
        std::vector<size_t> offsets;
        offsets.reserve(end - begin + 1);
        for (size_t i = begin; i < end; i++) {
          offsets.push_back(arena.size());
          std::vector<uint8_t> bytes = flat_entries[i]->CanonicalBytes();
          arena.insert(arena.end(), bytes.begin(), bytes.end());
        }
        offsets.push_back(arena.size());
        std::vector<Slice> inputs(end - begin);
        for (size_t i = 0; i < end - begin; i++)
          inputs[i] =
              Slice(arena.data() + offsets[i], offsets[i + 1] - offsets[i]);
        MerkleLeafHashMany(inputs.data(), inputs.size(),
                           flat_entry_leaves.data() + begin);
      },
      /*min_chunk=*/128);
  std::unordered_map<uint64_t, const Hash256*> entry_leaf_by_txn;
  entry_leaf_by_txn.reserve(flat_entries.size());
  for (size_t i = 0; i < flat_entries.size(); i++)
    entry_leaf_by_txn[flat_entries[i]->txn_id] = &flat_entry_leaves[i];

  std::vector<std::optional<Violation>> block_root_violations(blocks.size());
  ParallelFor(pool, blocks.size(), [&](size_t begin, size_t end) {
    for (size_t bi = begin; bi < end; bi++) {
      const BlockRecord& block = blocks[bi];
      // Trusted prefix: covered by the re-anchor + entry accumulator above
      // (whose skip is disabled alongside this one when txn ids collide).
      if (trusted_active && entries_unique && block.block_id <= watermark)
        continue;
      auto it = entries_by_block.find(block.block_id);
      std::vector<const TransactionEntry*> block_entries =
          it == entries_by_block.end()
              ? std::vector<const TransactionEntry*>{}
              : it->second;
      std::sort(block_entries.begin(), block_entries.end(),
                [](const TransactionEntry* a, const TransactionEntry* b) {
                  return a->block_ordinal < b->block_ordinal;
                });
      bool ordinals_ok = block_entries.size() == block.transaction_count;
      for (size_t i = 0; ordinals_ok && i < block_entries.size(); i++) {
        if (block_entries[i]->block_ordinal != i) ordinals_ok = false;
      }
      std::vector<Hash256> leaves;
      leaves.reserve(block_entries.size());
      for (const TransactionEntry* e : block_entries)
        leaves.push_back(*entry_leaf_by_txn.at(e->txn_id));
      MerkleTree tree(std::move(leaves));
      if (!ordinals_ok ||
          !ConstantTimeEqual(tree.Root(), block.transactions_root)) {
        block_root_violations[bi] =
            Violation{3, "transactions Merkle root mismatch for block " +
                             std::to_string(block.block_id)};
      }
    }
  });
  for (auto& v : block_root_violations)
    if (v.has_value()) report.violations.push_back(std::move(*v));
  // Entries must belong to a block that exists (pending blocks excluded).
  // Compare against the snapshot's open-block id, not the live one: blocks
  // closed after the snapshot must not un-exempt entries it captured.
  for (const auto& [block_id, block_entries] : entries_by_block) {
    if (block_id >= snapshot.open_block_id) continue;  // not yet closed
    if (find_block(block_id) != blocks.size()) continue;
    report.violations.push_back(
        {3, std::to_string(block_entries.size()) +
                " transaction(s) reference block " + std::to_string(block_id) +
                " which is not present in the ledger"});
  }

  // An incremental run only skips work when everything checked so far —
  // digests, the full block chain, fresh blocks' transaction trees and the
  // prefix entry accumulator — is perfectly clean: any violation could
  // implicate the verified prefix, so fall back and let the full pass
  // attribute it. (Violations confined to fresh blocks re-derive identically
  // in the full pass — the fallback costs time, never fidelity.)
  if (trusted_active && !report.violations.empty()) {
    report.fallback_reason =
        "inconsistency in digest/block-chain/transaction-entry invariants";
    return report;
  }
  if (trusted_active) {
    for (const BlockRecord& b : blocks) {
      if (b.block_id <= watermark) {
        report.blocks_skipped++;
      } else {
        report.blocks_reverified++;
      }
    }
    for (const TransactionEntry* e : txn_index) {
      if (e->block_id <= watermark) report.transactions_skipped++;
    }
  } else {
    report.blocks_reverified = report.blocks_checked;
  }

  // ---- Invariants 4 & 5 per ledger table. All state read below is
  // immutable while the database is quiesced, so the phases fan out freely:
  // store scans per task, leaf hashing in chunks, per-transaction root
  // recomputation per group, index/view checks per table. ----
  std::set<std::string> table_filter(options.tables.begin(),
                                     options.tables.end());
  std::vector<CatalogEntry*> tables_to_check;
  for (CatalogEntry* entry : db->AllTables()) {
    if (entry->kind == TableKind::kRegular) continue;
    if (!table_filter.empty() && !table_filter.count(entry->name)) continue;
    tables_to_check.push_back(entry);
  }

  // Phase 1: collection scans, one task per physical store.
  struct ScanTask {
    size_t table_idx = 0;
    bool history = false;
  };
  std::vector<ScanTask> scan_tasks;
  for (size_t i = 0; i < tables_to_check.size(); i++) {
    scan_tasks.push_back({i, false});
    if (tables_to_check[i]->ref.history != nullptr)
      scan_tasks.push_back({i, true});
  }
  std::vector<std::vector<VersionItem>> scan_results(scan_tasks.size());
  ParallelFor(pool, scan_tasks.size(), [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; t++) {
      CollectStoreVersions(tables_to_check[scan_tasks[t].table_idx]->ref,
                           scan_tasks[t].history, &scan_results[t]);
    }
  });

  // Phase 2: leaf-hash the discovered row versions in parallel batches.
  // In an incremental run, versions belonging to trusted transactions
  // (their entry's block <= watermark) skip the hashing entirely and
  // instead feed the per-table structural accumulators, which are checked
  // against the stored state below. This skip is where the O(delta) win
  // comes from: row-version leaf hashing dominates full verification.
  struct ItemRef {
    size_t table_idx = 0;
    uint64_t txn = 0;
    uint64_t seq = 0;
  };
  struct TableAccValue {
    uint64_t count = 0;
    uint64_t fingerprint = 0;
  };
  std::unordered_map<uint64_t, uint64_t> entry_block_by_txn;
  if (trusted_active || out_state != nullptr) {
    entry_block_by_txn.reserve(txn_index.size());
    for (const TransactionEntry* e : txn_index)
      entry_block_by_txn[e->txn_id] = e->block_id;
  }
  std::vector<RowVersionHashJob> jobs;
  std::vector<ItemRef> refs;
  std::vector<uint64_t> versions_per_table(tables_to_check.size(), 0);
  std::vector<TableAccValue> trusted_acc(tables_to_check.size());
  std::vector<TableAccValue> refreshed_acc(tables_to_check.size());
  for (size_t t = 0; t < scan_tasks.size(); t++) {
    size_t table_idx = scan_tasks[t].table_idx;
    const LedgerTableRef& ref = tables_to_check[table_idx]->ref;
    const Schema* schema = &ref.main->schema();
    for (const VersionItem& item : scan_results[t]) {
      uint64_t entry_block = UINT64_MAX;  // no recorded transaction entry
      if (trusted_active || out_state != nullptr) {
        auto it = entry_block_by_txn.find(item.txn);
        if (it != entry_block_by_txn.end()) entry_block = it->second;
      }
      if (out_state != nullptr && report.has_digest_coverage &&
          entry_block <= new_watermark) {
        TableAccValue& acc = refreshed_acc[table_idx];
        acc.count++;
        acc.fingerprint ^= MixVersionFingerprint(item.txn, item.seq,
                                                 static_cast<int>(item.op));
      }
      if (trusted_active && entry_block <= watermark) {
        TableAccValue& acc = trusted_acc[table_idx];
        acc.count++;
        acc.fingerprint ^= MixVersionFingerprint(item.txn, item.seq,
                                                 static_cast<int>(item.op));
        report.row_versions_skipped++;
        continue;
      }
      jobs.push_back(RowVersionHashJob{schema, item.row, item.op,
                                       ref.table_id, item.txn, item.seq});
      refs.push_back(ItemRef{table_idx, item.txn, item.seq});
      versions_per_table[table_idx]++;
    }
  }

  // Accumulator re-check: the verified prefix's row-version *structure*
  // must match what the watermark recorded — any inserted, deleted or
  // re-stamped trusted version lands here and forces the full pass.
  // (Content-only tampering of a trusted version's non-structural cells is
  // outside the accumulator's reach; DESIGN.md §11 gives the fallback
  // matrix and the trust argument.)
  if (trusted_active) {
    std::map<uint64_t, TableAccumulator> stored;
    for (const TableAccumulator& acc : state->tables)
      stored[acc.table_id] = acc;
    for (size_t i = 0; i < tables_to_check.size(); i++) {
      TableAccumulator expect;  // zero for tables unknown to the state
      auto it = stored.find(tables_to_check[i]->table_id);
      if (it != stored.end()) {
        expect = it->second;
        stored.erase(it);
      }
      if (trusted_acc[i].count != expect.prefix_versions ||
          trusted_acc[i].fingerprint != expect.fingerprint) {
        report.fallback_reason = "row-version accumulator mismatch for table '" +
                                 tables_to_check[i]->name + "'";
        return report;
      }
    }
    // Without a table filter every stored accumulator must have found its
    // table: tables are never physically removed from the catalog (drops
    // only mark them), so a leftover means catalog-level tampering.
    if (table_filter.empty() && !stored.empty()) {
      report.fallback_reason = "verification state references table id " +
                               std::to_string(stored.begin()->first) +
                               " which is not in the catalog";
      return report;
    }
  }
  std::vector<Hash256> leaf_hashes(jobs.size());
  ParallelFor(
      pool, jobs.size(),
      [&](size_t begin, size_t end) {
        RowVersionLeafHashMany(jobs.data() + begin, end - begin,
                               leaf_hashes.data() + begin);
      },
      /*min_chunk=*/256);

  // Phase 3: group leaves by (table, transaction) and recompute each
  // transaction's per-table Merkle root, one group per task.
  std::vector<std::map<uint64_t, std::vector<VersionLeaf>>> by_txn(
      tables_to_check.size());
  for (size_t i = 0; i < refs.size(); i++) {
    by_txn[refs[i].table_idx][refs[i].txn].push_back(
        VersionLeaf{refs[i].seq, leaf_hashes[i]});
  }

  struct GroupCheck {
    size_t table_idx = 0;
    uint64_t txn = 0;
    std::vector<VersionLeaf>* leaves;
  };
  std::vector<GroupCheck> groups;
  for (size_t i = 0; i < tables_to_check.size(); i++)
    for (auto& [txn_id, leaves] : by_txn[i])
      groups.push_back(GroupCheck{i, txn_id, &leaves});
  std::vector<std::optional<Violation>> group_violations(groups.size());
  ParallelFor(
      pool, groups.size(),
      [&](size_t begin, size_t end) {
        for (size_t g = begin; g < end; g++) {
          const GroupCheck& group = groups[g];
          const std::string& table_name =
              tables_to_check[group.table_idx]->name;
          const TransactionEntry* e = find_entry(group.txn);
          if (e == nullptr) {
            if (InTruncatedRange(truncations, group.txn)) continue;
            group_violations[g] = Violation{
                4, "table '" + table_name + "' has row versions referencing "
                       "transaction " +
                       std::to_string(group.txn) +
                       " which is not recorded in the ledger"};
            continue;
          }
          const Hash256* recorded = nullptr;
          for (const auto& [table_id, root] : e->table_roots) {
            if (table_id == tables_to_check[group.table_idx]->table_id) {
              recorded = &root;
              break;
            }
          }
          Hash256 computed = RootOfLeaves(group.leaves);
          if (recorded == nullptr || *recorded != computed) {
            group_violations[g] = Violation{
                4, "Merkle root mismatch for transaction " +
                       std::to_string(group.txn) + " on table '" +
                       table_name +
                       "': current rows do not match what the transaction "
                       "recorded"};
          }
        }
      },
      /*min_chunk=*/16);

  end_phase(tree_hist);

  // Phase 4: reverse root check plus index/view checks, one table per task.
  struct TableCheckResult {
    VerificationReport partial;  // only violations used
  };
  std::vector<TableCheckResult> results(tables_to_check.size());
  ParallelFor(pool, tables_to_check.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; i++) {
      CatalogEntry* entry = tables_to_check[i];
      VerificationReport& out = results[i].partial;

      // Recorded roots -> rows (detects wholesale row deletion). Trusted
      // transactions are exempt: the watermark was only saved after a clean
      // reverse check, and deleting a trusted transaction's row versions
      // afterwards changes the per-table accumulator count, which already
      // forced the full fallback before this phase ran.
      for (const TransactionEntry* e : txn_index) {
        if (trusted_active && e->block_id <= watermark) continue;
        for (const auto& [table_id, root] : e->table_roots) {
          if (table_id != entry->table_id) continue;
          if (!by_txn[i].count(e->txn_id)) {
            out.violations.push_back(
                {4, "transaction " + std::to_string(e->txn_id) +
                        " recorded updates on table '" + entry->name +
                        "' but no matching row versions exist"});
          }
        }
      }

      if (options.check_indexes) {
        CheckIndexes(*entry->main, &out);
        if (entry->history != nullptr) CheckIndexes(*entry->history, &out);
      }

      if (options.check_views) {
        // Ledger view definition check (§3.4.2): the generated view must
        // expose exactly one INSERT per version plus one DELETE per retired
        // version.
        uint64_t expected = entry->main->row_count();
        if (entry->history != nullptr)
          expected += 2 * entry->history->row_count();
        if (trusted_active) {
          // Count without materializing: BuildLedgerView emits one view row
          // per non-null start/end transaction stamp — exactly the predicate
          // CollectStoreVersions used in phase 1 — so the view's size equals
          // the number of versions collected for the table (trusted or not).
          uint64_t view_rows = trusted_acc[i].count + versions_per_table[i];
          if (view_rows != expected) {
            out.violations.push_back(
                {6, "ledger view for '" + entry->name +
                        "' does not reflect the underlying row versions"});
          }
        } else {
          auto view = BuildLedgerView(entry->ref);
          if (!view.ok()) {
            out.violations.push_back(
                {6, "ledger view for '" + entry->name +
                        "' failed to build: " + view.status().ToString()});
          } else if (view->size() != expected) {
            out.violations.push_back(
                {6, "ledger view for '" + entry->name +
                        "' does not reflect the underlying row versions"});
          }
        }
      }
    }
  });

  // Merge in catalog order — group (invariant 4 forward) violations in
  // transaction order first, then each table's reverse/index/view results —
  // so the report is deterministic regardless of parallelism.
  size_t group_pos = 0;
  for (size_t i = 0; i < tables_to_check.size(); i++) {
    report.row_versions_checked += versions_per_table[i];
    while (group_pos < groups.size() && groups[group_pos].table_idx == i) {
      if (group_violations[group_pos].has_value())
        report.violations.push_back(std::move(*group_violations[group_pos]));
      group_pos++;
    }
    for (Violation& v : results[i].partial.violations)
      report.violations.push_back(std::move(v));
  }

  // Refreshed watermark for the caller: only when the run is clean and a
  // digest actually vouches for the new watermark block. The anchor is the
  // input digest covering that block (guaranteed present: coverage is only
  // recorded for digests whose block was found and whose hash matched).
  if (out_state != nullptr && report.ok() && report.has_digest_coverage) {
    size_t idx = find_block(new_watermark);
    if (idx != blocks.size()) {
      out_state->database_id = db->options().database_id;
      out_state->database_create_time = db->create_time();
      out_state->last_verified_block = new_watermark;
      out_state->block_hash = block_hashes[idx];
      for (const DatabaseDigest& d : digests) {
        if (d.database_id == db->options().database_id &&
            d.block_id == new_watermark) {
          out_state->anchor = d;
          break;
        }
      }
      out_state->tables.clear();
      for (size_t i = 0; i < tables_to_check.size(); i++) {
        if (refreshed_acc[i].count == 0) continue;
        out_state->tables.push_back(TableAccumulator{
            tables_to_check[i]->table_id, refreshed_acc[i].count,
            refreshed_acc[i].fingerprint});
      }
      std::sort(out_state->tables.begin(), out_state->tables.end(),
                [](const TableAccumulator& a, const TableAccumulator& b) {
                  return a.table_id < b.table_id;
                });
      out_state->entry_count = refreshed_entry_count;
      out_state->entry_fingerprint = refreshed_entry_fp;
    }
  }

  end_phase(view_hist);
  return report;
}

}  // namespace

Result<VerificationReport> VerifyLedger(
    LedgerDatabase* db, const std::vector<DatabaseDigest>& digests,
    const VerificationOptions& options) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");

  const int64_t start = db->metrics()->NowMicros();
  Result<VerificationReport> report = [&]() -> Result<VerificationReport> {
    LedgerDatabase::QuiesceGuard guard(db);
    // Persist pending entries so the system table holds every transaction
    // (the checkpoint-time drain of §3.3.2, run eagerly for verification).
    SL_RETURN_IF_ERROR(ledger->DrainQueue());
    return VerifyLedgerCore(db, digests, options, /*state=*/nullptr,
                            /*out_state=*/nullptr);
  }();
  const int64_t end = db->metrics()->NowMicros();
  db->metrics()->GetHistogram("verify.full_micros")
      ->Record(static_cast<uint64_t>(std::max<int64_t>(0, end - start)));
  db->tracer()->RecordComplete("verify.full", "verify", start, end - start);
  return report;
}

Result<VerificationReport> VerifyLedgerIncremental(
    LedgerDatabase* db, const std::vector<DatabaseDigest>& digests,
    const VerificationOptions& options) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");

  const int64_t inc_start = db->metrics()->NowMicros();

  // ONE quiesce covers the incremental pass and, if re-anchoring fails,
  // the full fallback pass — QuiesceGuard is not re-entrant and the two
  // passes must see identical data for the fallback report to be exact.
  LedgerDatabase::QuiesceGuard guard(db);
  SL_RETURN_IF_ERROR(ledger->DrainQueue());

  // Union in the anchors this database already trusts: the digest the
  // watermark was anchored to, and the latest digest known durable in the
  // external store (the pipeline's ack is the natural watermark refresher).
  // Anchors are opportunistic hardening on top of the caller's digests, so
  // one whose block no longer exists — removed by a recorded truncation or
  // lost with an unsynced WAL tail in a crash — is dropped rather than
  // allowed to manufacture a violation the caller's digest set would not
  // produce. (Genuine tampering with a still-present anchored block is
  // caught: the anchor stays in the set and invariant 1 fires.)
  std::vector<DatabaseDigest> all_digests = digests;
  auto add_anchor = [&](const DatabaseDigest& d) {
    if (d.database_id != db->options().database_id) return;
    if (!ledger->FindBlock(d.block_id).ok()) return;
    for (const DatabaseDigest& e : all_digests)
      if (e == d) return;
    all_digests.push_back(d);
  };
  std::optional<VerificationState> state = db->GetVerificationState();
  if (state.has_value()) add_anchor(state->anchor);
  std::optional<DatabaseDigest> durable = db->latest_durable_digest();
  if (durable.has_value()) add_anchor(*durable);

  VerificationState refreshed;
  auto report =
      VerifyLedgerCore(db, all_digests, options,
                       state.has_value() ? &*state : nullptr, &refreshed);
  if (!report.ok()) return report.status();
  report->incremental = true;
  if (state.has_value()) {
    report->watermark_block = state->last_verified_block;
    if (!report->fallback_reason.empty()) {
      // Re-anchoring failed (or a prefix inconsistency surfaced): discard
      // the partial pass and run the full verification under the same
      // quiesce, so the violation set is exactly VerifyLedger's.
      std::string reason = report->fallback_reason;
      db->tracer()->RecordInstant("verify.fallback", "verify", "reason",
                                  reason);
      refreshed = VerificationState{};
      auto full = VerifyLedgerCore(db, all_digests, options,
                                   /*state=*/nullptr, &refreshed);
      if (!full.ok()) return full.status();
      *report = std::move(*full);
      report->incremental = true;
      report->fell_back_to_full = true;
      report->fallback_reason = reason;
      report->watermark_block = state->last_verified_block;
    }
  }

  // Persist the refreshed watermark — only for clean, unfiltered runs
  // (a table-filtered pass attests nothing about the other tables). The
  // save is best-effort: losing it merely costs a future full verify, and
  // verification must not fail because a state fsync did.
  if (report->ok() && options.tables.empty() &&
      !refreshed.database_id.empty()) {
    refreshed.anchor_durable =
        durable.has_value() && refreshed.anchor == *durable;
    (void)db->StoreVerificationState(refreshed);  // best-effort, see above
  }
  db->RecordIncrementalVerification(report->fell_back_to_full,
                                    report->blocks_reverified,
                                    report->blocks_skipped,
                                    report->row_versions_skipped);
  const int64_t inc_end = db->metrics()->NowMicros();
  db->metrics()->GetHistogram("verify.incremental_micros")
      ->Record(
          static_cast<uint64_t>(std::max<int64_t>(0, inc_end - inc_start)));
  db->tracer()->RecordComplete("verify.incremental", "verify", inc_start,
                               inc_end - inc_start);
  return report;
}

}  // namespace sqlledger
