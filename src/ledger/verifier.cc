#include "ledger/verifier.h"

#include <algorithm>
#include <map>
#include <set>

#include "catalog/row.h"
#include "crypto/merkle.h"
#include "ledger/ledger_view.h"
#include "ledger/row_serializer.h"
#include "util/threadpool.h"

namespace sqlledger {

namespace {

struct VersionLeaf {
  uint64_t sequence;
  Hash256 leaf;
};

/// Rebuilds, for one ledger table, the per-transaction ordered leaf streams
/// from the current main + history rows — the equivalent of the paper's
/// LEDGERHASH + MERKLETREEAGG GROUP BY Transaction ID query (§3.4.2).
void CollectTableLeaves(const LedgerTableRef& table,
                        std::map<uint64_t, std::vector<VersionLeaf>>* by_txn,
                        uint64_t* version_count) {
  const Schema& schema = table.main->schema();
  auto add_insert = [&](const Row& row) {
    const Value& start_txn = row[table.start_txn_ord];
    if (start_txn.is_null()) return;
    uint64_t txn = static_cast<uint64_t>(start_txn.AsInt64());
    uint64_t seq = static_cast<uint64_t>(row[table.start_seq_ord].AsInt64());
    (*by_txn)[txn].push_back(
        {seq, RowVersionLeafHash(schema, row, RowOp::kInsert, table.table_id,
                                 txn, seq)});
    (*version_count)++;
  };
  auto add_delete = [&](const Row& row) {
    const Value& end_txn = row[table.end_txn_ord];
    if (end_txn.is_null()) return;
    uint64_t txn = static_cast<uint64_t>(end_txn.AsInt64());
    uint64_t seq = static_cast<uint64_t>(row[table.end_seq_ord].AsInt64());
    (*by_txn)[txn].push_back(
        {seq, RowVersionLeafHash(schema, row, RowOp::kDelete, table.table_id,
                                 txn, seq)});
    (*version_count)++;
  };

  for (BTree::Iterator it = table.main->Scan(); it.Valid(); it.Next())
    add_insert(it.value());
  if (table.history != nullptr) {
    for (BTree::Iterator it = table.history->Scan(); it.Valid(); it.Next()) {
      add_insert(it.value());
      add_delete(it.value());
    }
  }
}

Hash256 RootOfLeaves(std::vector<VersionLeaf> leaves) {
  std::sort(leaves.begin(), leaves.end(),
            [](const VersionLeaf& a, const VersionLeaf& b) {
              return a.sequence < b.sequence;
            });
  MerkleBuilder builder;
  for (const VersionLeaf& l : leaves) builder.AddLeafHash(l.leaf);
  return builder.Root();
}

bool InTruncatedRange(const std::vector<TruncationRecord>& truncations,
                      uint64_t txn_id) {
  for (const TruncationRecord& t : truncations) {
    if (txn_id >= t.min_txn_id && txn_id <= t.max_txn_id) return true;
  }
  return false;
}

/// Canonical leaf for an index-equivalence tuple (invariant 5).
Hash256 TupleLeaf(const KeyTuple& tuple) {
  std::vector<uint8_t> bytes;
  EncodeRow(tuple, &bytes);
  return MerkleLeafHash(Slice(bytes));
}

void CheckIndexes(const TableStore& store, VerificationReport* report) {
  for (const auto& idx : store.indexes()) {
    // Base side: project (index columns + primary key) from each base row,
    // order by the projected tuple.
    std::vector<KeyTuple> base_tuples;
    base_tuples.reserve(store.row_count());
    for (BTree::Iterator it = store.Scan(); it.Valid(); it.Next()) {
      KeyTuple tuple = Schema::ExtractColumns(it.value(), idx->ordinals);
      KeyTuple pk = store.schema().ExtractKey(it.value());
      tuple.insert(tuple.end(), pk.begin(), pk.end());
      base_tuples.push_back(std::move(tuple));
    }
    std::sort(base_tuples.begin(), base_tuples.end(),
              [](const KeyTuple& a, const KeyTuple& b) {
                return CompareKeys(a, b) < 0;
              });
    MerkleBuilder base_root;
    for (const KeyTuple& t : base_tuples) base_root.AddLeafHash(TupleLeaf(t));

    // Index side: the stored keys, already in order.
    MerkleBuilder index_root;
    uint64_t index_count = 0;
    for (BTree::Iterator it = idx->tree.Begin(); it.Valid(); it.Next()) {
      index_root.AddLeafHash(TupleLeaf(it.key()));
      index_count++;
    }

    if (index_count != base_tuples.size() ||
        base_root.Root() != index_root.Root()) {
      report->violations.push_back(
          {5, "non-clustered index '" + idx->name + "' on table '" +
                  store.name() + "' is not equivalent to the base table"});
    }
  }
}

}  // namespace

std::string VerificationReport::Summary() const {
  std::string out = ok() ? "VERIFICATION PASSED" : "VERIFICATION FAILED";
  out += " (blocks=" + std::to_string(blocks_checked) +
         ", transactions=" + std::to_string(transactions_checked) +
         ", row_versions=" + std::to_string(row_versions_checked);
  if (has_digest_coverage)
    out += ", covered_through_block=" + std::to_string(highest_digest_block);
  out += ")";
  for (const Violation& v : violations) {
    out += "\n  [invariant " + std::to_string(v.invariant) + "] " + v.message;
  }
  return out;
}

Result<VerificationReport> VerifyLedger(
    LedgerDatabase* db, const std::vector<DatabaseDigest>& digests,
    const VerificationOptions& options) {
  DatabaseLedger* ledger = db->database_ledger();
  if (ledger == nullptr)
    return Status::NotSupported("ledger is disabled for this database");

  LedgerDatabase::QuiesceGuard guard(db);
  // Persist pending entries so the system table holds every transaction
  // (the checkpoint-time drain of §3.3.2, run eagerly for verification).
  SL_RETURN_IF_ERROR(ledger->DrainQueue());

  VerificationReport report;
  std::vector<TruncationRecord> truncations = db->GetTruncationRecords();

  // Load all blocks, ordered by id (clustered order).
  TableStore* blocks_store = nullptr;
  TableStore* txns_store = nullptr;
  // The facade does not expose the raw system stores; read them through the
  // ledger's typed accessors instead.
  std::map<uint64_t, BlockRecord> blocks;
  {
    // Blocks: iterate ids from the ledger. Block ids are dense from the
    // lowest retained block to open_block_id-1, but tampering may remove
    // arbitrary rows, so scan via FindBlock over the known range and tolerate
    // gaps (reported by invariant 2/3 checks).
    for (uint64_t b = 0; b < ledger->open_block_id(); b++) {
      auto block = ledger->FindBlock(b);
      if (block.ok()) blocks[b] = *block;
    }
  }
  (void)blocks_store;
  (void)txns_store;

  // Load all transaction entries.
  std::map<uint64_t, TransactionEntry> entries_by_txn;
  std::map<uint64_t, std::vector<TransactionEntry>> entries_by_block;
  for (const TransactionEntry& e : ledger->AllEntries()) {
    entries_by_txn[e.txn_id] = e;
    entries_by_block[e.block_id].push_back(e);
  }
  report.transactions_checked = entries_by_txn.size();

  // ---- Invariant 1: digests vs recomputed block hashes. ----
  for (const DatabaseDigest& digest : digests) {
    if (digest.database_id != db->options().database_id) {
      report.violations.push_back(
          {0, "digest for database '" + digest.database_id +
                  "' does not match this database"});
      continue;
    }
    auto it = blocks.find(digest.block_id);
    if (it == blocks.end()) {
      report.violations.push_back(
          {1, "digest references block " + std::to_string(digest.block_id) +
                  " which is not present in the ledger"});
      continue;
    }
    if (it->second.ComputeHash() != digest.block_hash) {
      report.violations.push_back(
          {1, "hash mismatch for block " + std::to_string(digest.block_id) +
                  ": the block does not match the trusted digest"});
    }
    if (!report.has_digest_coverage ||
        digest.block_id > report.highest_digest_block) {
      report.highest_digest_block = digest.block_id;
      report.has_digest_coverage = true;
    }
  }

  // ---- Invariant 2: the block chain. ----
  const BlockRecord* prev = nullptr;
  for (const auto& [id, block] : blocks) {
    report.blocks_checked++;
    if (prev == nullptr) {
      // First retained block: only block 0 can assert a null predecessor.
      if (id == 0 && !block.previous_block_hash.IsZero()) {
        report.violations.push_back(
            {2, "block 0 records a non-null previous-block hash"});
      }
    } else if (id == prev->block_id + 1) {
      if (block.previous_block_hash != prev->ComputeHash()) {
        report.violations.push_back(
            {2, "block " + std::to_string(id) +
                    " records a previous-block hash that does not match "
                    "block " +
                    std::to_string(prev->block_id)});
      }
    } else {
      report.violations.push_back(
          {2, "gap in the block chain: block " + std::to_string(prev->block_id) +
                  " is followed by block " + std::to_string(id)});
    }
    prev = &block;
  }

  // ---- Invariant 3: per-block transaction Merkle roots. ----
  for (const auto& [id, block] : blocks) {
    auto it = entries_by_block.find(id);
    std::vector<TransactionEntry> block_entries =
        it == entries_by_block.end() ? std::vector<TransactionEntry>{}
                                     : it->second;
    std::sort(block_entries.begin(), block_entries.end(),
              [](const TransactionEntry& a, const TransactionEntry& b) {
                return a.block_ordinal < b.block_ordinal;
              });
    bool ordinals_ok = block_entries.size() == block.transaction_count;
    for (size_t i = 0; ordinals_ok && i < block_entries.size(); i++) {
      if (block_entries[i].block_ordinal != i) ordinals_ok = false;
    }
    std::vector<Hash256> leaves;
    leaves.reserve(block_entries.size());
    for (const TransactionEntry& e : block_entries)
      leaves.push_back(e.LeafHash());
    MerkleTree tree(std::move(leaves));
    if (!ordinals_ok || tree.Root() != block.transactions_root) {
      report.violations.push_back(
          {3, "transactions Merkle root mismatch for block " +
                  std::to_string(id)});
    }
  }
  // Entries must belong to a block that exists (pending blocks excluded).
  for (const auto& [block_id, block_entries] : entries_by_block) {
    if (block_id >= ledger->open_block_id()) continue;  // not yet closed
    if (blocks.count(block_id)) continue;
    report.violations.push_back(
        {3, std::to_string(block_entries.size()) +
                " transaction(s) reference block " + std::to_string(block_id) +
                " which is not present in the ledger"});
  }

  // ---- Invariants 4 & 5 per ledger table. The per-table checks only read
  // shared immutable state, so they run on a thread pool when requested. ----
  std::set<std::string> table_filter(options.tables.begin(),
                                     options.tables.end());
  std::vector<CatalogEntry*> tables_to_check;
  for (CatalogEntry* entry : db->AllTables()) {
    if (entry->kind == TableKind::kRegular) continue;
    if (!table_filter.empty() && !table_filter.count(entry->name)) continue;
    tables_to_check.push_back(entry);
  }

  struct TableCheckResult {
    VerificationReport partial;  // only violations/row_versions_checked used
  };
  std::vector<TableCheckResult> results(tables_to_check.size());

  auto check_table = [&](size_t i) {
    CatalogEntry* entry = tables_to_check[i];
    VerificationReport& out = results[i].partial;

    std::map<uint64_t, std::vector<VersionLeaf>> by_txn;
    CollectTableLeaves(entry->ref, &by_txn, &out.row_versions_checked);

    // Rows -> recorded roots.
    for (auto& [txn_id, leaves] : by_txn) {
      auto eit = entries_by_txn.find(txn_id);
      if (eit == entries_by_txn.end()) {
        if (InTruncatedRange(truncations, txn_id)) continue;
        out.violations.push_back(
            {4, "table '" + entry->name + "' has row versions referencing "
                    "transaction " +
                    std::to_string(txn_id) +
                    " which is not recorded in the ledger"});
        continue;
      }
      const Hash256* recorded = nullptr;
      for (const auto& [table_id, root] : eit->second.table_roots) {
        if (table_id == entry->table_id) {
          recorded = &root;
          break;
        }
      }
      Hash256 computed = RootOfLeaves(leaves);
      if (recorded == nullptr || *recorded != computed) {
        out.violations.push_back(
            {4, "Merkle root mismatch for transaction " +
                    std::to_string(txn_id) + " on table '" + entry->name +
                    "': current rows do not match what the transaction "
                    "recorded"});
      }
    }
    // Recorded roots -> rows (detects wholesale row deletion).
    for (const auto& [txn_id, e] : entries_by_txn) {
      for (const auto& [table_id, root] : e.table_roots) {
        if (table_id != entry->table_id) continue;
        if (!by_txn.count(txn_id)) {
          out.violations.push_back(
              {4, "transaction " + std::to_string(txn_id) +
                      " recorded updates on table '" + entry->name +
                      "' but no matching row versions exist"});
        }
      }
    }

    if (options.check_indexes) {
      CheckIndexes(*entry->main, &out);
      if (entry->history != nullptr) CheckIndexes(*entry->history, &out);
    }

    if (options.check_views) {
      // Ledger view definition check (§3.4.2): the generated view must
      // expose exactly one INSERT per version plus one DELETE per retired
      // version.
      auto view = BuildLedgerView(entry->ref);
      if (!view.ok()) {
        out.violations.push_back(
            {6, "ledger view for '" + entry->name +
                    "' failed to build: " + view.status().ToString()});
      } else {
        uint64_t expected = entry->main->row_count();
        if (entry->history != nullptr)
          expected += 2 * entry->history->row_count();
        if (view->size() != expected) {
          out.violations.push_back(
              {6, "ledger view for '" + entry->name +
                      "' does not reflect the underlying row versions"});
        }
      }
    }
  };

  if (options.parallelism > 1 && tables_to_check.size() > 1) {
    ThreadPool pool(options.parallelism);
    for (size_t i = 0; i < tables_to_check.size(); i++) {
      pool.Submit([&check_table, i] { check_table(i); });
    }
    pool.Wait();
  } else {
    for (size_t i = 0; i < tables_to_check.size(); i++) check_table(i);
  }

  // Merge per-table results in catalog order for deterministic output.
  for (TableCheckResult& result : results) {
    report.row_versions_checked += result.partial.row_versions_checked;
    for (Violation& v : result.partial.violations)
      report.violations.push_back(std::move(v));
  }

  return report;
}

}  // namespace sqlledger
