#include "ledger/verification_state.h"

#include <cstring>

#include "util/coding.h"

namespace sqlledger {
namespace {

// "SQL Ledger Verification State", format 2 (format 1 lacked the
// transaction-entry accumulator; old files fail the magic check and are
// simply ignored, costing one full re-verify).
constexpr uint8_t kMagic[8] = {'S', 'L', 'V', 'S', '0', '0', '0', '2'};
constexpr size_t kMagicLen = sizeof(kMagic);

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void PutString(std::vector<uint8_t>* dst, const std::string& s) {
  PutLengthPrefixed(dst, Slice(s));
}

Result<std::string> GetString(Decoder* dec) {
  auto s = dec->GetLengthPrefixed();
  if (!s.ok()) return s.status();
  return std::string(reinterpret_cast<const char*>(s->data()), s->size());
}

// Word-at-a-time multiply-rotate mix (wyhash-flavored). Entry fingerprinting
// runs over every trusted entry on every incremental pass, so it must stay
// a few ns per field — a byte-serial FNV would eat the O(delta) win.
inline uint64_t MixWord(uint64_t h, uint64_t v) {
  h ^= v * 0x9E3779B97F4A7C15ULL;
  h = (h << 29) | (h >> 35);
  h *= 0xBF58476D1CE4E5B9ULL;
  return h;
}

inline uint64_t MixBytes(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n >= 8) {
    uint64_t w = 0;
    memcpy(&w, p, 8);
    h = MixWord(h, w);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t w = 0;
    memcpy(&w, p, n);
    h = MixWord(h, w | (static_cast<uint64_t>(n) << 56));
  }
  return h;
}

}  // namespace

uint64_t MixVersionFingerprint(uint64_t txn_id, uint64_t sequence, int op) {
  // SplitMix64 finalizer over the packed tuple: a cheap, well-mixed
  // order-independent contribution (versions are XOR-combined, so the
  // accumulator is insensitive to scan order but any structural change —
  // added, removed or re-stamped version — flips it).
  uint64_t x = txn_id * 0x9E3779B97F4A7C15ULL;
  x ^= sequence + 0xBF58476D1CE4E5B9ULL + (x << 6) + (x >> 2);
  x += static_cast<uint64_t>(op) * 0x94D049BB133111EBULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

uint64_t MixEntryFingerprint(const TransactionEntry& entry) {
  // Covers every field of the entry's canonical serialization, so any edit
  // a full verification would catch through the transaction Merkle tree
  // also flips this fingerprint (up to 64-bit collisions — the same odds
  // the row-version accumulator already accepts).
  uint64_t h = 0xCBF29CE484222325ULL;
  h = MixWord(h, entry.txn_id);
  h = MixWord(h, entry.block_id);
  h = MixWord(h, entry.block_ordinal);
  h = MixWord(h, static_cast<uint64_t>(entry.commit_ts_micros));
  h = MixWord(h, entry.user_name.size());
  h = MixBytes(h, entry.user_name.data(), entry.user_name.size());
  h = MixWord(h, entry.table_roots.size());
  for (const auto& [table_id, root] : entry.table_roots) {
    h = MixWord(h, table_id);
    h = MixBytes(h, root.bytes.data(), root.bytes.size());
  }
  // SplitMix64 finalizer: entries XOR-combine, so each must be well mixed.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

std::string VerificationState::Encode() const {
  std::vector<uint8_t> payload;
  PutString(&payload, database_id);
  PutString(&payload, database_create_time);
  PutFixed64(&payload, last_verified_block);
  PutLengthPrefixed(&payload, block_hash.AsSlice());
  PutString(&payload, anchor.database_id);
  PutString(&payload, anchor.database_create_time);
  PutFixed64(&payload, anchor.block_id);
  PutLengthPrefixed(&payload, anchor.block_hash.AsSlice());
  PutFixed64(&payload, static_cast<uint64_t>(anchor.generated_at_micros));
  PutFixed64(&payload, static_cast<uint64_t>(anchor.last_commit_ts_micros));
  payload.push_back(anchor_durable ? 1 : 0);
  PutFixed64(&payload, entry_count);
  PutFixed64(&payload, entry_fingerprint);
  PutVarint32(&payload, static_cast<uint32_t>(tables.size()));
  for (const TableAccumulator& t : tables) {
    PutFixed64(&payload, t.table_id);
    PutFixed64(&payload, t.prefix_versions);
    PutFixed64(&payload, t.fingerprint);
  }

  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + kMagicLen);
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutFixed32(&out, Crc32c(Slice(payload)));
  return std::string(out.begin(), out.end());
}

Result<VerificationState> VerificationState::Decode(const std::string& data) {
  Slice input(data);
  if (input.size() < kMagicLen + 8)
    return Status::Corruption("verification state: truncated header");
  if (memcmp(input.data(), kMagic, kMagicLen) != 0)
    return Status::Corruption("verification state: bad magic");
  Decoder dec(Slice(input.data() + kMagicLen, input.size() - kMagicLen));
  auto payload_size = dec.GetFixed32();
  if (!payload_size.ok()) return payload_size.status();
  if (dec.remaining() != *payload_size + 4)
    return Status::Corruption("verification state: size mismatch");
  auto payload = dec.GetBytes(*payload_size);
  if (!payload.ok()) return payload.status();
  auto stored_crc = dec.GetFixed32();
  if (!stored_crc.ok()) return stored_crc.status();
  if (Crc32c(*payload) != *stored_crc)
    return Status::Corruption("verification state: CRC mismatch");

  VerificationState st;
  Decoder body(*payload);
  auto db_id = GetString(&body);
  if (!db_id.ok()) return db_id.status();
  st.database_id = *db_id;
  auto create_time = GetString(&body);
  if (!create_time.ok()) return create_time.status();
  st.database_create_time = *create_time;
  auto block = body.GetFixed64();
  if (!block.ok()) return block.status();
  st.last_verified_block = *block;
  auto hash = body.GetLengthPrefixed();
  if (!hash.ok()) return hash.status();
  if (hash->size() != st.block_hash.bytes.size())
    return Status::Corruption("verification state: bad block hash length");
  memcpy(st.block_hash.bytes.data(), hash->data(), hash->size());
  auto anchor_id = GetString(&body);
  if (!anchor_id.ok()) return anchor_id.status();
  st.anchor.database_id = *anchor_id;
  auto anchor_create = GetString(&body);
  if (!anchor_create.ok()) return anchor_create.status();
  st.anchor.database_create_time = *anchor_create;
  auto anchor_block = body.GetFixed64();
  if (!anchor_block.ok()) return anchor_block.status();
  st.anchor.block_id = *anchor_block;
  auto anchor_hash = body.GetLengthPrefixed();
  if (!anchor_hash.ok()) return anchor_hash.status();
  if (anchor_hash->size() != st.anchor.block_hash.bytes.size())
    return Status::Corruption("verification state: bad anchor hash length");
  memcpy(st.anchor.block_hash.bytes.data(), anchor_hash->data(),
         anchor_hash->size());
  auto gen_at = body.GetFixed64();
  if (!gen_at.ok()) return gen_at.status();
  st.anchor.generated_at_micros = static_cast<int64_t>(*gen_at);
  auto commit_ts = body.GetFixed64();
  if (!commit_ts.ok()) return commit_ts.status();
  st.anchor.last_commit_ts_micros = static_cast<int64_t>(*commit_ts);
  auto durable = body.GetBytes(1);
  if (!durable.ok()) return durable.status();
  st.anchor_durable = ((*durable)[0] != 0);
  auto entry_count = body.GetFixed64();
  if (!entry_count.ok()) return entry_count.status();
  st.entry_count = *entry_count;
  auto entry_fp = body.GetFixed64();
  if (!entry_fp.ok()) return entry_fp.status();
  st.entry_fingerprint = *entry_fp;
  auto num_tables = body.GetVarint32();
  if (!num_tables.ok()) return num_tables.status();
  for (uint32_t i = 0; i < *num_tables; i++) {
    TableAccumulator acc;
    auto table_id = body.GetFixed64();
    if (!table_id.ok()) return table_id.status();
    acc.table_id = *table_id;
    auto versions = body.GetFixed64();
    if (!versions.ok()) return versions.status();
    acc.prefix_versions = *versions;
    auto fp = body.GetFixed64();
    if (!fp.ok()) return fp.status();
    acc.fingerprint = *fp;
    st.tables.push_back(acc);
  }
  if (!body.done())
    return Status::Corruption("verification state: trailing bytes");
  return st;
}

Status VerificationState::Save(Env* env, const std::string& path) const {
  if (env == nullptr) env = Env::Default();
  std::string encoded = Encode();
  std::string tmp = path + ".tmp";
  {
    auto file = env->NewWritableFile(tmp, WritableFileOptions{.truncate = true});
    if (!file.ok())
      return Status::IOError("cannot create verification state temp file " +
                             tmp + ": " + file.status().message());
    Status st = (*file)->Append(Slice(encoded));
    if (st.ok()) st = (*file)->Flush();
    // Sync BEFORE rename, exactly like checkpoints: otherwise the rename can
    // become durable ahead of the data and a crash installs a torn file
    // under the trusted name.
    if (st.ok()) st = (*file)->Sync();
    Status close_st = (*file)->Close();
    if (st.ok()) st = close_st;
    if (!st.ok()) {
      (void)env->RemoveFile(tmp);  // best-effort cleanup of the temp file
      return Status::IOError("verification state write failed: " +
                             st.message());
    }
  }
  // No .prev retention: losing the watermark only costs a full re-verify,
  // so replacing in one rename keeps recovery logic trivial.
  SL_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  SL_RETURN_IF_ERROR(env->SyncDir(ParentDir(path)));
  return Status::OK();
}

Result<VerificationState> VerificationState::Load(Env* env,
                                                  const std::string& path) {
  if (env == nullptr) env = Env::Default();
  if (!env->FileExists(path))
    return Status::NotFound("no verification state at " + path);
  auto data = env->ReadFile(path);
  if (!data.ok()) return data.status();
  return Decode(std::string(data->begin(), data->end()));
}

Status VerificationState::Remove(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  if (!env->FileExists(path)) return Status::OK();
  return env->RemoveFile(path);
}

}  // namespace sqlledger
