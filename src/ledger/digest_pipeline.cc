#include "ledger/digest_pipeline.h"

#include <algorithm>
#include <sstream>

#include "ledger/digest_store.h"
#include "ledger/ledger_database.h"
#include "util/trace.h"

namespace sqlledger {

DigestErrorClass ClassifyDigestUploadError(const Status& status) {
  switch (status.code()) {
    // The ledger or the stored digests are wrong — retrying would paper
    // over a fork, tampering or a misconfiguration. Alert and stop.
    case StatusCode::kIntegrityViolation:
    case StatusCode::kCorruption:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotSupported:
    case StatusCode::kPermissionDenied:
      return DigestErrorClass::kFatal;
    // Network weather: timeouts, throttling, partitions, races. Retry.
    default:
      return DigestErrorClass::kRetryable;
  }
}

const char* DigestBreakerStateName(DigestBreakerState state) {
  switch (state) {
    case DigestBreakerState::kHealthy: return "healthy";
    case DigestBreakerState::kDegraded: return "degraded";
    case DigestBreakerState::kOpen: return "open";
  }
  return "unknown";
}

std::string DigestProtectionStatus::ToString() const {
  std::ostringstream os;
  os << "breaker=" << DigestBreakerStateName(breaker)
     << " blocks_behind=" << blocks_behind
     << " stale_s=" << seconds_since_last_durable
     << " pending=" << outbox_pending << " ok=" << uploads_ok
     << " attempts=" << attempts << " retries=" << retries
     << " transient=" << transient_errors
     << " rejected=" << submissions_rejected;
  if (!fatal.ok()) os << " FATAL=" << fatal.ToString();
  return os.str();
}

DigestUploadPipeline::DigestUploadPipeline(
    LedgerDatabase* db, DigestStore* store, DigestPipelineOptions options,
    std::unique_ptr<DigestOutbox> outbox)
    : db_(db),
      store_(store),
      options_(std::move(options)),
      outbox_(std::move(outbox)),
      rng_(options_.seed) {}

Result<std::unique_ptr<DigestUploadPipeline>> DigestUploadPipeline::Open(
    LedgerDatabase* db, DigestStore* store, DigestPipelineOptions options) {
  DigestOutboxOptions obox;
  obox.dir = options.outbox_dir;
  obox.env = options.env;
  obox.capacity = options.outbox_capacity;
  auto outbox = DigestOutbox::Open(std::move(obox));
  if (!outbox.ok()) return outbox.status();

  std::unique_ptr<DigestUploadPipeline> pipeline(new DigestUploadPipeline(
      db, store, std::move(options), std::move(*outbox)));

  // Resolve the pipeline's metrics from the database registry (DESIGN.md
  // §13). Open runs before the pipeline sees any concurrency.
  MetricRegistry* metrics = db->metrics();
  pipeline->m_uploads_ok_ = metrics->GetCounter("digest.uploads_total");
  pipeline->m_attempts_ = metrics->GetCounter("digest.attempts_total");
  pipeline->m_retries_ = metrics->GetCounter("digest.retries_total");
  pipeline->m_transient_errors_ =
      metrics->GetCounter("digest.transient_errors_total");
  pipeline->m_recoveries_ = metrics->GetCounter("digest.recoveries_total");
  pipeline->m_rejected_ = metrics->GetCounter("digest.rejected_total");
  pipeline->m_breaker_transitions_ =
      metrics->GetCounter("digest.breaker_transitions_total");
  pipeline->m_outbox_depth_ = metrics->GetGauge("digest.outbox_depth");
  pipeline->m_breaker_state_ = metrics->GetGauge("digest.breaker_state");
  pipeline->m_upload_micros_ = metrics->GetHistogram("digest.upload_micros");
  pipeline->tracer_ = db->tracer();
  pipeline->m_outbox_depth_->Set(
      static_cast<int64_t>(pipeline->outbox_->pending_count()));

  // A previous process may have left digests queued (outage, crash). The
  // newest becomes the chain anchor so this incarnation's next submission
  // chains onto the replayed tail, preserving upload order end to end.
  std::vector<std::string> pending = pipeline->outbox_->Pending();
  if (!pending.empty()) {
    auto tail = DatabaseDigest::FromJson(pending.back());
    if (!tail.ok())
      return Status::Corruption("outbox replay: undecodable digest: " +
                                tail.status().message());
    MutexLock lock(&pipeline->mu_);
    pipeline->have_last_submitted_ = true;
    pipeline->last_submitted_ = *tail;
  }
  return pipeline;
}

DigestUploadPipeline::~DigestUploadPipeline() { Stop(); }

Status DigestUploadPipeline::SubmitDigest(const DatabaseDigest& digest) {
  MutexLock lock(&mu_);
  if (!fatal_.ok()) return fatal_;

  // Fork check against the previous submission (paper §3.3.1 requirement
  // 3) — performed even while the store is unreachable, so a fork cannot
  // hide inside an outage window. Skipped when the anchor's block was
  // legitimately truncated away or belongs to another incarnation.
  if (have_last_submitted_ &&
      last_submitted_.database_create_time == digest.database_create_time &&
      db_->database_ledger()->FindBlock(last_submitted_.block_id).ok()) {
    auto derivable =
        db_->database_ledger()->VerifyDigestChain(last_submitted_, digest);
    if (!derivable.ok()) return derivable.status();
    if (!*derivable) {
      fatal_ = Status::IntegrityViolation(
          "fork detected: digest for block " + std::to_string(digest.block_id) +
          " is not derivable from the previously submitted digest (block " +
          std::to_string(last_submitted_.block_id) + ")");
      return fatal_;
    }
  }

  Status st = outbox_->Append(digest.ToJson());
  if (!st.ok()) {
    if (st.code() == StatusCode::kBusy) m_rejected_->Add();
    return st;
  }
  m_outbox_depth_->Set(static_cast<int64_t>(outbox_->pending_count()));
  have_last_submitted_ = true;
  last_submitted_ = digest;
  return Status::OK();
}

Status DigestUploadPipeline::GenerateAndSubmit() {
  auto digest = db_->GenerateDigest();
  if (!digest.ok()) {
    if (ClassifyDigestUploadError(digest.status()) == DigestErrorClass::kFatal) {
      MutexLock lock(&mu_);
      if (fatal_.ok()) fatal_ = digest.status();
    }
    return digest.status();
  }
  return SubmitDigest(*digest);
}

void DigestUploadPipeline::SetBreakerLocked(DigestBreakerState next) {
  if (next == breaker_) return;
  const char* from = DigestBreakerStateName(breaker_);
  breaker_ = next;
  m_breaker_transitions_->Add();
  m_breaker_state_->Set(static_cast<int64_t>(next));
  tracer_->RecordInstant("digest.breaker", "digest", from,
                         DigestBreakerStateName(next));
}

void DigestUploadPipeline::OnRetryableFailureLocked(int64_t now,
                                                    const Status& st) {
  m_transient_errors_->Add();
  consecutive_failures_++;
  if (consecutive_failures_ >= options_.open_after_failures)
    SetBreakerLocked(DigestBreakerState::kOpen);
  else if (consecutive_failures_ >= options_.degraded_after_failures)
    SetBreakerLocked(DigestBreakerState::kDegraded);

  // Exponential backoff with seeded jitter. The exponent saturates at the
  // cap rather than overflowing for long outages.
  double backoff = static_cast<double>(options_.initial_backoff_micros);
  for (int i = 1; i < consecutive_failures_ &&
                  backoff < static_cast<double>(options_.max_backoff_micros);
       i++)
    backoff *= options_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_micros));
  double factor = 1.0 + options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  next_attempt_micros_ = now + static_cast<int64_t>(backoff * factor);
  if (breaker_ == DigestBreakerState::kOpen)
    next_probe_micros_ = now + options_.probe_interval_micros;
  (void)st;  // classification already consumed; kept for future logging
}

size_t DigestUploadPipeline::PumpLocked(int64_t now) {
  if (!fatal_.ok()) return 0;
  if (breaker_ == DigestBreakerState::kOpen) {
    if (now < next_probe_micros_) return 0;  // wait for the next probe slot
  } else if (now < next_attempt_micros_) {
    return 0;  // backoff in effect
  }

  size_t uploaded = 0;
  while (true) {
    std::vector<std::string> pending = outbox_->Pending();
    if (pending.empty()) break;
    auto digest = DatabaseDigest::FromJson(pending.front());
    if (!digest.ok()) {
      fatal_ = Status::Corruption("outbox head undecodable: " +
                                  digest.status().message());
      break;
    }

    head_attempts_++;
    m_attempts_->Add();
    if (head_attempts_ > 1) m_retries_->Add();
    const int64_t upload_start = db_->metrics()->NowMicros();
    Status st = store_->Upload(*digest);
    m_upload_micros_->Record(static_cast<uint64_t>(
        std::max<int64_t>(0, db_->metrics()->NowMicros() - upload_start)));
    now = db_->NowMicros();
    if (st.ok()) {
      // An open breaker admits one probe; its success closes the circuit
      // and the drain continues below.
      m_uploads_ok_->Add();
      uploaded++;
      if (head_attempts_ > 1) m_recoveries_->Add();
      head_attempts_ = 0;
      consecutive_failures_ = 0;
      SetBreakerLocked(DigestBreakerState::kHealthy);
      next_attempt_micros_ = 0;
      have_last_durable_ = true;
      last_durable_ = *digest;
      last_durable_at_micros_ = now;
      // A durably stored digest is the natural anchor for incremental
      // verification to refresh its watermark from (DESIGN.md §11).
      db_->NoteDurableDigest(*digest);
      Status ack = outbox_->Ack(1);
      m_outbox_depth_->Set(static_cast<int64_t>(outbox_->pending_count()));
      if (!ack.ok()) {
        // Local disk trouble persisting the cursor. The digest IS durable
        // at the store; the un-acked head will simply be re-uploaded later
        // and absorbed idempotently. Stop this round.
        m_transient_errors_->Add();
        break;
      }
      continue;
    }

    if (ClassifyDigestUploadError(st) == DigestErrorClass::kFatal) {
      fatal_ = st;  // latch: fork/corruption must alert, never be retried
      break;
    }
    OnRetryableFailureLocked(now, st);
    break;
  }
  return uploaded;
}

size_t DigestUploadPipeline::Pump() {
  MutexLock lock(&mu_);
  return PumpLocked(db_->NowMicros());
}

Status DigestUploadPipeline::DrainFully() {
  while (true) {
    {
      MutexLock lock(&mu_);
      if (!fatal_.ok()) return fatal_;
    }
    if (outbox_->pending_count() == 0) return Status::OK();
    if (Pump() == 0) {
      MutexLock lock(&mu_);
      if (!fatal_.ok()) return fatal_;
      return Status::Busy("digest uploads blocked (backoff/breaker); " +
                          std::to_string(outbox_->pending_count()) +
                          " pending");
    }
  }
}

void DigestUploadPipeline::Start(std::chrono::milliseconds interval) {
  MutexLock lock(&mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this, interval] { Loop(interval); });
}

void DigestUploadPipeline::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.SignalAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(&mu_);
  running_ = false;
}

void DigestUploadPipeline::Loop(std::chrono::milliseconds interval) {
  mu_.Lock();
  while (!stop_) {
    // Sleep out the interval, waking early only for Stop (same discipline
    // as the WAL/uploader loops: timeout with stop_ false = time to work).
    auto deadline = std::chrono::steady_clock::now() + interval;
    while (!stop_) {
      if (!cv_.WaitUntil(&mu_, deadline)) break;
    }
    if (stop_) break;
    bool fatal = !fatal_.ok();
    mu_.Unlock();
    if (fatal) {
      mu_.Lock();
      break;  // latched: alert-and-stop, mirroring the paper's behaviour
    }
    // Transient submit failures (outbox full, disk hiccup) are reflected
    // in the status counters; the cadence itself keeps going.
    (void)GenerateAndSubmit();  // status() carries the error taxonomy
    (void)Pump();               // progress is observable via uploads_ok
    mu_.Lock();
  }
  mu_.Unlock();
}

DigestProtectionStatus DigestUploadPipeline::status() const {
  MutexLock lock(&mu_);
  DigestProtectionStatus s;
  s.breaker = breaker_;
  s.fatal = fatal_;
  s.outbox_pending = outbox_->pending_count();
  // Counters are registry-backed (DESIGN.md §13): this status struct is a
  // stable facade over the same storage MetricsSnapshot() reports.
  s.uploads_ok = m_uploads_ok_->value();
  s.attempts = m_attempts_->value();
  s.retries = m_retries_->value();
  s.transient_errors = m_transient_errors_->value();
  s.recovered_after_retry = m_recoveries_->value();
  s.submissions_rejected = m_rejected_->value();
  s.consecutive_failures = consecutive_failures_;

  DatabaseLedger* ledger = db_->database_ledger();
  uint64_t open_id = ledger != nullptr ? ledger->open_block_id() : 0;
  if (open_id == 0 || (have_last_durable_ &&
                       last_durable_.block_id + 1 >= open_id)) {
    s.blocks_behind = 0;
  } else if (!have_last_durable_) {
    s.blocks_behind = open_id;  // every closed block is unprotected
  } else {
    s.blocks_behind = open_id - 1 - last_durable_.block_id;
  }
  if (have_last_durable_) {
    int64_t now = db_->NowMicros();
    s.seconds_since_last_durable =
        now > last_durable_at_micros_
            ? static_cast<double>(now - last_durable_at_micros_) / 1e6
            : 0.0;
  }
  return s;
}

}  // namespace sqlledger
