#include "ledger/database_ledger.h"

#include <chrono>
#include <cstring>

#include "util/coding.h"

namespace sqlledger {

Schema MakeLedgerTransactionsSchema() {
  Schema s;
  s.AddColumn("transaction_id", DataType::kBigInt, /*nullable=*/false);
  s.AddColumn("block_id", DataType::kBigInt, false);
  s.AddColumn("block_ordinal", DataType::kBigInt, false);
  s.AddColumn("commit_ts", DataType::kTimestamp, false);
  s.AddColumn("user_name", DataType::kVarchar, false);
  s.AddColumn("table_roots", DataType::kVarbinary, false);
  s.SetPrimaryKey({0});
  return s;
}

Schema MakeLedgerBlocksSchema() {
  Schema s;
  s.AddColumn("block_id", DataType::kBigInt, false);
  s.AddColumn("previous_block_hash", DataType::kVarbinary, false);
  s.AddColumn("transactions_root", DataType::kVarbinary, false);
  s.AddColumn("transaction_count", DataType::kBigInt, false);
  s.AddColumn("closed_ts", DataType::kTimestamp, false);
  s.SetPrimaryKey({0});
  return s;
}

namespace {
std::vector<uint8_t> EncodeTableRoots(
    const std::vector<std::pair<uint32_t, Hash256>>& roots) {
  std::vector<uint8_t> out;
  PutVarint32(&out, static_cast<uint32_t>(roots.size()));
  for (const auto& [table_id, root] : roots) {
    PutFixed32(&out, table_id);
    out.insert(out.end(), root.bytes.begin(), root.bytes.end());
  }
  return out;
}

Result<std::vector<std::pair<uint32_t, Hash256>>> DecodeTableRoots(
    Slice bytes) {
  Decoder dec(bytes);
  auto count = dec.GetVarint32();
  if (!count.ok()) return count.status();
  std::vector<std::pair<uint32_t, Hash256>> roots;
  roots.reserve(*count);
  for (uint32_t i = 0; i < *count; i++) {
    auto table_id = dec.GetFixed32();
    if (!table_id.ok()) return table_id.status();
    auto hash_bytes = dec.GetBytes(32);
    if (!hash_bytes.ok()) return hash_bytes.status();
    Hash256 root;
    std::memcpy(root.bytes.data(), hash_bytes->data(), 32);
    roots.emplace_back(*table_id, root);
  }
  if (!dec.done()) return Status::Corruption("trailing bytes in table roots");
  return roots;
}

Value HashValue(const Hash256& h) {
  return Value::Varbinary(std::vector<uint8_t>(h.bytes.begin(), h.bytes.end()));
}

Result<Hash256> ValueToHash(const Value& v) {
  if (v.is_null() || v.type() != DataType::kVarbinary ||
      v.string_value().size() != 32)
    return Status::Corruption("malformed hash value in system table");
  Hash256 h;
  std::memcpy(h.bytes.data(), v.string_value().data(), 32);
  return h;
}
}  // namespace

Row TransactionEntryToRow(const TransactionEntry& entry) {
  Row row;
  row.push_back(Value::BigInt(static_cast<int64_t>(entry.txn_id)));
  row.push_back(Value::BigInt(static_cast<int64_t>(entry.block_id)));
  row.push_back(Value::BigInt(static_cast<int64_t>(entry.block_ordinal)));
  row.push_back(Value::Timestamp(entry.commit_ts_micros));
  row.push_back(Value::Varchar(entry.user_name));
  row.push_back(Value::Varbinary(EncodeTableRoots(entry.table_roots)));
  return row;
}

Result<TransactionEntry> RowToTransactionEntry(const Row& row) {
  if (row.size() != 6)
    return Status::Corruption("bad arity in ledger transactions row");
  TransactionEntry entry;
  entry.txn_id = static_cast<uint64_t>(row[0].AsInt64());
  entry.block_id = static_cast<uint64_t>(row[1].AsInt64());
  entry.block_ordinal = static_cast<uint64_t>(row[2].AsInt64());
  entry.commit_ts_micros = row[3].AsInt64();
  entry.user_name = row[4].string_value();
  auto roots = DecodeTableRoots(row[5].binary_value());
  if (!roots.ok()) return roots.status();
  entry.table_roots = std::move(*roots);
  return entry;
}

Row BlockRecordToRow(const BlockRecord& block) {
  Row row;
  row.push_back(Value::BigInt(static_cast<int64_t>(block.block_id)));
  row.push_back(HashValue(block.previous_block_hash));
  row.push_back(HashValue(block.transactions_root));
  row.push_back(Value::BigInt(static_cast<int64_t>(block.transaction_count)));
  row.push_back(Value::Timestamp(block.closed_ts_micros));
  return row;
}

Result<BlockRecord> RowToBlockRecord(const Row& row) {
  if (row.size() != 5)
    return Status::Corruption("bad arity in ledger blocks row");
  BlockRecord block;
  block.block_id = static_cast<uint64_t>(row[0].AsInt64());
  auto prev = ValueToHash(row[1]);
  if (!prev.ok()) return prev.status();
  block.previous_block_hash = *prev;
  auto root = ValueToHash(row[2]);
  if (!root.ok()) return root.status();
  block.transactions_root = *root;
  block.transaction_count = static_cast<uint64_t>(row[3].AsInt64());
  block.closed_ts_micros = row[4].AsInt64();
  return block;
}

DatabaseLedger::DatabaseLedger(TableStore* transactions_table,
                               TableStore* blocks_table,
                               DatabaseLedgerOptions options)
    : transactions_table_(transactions_table), blocks_table_(blocks_table),
      options_(std::move(options)) {
  if (!options_.clock) {
    options_.clock = [] {
      return std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
          .count();
    };
  }
  if (options_.block_size == 0) options_.block_size = 1;
}

uint64_t DatabaseLedger::open_block_id() const {
  MutexLock lock(&mu_);
  return open_block_id_;
}

uint64_t DatabaseLedger::open_block_entry_count() const {
  MutexLock lock(&mu_);
  return open_entries_.size();
}

uint64_t DatabaseLedger::closed_block_count() const {
  MutexLock lock(&mu_);
  return blocks_table_->row_count();
}

uint64_t DatabaseLedger::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

uint64_t DatabaseLedger::total_entries() const {
  MutexLock lock(&mu_);
  return total_entries_;
}

std::pair<uint64_t, uint64_t> DatabaseLedger::AssignSlot() {
  return AssignSlots(1)[0];
}

std::vector<std::pair<uint64_t, uint64_t>> DatabaseLedger::AssignSlots(
    size_t n) {
  MutexLock lock(&mu_);
  std::vector<std::pair<uint64_t, uint64_t>> slots;
  slots.reserve(n);
  for (size_t i = 0; i < n; i++) {
    slots.emplace_back(assign_block_id_, assign_ordinal_++);
    if (assign_ordinal_ >= options_.block_size) {
      assign_block_id_++;
      assign_ordinal_ = 0;
    }
  }
  return slots;
}

void DatabaseLedger::ReleaseSlots(size_t n) {
  MutexLock lock(&mu_);
  for (size_t i = 0; i < n; i++) {
    if (assign_ordinal_ == 0) {
      assign_block_id_--;
      assign_ordinal_ = options_.block_size;
    }
    assign_ordinal_--;
  }
}

Status DatabaseLedger::Append(TransactionEntry entry) {
  MutexLock lock(&mu_);
  if (entry.block_id != open_block_id_)
    return Status::Internal("entry assigned to non-open block");
  last_commit_ts_ = entry.commit_ts_micros;
  if (append_log_enabled_) append_log_.push_back(entry);
  open_entries_.push_back(entry);
  queue_.push_back(std::move(entry));
  total_entries_++;
  if (open_entries_.size() >= options_.block_size)
    return CloseOpenBlockLocked();
  return Status::OK();
}

Status DatabaseLedger::CloseOpenBlockLocked() {
  // Merkle tree over the entries in ordinal order; AssignSlot/Append keep
  // open_entries_ ordinal-ordered by construction.
  MerkleTree tree(TransactionLeafHashes(open_entries_));

  BlockRecord block;
  block.block_id = open_block_id_;
  block.previous_block_hash = last_block_hash_;
  block.transactions_root = tree.Root();
  block.transaction_count = open_entries_.size();
  // Deterministic close timestamp (last entry's commit time, 0 for an
  // empty block) so a crash-recovery replay reproduces the identical block
  // hash that escaped in digests.
  block.closed_ts_micros =
      open_entries_.empty() ? 0 : open_entries_.back().commit_ts_micros;

  SL_RETURN_IF_ERROR(blocks_table_->Insert(BlockRecordToRow(block)));
  last_block_hash_ = block.ComputeHash();
  open_block_id_++;
  open_entries_.clear();
  // A digest-driven close of a partially filled block abandons the rest of
  // the block's ordinals: pull the assign position forward to the new open
  // block. A close driven by appends catching up with a batch assignment
  // leaves the assign position alone — it already points at (or past) the
  // new block, and rewinding it would double-assign in-flight slots.
  if (assign_block_id_ < open_block_id_) {
    assign_block_id_ = open_block_id_;
    assign_ordinal_ = 0;
  }
  return Status::OK();
}

Result<DatabaseDigest> DatabaseLedger::GenerateDigest(
    const std::string& database_id, const std::string& create_time) {
  MutexLock lock(&mu_);
  // Close the open block so the digest covers the most recent transactions;
  // a pristine database materializes an initial empty block.
  if (!open_entries_.empty() || blocks_table_->row_count() == 0) {
    SL_RETURN_IF_ERROR(CloseOpenBlockLocked());
  }
  DatabaseDigest digest;
  digest.database_id = database_id;
  digest.database_create_time = create_time;
  digest.block_id = open_block_id_ - 1;
  digest.block_hash = last_block_hash_;
  digest.generated_at_micros = Now();
  digest.last_commit_ts_micros = last_commit_ts_;
  return digest;
}

Result<bool> DatabaseLedger::VerifyDigestChain(
    const DatabaseDigest& older, const DatabaseDigest& newer) const {
  if (older.block_id > newer.block_id) return false;
  MutexLock lock(&mu_);  // the scan must not race a concurrent block close
  // One ordered scan over [older, newer] instead of per-block point lookups;
  // each block's hash is computed exactly once and carried forward.
  KeyTuple start_key{Value::BigInt(static_cast<int64_t>(older.block_id))};
  BTree::Iterator it = blocks_table_->Seek(start_key);
  uint64_t expected = older.block_id;
  Hash256 running;
  for (; it.Valid(); it.Next()) {
    auto block = RowToBlockRecord(it.value());
    if (!block.ok()) return false;
    if (block->block_id != expected) return false;  // gap in the chain
    if (expected == older.block_id) {
      running = block->ComputeHash();
      if (!ConstantTimeEqual(running, older.block_hash)) return false;
    } else {
      if (!ConstantTimeEqual(block->previous_block_hash, running)) return false;
      running = block->ComputeHash();
    }
    if (block->block_id == newer.block_id)
      return ConstantTimeEqual(running, newer.block_hash);
    expected++;
  }
  return false;  // ran off the end before reaching `newer`
}

Status DatabaseLedger::DrainQueue() {
  MutexLock lock(&mu_);
  while (!queue_.empty()) {
    const TransactionEntry& entry = queue_.front();
    Status st = transactions_table_->Insert(TransactionEntryToRow(entry));
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    queue_.pop_front();
  }
  return Status::OK();
}

Status DatabaseLedger::RecoverEntry(const TransactionEntry& entry) {
  MutexLock lock(&mu_);
  KeyTuple key{Value::BigInt(static_cast<int64_t>(entry.txn_id))};
  bool persisted = transactions_table_->Get(key) != nullptr;
  bool in_open_block = false;
  for (const TransactionEntry& e : open_entries_) {
    if (e.txn_id == entry.txn_id) {
      in_open_block = true;
      break;
    }
  }
  if (persisted || in_open_block) return Status::OK();  // idempotent replay

  // An entry addressed past the open block means the open block was closed
  // (by reaching block_size or by digest generation) before this commit;
  // re-close deterministically.
  while (entry.block_id > open_block_id_) {
    SL_RETURN_IF_ERROR(CloseOpenBlockLocked());
  }

  if (entry.block_id == open_block_id_) {
    // During recovery no group is in flight, so the assign position tracks
    // the append position exactly; advance both in lockstep.
    if (entry.block_ordinal != assign_ordinal_)
      return Status::Corruption("WAL replay: ordinal gap in open block");
    last_commit_ts_ = entry.commit_ts_micros;
    if (append_log_enabled_) append_log_.push_back(entry);
    open_entries_.push_back(entry);
    queue_.push_back(entry);
    total_entries_++;
    assign_ordinal_++;
    if (assign_ordinal_ >= options_.block_size) {
      assign_block_id_++;
      assign_ordinal_ = 0;
    }
    if (open_entries_.size() >= options_.block_size)
      return CloseOpenBlockLocked();
    return Status::OK();
  }
  return Status::Corruption("WAL replay: entry for unexpected block " +
                            std::to_string(entry.block_id));
}

Status DatabaseLedger::RecoverBlockClose(uint64_t block_id) {
  MutexLock lock(&mu_);
  if (block_id < open_block_id_) return Status::OK();  // already closed
  if (block_id != open_block_id_)
    return Status::Corruption("block-close marker skips blocks");
  return CloseOpenBlockLocked();
}

Status DatabaseLedger::LoadFromTables() {
  MutexLock lock(&mu_);
  // The open block is one past the newest closed block.
  uint64_t max_closed = 0;
  bool any_block = false;
  BlockRecord last_block;
  for (BTree::Iterator it = blocks_table_->Scan(); it.Valid(); it.Next()) {
    auto block = RowToBlockRecord(it.value());
    if (!block.ok()) return block.status();
    any_block = true;
    if (block->block_id >= max_closed) {
      max_closed = block->block_id;
      last_block = *block;
    }
  }
  open_block_id_ = any_block ? max_closed + 1 : 0;
  last_block_hash_ = any_block ? last_block.ComputeHash() : Hash256{};

  // Entries already persisted that belong to the open block.
  open_entries_.clear();
  total_entries_ = 0;
  std::vector<TransactionEntry> open;
  for (BTree::Iterator it = transactions_table_->Scan(); it.Valid();
       it.Next()) {
    auto entry = RowToTransactionEntry(it.value());
    if (!entry.ok()) return entry.status();
    total_entries_++;
    if (entry->commit_ts_micros > last_commit_ts_)
      last_commit_ts_ = entry->commit_ts_micros;
    if (entry->block_id == open_block_id_) open.push_back(std::move(*entry));
  }
  std::sort(open.begin(), open.end(),
            [](const TransactionEntry& a, const TransactionEntry& b) {
              return a.block_ordinal < b.block_ordinal;
            });
  open_entries_ = std::move(open);
  assign_block_id_ = open_block_id_;
  assign_ordinal_ = open_entries_.size();
  queue_.clear();
  return Status::OK();
}

std::vector<TransactionEntry> DatabaseLedger::PendingEntries() const {
  MutexLock lock(&mu_);
  std::vector<TransactionEntry> out = open_entries_;
  for (const TransactionEntry& e : queue_) {
    bool seen = false;
    for (const TransactionEntry& o : out) {
      if (o.txn_id == e.txn_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(e);
  }
  return out;
}

std::vector<TransactionEntry> DatabaseLedger::AllEntriesLocked() const {
  std::vector<TransactionEntry> out;
  out.reserve(transactions_table_->row_count());
  for (BTree::Iterator it = transactions_table_->Scan(); it.Valid();
       it.Next()) {
    auto entry = RowToTransactionEntry(it.value());
    if (entry.ok()) out.push_back(std::move(*entry));
  }
  return out;
}

std::vector<TransactionEntry> DatabaseLedger::AllEntries() const {
  MutexLock lock(&mu_);
  return AllEntriesLocked();
}

DatabaseLedger::LedgerSnapshot DatabaseLedger::Snapshot() const {
  MutexLock lock(&mu_);
  LedgerSnapshot snap;
  snap.entries = AllEntriesLocked();
  snap.blocks = AllBlocksLocked();
  snap.open_block_id = open_block_id_;
  return snap;
}

Result<DatabaseLedger::TxnRange> DatabaseLedger::CollectTxnsBelow(
    uint64_t below_block) const {
  MutexLock lock(&mu_);
  TxnRange range;
  bool first = true;
  for (BTree::Iterator it = transactions_table_->Scan(); it.Valid();
       it.Next()) {
    auto entry = RowToTransactionEntry(it.value());
    if (!entry.ok()) return entry.status();
    if (entry->block_id >= below_block) continue;
    range.txn_ids.push_back(entry->txn_id);
    if (first || entry->txn_id < range.min_txn_id)
      range.min_txn_id = entry->txn_id;
    if (first || entry->txn_id > range.max_txn_id)
      range.max_txn_id = entry->txn_id;
    first = false;
  }
  return range;
}

Status DatabaseLedger::TruncateBelow(uint64_t below_block) {
  MutexLock lock(&mu_);
  if (below_block >= open_block_id_)
    return Status::InvalidArgument(
        "cannot truncate the open block or beyond");
  std::vector<KeyTuple> txn_keys;
  for (BTree::Iterator it = transactions_table_->Scan(); it.Valid();
       it.Next()) {
    auto entry = RowToTransactionEntry(it.value());
    if (!entry.ok()) return entry.status();
    if (entry->block_id < below_block) txn_keys.push_back(it.key());
  }
  for (const KeyTuple& key : txn_keys)
    SL_RETURN_IF_ERROR(transactions_table_->Delete(key));

  std::vector<KeyTuple> block_keys;
  for (BTree::Iterator it = blocks_table_->Scan(); it.Valid(); it.Next()) {
    auto block = RowToBlockRecord(it.value());
    if (!block.ok()) return block.status();
    if (block->block_id < below_block) block_keys.push_back(it.key());
  }
  for (const KeyTuple& key : block_keys)
    SL_RETURN_IF_ERROR(blocks_table_->Delete(key));
  return Status::OK();
}

Result<TransactionEntry> DatabaseLedger::FindEntryLocked(
    uint64_t txn_id) const {
  for (const TransactionEntry& e : open_entries_) {
    if (e.txn_id == txn_id) return e;
  }
  for (const TransactionEntry& e : queue_) {
    if (e.txn_id == txn_id) return e;
  }
  KeyTuple key{Value::BigInt(static_cast<int64_t>(txn_id))};
  const Row* row = transactions_table_->Get(key);
  if (row == nullptr)
    return Status::NotFound("transaction " + std::to_string(txn_id) +
                            " not in ledger");
  return RowToTransactionEntry(*row);
}

Result<TransactionEntry> DatabaseLedger::FindEntry(uint64_t txn_id) const {
  MutexLock lock(&mu_);
  return FindEntryLocked(txn_id);
}

std::vector<BlockRecord> DatabaseLedger::AllBlocksLocked() const {
  std::vector<BlockRecord> out;
  out.reserve(blocks_table_->row_count());
  for (BTree::Iterator it = blocks_table_->Scan(); it.Valid(); it.Next()) {
    auto block = RowToBlockRecord(it.value());
    // Unparsable rows are omitted, like a missing row; the verifier reports
    // the resulting chain gap via invariants 2/3.
    if (block.ok()) out.push_back(std::move(*block));
  }
  return out;
}

std::vector<BlockRecord> DatabaseLedger::AllBlocks() const {
  MutexLock lock(&mu_);
  return AllBlocksLocked();
}

Result<BlockRecord> DatabaseLedger::FindBlock(uint64_t block_id) const {
  MutexLock lock(&mu_);
  KeyTuple key{Value::BigInt(static_cast<int64_t>(block_id))};
  const Row* row = blocks_table_->Get(key);
  if (row == nullptr)
    return Status::NotFound("block " + std::to_string(block_id) +
                            " not in ledger");
  return RowToBlockRecord(*row);
}

void DatabaseLedger::EnableAppendLog() {
  MutexLock lock(&mu_);
  append_log_enabled_ = true;
}

std::vector<TransactionEntry> DatabaseLedger::AppendLogSince(
    size_t start) const {
  MutexLock lock(&mu_);
  if (start >= append_log_.size()) return {};
  return std::vector<TransactionEntry>(append_log_.begin() + start,
                                       append_log_.end());
}

size_t DatabaseLedger::append_log_size() const {
  MutexLock lock(&mu_);
  return append_log_.size();
}

Hash256 DatabaseLedger::last_block_hash() const {
  MutexLock lock(&mu_);
  return last_block_hash_;
}

Result<MerkleProof> DatabaseLedger::ProveTransaction(uint64_t txn_id) const {
  // One critical section for the whole proof: the lookup, the system-table
  // scan, and the queue sweep must all see the same chain state (a block
  // close between them would split the entry set across blocks).
  MutexLock lock(&mu_);
  auto entry = FindEntryLocked(txn_id);
  if (!entry.ok()) return entry.status();
  if (entry->block_id >= open_block_id_)
    return Status::Busy("transaction's block is not closed yet; generate a "
                        "digest to close it");
  // Gather the block's entries in ordinal order. They may live in the
  // system table and/or the undrained queue.
  std::vector<TransactionEntry> block_entries;
  for (BTree::Iterator it = transactions_table_->Scan(); it.Valid();
       it.Next()) {
    auto e = RowToTransactionEntry(it.value());
    if (!e.ok()) return e.status();
    if (e->block_id == entry->block_id) block_entries.push_back(std::move(*e));
  }
  for (const TransactionEntry& e : queue_) {
    if (e.block_id != entry->block_id) continue;
    bool seen = false;
    for (const TransactionEntry& b : block_entries) {
      if (b.txn_id == e.txn_id) {
        seen = true;
        break;
      }
    }
    if (!seen) block_entries.push_back(e);
  }
  std::sort(block_entries.begin(), block_entries.end(),
            [](const TransactionEntry& a, const TransactionEntry& b) {
              return a.block_ordinal < b.block_ordinal;
            });
  MerkleTree tree(TransactionLeafHashes(block_entries));
  return tree.Prove(entry->block_ordinal);
}

}  // namespace sqlledger
