// Transaction receipts (paper §5.1): cryptographic, self-contained proof
// that a transaction is part of the ledger, verifiable even if the ledger
// is later tampered with or destroyed (non-repudiation). A receipt bundles
//   - the transaction entry itself,
//   - the Merkle proof of the entry in its block's transaction tree, and
//   - one signature over the block's transactions root — a single signing
//     operation amortized over every transaction in the block.

#ifndef SQLLEDGER_LEDGER_RECEIPT_H_
#define SQLLEDGER_LEDGER_RECEIPT_H_

#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "ledger/ledger_database.h"
#include "ledger/types.h"
#include "util/result.h"

namespace sqlledger {

struct TransactionReceipt {
  TransactionEntry entry;
  /// Merkle proof of the entry in the block's transaction tree.
  MerkleProof proof;
  /// The signed transactions root of the entry's block.
  Hash256 transactions_root;
  std::string key_id;
  std::vector<uint8_t> signature;

  /// JSON interchange form (hashes hex-encoded).
  std::string ToJson() const;
  static Result<TransactionReceipt> FromJson(const std::string& json);
};

/// Issues a receipt for a committed transaction. The transaction's block
/// must be closed — generate a digest first if it is still open.
Result<TransactionReceipt> MakeTransactionReceipt(LedgerDatabase* db,
                                                  uint64_t txn_id);

/// Verifies a receipt offline: recomputes the entry's leaf hash, replays
/// the Merkle proof to the signed root, and checks the signature. Needs no
/// database access.
bool VerifyTransactionReceipt(const TransactionReceipt& receipt,
                              const Signer& signer);

}  // namespace sqlledger

#endif  // SQLLEDGER_LEDGER_RECEIPT_H_
