#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sqlledger {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}
JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}
JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}
JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& kv : object_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& kv : object_) {
    if (kv.first == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNullValue;
  for (const auto& kv : object_) {
    if (kv.first == key) return kv.second;
  }
  return kNullValue;
}

Result<int64_t> JsonValue::GetInt(const std::string& key) const {
  const JsonValue& v = Get(key);
  if (!v.is_int())
    return Status::InvalidArgument("JSON member '" + key +
                                   "' missing or not an integer");
  return v.int_value();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue& v = Get(key);
  if (!v.is_string())
    return Status::InvalidArgument("JSON member '" + key +
                                   "' missing or not a string");
  return v.string_value();
}

namespace {
void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}
}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no Inf/NaN representation
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      break;
    }
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); i++) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); i++) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        EscapeTo(object_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

namespace {
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text), pos_(0) {}

  Result<JsonValue> Parse() {
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size())
      return Status::InvalidArgument("trailing characters after JSON value");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      pos_++;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size())
      return Status::InvalidArgument("unexpected end of JSON input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::Str(std::move(*s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue::Bool(true);
        }
        break;
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue::Bool(false);
        }
        break;
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue::Null();
        }
        break;
      default:
        return ParseNumber();
    }
    return Status::InvalidArgument("malformed JSON literal");
  }

  Result<JsonValue> ParseObject() {
    pos_++;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return Status::InvalidArgument("expected object key string");
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':'))
        return Status::InvalidArgument("expected ':' after object key");
      auto val = ParseValue();
      if (!val.ok()) return val;
      obj.Set(*key, std::move(*val));
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    pos_++;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      auto val = ParseValue();
      if (!val.ok()) return val;
      arr.Append(std::move(*val));
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    pos_++;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size())
          return Status::InvalidArgument("truncated escape sequence");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size())
              return Status::InvalidArgument("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; i++) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return Status::InvalidArgument("invalid \\u escape digit");
            }
            // Encode as UTF-8 (basic multilingual plane only; digests never
            // contain surrogate pairs).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::InvalidArgument("unknown escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) pos_++;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        pos_++;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid inside exponent; accept loosely, strtod validates.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        pos_++;
      } else {
        break;
      }
    }
    if (pos_ == start) return Status::InvalidArgument("malformed number");
    std::string tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size())
        return JsonValue::Int(v);
    }
    char* end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size())
      return Status::InvalidArgument("malformed number: " + tok);
    if (!std::isfinite(d))
      return Status::InvalidArgument("number out of range: " + tok);
    return JsonValue::Double(d);
  }

  const std::string& text_;
  size_t pos_;
};
}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser p(text);
  return p.Parse();
}

}  // namespace sqlledger
