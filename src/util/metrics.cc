#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace sqlledger {

int64_t SteadyClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i == 0) return 1;  // bucket 0 = {0}
  if (i >= kNumBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << i;
}

uint64_t HistogramSnapshot::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

size_t HistogramSnapshot::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // 1 + floor(log2(value)), capped at the overflow bucket.
  size_t idx = 1;
  while (value > 1) {
    value >>= 1;
    ++idx;
  }
  return std::min(idx, kNumBuckets - 1);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 100.0);
  // Rank of the requested percentile, 1-based: the smallest r such that at
  // least r samples are <= the answer.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // The rank lands in bucket i. The overflow bucket has no finite upper
    // bound, and the global final rank is exactly the tracked max — report
    // the exact max for both instead of interpolating.
    if (i == kNumBuckets - 1 || rank == count) {
      return static_cast<double>(max);
    }
    double lo = static_cast<double>(BucketLowerBound(i));
    double hi = static_cast<double>(BucketUpperBound(i));
    double frac =
        static_cast<double>(rank - seen) / static_cast<double>(buckets[i]);
    return std::min(lo + (hi - lo) * frac, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

void Histogram::Record(uint64_t value) {
  buckets_[HistogramSnapshot::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value && !max_.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  // Relaxed loads: the snapshot is a statistical read, not a linearization
  // point. Concurrent Record calls may straddle it (count/sum/bucket can be
  // off by in-flight increments) but each field is individually torn-free.
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

JsonValue MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonValue doc = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, v] : snapshot.counters) {
    counters.Set(name, JsonValue::Int(static_cast<int64_t>(v)));
  }
  doc.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, v] : snapshot.gauges) {
    gauges.Set(name, JsonValue::Int(v));
  }
  doc.Set("gauges", std::move(gauges));
  JsonValue hists = JsonValue::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    JsonValue obj = JsonValue::Object();
    obj.Set("count", JsonValue::Int(static_cast<int64_t>(h.count)));
    obj.Set("sum", JsonValue::Int(static_cast<int64_t>(h.sum)));
    obj.Set("max", JsonValue::Int(static_cast<int64_t>(h.max)));
    obj.Set("mean", JsonValue::Double(h.Mean()));
    obj.Set("p50", JsonValue::Double(h.Percentile(50)));
    obj.Set("p95", JsonValue::Double(h.Percentile(95)));
    obj.Set("p99", JsonValue::Double(h.Percentile(99)));
    JsonValue buckets = JsonValue::Array();
    for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      JsonValue pair = JsonValue::Array();
      pair.Append(JsonValue::Int(static_cast<int64_t>(i)));
      pair.Append(JsonValue::Int(static_cast<int64_t>(h.buckets[i])));
      buckets.Append(std::move(pair));
    }
    obj.Set("buckets", std::move(buckets));
    hists.Set(name, std::move(obj));
  }
  doc.Set("histograms", std::move(hists));
  return doc;
}

bool IsValidMetricName(const std::string& name) {
  static const char* kUnits[] = {"micros", "bytes", "total", "count",
                                 "size",   "depth", "ratio", "state"};
  size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= name.size()) {
    return false;
  }
  auto lower_word = [](const std::string& s, size_t begin, size_t end,
                       bool allow_underscore) {
    if (begin >= end) return false;
    if (s[begin] < 'a' || s[begin] > 'z') return false;
    for (size_t i = begin; i < end; ++i) {
      char c = s[i];
      bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                (allow_underscore && c == '_');
      if (!ok) return false;
    }
    return true;
  };
  if (!lower_word(name, 0, dot, false)) return false;
  if (!lower_word(name, dot + 1, name.size(), true)) return false;
  size_t last_us = name.rfind('_');
  size_t unit_begin = (last_us == std::string::npos || last_us < dot)
                          ? dot + 1
                          : last_us + 1;
  std::string unit = name.substr(unit_begin);
  for (const char* u : kUnits) {
    if (unit == u) return true;
  }
  return false;
}

MetricRegistry::MetricRegistry(MetricsClock clock)
    : clock_(clock ? std::move(clock) : MetricsClock(&SteadyClockMicros)) {}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot s;
  MutexLock lock(&mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snapshot();
  return s;
}

int64_t LatencyTimer::Stop() {
  if (registry_ == nullptr) return 0;
  int64_t elapsed = registry_->NowMicros() - start_;
  if (elapsed < 0) elapsed = 0;
  hist_->Record(static_cast<uint64_t>(elapsed));
  registry_ = nullptr;
  return elapsed;
}

}  // namespace sqlledger
