// Result<T>: a value-or-Status holder, the library's equivalent of
// absl::StatusOr / arrow::Result.

#ifndef SQLLEDGER_UTIL_RESULT_H_
#define SQLLEDGER_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace sqlledger {

/// Holds either a T or a non-OK Status describing why the T is absent.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return my_value;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Evaluate an expression yielding Result<T>; on error return the Status,
/// otherwise bind the value to `lhs`.
#define SL_ASSIGN_OR_RETURN(lhs, expr)              \
  auto SL_CONCAT_(_res_, __LINE__) = (expr);        \
  if (!SL_CONCAT_(_res_, __LINE__).ok())            \
    return SL_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(SL_CONCAT_(_res_, __LINE__)).value()

#define SL_CONCAT_INNER_(a, b) a##b
#define SL_CONCAT_(a, b) SL_CONCAT_INNER_(a, b)

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_RESULT_H_
