#include "util/random.h"

namespace sqlledger {

Random::Random(uint64_t seed) {
  // SplitMix64 to expand the seed into two non-zero state words.
  auto splitmix = [&seed]() {
    seed += 0x9E3779B97F4A7C15ULL;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  s0_ = splitmix();
  s1_ = splitmix();
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Random::AlphaString(size_t len) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out(len, '\0');
  for (size_t i = 0; i < len; i++) out[i] = kChars[Uniform(62)];
  return out;
}

int64_t Random::NonUniform(int64_t a, int64_t x, int64_t y) {
  int64_t c = static_cast<int64_t>(Uniform(static_cast<uint64_t>(a + 1)));
  int64_t r = UniformRange(x, y);
  return (((r | c) + x) % (y - x + 1)) + x;
}

}  // namespace sqlledger
