#include "util/trace.h"

#include <atomic>
#include <utility>

namespace sqlledger {

namespace {
std::atomic<uint32_t> g_next_tid{1};
}  // namespace

uint32_t Tracer::CurrentTid() {
  thread_local uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

Tracer::Tracer(const MetricRegistry* registry, size_t capacity)
    : registry_(registry), capacity_(capacity == 0 ? 1 : capacity) {
  MutexLock lock(&mu_);
  ring_.reserve(capacity_);
}

void Tracer::Push(TraceEvent ev) {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

void Tracer::RecordComplete(const std::string& name,
                            const std::string& category, int64_t start_micros,
                            int64_t dur_micros) {
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'X';
  ev.ts_micros = start_micros;
  ev.dur_micros = dur_micros < 0 ? 0 : dur_micros;
  ev.tid = CurrentTid();
  Push(std::move(ev));
}

void Tracer::RecordInstant(const std::string& name,
                           const std::string& category,
                           const std::string& arg_name,
                           const std::string& arg_value) {
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'i';
  ev.ts_micros = registry_->NowMicros();
  ev.tid = CurrentTid();
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  Push(std::move(ev));
}

std::vector<TraceEvent> Tracer::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: next_ points at the oldest event.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t Tracer::dropped_count() const {
  MutexLock lock(&mu_);
  return dropped_;
}

JsonValue Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Events();
  uint64_t dropped = dropped_count();
  JsonValue doc = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  for (const TraceEvent& ev : events) {
    JsonValue obj = JsonValue::Object();
    obj.Set("name", JsonValue::Str(ev.name));
    obj.Set("cat", JsonValue::Str(ev.category));
    obj.Set("ph", JsonValue::Str(std::string(1, ev.phase)));
    obj.Set("ts", JsonValue::Int(ev.ts_micros));
    if (ev.phase == 'X') {
      obj.Set("dur", JsonValue::Int(ev.dur_micros));
    } else {
      // Chrome instant events need a scope; "t" = thread.
      obj.Set("s", JsonValue::Str("t"));
    }
    obj.Set("pid", JsonValue::Int(1));
    obj.Set("tid", JsonValue::Int(static_cast<int64_t>(ev.tid)));
    if (!ev.arg_name.empty()) {
      JsonValue args = JsonValue::Object();
      args.Set(ev.arg_name, JsonValue::Str(ev.arg_value));
      obj.Set("args", std::move(args));
    }
    arr.Append(std::move(obj));
  }
  doc.Set("traceEvents", std::move(arr));
  doc.Set("displayTimeUnit", JsonValue::Str("ms"));
  JsonValue other = JsonValue::Object();
  other.Set("dropped_events", JsonValue::Int(static_cast<int64_t>(dropped)));
  doc.Set("otherData", std::move(other));
  return doc;
}

void TraceSpan::Stop() {
  if (tracer_ == nullptr) return;
  int64_t end = tracer_->NowMicros();
  tracer_->RecordComplete(name_, category_, start_, end - start_);
  tracer_ = nullptr;
}

}  // namespace sqlledger
