// Bounded in-memory trace-event ring buffer (DESIGN.md §13), exported as
// Chrome trace-event JSON (load chrome://tracing or https://ui.perfetto.dev).
//
// Two event shapes:
//   - complete spans (ph "X"): name + category + start ts + duration, emitted
//     by TraceSpan RAII or Tracer::RecordComplete;
//   - instant events (ph "i"): point-in-time markers (breaker transitions,
//     verification fallbacks) with one optional string argument.
//
// Determinism: timestamps come from the owning MetricRegistry's injectable
// clock, and thread ids are small logical ids handed out in first-use order
// by a process-wide counter — never OS thread ids — so a single-threaded
// deterministic-simulator run serializes byte-identically across reruns.
//
// Tracer::mu_ is a LEAF in the lock hierarchy: Record* takes only this
// mutex and calls nothing that locks. Call sites may hold commit_mu_ or
// DigestUploadPipeline::mu_ while recording (the edges are declared in
// scripts/lock_hierarchy.txt); nothing may be acquired under Tracer::mu_.

#ifndef SQLLEDGER_UTIL_TRACE_H_
#define SQLLEDGER_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"
#include "util/thread_annotations.h"

namespace sqlledger {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';    // 'X' = complete span, 'i' = instant
  int64_t ts_micros = 0;
  int64_t dur_micros = 0;  // spans only
  uint32_t tid = 0;        // logical thread id, first-use order
  std::string arg_name;    // optional single argument ("" = none)
  std::string arg_value;
};

/// Fixed-capacity ring of trace events. When full, the oldest event is
/// overwritten and dropped_count() grows; export order is always
/// oldest-to-newest. Recording takes the tracer's leaf mutex — cheap (a
/// vector slot assignment), but not for per-row hot loops; instrument
/// phase-level operations (group commit, upload attempt, verify pass).
class Tracer {
 public:
  explicit Tracer(const MetricRegistry* registry, size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records a completed span [start_micros, start_micros+dur_micros).
  void RecordComplete(const std::string& name, const std::string& category,
                      int64_t start_micros, int64_t dur_micros) EXCLUDES(mu_);

  /// Records an instant event stamped with the registry clock's current
  /// time, with an optional single argument.
  void RecordInstant(const std::string& name, const std::string& category,
                     const std::string& arg_name = "",
                     const std::string& arg_value = "") EXCLUDES(mu_);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> Events() const EXCLUDES(mu_);
  /// Events evicted to make room since construction.
  uint64_t dropped_count() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  /// Chrome trace-event JSON: {"traceEvents":[...], "displayTimeUnit":"ms",
  /// "otherData":{"dropped_events":N}}. Deterministic given deterministic
  /// events (insertion-ordered objects, integer timestamps).
  JsonValue ToChromeJson() const EXCLUDES(mu_);

  /// Reads the owning registry's clock.
  int64_t NowMicros() const { return registry_->NowMicros(); }

  /// Logical id of the calling thread, assigned on first use (1, 2, ...).
  static uint32_t CurrentTid();

 private:
  const MetricRegistry* registry_;
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;  // ring slot for the next event
  uint64_t dropped_ GUARDED_BY(mu_) = 0;

  void Push(TraceEvent ev) EXCLUDES(mu_);
};

/// RAII span: reads the clock at construction and records a complete event
/// at destruction (or Stop). Null tracer = fully disabled, zero clock reads.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string name, std::string category)
      : tracer_(tracer),
        name_(std::move(name)),
        category_(std::move(category)),
        start_(tracer_ != nullptr ? tracer_->NowMicros() : 0) {}
  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Stop();

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  int64_t start_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_TRACE_H_
