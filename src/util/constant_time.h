// Constant-time byte comparison for digest/MAC material. A short-circuiting
// memcmp / operator== leaks, through its running time, the index of the
// first differing byte — exactly the oracle an attacker needs to forge a
// MAC or receipt signature one byte at a time. Every comparison of secret-
// derived bytes (HMAC outputs, receipt signatures, block hashes checked
// against trusted digests) must go through ConstantTimeEqual; the
// digest-hygiene rule in scripts/deep_lint.py enforces this across src/.
//
// Comparisons of public framing bytes (file magic numbers, format headers)
// are exempt — they carry no secret and live on the parse error path.

#ifndef SQLLEDGER_UTIL_CONSTANT_TIME_H_
#define SQLLEDGER_UTIL_CONSTANT_TIME_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace sqlledger {

/// Compares `n` bytes of `a` and `b` in time that depends only on `n`,
/// never on the byte values: the whole buffers are always walked and the
/// differences OR-folded, BoringSSL CRYPTO_memcmp-style. The accumulator
/// is volatile so the compiler cannot re-introduce an early exit.
inline bool ConstantTimeEqual(const void* a, const void* b, size_t n) {
  const uint8_t* pa = static_cast<const uint8_t*>(a);
  const uint8_t* pb = static_cast<const uint8_t*>(b);
  volatile uint8_t diff = 0;
  for (size_t i = 0; i < n; i++) diff = diff | (pa[i] ^ pb[i]);
  return diff == 0;
}

/// Fixed-size byte-array overload (Hash256::bytes, HMAC blocks).
template <size_t N>
inline bool ConstantTimeEqual(const std::array<uint8_t, N>& a,
                              const std::array<uint8_t, N>& b) {
  return ConstantTimeEqual(a.data(), b.data(), N);
}

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_CONSTANT_TIME_H_
