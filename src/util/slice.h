// Slice: a non-owning view over a byte range, in the RocksDB style. Used on
// hashing and serialization hot paths to avoid copies.

#ifndef SQLLEDGER_UTIL_SLICE_H_
#define SQLLEDGER_UTIL_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace sqlledger {

/// A pointer + length pair. The referenced memory must outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const std::vector<uint8_t>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

  int Compare(const Slice& other) const {
    size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r != 0) return r;
    if (size_ < other.size_) return -1;
    if (size_ > other.size_) return 1;
    return 0;
  }
  bool operator==(const Slice& other) const { return Compare(other) == 0; }
  bool operator!=(const Slice& other) const { return Compare(other) != 0; }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_SLICE_H_
