// Lock-cheap metrics registry (DESIGN.md §13). Counters, gauges and
// fixed-bucket exponential latency histograms shared by the WAL, the
// group-commit pipeline, the digest upload pipeline, the verifier and the
// lock manager. Design constraints, in order:
//
//   - Recording must be safe under EVERY existing lock (group_mu_,
//     commit_mu_, DigestUploadPipeline::mu_, LockManager::mu_, ...), so the
//     hot path is pure relaxed atomics — no mutex, no allocation, no
//     lock-order edge. The registry's own mutex guards only name->metric
//     registration and snapshotting, never a Record/Add call.
//   - Time comes from an injectable clock, distinct from the database's
//     commit-timestamp clock: the deterministic simulator pins BOTH, but
//     separately, so metric timing never perturbs the db clock's call count
//     (commit timestamps must replay byte-identically; see DESIGN.md §7).
//   - Metric names follow `subsystem.noun_unit` (wal.sync_micros,
//     commit.group_size, digest.outbox_depth) — enforced by the
//     metric-naming rule in scripts/lint.py.
//
// Counters/gauges/histograms are owned by the registry and live until it is
// destroyed; call sites resolve their pointers once at construction time
// and record through the cached pointer thereafter.

#ifndef SQLLEDGER_UTIL_METRICS_H_
#define SQLLEDGER_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/json.h"
#include "util/thread_annotations.h"

namespace sqlledger {

/// Injectable time source for duration measurement, microseconds on a
/// monotonic scale. Only deltas are ever interpreted, so the epoch is
/// irrelevant. Defaults to SteadyClockMicros; the simulator injects its own
/// deterministic counter.
using MetricsClock = std::function<int64_t()>;

/// std::chrono::steady_clock in microseconds — the default MetricsClock.
int64_t SteadyClockMicros();

/// Monotonically increasing event count. Relaxed atomics: per-call cost is
/// one uncontended RMW, safe under any lock.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time level (queue depth, breaker state). Last writer wins.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Immutable copy of a histogram's state. Merge is commutative and
/// associative (counts/sums/buckets add, max takes max), so per-shard or
/// per-run snapshots can be combined in any order.
struct HistogramSnapshot {
  /// Exponential base-2 bucket layout: bucket 0 holds exactly the value 0,
  /// bucket i (1 <= i < kNumBuckets-1) holds [2^(i-1), 2^i), and the last
  /// bucket is the overflow [2^(kNumBuckets-2), +inf). 40 buckets span
  /// 1 microsecond to ~2^38 us (~3 days) before overflowing.
  static constexpr size_t kNumBuckets = 40;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Exclusive upper bound of bucket i; UINT64_MAX for the overflow bucket.
  static uint64_t BucketUpperBound(size_t i);
  /// Inclusive lower bound of bucket i.
  static uint64_t BucketLowerBound(size_t i);
  /// Bucket index a recorded value falls into.
  static size_t BucketIndex(uint64_t value);

  /// Estimated p-th percentile (0 < p <= 100), linearly interpolated within
  /// the bucket holding the rank. The overflow bucket and the final rank
  /// report the exact tracked max. 0 when empty.
  double Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket exponential histogram. Record is wait-free: one relaxed
/// fetch_add per bucket/count/sum plus a CAS loop for the max.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, HistogramSnapshot::kNumBuckets> buckets_{};
};

/// Point-in-time copy of every metric in a registry, name-ordered (std::map)
/// so serialization is deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);
};

/// Serializes a snapshot as a JSON object:
///   { "counters": {name: n, ...},
///     "gauges":   {name: v, ...},
///     "histograms": {name: {count,sum,max,mean,p50,p95,p99,buckets:[...]}}}
/// Bucket arrays list [index, count] pairs for non-empty buckets only.
JsonValue MetricsToJson(const MetricsSnapshot& snapshot);

/// True when `name` follows the `subsystem.noun_unit` convention enforced
/// by scripts/lint.py (lowercase subsystem, '.', lowercase noun with a
/// trailing unit token: micros/bytes/total/count/size/depth/ratio/state).
bool IsValidMetricName(const std::string& name);

/// Name -> metric owner. Get* registers on first use and returns the same
/// pointer afterwards; the pointer stays valid for the registry's lifetime.
/// Registration takes the registry mutex (a leaf — nothing else is acquired
/// under it), so resolve metrics at construction time, not on hot paths.
class MetricRegistry {
 public:
  explicit MetricRegistry(MetricsClock clock = {});

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Reads the injectable clock (microseconds, monotonic scale).
  int64_t NowMicros() const { return clock_(); }
  const MetricsClock& clock() const { return clock_; }

  MetricsSnapshot Snapshot() const;

 private:
  MetricsClock clock_;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

/// RAII latency probe: records clock-delta microseconds into a histogram at
/// destruction (or at Stop). A null histogram or registry makes the timer a
/// no-op that never reads the clock, keeping clock call counts deterministic
/// for configurations with metrics disabled.
class LatencyTimer {
 public:
  LatencyTimer(const MetricRegistry* registry, Histogram* hist)
      : registry_(hist != nullptr ? registry : nullptr),
        hist_(hist),
        start_(registry_ != nullptr ? registry_->NowMicros() : 0) {}
  ~LatencyTimer() { Stop(); }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  /// Records now-start and disarms; returns the recorded duration (0 when
  /// disabled or already stopped).
  int64_t Stop();

 private:
  const MetricRegistry* registry_;
  Histogram* hist_;
  int64_t start_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_METRICS_H_
