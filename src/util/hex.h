// Hex encoding/decoding for hashes in digests, logs and test output.

#ifndef SQLLEDGER_UTIL_HEX_H_
#define SQLLEDGER_UTIL_HEX_H_

#include <string>

#include "util/result.h"
#include "util/slice.h"

namespace sqlledger {

/// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(Slice data);

/// Inverse of HexEncode; accepts upper- or lowercase, fails on odd length or
/// non-hex characters.
Result<std::vector<uint8_t>> HexDecode(const std::string& hex);

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_HEX_H_
