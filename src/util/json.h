// Minimal JSON document model with writer and recursive-descent parser.
// Database Digests are exchanged as JSON documents (paper §2.2), so the
// library needs to both emit and re-parse them without external deps.

#ifndef SQLLEDGER_UTIL_JSON_H_
#define SQLLEDGER_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace sqlledger {

/// A JSON value: null, bool, int64, double, string, array or object.
/// Integers are kept distinct from doubles so 64-bit ids round-trip exactly.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_int() const { return type_ == Type::kInt; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  // Array access.
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  size_t size() const { return array_.size(); }
  const JsonValue& operator[](size_t i) const { return array_[i]; }

  // Object access. Members keep insertion order for stable output.
  void Set(const std::string& key, JsonValue v);
  bool Has(const std::string& key) const;
  /// Returns the member or a shared null value if absent.
  const JsonValue& Get(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  // Typed object getters with error reporting for digest parsing.
  Result<int64_t> GetInt(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;

  /// Serialize to a compact JSON string.
  std::string Dump() const;
  /// Serialize with two-space indentation (for files meant for humans).
  std::string DumpPretty() const;

  /// Parse a JSON document. Fails with InvalidArgument on malformed input.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_JSON_H_
