// Clang Thread Safety Analysis annotations plus annotation-aware mutex
// wrappers, modeled on Abseil's thread_annotations.h and LevelDB's port
// layer. Under Clang with -Wthread-safety (CMake option
// SQLLEDGER_THREAD_SAFETY_ANALYSIS, -Werror=thread-safety in CI) the
// compiler statically checks that every GUARDED_BY member is only touched
// with its mutex held and that REQUIRES contracts hold at every call site.
// Under other compilers the annotations expand to nothing and the wrappers
// are zero-cost veneers over the <mutex>/<shared_mutex> primitives.
//
// Repo rule (enforced by scripts/lint.py): library code under src/ uses
// these wrappers — never raw std::mutex / std::shared_mutex /
// std::condition_variable — so the lock protocol stays visible to the
// analysis everywhere.

#ifndef SQLLEDGER_UTIL_THREAD_ANNOTATIONS_H_
#define SQLLEDGER_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define SL_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SL_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Documents that a data member is protected by the given capability
/// (mutex). Reads require the capability held shared; writes exclusive.
#define GUARDED_BY(x) SL_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Like GUARDED_BY, but protects the data *pointed to* by a pointer member
/// rather than the pointer itself.
#define PT_GUARDED_BY(x) SL_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Declares a class to be a capability (lockable) type.
#define CAPABILITY(x) SL_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY SL_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// The annotated function must be called with the listed capabilities held
/// exclusively (and does not release them).
#define REQUIRES(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// As REQUIRES, but shared (reader) access suffices.
#define REQUIRES_SHARED(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability exclusively.
#define ACQUIRE(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The annotated function acquires the capability shared.
#define ACQUIRE_SHARED(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the capability (exclusive or shared).
#define RELEASE(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The annotated function releases a shared hold of the capability.
#define RELEASE_SHARED(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability; the first
/// argument is the return value meaning success.
#define TRY_ACQUIRE(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the capability held
/// (deadlock prevention for self-locking public entry points).
#define EXCLUDES(...) SL_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis time) that the calling thread holds the capability.
#define ASSERT_CAPABILITY(x) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The annotated function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SL_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Documents a required acquisition order between capabilities.
#define ACQUIRED_AFTER(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

/// Escape hatch: disables analysis for one function. Every use MUST carry a
/// comment explaining why the protocol cannot be expressed (see DESIGN.md
/// §8); scripts/lint.py rejects bare uses.
#define NO_THREAD_SAFETY_ANALYSIS \
  SL_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace sqlledger {

class CondVar;

/// Annotation-aware exclusive mutex (std::mutex underneath).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// Analysis-only assertion that the current thread holds this mutex; used
  /// in helpers reached only from locked regions the analysis cannot see.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotation-aware reader/writer mutex (std::shared_mutex underneath).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to Mutex at each wait call, so waits carry a
/// REQUIRES(mu) contract the analysis checks. Use explicit predicate loops
///   while (!cond) cv.Wait(&mu);
/// rather than predicate lambdas: the loop body is analyzed in the locked
/// enclosing scope, a lambda would not be.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning. Spurious wakeups possible; always wait in a loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu->mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // the caller's scope still owns the lock
  }

  /// As Wait, but returns false when `deadline` passes without a notify.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu->mu_, std::adopt_lock);
    bool notified = cv_.wait_until(inner, deadline) == std::cv_status::no_timeout;
    inner.release();
    return notified;
  }

  /// As Wait, but returns false when `rel_time` elapses without a notify.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& rel_time)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu->mu_, std::adopt_lock);
    bool notified = cv_.wait_for(inner, rel_time) == std::cv_status::no_timeout;
    inner.release();
    return notified;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_THREAD_ANNOTATIONS_H_
