// Minimal fixed-size thread pool used to parallelize ledger verification
// across tables (the paper leans on SQL Server's parallel query execution
// for the same purpose, §3.4.2).

#ifndef SQLLEDGER_UTIL_THREADPOOL_H_
#define SQLLEDGER_UTIL_THREADPOOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace sqlledger {

class ThreadPool {
 public:
  /// Starts `threads` workers (minimum 1).
  explicit ThreadPool(size_t threads) {
    if (threads == 0) threads = 1;
    for (size_t i = 0; i < threads; i++) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.SignalAll();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> fn) {
    {
      MutexLock lock(&mu_);
      queue_.push_back(std::move(fn));
    }
    cv_.Signal();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    MutexLock lock(&mu_);
    while (!queue_.empty() || running_ != 0) idle_cv_.Wait(&mu_);
  }

  size_t worker_count() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        running_++;
      }
      task();
      {
        MutexLock lock(&mu_);
        running_--;
        if (queue_.empty() && running_ == 0) idle_cv_.SignalAll();
      }
    }
  }

  Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t running_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written only in the constructor
};

/// Runs fn(begin, end) over contiguous chunks of [0, n), distributed across
/// the pool, and blocks until every chunk has finished. Uses its own
/// completion latch rather than ThreadPool::Wait so several ParallelFor
/// phases can share one pool. `pool == nullptr` — or a range too small to be
/// worth splitting (< 2 * min_chunk) — runs inline on the caller. Must be
/// called from outside the pool's workers (the caller blocks).
inline void ParallelFor(ThreadPool* pool, size_t n,
                        const std::function<void(size_t, size_t)>& fn,
                        size_t min_chunk = 1) {
  if (n == 0) return;
  if (pool == nullptr || pool->worker_count() <= 1 || n < 2 * min_chunk) {
    fn(0, n);
    return;
  }
  // A few chunks per worker so uneven chunk costs still balance.
  size_t chunks = pool->worker_count() * 4;
  if (chunks > n / min_chunk) chunks = n / min_chunk;
  if (chunks < 2) {
    fn(0, n);
    return;
  }
  size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t begin = 0; begin < n; begin += chunk_size)
    ranges.emplace_back(begin,
                        begin + chunk_size < n ? begin + chunk_size : n);

  struct Latch {
    explicit Latch(size_t n) : remaining(n) {}
    Mutex mu;
    CondVar cv;
    size_t remaining GUARDED_BY(mu);
  } latch(ranges.size());

  for (const auto& [begin, end] : ranges) {
    pool->Submit([&fn, &latch, begin = begin, end = end] {
      fn(begin, end);
      MutexLock lock(&latch.mu);
      if (--latch.remaining == 0) latch.cv.SignalAll();
    });
  }
  MutexLock lock(&latch.mu);
  while (latch.remaining != 0) latch.cv.Wait(&latch.mu);
}

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_THREADPOOL_H_
