// Minimal fixed-size thread pool used to parallelize ledger verification
// across tables (the paper leans on SQL Server's parallel query execution
// for the same purpose, §3.4.2).

#ifndef SQLLEDGER_UTIL_THREADPOOL_H_
#define SQLLEDGER_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqlledger {

class ThreadPool {
 public:
  /// Starts `threads` workers (minimum 1).
  explicit ThreadPool(size_t threads) {
    if (threads == 0) threads = 1;
    for (size_t i = 0; i < threads; i++) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        running_++;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        running_--;
        if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_THREADPOOL_H_
