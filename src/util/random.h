// Deterministic PRNG for workload generators and property tests
// (xorshift128+; fast, seedable, reproducible across platforms).

#ifndef SQLLEDGER_UTIL_RANDOM_H_
#define SQLLEDGER_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace sqlledger {

/// Seedable PRNG. Not cryptographic; used only for test/bench data.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t Next();
  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// True with probability p (0..1).
  bool Bernoulli(double p);
  double NextDouble();  // [0, 1)
  /// Random alphanumeric string of exactly `len` characters.
  std::string AlphaString(size_t len);
  /// NURand-style non-uniform random from the TPC-C spec, used by the
  /// workload generators to produce skewed customer/item access.
  int64_t NonUniform(int64_t a, int64_t x, int64_t y);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_RANDOM_H_
