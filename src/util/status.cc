#include "util/status.h"

namespace sqlledger {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sqlledger
