#include "util/coding.h"

namespace sqlledger {

void PutFixed16(std::vector<uint8_t>* dst, uint16_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
}

void PutFixed32(std::vector<uint8_t>* dst, uint32_t v) {
  for (int i = 0; i < 4; i++) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutFixed64(std::vector<uint8_t>* dst, uint64_t v) {
  for (int i = 0; i < 8; i++) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutVarint32(std::vector<uint8_t>* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutVarint64(std::vector<uint8_t>* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutLengthPrefixed(std::vector<uint8_t>* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->insert(dst->end(), value.data(), value.data() + value.size());
}

Result<uint16_t> Decoder::GetFixed16() {
  if (remaining() < 2) return Status::Corruption("truncated fixed16");
  uint16_t v = static_cast<uint16_t>(input_[pos_]) |
               static_cast<uint16_t>(input_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::GetFixed32() {
  if (remaining() < 4) return Status::Corruption("truncated fixed32");
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) v |= static_cast<uint32_t>(input_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetFixed64() {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v |= static_cast<uint64_t>(input_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<uint32_t> Decoder::GetVarint32() {
  auto r = GetVarint64();
  if (!r.ok()) return r.status();
  if (*r > UINT32_MAX) return Status::Corruption("varint32 overflow");
  return static_cast<uint32_t>(*r);
}

Result<uint64_t> Decoder::GetVarint64() {
  uint64_t v = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (done()) return Status::Corruption("truncated varint");
    uint8_t byte = input_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::Corruption("varint too long");
}

Result<Slice> Decoder::GetLengthPrefixed() {
  auto len = GetVarint64();
  if (!len.ok()) return len.status();
  return GetBytes(static_cast<size_t>(*len));
}

Result<Slice> Decoder::GetBytes(size_t n) {
  if (remaining() < n) return Status::Corruption("truncated byte string");
  Slice out(input_.data() + pos_, n);
  pos_ += n;
  return out;
}

namespace {
// Table-driven CRC-32C, generated at first use.
struct Crc32cTable {
  uint32_t table[256];
  Crc32cTable() {
    const uint32_t poly = 0x82F63B78u;  // reflected Castagnoli polynomial
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      table[i] = crc;
    }
  }
};
}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n) {
  static const Crc32cTable t;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; i++) {
    crc = t.table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sqlledger
