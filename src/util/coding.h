// Binary encoding primitives: fixed-width little-endian integers and LEB128
// varints, plus length-prefixed byte strings. Used by the WAL, the canonical
// row serialization format, and checkpoint files.

#ifndef SQLLEDGER_UTIL_CODING_H_
#define SQLLEDGER_UTIL_CODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace sqlledger {

// ---- Appenders (to std::vector<uint8_t>) ----

void PutFixed16(std::vector<uint8_t>* dst, uint16_t v);
void PutFixed32(std::vector<uint8_t>* dst, uint32_t v);
void PutFixed64(std::vector<uint8_t>* dst, uint64_t v);
void PutVarint32(std::vector<uint8_t>* dst, uint32_t v);
void PutVarint64(std::vector<uint8_t>* dst, uint64_t v);
/// Varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::vector<uint8_t>* dst, Slice value);

// ---- Decoders ----
// A Decoder consumes from a Slice front-to-back and fails with Corruption on
// truncated input rather than reading out of bounds.

class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input), pos_(0) {}

  size_t remaining() const { return input_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  size_t position() const { return pos_; }

  Result<uint16_t> GetFixed16();
  Result<uint32_t> GetFixed32();
  Result<uint64_t> GetFixed64();
  Result<uint32_t> GetVarint32();
  Result<uint64_t> GetVarint64();
  /// Returns a view into the underlying buffer (no copy).
  Result<Slice> GetLengthPrefixed();
  Result<Slice> GetBytes(size_t n);

 private:
  Slice input_;
  size_t pos_;
};

// ---- CRC32C (software implementation) ----

/// CRC-32C (Castagnoli). Guards every WAL record against torn writes.
uint32_t Crc32c(const uint8_t* data, size_t n);
inline uint32_t Crc32c(Slice s) { return Crc32c(s.data(), s.size()); }

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_CODING_H_
