// Status: lightweight error propagation, modeled after the Status idiom used
// by RocksDB and Arrow. Library code never throws; every fallible operation
// returns a Status (or Result<T>, see result.h).

#ifndef SQLLEDGER_UTIL_STATUS_H_
#define SQLLEDGER_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace sqlledger {

/// Canonical error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,        // on-disk or in-memory structures are damaged
  kIOError = 5,
  kNotSupported = 6,
  kAborted = 7,           // transaction aborted (deadlock, explicit rollback)
  kIntegrityViolation = 8,  // ledger verification detected tampering
  kPermissionDenied = 9,  // e.g. mutating an immutable blob
  kBusy = 10,
  kInternal = 11,
};

/// The result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a code and message otherwise.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IntegrityViolation(std::string msg) {
    return Status(StatusCode::kIntegrityViolation, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsIntegrityViolation() const {
    return code_ == StatusCode::kIntegrityViolation;
  }

  /// "OK" or "<code>: <message>" for logs and test failure output.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagate a non-OK Status to the caller.
#define SL_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::sqlledger::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace sqlledger

#endif  // SQLLEDGER_UTIL_STATUS_H_
