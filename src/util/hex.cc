#include "util/hex.h"

namespace sqlledger {

std::string HexEncode(Slice data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); i++) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

namespace {
int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<std::vector<uint8_t>> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0)
    return Status::InvalidArgument("hex string has odd length");
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexDigit(hex[i]);
    int lo = HexDigit(hex[i + 1]);
    if (hi < 0 || lo < 0)
      return Status::InvalidArgument("non-hex character in string");
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace sqlledger
