#include "workload/tpcc.h"

namespace sqlledger {

namespace {
Schema MakeWarehouseSchema() {
  Schema s;
  s.AddColumn("w_id", DataType::kBigInt, false);
  s.AddColumn("w_name", DataType::kVarchar, false, 10);
  s.AddColumn("w_ytd", DataType::kDouble, false);
  s.SetPrimaryKey({0});
  return s;
}

Schema MakeDistrictSchema() {
  Schema s;
  s.AddColumn("d_w_id", DataType::kBigInt, false);
  s.AddColumn("d_id", DataType::kBigInt, false);
  s.AddColumn("d_name", DataType::kVarchar, false, 10);
  s.AddColumn("d_next_o_id", DataType::kBigInt, false);
  s.AddColumn("d_ytd", DataType::kDouble, false);
  s.SetPrimaryKey({0, 1});
  return s;
}

Schema MakeCustomerSchema() {
  Schema s;
  s.AddColumn("c_w_id", DataType::kBigInt, false);
  s.AddColumn("c_d_id", DataType::kBigInt, false);
  s.AddColumn("c_id", DataType::kBigInt, false);
  s.AddColumn("c_name", DataType::kVarchar, false, 16);
  s.AddColumn("c_balance", DataType::kDouble, false);
  s.AddColumn("c_ytd_payment", DataType::kDouble, false);
  s.AddColumn("c_payment_cnt", DataType::kBigInt, false);
  s.SetPrimaryKey({0, 1, 2});
  return s;
}

Schema MakeItemSchema() {
  Schema s;
  s.AddColumn("i_id", DataType::kBigInt, false);
  s.AddColumn("i_name", DataType::kVarchar, false, 24);
  s.AddColumn("i_price", DataType::kDouble, false);
  s.SetPrimaryKey({0});
  return s;
}

Schema MakeStockSchema() {
  Schema s;
  s.AddColumn("s_w_id", DataType::kBigInt, false);
  s.AddColumn("s_i_id", DataType::kBigInt, false);
  s.AddColumn("s_quantity", DataType::kBigInt, false);
  s.AddColumn("s_ytd", DataType::kBigInt, false);
  s.AddColumn("s_order_cnt", DataType::kBigInt, false);
  s.SetPrimaryKey({0, 1});
  return s;
}

Schema MakeNewOrderSchema() {
  Schema s;
  s.AddColumn("no_w_id", DataType::kBigInt, false);
  s.AddColumn("no_d_id", DataType::kBigInt, false);
  s.AddColumn("no_o_id", DataType::kBigInt, false);
  s.SetPrimaryKey({0, 1, 2});
  return s;
}

Schema MakeOrdersSchema() {
  Schema s;
  s.AddColumn("o_w_id", DataType::kBigInt, false);
  s.AddColumn("o_d_id", DataType::kBigInt, false);
  s.AddColumn("o_id", DataType::kBigInt, false);
  s.AddColumn("o_c_id", DataType::kBigInt, false);
  s.AddColumn("o_entry_d", DataType::kTimestamp, false);
  s.AddColumn("o_carrier_id", DataType::kBigInt, true);
  s.AddColumn("o_ol_cnt", DataType::kBigInt, false);
  s.SetPrimaryKey({0, 1, 2});
  return s;
}

Schema MakeOrderLineSchema() {
  Schema s;
  s.AddColumn("ol_w_id", DataType::kBigInt, false);
  s.AddColumn("ol_d_id", DataType::kBigInt, false);
  s.AddColumn("ol_o_id", DataType::kBigInt, false);
  s.AddColumn("ol_number", DataType::kBigInt, false);
  s.AddColumn("ol_i_id", DataType::kBigInt, false);
  s.AddColumn("ol_quantity", DataType::kBigInt, false);
  s.AddColumn("ol_amount", DataType::kDouble, false);
  s.AddColumn("ol_delivery_d", DataType::kTimestamp, true);
  s.SetPrimaryKey({0, 1, 2, 3});
  return s;
}

Schema MakeHistorySchema2() {
  Schema s;
  s.AddColumn("h_id", DataType::kBigInt, false);
  s.AddColumn("h_w_id", DataType::kBigInt, false);
  s.AddColumn("h_d_id", DataType::kBigInt, false);
  s.AddColumn("h_c_id", DataType::kBigInt, false);
  s.AddColumn("h_date", DataType::kTimestamp, false);
  s.AddColumn("h_amount", DataType::kDouble, false);
  s.SetPrimaryKey({0});
  return s;
}

Value B(int64_t v) { return Value::BigInt(v); }
}  // namespace

Status TpccWorkload::Setup() {
  TableKind ledger_kind = config_.ledger_tables ? TableKind::kUpdateable
                                                : TableKind::kRegular;
  // Creation order doubles as the canonical lock-acquisition order that
  // every transaction type follows, so table-granularity 2PL cannot
  // deadlock (see each transaction's body).
  SL_RETURN_IF_ERROR(
      db_->CreateTable("warehouse", MakeWarehouseSchema(), TableKind::kRegular));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("district", MakeDistrictSchema(), TableKind::kRegular));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("customer", MakeCustomerSchema(), TableKind::kRegular));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("item", MakeItemSchema(), TableKind::kRegular));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("stock", MakeStockSchema(), TableKind::kRegular));
  // The four order/payment tables the paper converts to ledger tables.
  SL_RETURN_IF_ERROR(
      db_->CreateTable("new_order", MakeNewOrderSchema(), ledger_kind));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("orders", MakeOrdersSchema(), ledger_kind));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("order_line", MakeOrderLineSchema(), ledger_kind));
  SL_RETURN_IF_ERROR(
      db_->CreateTable("history", MakeHistorySchema2(), ledger_kind));

  Random rng(42);
  auto txn = db_->Begin("loader");
  if (!txn.ok()) return txn.status();
  for (int w = 1; w <= config_.warehouses; w++) {
    SL_RETURN_IF_ERROR(db_->Insert(
        *txn, "warehouse",
        {B(w), Value::Varchar("WH" + std::to_string(w)), Value::Double(0)}));
    for (int d = 1; d <= config_.districts_per_warehouse; d++) {
      SL_RETURN_IF_ERROR(db_->Insert(
          *txn, "district",
          {B(w), B(d), Value::Varchar("D" + std::to_string(d)), B(1),
           Value::Double(0)}));
      for (int c = 1; c <= config_.customers_per_district; c++) {
        SL_RETURN_IF_ERROR(db_->Insert(
            *txn, "customer",
            {B(w), B(d), B(c), Value::Varchar(rng.AlphaString(12)),
             Value::Double(0), Value::Double(0), B(0)}));
      }
    }
    for (int i = 1; i <= config_.items; i++) {
      SL_RETURN_IF_ERROR(db_->Insert(
          *txn, "stock", {B(w), B(i), B(50 + static_cast<int64_t>(
                                              rng.Uniform(50))),
                          B(0), B(0)}));
    }
  }
  for (int i = 1; i <= config_.items; i++) {
    SL_RETURN_IF_ERROR(db_->Insert(
        *txn, "item",
        {B(i), Value::Varchar(rng.AlphaString(16)),
         Value::Double(1.0 + static_cast<double>(rng.Uniform(9900)) / 100)}));
  }
  return db_->Commit(*txn);
}

Status TpccWorkload::NewOrder(Random* rng) {
  int64_t w = rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t c = rng->UniformRange(1, config_.customers_per_district);
  int64_t ol_cnt = rng->UniformRange(5, 15);

  auto txn = db_->Begin("tpcc");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  // Lock order: district -> item -> stock -> new_order -> orders ->
  // order_line.
  auto district = db_->Get(*txn, "district", {B(w), B(d)});
  if (!district.ok()) return fail(district.status());
  int64_t o_id = (*district)[3].AsInt64();
  Row new_district = *district;
  new_district[3] = B(o_id + 1);
  Status st = db_->Update(*txn, "district", new_district);
  if (!st.ok()) return fail(st);

  struct Line {
    int64_t i_id;
    int64_t qty;
    double amount;
  };
  std::vector<Line> lines;
  for (int64_t ol = 1; ol <= ol_cnt; ol++) {
    int64_t i_id = rng->NonUniform(255, 1, config_.items);
    auto item = db_->Get(*txn, "item", {B(i_id)});
    if (!item.ok()) return fail(item.status());
    int64_t qty = rng->UniformRange(1, 10);
    lines.push_back({i_id, qty, (*item)[2].double_value() * qty});
  }
  for (const Line& line : lines) {
    auto stock = db_->Get(*txn, "stock", {B(w), B(line.i_id)});
    if (!stock.ok()) return fail(stock.status());
    Row new_stock = *stock;
    int64_t q = new_stock[2].AsInt64() - line.qty;
    if (q < 10) q += 91;
    new_stock[2] = B(q);
    new_stock[3] = B(new_stock[3].AsInt64() + line.qty);
    new_stock[4] = B(new_stock[4].AsInt64() + 1);
    st = db_->Update(*txn, "stock", new_stock);
    if (!st.ok()) return fail(st);
  }

  st = db_->Insert(*txn, "new_order", {B(w), B(d), B(o_id)});
  if (!st.ok()) return fail(st);
  st = db_->Insert(*txn, "orders",
                   {B(w), B(d), B(o_id), B(c),
                    Value::Timestamp(db_->NowMicros()),
                    Value::Null(DataType::kBigInt), B(ol_cnt)});
  if (!st.ok()) return fail(st);
  for (size_t ol = 0; ol < lines.size(); ol++) {
    st = db_->Insert(*txn, "order_line",
                     {B(w), B(d), B(o_id), B(static_cast<int64_t>(ol + 1)),
                      B(lines[ol].i_id), B(lines[ol].qty),
                      Value::Double(lines[ol].amount),
                      Value::Null(DataType::kTimestamp)});
    if (!st.ok()) return fail(st);
  }
  return db_->Commit(*txn);
}

Status TpccWorkload::Payment(Random* rng) {
  int64_t w = rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t c = rng->UniformRange(1, config_.customers_per_district);
  double amount = 1.0 + static_cast<double>(rng->Uniform(500000)) / 100;

  auto txn = db_->Begin("tpcc");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  // Lock order: warehouse -> district -> customer -> history.
  auto warehouse = db_->Get(*txn, "warehouse", {B(w)});
  if (!warehouse.ok()) return fail(warehouse.status());
  Row new_wh = *warehouse;
  new_wh[2] = Value::Double(new_wh[2].double_value() + amount);
  Status st = db_->Update(*txn, "warehouse", new_wh);
  if (!st.ok()) return fail(st);

  auto district = db_->Get(*txn, "district", {B(w), B(d)});
  if (!district.ok()) return fail(district.status());
  Row new_district = *district;
  new_district[4] = Value::Double(new_district[4].double_value() + amount);
  st = db_->Update(*txn, "district", new_district);
  if (!st.ok()) return fail(st);

  auto customer = db_->Get(*txn, "customer", {B(w), B(d), B(c)});
  if (!customer.ok()) return fail(customer.status());
  Row new_customer = *customer;
  new_customer[4] = Value::Double(new_customer[4].double_value() - amount);
  new_customer[5] = Value::Double(new_customer[5].double_value() + amount);
  new_customer[6] = B(new_customer[6].AsInt64() + 1);
  st = db_->Update(*txn, "customer", new_customer);
  if (!st.ok()) return fail(st);

  st = db_->Insert(*txn, "history",
                   {B(next_history_id_.fetch_add(1)), B(w), B(d), B(c),
                    Value::Timestamp(db_->NowMicros()),
                    Value::Double(amount)});
  if (!st.ok()) return fail(st);
  return db_->Commit(*txn);
}

Status TpccWorkload::Delivery(Random* rng) {
  int64_t w = rng->UniformRange(1, config_.warehouses);
  int64_t carrier = rng->UniformRange(1, 10);

  auto txn = db_->Begin("tpcc");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  // Lock order: new_order -> orders -> order_line. Deliver up to three
  // districts per invocation (scaled down from TPC-C's ten).
  int64_t delivered = 0;
  for (int64_t d = 1; d <= config_.districts_per_warehouse && delivered < 3;
       d++) {
    auto oldest = db_->SeekFirst(*txn, "new_order", {B(w), B(d)});
    if (!oldest.ok()) {
      if (oldest.status().IsNotFound()) continue;
      return fail(oldest.status());
    }
    int64_t o_id = (*oldest)[2].AsInt64();
    Status st = db_->Delete(*txn, "new_order", {B(w), B(d), B(o_id)});
    if (!st.ok()) return fail(st);

    auto order = db_->Get(*txn, "orders", {B(w), B(d), B(o_id)});
    if (!order.ok()) return fail(order.status());
    Row new_order_row = *order;
    new_order_row[5] = B(carrier);
    st = db_->Update(*txn, "orders", new_order_row);
    if (!st.ok()) return fail(st);

    int64_t ol_cnt = (*order)[6].AsInt64();
    for (int64_t ol = 1; ol <= ol_cnt; ol++) {
      auto line = db_->Get(*txn, "order_line", {B(w), B(d), B(o_id), B(ol)});
      if (!line.ok()) return fail(line.status());
      Row new_line = *line;
      new_line[7] = Value::Timestamp(db_->NowMicros());
      st = db_->Update(*txn, "order_line", new_line);
      if (!st.ok()) return fail(st);
    }
    delivered++;
  }
  return db_->Commit(*txn);
}

Status TpccWorkload::OrderStatus(Random* rng) {
  int64_t w = rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t c = rng->UniformRange(1, config_.customers_per_district);

  auto txn = db_->Begin("tpcc");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  auto customer = db_->Get(*txn, "customer", {B(w), B(d), B(c)});
  if (!customer.ok()) return fail(customer.status());
  auto order = db_->SeekFirst(*txn, "orders", {B(w), B(d)});
  if (order.ok()) {
    int64_t o_id = (*order)[2].AsInt64();
    int64_t ol_cnt = (*order)[6].AsInt64();
    for (int64_t ol = 1; ol <= ol_cnt; ol++) {
      auto line = db_->Get(*txn, "order_line", {B(w), B(d), B(o_id), B(ol)});
      if (!line.ok() && !line.status().IsNotFound())
        return fail(line.status());
    }
  } else if (!order.status().IsNotFound()) {
    return fail(order.status());
  }
  return db_->Commit(*txn);
}

Status TpccWorkload::StockLevel(Random* rng) {
  int64_t w = rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);

  auto txn = db_->Begin("tpcc");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  auto district = db_->Get(*txn, "district", {B(w), B(d)});
  if (!district.ok()) return fail(district.status());
  for (int i = 0; i < 20; i++) {
    int64_t i_id = rng->UniformRange(1, config_.items);
    auto stock = db_->Get(*txn, "stock", {B(w), B(i_id)});
    if (!stock.ok()) return fail(stock.status());
  }
  return db_->Commit(*txn);
}

Status TpccWorkload::RunTransaction(Random* rng, TpccStats* stats) {
  uint64_t roll = rng->Uniform(100);
  Status st;
  if (roll < 45) {
    st = NewOrder(rng);
    if (st.ok()) stats->new_orders++;
  } else if (roll < 88) {
    st = Payment(rng);
    if (st.ok()) stats->payments++;
  } else if (roll < 92) {
    st = Delivery(rng);
    if (st.ok()) stats->deliveries++;
  } else if (roll < 96) {
    st = OrderStatus(rng);
    if (st.ok()) stats->order_status++;
  } else {
    st = StockLevel(rng);
    if (st.ok()) stats->stock_level++;
  }
  if (st.ok()) {
    stats->committed++;
  } else if (st.IsAborted()) {
    stats->aborted++;
    return Status::OK();  // lock-timeout aborts are part of normal operation
  }
  return st;
}

}  // namespace sqlledger
