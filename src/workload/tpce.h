// TPC-E-like OLTP workload (paper §4.1.1): the activity of a stock
// brokerage. All 33 TPC-E tables are created and — matching the paper's
// setup — every one of them is converted to an updateable ledger table.
// The transaction mix is read-heavy (~77% reads / ~23% writes), the
// "more common ratio between reads and writes" that makes TPC-E the
// paper's representative workload.
//
// Like the TPC-C module this is a shape-preserving generator, not a
// compliant kit: the eleven transaction types are collapsed into the four
// write flows (Trade-Order, Trade-Result, Market-Feed) and read flows
// (Trade-Status, Customer-Position, Market-Watch, Security-Detail) that
// dominate the mix, and the 20+ dimension tables are loaded with small
// reference populations.

#ifndef SQLLEDGER_WORKLOAD_TPCE_H_
#define SQLLEDGER_WORKLOAD_TPCE_H_

#include <atomic>
#include <cstdint>

#include "ledger/ledger_database.h"
#include "util/random.h"

namespace sqlledger {

struct TpceConfig {
  int customers = 50;
  int accounts_per_customer = 2;
  int securities = 50;
  int brokers = 5;
  /// Convert all 33 tables to ledger tables (paper setup). Ignored when
  /// the database has the ledger disabled.
  bool ledger_tables = true;
};

struct TpceStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t trade_orders = 0;
  uint64_t trade_results = 0;
  uint64_t market_feeds = 0;
  uint64_t reads = 0;
};

class TpceWorkload {
 public:
  TpceWorkload(LedgerDatabase* db, TpceConfig config)
      : db_(db), config_(config) {}

  /// Creates all 33 tables and loads the initial population.
  Status Setup();

  /// Runs one transaction drawn from the mix.
  Status RunTransaction(Random* rng, TpceStats* stats);

  // Write flows.
  Status TradeOrder(Random* rng);
  Status TradeResult(Random* rng);
  Status MarketFeed(Random* rng);
  // Read flows.
  Status TradeStatus(Random* rng);
  Status CustomerPosition(Random* rng);
  Status MarketWatch(Random* rng);
  Status SecurityDetail(Random* rng);

  /// Number of tables the workload creates (the paper's 33).
  static constexpr int kTableCount = 33;

 private:
  LedgerDatabase* db_;
  TpceConfig config_;
  std::atomic<int64_t> next_trade_id_{1};
  std::atomic<int64_t> next_holding_id_{1};
};

}  // namespace sqlledger

#endif  // SQLLEDGER_WORKLOAD_TPCE_H_
