#include "workload/tpce.h"

namespace sqlledger {

namespace {
Value B(int64_t v) { return Value::BigInt(v); }
Value D(double v) { return Value::Double(v); }
Value S(std::string v) { return Value::Varchar(std::move(v)); }

/// Generic reference/dimension table: (id, name, value).
Schema MakeDimensionSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, false);
  s.AddColumn("name", DataType::kVarchar, false, 32);
  s.AddColumn("value", DataType::kVarchar, true, 64);
  s.SetPrimaryKey({0});
  return s;
}
}  // namespace

Status TpceWorkload::Setup() {
  TableKind kind = config_.ledger_tables ? TableKind::kUpdateable
                                         : TableKind::kRegular;

  // Entity tables with real columns. Creation order is the canonical lock
  // order used by every transaction flow below.
  Schema customer;
  customer.AddColumn("c_id", DataType::kBigInt, false);
  customer.AddColumn("c_name", DataType::kVarchar, false, 24);
  customer.AddColumn("c_tier", DataType::kBigInt, false);
  customer.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("customer", customer, kind));

  Schema account;
  account.AddColumn("ca_id", DataType::kBigInt, false);
  account.AddColumn("ca_c_id", DataType::kBigInt, false);
  account.AddColumn("ca_b_id", DataType::kBigInt, false);
  account.AddColumn("ca_bal", DataType::kDouble, false);
  account.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("customer_account", account, kind));

  Schema broker;
  broker.AddColumn("b_id", DataType::kBigInt, false);
  broker.AddColumn("b_name", DataType::kVarchar, false, 24);
  broker.AddColumn("b_num_trades", DataType::kBigInt, false);
  broker.AddColumn("b_comm_total", DataType::kDouble, false);
  broker.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("broker", broker, kind));

  Schema security;
  security.AddColumn("s_id", DataType::kBigInt, false);
  security.AddColumn("s_symb", DataType::kVarchar, false, 8);
  security.AddColumn("s_name", DataType::kVarchar, false, 32);
  security.AddColumn("s_num_out", DataType::kBigInt, false);
  security.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("security", security, kind));

  Schema last_trade;
  last_trade.AddColumn("lt_s_id", DataType::kBigInt, false);
  last_trade.AddColumn("lt_price", DataType::kDouble, false);
  last_trade.AddColumn("lt_vol", DataType::kBigInt, false);
  last_trade.AddColumn("lt_dts", DataType::kTimestamp, false);
  last_trade.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("last_trade", last_trade, kind));

  Schema holding_summary;
  holding_summary.AddColumn("hs_ca_id", DataType::kBigInt, false);
  holding_summary.AddColumn("hs_s_id", DataType::kBigInt, false);
  holding_summary.AddColumn("hs_qty", DataType::kBigInt, false);
  holding_summary.SetPrimaryKey({0, 1});
  SL_RETURN_IF_ERROR(
      db_->CreateTable("holding_summary", holding_summary, kind));

  Schema holding;
  holding.AddColumn("h_ca_id", DataType::kBigInt, false);
  holding.AddColumn("h_s_id", DataType::kBigInt, false);
  holding.AddColumn("h_id", DataType::kBigInt, false);
  holding.AddColumn("h_qty", DataType::kBigInt, false);
  holding.AddColumn("h_price", DataType::kDouble, false);
  holding.SetPrimaryKey({0, 1, 2});
  SL_RETURN_IF_ERROR(db_->CreateTable("holding", holding, kind));

  Schema holding_history;
  holding_history.AddColumn("hh_h_id", DataType::kBigInt, false);
  holding_history.AddColumn("hh_t_id", DataType::kBigInt, false);
  holding_history.AddColumn("hh_qty", DataType::kBigInt, false);
  holding_history.SetPrimaryKey({0, 1});
  SL_RETURN_IF_ERROR(
      db_->CreateTable("holding_history", holding_history, kind));

  Schema trade;
  trade.AddColumn("t_id", DataType::kBigInt, false);
  trade.AddColumn("t_ca_id", DataType::kBigInt, false);
  trade.AddColumn("t_s_id", DataType::kBigInt, false);
  trade.AddColumn("t_qty", DataType::kBigInt, false);
  trade.AddColumn("t_price", DataType::kDouble, false);
  trade.AddColumn("t_is_buy", DataType::kBool, false);
  trade.AddColumn("t_status", DataType::kVarchar, false, 4);
  trade.AddColumn("t_dts", DataType::kTimestamp, false);
  trade.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("trade", trade, kind));

  Schema trade_history;
  trade_history.AddColumn("th_t_id", DataType::kBigInt, false);
  trade_history.AddColumn("th_st", DataType::kVarchar, false, 4);
  trade_history.AddColumn("th_dts", DataType::kTimestamp, false);
  trade_history.SetPrimaryKey({0, 1});
  SL_RETURN_IF_ERROR(db_->CreateTable("trade_history", trade_history, kind));

  Schema settlement;
  settlement.AddColumn("se_t_id", DataType::kBigInt, false);
  settlement.AddColumn("se_amt", DataType::kDouble, false);
  settlement.AddColumn("se_dts", DataType::kTimestamp, false);
  settlement.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("settlement", settlement, kind));

  Schema cash_txn;
  cash_txn.AddColumn("ct_t_id", DataType::kBigInt, false);
  cash_txn.AddColumn("ct_amt", DataType::kDouble, false);
  cash_txn.AddColumn("ct_dts", DataType::kTimestamp, false);
  cash_txn.SetPrimaryKey({0});
  SL_RETURN_IF_ERROR(db_->CreateTable("cash_transaction", cash_txn, kind));

  // The remaining 21 reference/dimension tables of the 33-table schema.
  static const char* kDimensionTables[] = {
      "account_permission", "address",        "charge",
      "commission_rate",    "company",        "company_competitor",
      "customer_taxrate",   "daily_market",   "exchange",
      "financial",          "industry",       "news_item",
      "news_xref",          "sector",         "status_type",
      "taxrate",            "trade_request",  "trade_type",
      "watch_item",         "watch_list",     "zip_code"};
  for (const char* name : kDimensionTables) {
    SL_RETURN_IF_ERROR(db_->CreateTable(name, MakeDimensionSchema(), kind));
  }

  // Initial population.
  Random rng(7);
  auto txn = db_->Begin("loader");
  if (!txn.ok()) return txn.status();
  for (int c = 1; c <= config_.customers; c++) {
    SL_RETURN_IF_ERROR(db_->Insert(
        *txn, "customer",
        {B(c), S(rng.AlphaString(12)), B(rng.UniformRange(1, 3))}));
    for (int a = 0; a < config_.accounts_per_customer; a++) {
      int64_t ca_id = (c - 1) * config_.accounts_per_customer + a + 1;
      SL_RETURN_IF_ERROR(db_->Insert(
          *txn, "customer_account",
          {B(ca_id), B(c), B(rng.UniformRange(1, config_.brokers)),
           D(10000.0)}));
    }
  }
  for (int b = 1; b <= config_.brokers; b++) {
    SL_RETURN_IF_ERROR(db_->Insert(
        *txn, "broker", {B(b), S(rng.AlphaString(12)), B(0), D(0)}));
  }
  for (int s = 1; s <= config_.securities; s++) {
    SL_RETURN_IF_ERROR(db_->Insert(
        *txn, "security",
        {B(s), S("SYM" + std::to_string(s)), S(rng.AlphaString(20)),
         B(1000000)}));
    SL_RETURN_IF_ERROR(db_->Insert(
        *txn, "last_trade",
        {B(s), D(20.0 + static_cast<double>(rng.Uniform(8000)) / 100), B(0),
         Value::Timestamp(db_->NowMicros())}));
  }
  for (const char* name : kDimensionTables) {
    for (int64_t i = 1; i <= 5; i++) {
      SL_RETURN_IF_ERROR(db_->Insert(
          *txn, name, {B(i), S(rng.AlphaString(8)), S(rng.AlphaString(16))}));
    }
  }
  return db_->Commit(*txn);
}

Status TpceWorkload::TradeOrder(Random* rng) {
  int64_t ca_id = rng->UniformRange(
      1, config_.customers * config_.accounts_per_customer);
  int64_t s_id = rng->UniformRange(1, config_.securities);
  int64_t qty = rng->UniformRange(10, 500);
  bool is_buy = rng->Bernoulli(0.5);

  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  // Lock order: customer_account -> security -> last_trade -> trade ->
  // trade_history.
  auto account = db_->Get(*txn, "customer_account", {B(ca_id)});
  if (!account.ok()) return fail(account.status());
  auto security = db_->Get(*txn, "security", {B(s_id)});
  if (!security.ok()) return fail(security.status());
  auto quote = db_->Get(*txn, "last_trade", {B(s_id)});
  if (!quote.ok()) return fail(quote.status());
  double price = (*quote)[1].double_value();

  int64_t t_id = next_trade_id_.fetch_add(1);
  Status st = db_->Insert(
      *txn, "trade",
      {B(t_id), B(ca_id), B(s_id), B(qty), D(price), Value::Bool(is_buy),
       S("SBMT"), Value::Timestamp(db_->NowMicros())});
  if (!st.ok()) return fail(st);
  st = db_->Insert(*txn, "trade_history",
                   {B(t_id), S("SBMT"), Value::Timestamp(db_->NowMicros())});
  if (!st.ok()) return fail(st);
  return db_->Commit(*txn);
}

Status TpceWorkload::TradeResult(Random* rng) {
  // Complete the most recent submitted trade.
  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };

  int64_t t_id = rng->UniformRange(
      1, std::max<int64_t>(1, next_trade_id_.load() - 1));
  // Lock order: customer_account -> broker -> holding_summary -> holding ->
  // trade -> trade_history -> settlement -> cash_transaction. Reads come
  // first to discover the trade, so take the trade row by id.
  auto trade = db_->Get(*txn, "trade", {B(t_id)});
  if (!trade.ok()) {
    db_->Abort(*txn);
    return trade.status().IsNotFound() ? Status::OK() : trade.status();
  }
  if ((*trade)[6].string_value() != "SBMT") {
    return db_->Commit(*txn);  // already completed
  }
  int64_t ca_id = (*trade)[1].AsInt64();
  int64_t s_id = (*trade)[2].AsInt64();
  int64_t qty = (*trade)[3].AsInt64();
  double price = (*trade)[4].double_value();
  bool is_buy = (*trade)[5].bool_value();
  double amount = price * static_cast<double>(qty);

  auto account = db_->Get(*txn, "customer_account", {B(ca_id)});
  if (!account.ok()) return fail(account.status());
  Row new_account = *account;
  new_account[3] = D(new_account[3].double_value() +
                     (is_buy ? -amount : amount));
  Status st = db_->Update(*txn, "customer_account", new_account);
  if (!st.ok()) return fail(st);

  int64_t b_id = (*account)[2].AsInt64();
  auto broker = db_->Get(*txn, "broker", {B(b_id)});
  if (!broker.ok()) return fail(broker.status());
  Row new_broker = *broker;
  new_broker[2] = B(new_broker[2].AsInt64() + 1);
  new_broker[3] = D(new_broker[3].double_value() + amount * 0.001);
  st = db_->Update(*txn, "broker", new_broker);
  if (!st.ok()) return fail(st);

  auto summary = db_->Get(*txn, "holding_summary", {B(ca_id), B(s_id)});
  int64_t delta = is_buy ? qty : -qty;
  if (summary.ok()) {
    Row new_summary = *summary;
    new_summary[2] = B(new_summary[2].AsInt64() + delta);
    st = db_->Update(*txn, "holding_summary", new_summary);
  } else if (summary.status().IsNotFound()) {
    st = db_->Insert(*txn, "holding_summary", {B(ca_id), B(s_id), B(delta)});
  } else {
    return fail(summary.status());
  }
  if (!st.ok()) return fail(st);

  st = db_->Insert(*txn, "holding",
                   {B(ca_id), B(s_id), B(next_holding_id_.fetch_add(1)),
                    B(delta), D(price)});
  if (!st.ok()) return fail(st);

  Row new_trade = *trade;
  new_trade[6] = S("CMPT");
  st = db_->Update(*txn, "trade", new_trade);
  if (!st.ok()) return fail(st);
  st = db_->Insert(*txn, "trade_history",
                   {B(t_id), S("CMPT"), Value::Timestamp(db_->NowMicros())});
  if (!st.ok()) return fail(st);
  st = db_->Insert(*txn, "settlement",
                   {B(t_id), D(amount), Value::Timestamp(db_->NowMicros())});
  if (!st.ok() && !st.IsAborted() &&
      st.code() != StatusCode::kAlreadyExists)
    return fail(st);
  if (st.IsAborted()) return fail(st);
  st = db_->Insert(*txn, "cash_transaction",
                   {B(t_id), D(amount), Value::Timestamp(db_->NowMicros())});
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return fail(st);
  return db_->Commit(*txn);
}

Status TpceWorkload::MarketFeed(Random* rng) {
  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };
  // Ticker batch: update the quote of up to 10 securities.
  for (int i = 0; i < 10; i++) {
    int64_t s_id = rng->UniformRange(1, config_.securities);
    auto quote = db_->Get(*txn, "last_trade", {B(s_id)});
    if (!quote.ok()) return fail(quote.status());
    Row new_quote = *quote;
    double move = (static_cast<double>(rng->Uniform(200)) - 100.0) / 100.0;
    new_quote[1] = D(std::max(1.0, new_quote[1].double_value() + move));
    new_quote[2] = B(new_quote[2].AsInt64() + rng->UniformRange(100, 1000));
    new_quote[3] = Value::Timestamp(db_->NowMicros());
    Status st = db_->Update(*txn, "last_trade", new_quote);
    if (!st.ok()) return fail(st);
  }
  return db_->Commit(*txn);
}

Status TpceWorkload::TradeStatus(Random* rng) {
  // The real Trade-Status frame returns the 50 most recent trades of an
  // account with their status history.
  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  int64_t newest = std::max<int64_t>(1, next_trade_id_.load() - 1);
  for (int i = 0; i < 50; i++) {
    int64_t t_id = std::max<int64_t>(
        1, newest - rng->UniformRange(0, std::min<int64_t>(newest, 200)));
    auto trade = db_->Get(*txn, "trade", {B(t_id)});
    if (trade.ok()) {
      // Read-only touches modeling the frame lookup; absence is fine.
      (void)db_->Get(*txn, "trade_history", {B(t_id), S("SBMT")});
      (void)db_->Get(*txn, "trade_history", {B(t_id), S("CMPT")});
    }
  }
  return db_->Commit(*txn);
}

Status TpceWorkload::CustomerPosition(Random* rng) {
  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };
  // Customer-Position walks every account of the customer and prices each
  // holding against the current quote.
  int64_t c_id = rng->UniformRange(1, config_.customers);
  auto customer = db_->Get(*txn, "customer", {B(c_id)});
  if (!customer.ok()) return fail(customer.status());
  for (int a = 0; a < config_.accounts_per_customer; a++) {
    int64_t ca_id = (c_id - 1) * config_.accounts_per_customer + a + 1;
    auto account = db_->Get(*txn, "customer_account", {B(ca_id)});
    if (!account.ok()) return fail(account.status());
    for (int64_t s = 1; s <= config_.securities; s++) {
      auto summary = db_->Get(*txn, "holding_summary", {B(ca_id), B(s)});
      if (!summary.ok()) continue;
      auto quote = db_->Get(*txn, "last_trade", {B(s)});
      if (!quote.ok()) return fail(quote.status());
    }
  }
  return db_->Commit(*txn);
}

Status TpceWorkload::MarketWatch(Random* rng) {
  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };
  // Market-Watch prices a whole watch list / industry segment.
  for (int i = 0; i < 60; i++) {
    int64_t s_id = rng->UniformRange(1, config_.securities);
    auto security = db_->Get(*txn, "security", {B(s_id)});
    if (!security.ok()) return fail(security.status());
    auto quote = db_->Get(*txn, "last_trade", {B(s_id)});
    if (!quote.ok()) return fail(quote.status());
  }
  return db_->Commit(*txn);
}

Status TpceWorkload::SecurityDetail(Random* rng) {
  auto txn = db_->Begin("tpce");
  if (!txn.ok()) return txn.status();
  auto fail = [&](Status st) {
    db_->Abort(*txn);
    return st;
  };
  // Security-Detail returns company info plus weeks of daily market data.
  int64_t s_id = rng->UniformRange(1, config_.securities);
  auto security = db_->Get(*txn, "security", {B(s_id)});
  if (!security.ok()) return fail(security.status());
  auto quote = db_->Get(*txn, "last_trade", {B(s_id)});
  if (!quote.ok()) return fail(quote.status());
  for (int i = 0; i < 30; i++) {
    // Read-only market-feed touches; absence is fine.
    (void)db_->Get(*txn, "daily_market", {B(rng->UniformRange(1, 5))});
    (void)db_->Get(*txn, "financial", {B(rng->UniformRange(1, 5))});
  }
  // Read-only reference-data touches; absence is fine.
  (void)db_->Get(*txn, "company", {B(rng->UniformRange(1, 5))});
  (void)db_->Get(*txn, "exchange", {B(rng->UniformRange(1, 5))});
  return db_->Commit(*txn);
}

Status TpceWorkload::RunTransaction(Random* rng, TpceStats* stats) {
  uint64_t roll = rng->Uniform(100);
  Status st;
  if (roll < 10) {
    st = TradeOrder(rng);
    if (st.ok()) stats->trade_orders++;
  } else if (roll < 20) {
    st = TradeResult(rng);
    if (st.ok()) stats->trade_results++;
  } else if (roll < 23) {
    st = MarketFeed(rng);
    if (st.ok()) stats->market_feeds++;
  } else if (roll < 42) {
    st = TradeStatus(rng);
    if (st.ok()) stats->reads++;
  } else if (roll < 55) {
    st = CustomerPosition(rng);
    if (st.ok()) stats->reads++;
  } else if (roll < 78) {
    st = MarketWatch(rng);
    if (st.ok()) stats->reads++;
  } else {
    st = SecurityDetail(rng);
    if (st.ok()) stats->reads++;
  }
  if (st.ok()) {
    stats->committed++;
  } else if (st.IsAborted()) {
    stats->aborted++;
    return Status::OK();
  }
  return st;
}

}  // namespace sqlledger
