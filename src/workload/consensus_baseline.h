// Simulated decentralized-consensus ledger, standing in for the Hyperledger
// Fabric comparison point of the paper's §4.1.1 ("more than 20 times" lower
// throughput, "latency in the order of 100s of ms"). See DESIGN.md §1.3.
//
// The simulation models the three-phase Fabric pipeline that dominates its
// performance envelope:
//   1. endorsement  — per-transaction signing round-trips to N endorsers,
//   2. ordering     — transactions batch into blocks, cut when the batch is
//                     full or the block interval elapses,
//   3. validation   — per-block commit work at every peer.
// Throughput is capped by batch_size / block_interval plus validation cost;
// latency is endorsement + expected wait for the block cut + validation —
// exactly the architectural costs a centralized ledger avoids. Default
// parameters follow the published Fabric numbers the paper cites [1].

#ifndef SQLLLEDGER_WORKLOAD_CONSENSUS_BASELINE_H_
#define SQLLLEDGER_WORKLOAD_CONSENSUS_BASELINE_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "crypto/sha256.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlledger {

struct ConsensusConfig {
  int endorsers = 3;
  /// One-way network latency per hop.
  std::chrono::microseconds network_hop{1500};
  /// CPU cost of validating one endorsement signature.
  std::chrono::microseconds endorsement_validate{250};
  /// Ordering-service block parameters (Fabric defaults: 500ms / 500 txns).
  std::chrono::microseconds block_interval{500000};
  uint64_t block_size = 500;
  /// Per-transaction validation cost at commit.
  std::chrono::microseconds per_txn_validation{150};
  /// Scale every simulated duration by 1/time_scale so benchmarks finish
  /// quickly while preserving ratios. 1 = real time.
  uint64_t time_scale = 1;
};

struct ConsensusStats {
  uint64_t committed = 0;
  /// Sum of simulated end-to-end latencies, microseconds (unscaled).
  uint64_t total_latency_micros = 0;
  uint64_t blocks = 0;
};

/// A single-node simulation of an ordered-consensus ledger. Submit() blocks
/// (in scaled time) until the transaction's block commits, and returns the
/// simulated (unscaled) end-to-end latency.
class SimulatedConsensusLedger {
 public:
  explicit SimulatedConsensusLedger(ConsensusConfig config);
  ~SimulatedConsensusLedger();

  /// Submits one transaction payload; returns its simulated end-to-end
  /// latency in (unscaled) microseconds.
  uint64_t Submit(Slice payload);

  ConsensusStats stats() const;
  /// The throughput ceiling implied by the ordering parameters, tps.
  double TheoreticalMaxThroughput() const;

 private:
  void OrdererLoop();
  std::chrono::microseconds Scaled(std::chrono::microseconds d) const {
    return d / static_cast<int64_t>(config_.time_scale == 0 ? 1
                                                            : config_.time_scale);
  }

  ConsensusConfig config_;

  mutable Mutex mu_;
  CondVar cv_;
  struct Pending {
    Hash256 digest;
    uint64_t submit_seq;
    // Written by the orderer, read by the submitting thread — both under
    // the ledger's mu_ (the struct lives on the submitter's stack, so it
    // cannot carry a GUARDED_BY reference to it).
    bool committed = false;
  };
  std::vector<Pending*> batch_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  ConsensusStats stats_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread orderer_;
};

}  // namespace sqlledger

#endif  // SQLLLEDGER_WORKLOAD_CONSENSUS_BASELINE_H_
