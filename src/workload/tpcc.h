// TPC-C-like OLTP workload (paper §4.1.1): an order-processing system for a
// wholesale supplier. Nine tables; the four order/payment-related tables
// (orders, new_order, order_line, history) are converted to updateable
// ledger tables exactly as the paper describes, the rest stay regular. The
// transaction mix is update-intensive — the paper's worst case for SQL
// Ledger.
//
// This is a workload *generator*, not a compliant TPC-C kit: table
// cardinalities are scaled down and the think times removed, but the
// relative read/write shape of the mix (New-Order / Payment / Delivery /
// Order-Status / Stock-Level at 45/43/4/4/4) is preserved, which is what
// the Figure 7 experiment depends on.

#ifndef SQLLEDGER_WORKLOAD_TPCC_H_
#define SQLLEDGER_WORKLOAD_TPCC_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "ledger/ledger_database.h"
#include "util/random.h"

namespace sqlledger {

struct TpccConfig {
  int warehouses = 1;
  int districts_per_warehouse = 10;
  int customers_per_district = 30;
  int items = 100;
  /// Convert the four order-related tables to ledger tables (paper setup).
  /// Ignored when the database has the ledger disabled.
  bool ledger_tables = true;
};

/// Per-run counters.
struct TpccStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t new_orders = 0;
  uint64_t payments = 0;
  uint64_t deliveries = 0;
  uint64_t order_status = 0;
  uint64_t stock_level = 0;
};

class TpccWorkload {
 public:
  TpccWorkload(LedgerDatabase* db, TpccConfig config)
      : db_(db), config_(config) {}

  /// Creates the nine tables and loads the initial population.
  Status Setup();

  /// Runs one transaction drawn from the standard mix. Lock-timeout aborts
  /// are counted and absorbed (the caller simply calls again).
  Status RunTransaction(Random* rng, TpccStats* stats);

  // Individual transaction types (exposed for tests).
  Status NewOrder(Random* rng);
  Status Payment(Random* rng);
  Status Delivery(Random* rng);
  Status OrderStatus(Random* rng);
  Status StockLevel(Random* rng);

 private:
  LedgerDatabase* db_;
  TpccConfig config_;
  std::atomic<int64_t> next_order_id_{1};
  std::atomic<int64_t> next_history_id_{1};
};

}  // namespace sqlledger

#endif  // SQLLEDGER_WORKLOAD_TPCC_H_
