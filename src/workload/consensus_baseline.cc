#include "workload/consensus_baseline.h"

namespace sqlledger {

SimulatedConsensusLedger::SimulatedConsensusLedger(ConsensusConfig config)
    : config_(config) {
  orderer_ = std::thread([this] { OrdererLoop(); });
}

SimulatedConsensusLedger::~SimulatedConsensusLedger() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.SignalAll();
  orderer_.join();
}

double SimulatedConsensusLedger::TheoreticalMaxThroughput() const {
  double interval_s =
      static_cast<double>(config_.block_interval.count()) / 1e6;
  return static_cast<double>(config_.block_size) / interval_s;
}

uint64_t SimulatedConsensusLedger::Submit(Slice payload) {
  // Phase 1: endorsement. The client sends the proposal to every endorser
  // (one network hop each way) and validates the returned signatures.
  // Endorsements run in parallel across endorsers, so the time cost is one
  // round trip plus per-signature validation.
  auto endorsement =
      2 * config_.network_hop +
      config_.endorsement_validate * static_cast<int64_t>(config_.endorsers);
  std::this_thread::sleep_for(Scaled(endorsement));
  Hash256 digest = Sha256::Digest(payload);

  // Phase 2+3: submit to ordering and wait for the block to cut and commit.
  Pending pending;
  pending.digest = digest;
  {
    MutexLock lock(&mu_);
    pending.submit_seq = next_seq_++;
    batch_.push_back(&pending);
    if (batch_.size() >= config_.block_size) cv_.SignalAll();
    while (!pending.committed && !stop_) cv_.Wait(&mu_);
  }

  // Total simulated latency: endorsement + half the block interval on
  // average (time to the next cut) + block validation.
  auto validation = config_.per_txn_validation *
                    static_cast<int64_t>(config_.block_size);
  uint64_t latency =
      static_cast<uint64_t>(endorsement.count()) +
      static_cast<uint64_t>(config_.block_interval.count()) / 2 +
      static_cast<uint64_t>(validation.count());
  {
    MutexLock lock(&mu_);
    stats_.committed++;
    stats_.total_latency_micros += latency;
  }
  return latency;
}

void SimulatedConsensusLedger::OrdererLoop() {
  mu_.Lock();
  while (!stop_) {
    // Cut a block when the interval elapses or the batch is full.
    auto deadline =
        std::chrono::steady_clock::now() + Scaled(config_.block_interval);
    while (!stop_ && batch_.size() < config_.block_size) {
      if (!cv_.WaitUntil(&mu_, deadline)) break;  // interval elapsed
    }
    if (stop_) break;
    if (batch_.empty()) continue;

    // Cut at most block_size transactions per block; the rest wait for the
    // next cut (matches the ordering service's batching contract).
    std::vector<Pending*> block;
    if (batch_.size() <= config_.block_size) {
      block.swap(batch_);
    } else {
      block.assign(batch_.begin(), batch_.begin() + config_.block_size);
      batch_.erase(batch_.begin(), batch_.begin() + config_.block_size);
    }

    // Block validation and commit at the peers: hash chaining plus
    // per-transaction signature checks, simulated as scaled sleep while
    // the lock is released so new submissions keep arriving.
    mu_.Unlock();
    std::this_thread::sleep_for(Scaled(
        config_.per_txn_validation * static_cast<int64_t>(block.size())));
    mu_.Lock();

    for (Pending* p : block) p->committed = true;
    stats_.blocks++;
    cv_.SignalAll();
  }
  // Drain anything still waiting so Submit callers wake up on shutdown.
  for (Pending* p : batch_) p->committed = true;
  cv_.SignalAll();
  mu_.Unlock();
}

ConsensusStats SimulatedConsensusLedger::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace sqlledger
