#include "txn/lock_manager.h"

namespace sqlledger {

bool LockModesCompatible(LockMode held, LockMode requested) {
  // Standard multigranularity compatibility matrix.
  static constexpr bool kCompatible[4][4] = {
      //            IS     IX     S      X      (requested)
      /* IS */ {true, true, true, false},
      /* IX */ {true, true, false, false},
      /* S  */ {true, false, true, false},
      /* X  */ {false, false, false, false},
  };
  return kCompatible[static_cast<int>(held)][static_cast<int>(requested)];
}

namespace {
/// True when a transaction already holding `held` needs no new grant for
/// `requested` (the held mode subsumes it).
bool Subsumes(LockMode held, LockMode requested) {
  if (held == requested) return true;
  switch (held) {
    case LockMode::kExclusive:
      return true;
    case LockMode::kShared:
      return requested == LockMode::kIntentionShared;
    case LockMode::kIntentionExclusive:
      return requested == LockMode::kIntentionShared;
    case LockMode::kIntentionShared:
      return false;
  }
  return false;
}

/// The mode a transaction holds after strengthening `held` with `granted`.
LockMode Strengthen(LockMode held, LockMode granted) {
  if (Subsumes(held, granted)) return held;
  if (Subsumes(granted, held)) return granted;
  // S + IX (or IX + S) = SIX in the full lattice; X is the conservative
  // upper bound we use (affects only the rare upgrade path).
  return LockMode::kExclusive;
}
}  // namespace

bool LockManager::CanGrant(const Entry& e, uint64_t txn_id,
                           LockMode mode) const {
  for (const auto& [holder, held] : e.holders) {
    if (holder == txn_id) continue;
    if (!LockModesCompatible(held, mode)) return false;
  }
  return true;
}

Status LockManager::AcquireLocked(std::unique_lock<std::mutex>* lock,
                                  Entry* entry, uint64_t txn_id,
                                  LockMode mode, const char* what) {
  auto held = entry->holders.find(txn_id);
  if (held != entry->holders.end() && Subsumes(held->second, mode))
    return Status::OK();

  auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (!CanGrant(*entry, txn_id, mode)) {
    if (cv_.wait_until(*lock, deadline) == std::cv_status::timeout) {
      return Status::Aborted(std::string("lock timeout on ") + what +
                             " (possible deadlock)");
    }
  }
  held = entry->holders.find(txn_id);
  entry->holders[txn_id] = held == entry->holders.end()
                               ? mode
                               : Strengthen(held->second, mode);
  return Status::OK();
}

Status LockManager::AcquireTable(uint64_t txn_id, uint32_t table_id,
                                 LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  return AcquireLocked(&lock, &tables_[table_id], txn_id, mode, "table");
}

Status LockManager::AcquireRow(uint64_t txn_id, uint32_t table_id,
                               const KeyTuple& key, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  return AcquireLocked(&lock, &rows_[table_id][key], txn_id, mode, "row");
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [table_id, entry] : tables_) entry.holders.erase(txn_id);
  for (auto& [table_id, row_map] : rows_) {
    for (auto it = row_map.begin(); it != row_map.end();) {
      it->second.holders.erase(txn_id);
      if (it->second.holders.empty()) {
        it = row_map.erase(it);
      } else {
        ++it;
      }
    }
  }
  cv_.notify_all();
}

}  // namespace sqlledger
