#include "txn/lock_manager.h"

#include <algorithm>
#include <vector>

namespace sqlledger {

bool LockModesCompatible(LockMode held, LockMode requested) {
  // Standard multigranularity compatibility matrix.
  static constexpr bool kCompatible[4][4] = {
      //            IS     IX     S      X      (requested)
      /* IS */ {true, true, true, false},
      /* IX */ {true, true, false, false},
      /* S  */ {true, false, true, false},
      /* X  */ {false, false, false, false},
  };
  return kCompatible[static_cast<int>(held)][static_cast<int>(requested)];
}

namespace {
/// True when a transaction already holding `held` needs no new grant for
/// `requested` (the held mode subsumes it).
bool Subsumes(LockMode held, LockMode requested) {
  if (held == requested) return true;
  switch (held) {
    case LockMode::kExclusive:
      return true;
    case LockMode::kShared:
      return requested == LockMode::kIntentionShared;
    case LockMode::kIntentionExclusive:
      return requested == LockMode::kIntentionShared;
    case LockMode::kIntentionShared:
      return false;
  }
  return false;
}

/// The mode a transaction holds after strengthening `held` with `granted`.
LockMode Strengthen(LockMode held, LockMode granted) {
  if (Subsumes(held, granted)) return held;
  if (Subsumes(granted, held)) return granted;
  // S + IX (or IX + S) = SIX in the full lattice; X is the conservative
  // upper bound we use (affects only the rare upgrade path).
  return LockMode::kExclusive;
}
}  // namespace

bool LockManager::CanGrant(const Entry& e, uint64_t txn_id,
                           LockMode mode) const {
  for (const auto& [holder, held] : e.holders) {
    if (holder == txn_id) continue;
    if (!LockModesCompatible(held, mode)) return false;
  }
  return true;
}

bool LockManager::WouldDeadlock(uint64_t txn_id) const {
  // DFS from txn_id through the waits-for graph; only blocked transactions
  // have out-edges, so the graph is tiny and acyclic unless we deadlocked.
  std::set<uint64_t> visited;
  std::vector<uint64_t> stack{txn_id};
  while (!stack.empty()) {
    uint64_t cur = stack.back();
    stack.pop_back();
    auto edges = waits_for_.find(cur);
    if (edges == waits_for_.end()) continue;
    for (uint64_t next : edges->second) {
      if (next == txn_id) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void LockManager::SetMetrics(MetricRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_wait_micros_ = nullptr;
    m_timeouts_ = nullptr;
    m_deadlocks_ = nullptr;
    return;
  }
  m_wait_micros_ = registry->GetHistogram("lock.wait_micros");
  m_timeouts_ = registry->GetCounter("lock.timeouts_total");
  m_deadlocks_ = registry->GetCounter("lock.deadlocks_total");
}

Status LockManager::AcquireLocked(Entry* entry, uint64_t txn_id,
                                  LockMode mode, const char* what) {
  auto held = entry->holders.find(txn_id);
  if (held != entry->holders.end() && Subsumes(held->second, mode))
    return Status::OK();

  auto deadline = std::chrono::steady_clock::now() + timeout_;
  entry->waiters++;
  // lock.wait_micros covers only CONTENDED acquisitions: the metrics clock
  // is first read when a grant is actually refused, so uncontended runs
  // (e.g. the single-threaded simulator) make zero lock-metric clock calls.
  int64_t wait_start = -1;
  auto record_wait = [&]() {
    if (wait_start >= 0) {
      m_wait_micros_->Record(static_cast<uint64_t>(
          std::max<int64_t>(0, metrics_->NowMicros() - wait_start)));
    }
  };
  while (!CanGrant(*entry, txn_id, mode)) {
    if (wait_start < 0 && m_wait_micros_ != nullptr)
      wait_start = metrics_->NowMicros();
    // Re-derive our waits-for edges each round: the blocking holders change
    // as other transactions commit, abort, or acquire.
    std::set<uint64_t> blockers;
    for (const auto& [holder, held_mode] : entry->holders) {
      if (holder != txn_id && !LockModesCompatible(held_mode, mode))
        blockers.insert(holder);
    }
    waits_for_[txn_id] = std::move(blockers);
    if (WouldDeadlock(txn_id)) {
      waits_for_.erase(txn_id);
      entry->waiters--;
      record_wait();
      if (m_deadlocks_ != nullptr) m_deadlocks_->Add();
      return Status::Aborted(std::string("deadlock detected on ") + what);
    }
    if (!cv_.WaitUntil(&mu_, deadline)) {
      if (CanGrant(*entry, txn_id, mode)) break;
      waits_for_.erase(txn_id);
      entry->waiters--;
      record_wait();
      if (m_timeouts_ != nullptr) m_timeouts_->Add();
      return Status::Aborted(std::string("lock timeout on ") + what +
                             " (possible deadlock)");
    }
  }
  waits_for_.erase(txn_id);
  entry->waiters--;
  record_wait();
  held = entry->holders.find(txn_id);
  entry->holders[txn_id] = held == entry->holders.end()
                               ? mode
                               : Strengthen(held->second, mode);
  return Status::OK();
}

Status LockManager::AcquireTable(uint64_t txn_id, uint32_t table_id,
                                 LockMode mode) {
  MutexLock lock(&mu_);
  return AcquireLocked(&tables_[table_id], txn_id, mode, "table");
}

Status LockManager::AcquireRow(uint64_t txn_id, uint32_t table_id,
                               const KeyTuple& key, LockMode mode) {
  MutexLock lock(&mu_);
  return AcquireLocked(&rows_[table_id][key], txn_id, mode, "row");
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  MutexLock lock(&mu_);
  for (auto& [table_id, entry] : tables_) entry.holders.erase(txn_id);
  for (auto& [table_id, row_map] : rows_) {
    for (auto it = row_map.begin(); it != row_map.end();) {
      it->second.holders.erase(txn_id);
      if (it->second.holders.empty() && it->second.waiters == 0) {
        it = row_map.erase(it);
      } else {
        ++it;
      }
    }
  }
  cv_.SignalAll();
}

}  // namespace sqlledger
