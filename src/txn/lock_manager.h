// Hierarchical two-phase locking with intention modes, in the classic
// System R style:
//   - table-level locks: IS, IX, S, X
//   - row-level locks:   S, X   (under an intention lock on the table)
// Readers take IS + row S; writers take IX + row X; scans take table S;
// DDL/maintenance takes table X. Locks are held until commit/abort (strict
// 2PL). Deadlocks are resolved by timeout: a request that cannot be granted
// within the budget aborts its transaction, which the caller retries.
//
// Physical consistency of the underlying B+-trees is the table stores' own
// short-duration latching; these locks provide transaction isolation.

#ifndef SQLLEDGER_TXN_LOCK_MANAGER_H_
#define SQLLEDGER_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <set>

#include "catalog/value.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlledger {

enum class LockMode : uint8_t {
  kIntentionShared = 0,     // IS
  kIntentionExclusive = 1,  // IX
  kShared = 2,              // S
  kExclusive = 3,           // X
};

/// True when a holder in `held` permits another transaction to acquire
/// `requested` on the same resource.
bool LockModesCompatible(LockMode held, LockMode requested);

class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(1000))
      : timeout_(timeout) {}

  /// Acquires (or strengthens to) `mode` on the table. Reentrant; a holder
  /// never blocks itself. Returns Aborted on timeout.
  Status AcquireTable(uint64_t txn_id, uint32_t table_id, LockMode mode);

  /// Acquires a row lock (kShared/kExclusive only). The caller must already
  /// hold a table-level intention (or stronger) lock.
  Status AcquireRow(uint64_t txn_id, uint32_t table_id, const KeyTuple& key,
                    LockMode mode);

  /// Releases every table and row lock held by `txn_id`.
  void ReleaseAll(uint64_t txn_id);

  /// Attaches a lock.wait_micros histogram + lock.timeouts_total /
  /// lock.deadlocks_total counters resolved from `registry` (DESIGN.md §13).
  /// Call once before the manager sees concurrency; nullptr detaches. Only
  /// CONTENDED acquisitions are recorded: the uncontended fast path never
  /// reads the metrics clock, so single-threaded deterministic-simulator
  /// runs make zero lock-metric clock calls.
  void SetMetrics(MetricRegistry* registry);

 private:
  struct Entry {
    // txn -> strongest mode held. Usually tiny.
    std::map<uint64_t, LockMode> holders;
    // Transactions blocked in AcquireLocked hold a pointer to this entry
    // across cv_ waits; ReleaseAll must not erase it while waiters > 0.
    int waiters = 0;
  };

  bool CanGrant(const Entry& e, uint64_t txn_id, LockMode mode) const
      REQUIRES(mu_);
  Status AcquireLocked(Entry* entry, uint64_t txn_id, LockMode mode,
                       const char* what) REQUIRES(mu_);
  bool WouldDeadlock(uint64_t txn_id) const REQUIRES(mu_);

  std::chrono::milliseconds timeout_;
  Mutex mu_;
  CondVar cv_;
  std::map<uint32_t, Entry> tables_ GUARDED_BY(mu_);
  std::map<uint32_t, std::map<KeyTuple, Entry, KeyTupleLess>> rows_
      GUARDED_BY(mu_);
  // Waits-for graph over currently blocked transactions: txn -> the holders
  // it is waiting on. A blocked acquire that closes a cycle here is a
  // deadlock and aborts immediately instead of stalling until the timeout
  // (the timeout remains as a backstop for edges this graph cannot see).
  std::map<uint64_t, std::set<uint64_t>> waits_for_ GUARDED_BY(mu_);
  // Optional instrumentation (SetMetrics); null when detached. Recording is
  // lock-free, so doing it under mu_ adds no lock-order edge.
  MetricRegistry* metrics_ = nullptr;
  Histogram* m_wait_micros_ = nullptr;   // lock.wait_micros
  Counter* m_timeouts_ = nullptr;        // lock.timeouts_total
  Counter* m_deadlocks_ = nullptr;       // lock.deadlocks_total
};

}  // namespace sqlledger

#endif  // SQLLEDGER_TXN_LOCK_MANAGER_H_
