// Transactions. A transaction applies its changes eagerly to table stores
// under strict two-phase hierarchical locks, accumulating:
//   - redo operations (become the WAL commit record),
//   - undo entries (reverse-applied on abort or partial rollback),
//   - one streaming Merkle tree per ledger table touched (paper §3.2), and
//   - a per-transaction operation sequence counter (paper §3.1).
//
// Savepoints snapshot the undo/redo positions, the sequence counter, and
// the O(log N) Merkle builder states (paper §3.2.1), so partial rollback is
// cheap regardless of how many rows were updated.

#ifndef SQLLEDGER_TXN_TRANSACTION_H_
#define SQLLEDGER_TXN_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "storage/table_store.h"
#include "storage/wal.h"
#include "util/status.h"

namespace sqlledger {

class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  Transaction(uint64_t id, std::string user_name)
      : id_(id), user_name_(std::move(user_name)) {}

  uint64_t id() const { return id_; }
  const std::string& user_name() const { return user_name_; }
  State state() const { return state_; }
  bool active() const { return state_ == State::kActive; }

  /// Next per-transaction operation sequence number (paper §3.1): row
  /// versions are hashed in the order they were updated, and verification
  /// must replay the same order.
  uint64_t NextSequence() { return next_sequence_++; }
  uint64_t sequence_count() const { return next_sequence_; }

  // ---- Change tracking (called by the DML layer) ----

  /// Records a redo op for the WAL and the matching undo entry.
  void RecordInsert(TableStore* table, const KeyTuple& key, const Row& row);
  void RecordUpdate(TableStore* table, const KeyTuple& key, const Row& old_row,
                    const Row& new_row);
  void RecordDelete(TableStore* table, const KeyTuple& key, const Row& old_row);

  /// Streaming Merkle tree for the given ledger table; created on first use.
  MerkleBuilder* MerkleForTable(uint32_t table_id);
  /// (table id, root) pairs for all ledger tables touched, id-ordered —
  /// the transaction entry payload recorded in the Database Ledger.
  /// Returns the cached roots after FinalizeForCommit.
  std::vector<std::pair<uint32_t, Hash256>> TableRoots() const;

  /// Computes and caches the per-table Merkle roots. The commit pipeline
  /// calls this before the transaction joins a commit group, so the root
  /// computation (the SHA-heavy part of commit) runs outside every lock and
  /// concurrent committers finalize in parallel. Any later DML or partial
  /// rollback invalidates the cache.
  void FinalizeForCommit();

  const std::vector<WalOp>& ops() const { return ops_; }
  bool HasLedgerUpdates() const { return !merkle_.empty(); }

  // ---- Savepoints (paper §3.2.1) ----

  Status CreateSavepoint(const std::string& name);
  /// Reverts table stores, redo ops, sequence counter and Merkle trees to
  /// the state captured by the savepoint. Later savepoints are discarded;
  /// the named savepoint itself remains available.
  Status RollbackToSavepoint(const std::string& name);

  // ---- Terminal transitions (called by the database facade) ----

  /// Reverse-applies all undo entries. Idempotent once aborted.
  void Abort();
  void MarkCommitted() { state_ = State::kCommitted; }

 private:
  struct UndoEntry {
    WalOpType type;
    TableStore* table;
    KeyTuple key;
    Row old_row;  // pre-image for update/delete
  };

  struct SavepointRecord {
    std::string name;
    size_t undo_size;
    size_t ops_size;
    uint64_t next_sequence;
    std::map<uint32_t, MerkleBuilderState> merkle_states;
  };

  void UndoRange(size_t from);

  uint64_t id_;
  std::string user_name_;
  State state_ = State::kActive;
  uint64_t next_sequence_ = 0;
  std::vector<WalOp> ops_;
  std::vector<UndoEntry> undo_;
  std::map<uint32_t, MerkleBuilder> merkle_;
  std::vector<SavepointRecord> savepoints_;
  // FinalizeForCommit cache; invalidated by DML and partial rollback.
  bool roots_finalized_ = false;
  std::vector<std::pair<uint32_t, Hash256>> finalized_roots_;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_TXN_TRANSACTION_H_
