#include "txn/transaction.h"

namespace sqlledger {

void Transaction::RecordInsert(TableStore* table, const KeyTuple& key,
                               const Row& row) {
  roots_finalized_ = false;
  WalOp op;
  op.type = WalOpType::kInsert;
  op.table_id = table->table_id();
  op.key = key;
  op.new_row = row;
  ops_.push_back(std::move(op));

  UndoEntry undo;
  undo.type = WalOpType::kInsert;
  undo.table = table;
  undo.key = key;
  undo_.push_back(std::move(undo));
}

void Transaction::RecordUpdate(TableStore* table, const KeyTuple& key,
                               const Row& old_row, const Row& new_row) {
  roots_finalized_ = false;
  WalOp op;
  op.type = WalOpType::kUpdate;
  op.table_id = table->table_id();
  op.key = key;
  op.new_row = new_row;
  ops_.push_back(std::move(op));

  UndoEntry undo;
  undo.type = WalOpType::kUpdate;
  undo.table = table;
  undo.key = key;
  undo.old_row = old_row;
  undo_.push_back(std::move(undo));
}

void Transaction::RecordDelete(TableStore* table, const KeyTuple& key,
                               const Row& old_row) {
  roots_finalized_ = false;
  WalOp op;
  op.type = WalOpType::kDelete;
  op.table_id = table->table_id();
  op.key = key;
  ops_.push_back(std::move(op));

  UndoEntry undo;
  undo.type = WalOpType::kDelete;
  undo.table = table;
  undo.key = key;
  undo.old_row = old_row;
  undo_.push_back(std::move(undo));
}

MerkleBuilder* Transaction::MerkleForTable(uint32_t table_id) {
  return &merkle_[table_id];
}

std::vector<std::pair<uint32_t, Hash256>> Transaction::TableRoots() const {
  if (roots_finalized_) return finalized_roots_;
  std::vector<std::pair<uint32_t, Hash256>> roots;
  roots.reserve(merkle_.size());
  for (const auto& [table_id, builder] : merkle_) {
    if (builder.leaf_count() == 0) continue;  // fully rolled back
    roots.emplace_back(table_id, builder.Root());
  }
  return roots;
}

void Transaction::FinalizeForCommit() {
  if (roots_finalized_) return;
  finalized_roots_ = TableRoots();
  roots_finalized_ = true;
}

Status Transaction::CreateSavepoint(const std::string& name) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  SavepointRecord sp;
  sp.name = name;
  sp.undo_size = undo_.size();
  sp.ops_size = ops_.size();
  sp.next_sequence = next_sequence_;
  for (const auto& [table_id, builder] : merkle_)
    sp.merkle_states[table_id] = builder.GetState();
  savepoints_.push_back(std::move(sp));
  return Status::OK();
}

Status Transaction::RollbackToSavepoint(const std::string& name) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  int found = -1;
  for (int i = static_cast<int>(savepoints_.size()) - 1; i >= 0; i--) {
    if (savepoints_[i].name == name) {
      found = i;
      break;
    }
  }
  if (found < 0) return Status::NotFound("savepoint '" + name + "' not found");
  SavepointRecord& sp = savepoints_[found];

  UndoRange(sp.undo_size);
  ops_.resize(sp.ops_size);
  roots_finalized_ = false;
  next_sequence_ = sp.next_sequence;

  // Restore Merkle builders: tables captured in the savepoint get their
  // snapshot back; tables first touched after the savepoint are discarded.
  for (auto it = merkle_.begin(); it != merkle_.end();) {
    auto state_it = sp.merkle_states.find(it->first);
    if (state_it == sp.merkle_states.end()) {
      it = merkle_.erase(it);
    } else {
      it->second.RestoreState(state_it->second);
      ++it;
    }
  }
  // Discard savepoints created after this one (keep the target itself).
  savepoints_.resize(static_cast<size_t>(found) + 1);
  return Status::OK();
}

void Transaction::UndoRange(size_t from) {
  while (undo_.size() > from) {
    UndoEntry& e = undo_.back();
    // Undo entries mirror operations that were applied under this
    // transaction's locks, so reversing them cannot fail.
    switch (e.type) {
      case WalOpType::kInsert:
        (void)e.table->Delete(e.key);  // cannot fail; see above
        break;
      case WalOpType::kUpdate:
        (void)e.table->Update(e.old_row);  // cannot fail; see above
        break;
      case WalOpType::kDelete:
        (void)e.table->Insert(e.old_row);  // cannot fail; see above
        break;
    }
    undo_.pop_back();
  }
}

void Transaction::Abort() {
  if (state_ != State::kActive) return;
  UndoRange(0);
  ops_.clear();
  merkle_.clear();
  roots_finalized_ = false;
  savepoints_.clear();
  state_ = State::kAborted;
}

}  // namespace sqlledger
