#include "sim/generator.h"

#include "util/random.h"

namespace sqlledger {
namespace sim {

namespace {

/// Weighted pick over op kinds. Weights are integers so the selection is
/// exact (no floating-point platform drift).
struct WeightedKind {
  SimOpKind kind;
  uint32_t weight;
};

SimOpKind Pick(Random* rng, const std::vector<WeightedKind>& table) {
  uint64_t total = 0;
  for (const auto& wk : table) total += wk.weight;
  uint64_t roll = rng->Uniform(total);
  for (const auto& wk : table) {
    if (roll < wk.weight) return wk.kind;
    roll -= wk.weight;
  }
  return table.back().kind;
}

}  // namespace

std::vector<SimOp> GenerateTrace(uint64_t seed, const GeneratorOptions& opts) {
  Random rng(seed);
  std::vector<SimOp> trace;
  trace.reserve(opts.ops);

  bool txn_open = false;       // generator's belief, not execution feedback
  bool outage_open = false;    // generator's belief about the digest store
  uint32_t num_tables = opts.base_tables;
  uint32_t created_tables = 0;
  uint32_t added_columns = 0;

  // Inside a transaction: DML-heavy with savepoint structure; COMMIT is the
  // most likely exit so transactions average a handful of statements.
  const std::vector<WeightedKind> in_txn = {
      {SimOpKind::kInsert, 30},        {SimOpKind::kUpdate, 18},
      {SimOpKind::kDelete, 10},        {SimOpKind::kGet, 8},
      {SimOpKind::kScan, 3},           {SimOpKind::kSavepoint, 6},
      {SimOpKind::kRollbackToSave, 5}, {SimOpKind::kCommit, 16},
      {SimOpKind::kAbort, 4},
  };
  // Between transactions: mostly start the next one, with structural and
  // adversarial events mixed in.
  std::vector<WeightedKind> between = {
      {SimOpKind::kBegin, 55},   {SimOpKind::kDigest, 8},
      {SimOpKind::kVerify, 4},   {SimOpKind::kReceipt, 4},
      {SimOpKind::kLedgerView, 4}, {SimOpKind::kOpsView, 2},
      {SimOpKind::kCheckpoint, 4}, {SimOpKind::kIncrementalVerify, 3},
  };
  if (opts.enable_ddl) {
    between.push_back({SimOpKind::kCreateTable, 2});
    between.push_back({SimOpKind::kAddColumn, 2});
    between.push_back({SimOpKind::kDropColumn, 1});
    between.push_back({SimOpKind::kCreateIndex, 1});
  }
  if (opts.enable_crash) {
    between.push_back({SimOpKind::kCrash, 2});
    between.push_back({SimOpKind::kArmCrash, 2});
  }
  if (opts.enable_tamper) between.push_back({SimOpKind::kTamper, 2});
  if (opts.enable_truncate) between.push_back({SimOpKind::kTruncate, 1});
  if (opts.enable_store_outage) {
    // End is weighted above begin so outage windows skew short — digests
    // still pile into the outbox, but most traces also exercise recovery.
    between.push_back({SimOpKind::kStoreOutageBegin, 2});
    between.push_back({SimOpKind::kStoreOutageEnd, 3});
  }

  while (trace.size() < opts.ops) {
    SimOp op;
    op.kind = Pick(&rng, txn_open ? in_txn : between);
    switch (op.kind) {
      case SimOpKind::kBegin:
        txn_open = true;
        break;
      case SimOpKind::kCommit:
      case SimOpKind::kAbort:
        txn_open = false;
        break;
      case SimOpKind::kInsert:
      case SimOpKind::kUpdate:
        op.table = static_cast<uint32_t>(rng.Uniform(num_tables));
        op.key = rng.UniformRange(0, opts.key_space - 1);
        op.arg = rng.Next() % 1000;
        op.str = rng.AlphaString(8);
        break;
      case SimOpKind::kDelete:
      case SimOpKind::kGet:
        op.table = static_cast<uint32_t>(rng.Uniform(num_tables));
        op.key = rng.UniformRange(0, opts.key_space - 1);
        break;
      case SimOpKind::kScan:
      case SimOpKind::kLedgerView:
        op.table = static_cast<uint32_t>(rng.Uniform(num_tables));
        break;
      case SimOpKind::kSavepoint:
      case SimOpKind::kRollbackToSave:
        op.str = "sp" + std::to_string(rng.Uniform(4));
        break;
      case SimOpKind::kCreateTable:
        if (created_tables >= opts.max_created_tables) continue;
        op.str = "gen" + std::to_string(created_tables++);
        // kAppendOnly=1 / kUpdateable=2, biased toward updateable.
        op.arg = rng.Bernoulli(0.3) ? 1 : 2;
        num_tables++;
        break;
      case SimOpKind::kAddColumn:
        if (added_columns >= opts.max_added_columns) continue;
        op.table = static_cast<uint32_t>(rng.Uniform(num_tables));
        op.str = "extra" + std::to_string(added_columns++);
        op.arg = rng.Bernoulli(0.5) ? 1 : 0;  // 1 = varchar, 0 = int
        break;
      case SimOpKind::kDropColumn:
        // Targets a previously added column by name; the driver no-ops (and
        // both sides agree on NotFound) when it does not exist.
        if (added_columns == 0) continue;
        op.table = static_cast<uint32_t>(rng.Uniform(num_tables));
        op.str = "extra" + std::to_string(rng.Uniform(added_columns));
        break;
      case SimOpKind::kCreateIndex:
        op.table = static_cast<uint32_t>(rng.Uniform(num_tables));
        op.str = "ix" + std::to_string(rng.Uniform(3));
        break;
      case SimOpKind::kOpsView:
      case SimOpKind::kDigest:
      case SimOpKind::kVerify:
      case SimOpKind::kIncrementalVerify:
      case SimOpKind::kCheckpoint:
      case SimOpKind::kCrash:
        break;
      case SimOpKind::kArmCrash:
        op.arg = 1 + rng.Uniform(12);  // sync countdown until the crash
        break;
      case SimOpKind::kReceipt:
      case SimOpKind::kTruncate:
        op.arg = rng.Next();  // selector, reduced by the driver
        break;
      case SimOpKind::kTamper:
        op.arg = rng.Next();          // mutation-kind selector
        op.key = static_cast<int64_t>(rng.Next() >> 1);  // target selector
        break;
      case SimOpKind::kStoreOutageBegin:
        if (outage_open) continue;  // one outage at a time
        outage_open = true;
        break;
      case SimOpKind::kStoreOutageEnd:
        if (!outage_open) continue;
        outage_open = false;
        break;
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

}  // namespace sim
}  // namespace sqlledger
