// The reference model: a deliberately plain re-implementation of ledger
// semantics used as the oracle in differential testing. It keeps full
// physical rows in std::maps, recomputes every Merkle root recursively from
// flat leaf lists (never through the production MerkleBuilder/MerkleTree),
// and rebuilds the block chain with the obvious O(n) bookkeeping. Shared
// with production code are only the pure canonical-serialization primitives
// (RowVersionLeafHash, TransactionEntry::LeafHash, BlockRecord::ComputeHash,
// MerkleLeafHash/MerkleNodeHash) — that is the declared oracle boundary:
// the simulator tests orchestration (stamping, sequencing, savepoints,
// chain growth, recovery, truncation), not the byte format itself, which
// has its own vector tests.

#ifndef SQLLEDGER_SIM_MODEL_H_
#define SQLLEDGER_SIM_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "crypto/sha256.h"
#include "ledger/digest.h"
#include "ledger/types.h"
#include "util/result.h"

namespace sqlledger {
namespace sim {

/// Naive recursive Merkle root over already-domain-separated leaf hashes:
/// pairwise reduction with lone-node promotion, recomputed from scratch on
/// every call. Matches MerkleBuilder/MerkleTree by construction of the
/// specification, not by sharing code.
Hash256 NaiveMerkleRoot(std::vector<Hash256> leaves);

class ReferenceModel {
 public:
  struct Config {
    uint64_t block_size = 8;
    /// Self-test hook: compute per-table transaction roots over the leaf
    /// list in *reverse* order — a one-line hash-order bug the harness must
    /// catch on the first committed transaction.
    bool break_hash_order = false;
  };

  struct Table {
    std::string name;
    uint32_t table_id = 0;
    uint32_t history_table_id = 0;  // 0 = no history table
    TableKind kind = TableKind::kRegular;
    Schema schema;          // full physical schema (hidden columns included)
    Schema history_schema;  // updateable tables only
    std::map<KeyTuple, Row, KeyTupleLess> rows;     // by primary key
    std::map<KeyTuple, Row, KeyTupleLess> history;  // by (end_txn, end_seq)
  };

  /// Snapshot of the model's chain bookkeeping, used to resolve in-doubt
  /// block closes after a crash (restore and retry both interpretations).
  struct ChainState {
    std::vector<TransactionEntry> entries;  // all appended, arrival order
    std::vector<BlockRecord> blocks;        // closed blocks, id order
    std::vector<TransactionEntry> open_entries;
    uint64_t open_block_id = 0;
    uint64_t next_ordinal = 0;
    Hash256 last_block_hash;
    int64_t last_commit_ts = 0;
  };

  /// Expected outcome of committing the open transaction.
  struct CommitOutcome {
    bool has_entry = false;
    TransactionEntry entry;  // valid when has_entry
  };

  struct ViewRow {
    Row values;
    std::string operation;  // "INSERT" / "DELETE"
    uint64_t transaction_id = 0;
    uint64_t sequence_number = 0;
  };

  explicit ReferenceModel(Config config) : config_(config) {}

  // ---- Tables / schema changes ----

  Status CreateTable(const std::string& name, const Schema& user_schema,
                     TableKind kind);
  Status AddColumn(const std::string& name, const std::string& column,
                   DataType type, uint32_t max_length);
  Status DropColumn(const std::string& name, const std::string& column);
  Table* FindTable(const std::string& name);
  Table* FindTableById(uint32_t table_id);
  void RemoveTable(const std::string& name);  // in-doubt DDL resolution
  const std::map<uint32_t, std::unique_ptr<Table>>& tables() const {
    return tables_;
  }
  uint32_t next_table_id() const { return next_table_id_; }
  void set_next_table_id(uint32_t id) { next_table_id_ = id; }

  // ---- Transactions ----

  uint64_t next_txn_id() const { return next_txn_id_; }
  void set_next_txn_id(uint64_t id) { next_txn_id_ = id; }
  /// Consumes txn ids taken by internal system transactions (DDL helpers,
  /// view scans) so the next BeginTxn predicts the right id.
  void ConsumeTxnIds(uint64_t n) { next_txn_id_ += n; }

  bool InTxn() const { return txn_ != nullptr; }
  uint64_t BeginTxn(const std::string& user);
  Status Insert(const std::string& table, const Row& user_row);
  Status Update(const std::string& table, const Row& user_row);
  Status Delete(const std::string& table, const KeyTuple& key);
  Result<Row> Get(const std::string& table, const KeyTuple& key) const;
  Result<std::vector<Row>> Scan(const std::string& table) const;
  Status Savepoint(const std::string& name);
  Status RollbackToSavepoint(const std::string& name);
  void AbortTxn();

  /// Computes the expected commit outcome (entry contents + slot) WITHOUT
  /// consuming the slot or discarding undo state; the driver feeds the
  /// system's actual appended entry back through OnEntryAppended and then
  /// finalizes or undoes, which is what makes in-doubt crashed commits
  /// resolvable either way.
  CommitOutcome PrepareCommit(int64_t commit_ts);
  void FinalizeCommit();  // staged table changes become permanent
  void UndoCommit();      // reverse staged changes (crash lost the commit)

  // ---- Chain ----

  /// Validates the entry against the model's next expected slot and appends
  /// it, closing the block when full. Entries from internal transactions
  /// (DDL, truncation audit) are adopted as-is; the driver separately
  /// asserts user entries match PrepareCommit's prediction.
  Status OnEntryAppended(const TransactionEntry& entry);

  /// Expected digest: closes the open block (or materializes the initial
  /// empty block) exactly like the system, using naive recomputation.
  DatabaseDigest ExpectedDigest(const std::string& database_id,
                                const std::string& create_time);

  ChainState GetChainState() const;
  void SetChainState(ChainState state);

  const std::vector<BlockRecord>& blocks() const { return chain_.blocks; }
  const std::vector<TransactionEntry>& entries() const {
    return chain_.entries;
  }
  const std::vector<TransactionEntry>& open_entries() const {
    return chain_.open_entries;
  }
  uint64_t open_block_id() const { return chain_.open_block_id; }
  uint64_t next_ordinal() const { return chain_.next_ordinal; }
  Hash256 last_block_hash() const { return chain_.last_block_hash; }

  /// Drops entries/blocks below the cutoff (mirrors TruncateBelow).
  void TruncateChainBelow(uint64_t below_block);

  /// Replaces one table's physical contents from a system scan (used by the
  /// post-truncation resync, where internal dummy updates re-stamped rows).
  void ReplaceTableContents(const std::string& name,
                            std::map<KeyTuple, Row, KeyTupleLess> rows,
                            std::map<KeyTuple, Row, KeyTupleLess> history);

  // ---- Derived expectations ----

  /// Mirror of BuildLedgerView over the model's rows + history.
  Result<std::vector<ViewRow>> ExpectedLedgerView(
      const std::string& table) const;

  /// Naive root over the entry leaf hashes of one closed block's entries.
  Hash256 ExpectedBlockRoot(const std::vector<TransactionEntry>& entries)
      const;

 private:
  struct UndoRec {
    enum class Kind { kInsert, kUpdate, kDelete } kind;
    uint32_t table_id = 0;
    bool history = false;
    KeyTuple key;
    Row old_row;  // update/delete pre-image
  };
  struct SavepointRec {
    std::string name;
    size_t undo_size = 0;
    size_t op_count = 0;
    uint64_t next_seq = 0;
    std::map<uint32_t, size_t> leaf_sizes;
  };
  struct Txn {
    uint64_t id = 0;
    std::string user;
    uint64_t next_seq = 0;
    size_t op_count = 0;  // mirrors Transaction::ops() size
    std::vector<UndoRec> undo;
    std::map<uint32_t, std::vector<Hash256>> leaves;  // per ledger table
    std::vector<SavepointRec> savepoints;
  };

  std::map<KeyTuple, Row, KeyTupleLess>* ResolveStore(uint32_t table_id,
                                                      bool history);
  void ApplyUndo(size_t from);
  void CloseBlock();
  Row VisibleProjection(const Table& t, const Row& full) const;

  Config config_;
  std::map<uint32_t, std::unique_ptr<Table>> tables_;  // by table id
  std::map<std::string, uint32_t> by_name_;
  uint32_t next_table_id_ = kFirstUserTableId;
  uint64_t next_txn_id_ = 1;
  std::unique_ptr<Txn> txn_;
  ChainState chain_;
};

}  // namespace sim
}  // namespace sqlledger

#endif  // SQLLEDGER_SIM_MODEL_H_
