// The differential-simulation driver: replays one generated op trace
// against a real LedgerDatabase (behind a FaultInjectionEnv) and the
// ReferenceModel in lockstep, diffing statuses, query results, ledger
// entries, digests, receipts and full verification outcomes as it goes.
//
// Determinism rules (what makes `--seed=N` reproduce byte-for-byte):
//   - the trace is a pure function of (seed, generator options);
//   - the database clock is a driver-owned counter, never wall time;
//   - every adversarial event (crash points, torn-write prefixes, tamper
//     targets) draws from seeded PRNGs;
//   - the driver resolves runtime-inapplicable ops (missing table index,
//     nothing to truncate) with deterministic no-op rules, which also makes
//     arbitrary subsequences replayable — the property the minimizer needs.
//
// On divergence the driver records the op index and a diff message; the
// harness prints the seed and the (minimized) trace so the failure can be
// replayed exactly.

#ifndef SQLLEDGER_SIM_DRIVER_H_
#define SQLLEDGER_SIM_DRIVER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ledger/digest_store.h"
#include "ledger/faulty_digest_store.h"
#include "ledger/ledger_database.h"
#include "sim/generator.h"
#include "sim/model.h"
#include "sim/trace.h"
#include "storage/env.h"

namespace sqlledger {
namespace sim {

struct SimConfig {
  uint64_t seed = 1;
  GeneratorOptions gen;
  /// Transactions per ledger block — small so block closes, receipts and
  /// truncation all trigger within short traces.
  uint64_t block_size = 8;
  /// On-disk directory for the database (WAL, checkpoints). Wiped by every
  /// run. Required: crash simulation needs real files.
  std::string data_dir;
  /// Deep audit (scan-compare every table + chain tip) every N ops; 0 = off.
  size_t audit_interval = 64;
  /// Extra full VerifyLedger every N ops on top of generated kVerify ops.
  size_t verify_interval = 0;
  /// Self-test: plant a hash-order bug in the model so the harness must
  /// diverge (used to prove the oracle actually bites).
  bool break_hash_order = false;
};

struct SimResult {
  bool ok = true;  // false = divergence (or harness setup failure)
  std::string message;
  size_t divergent_op = static_cast<size_t>(-1);
  /// block_id:block_hash of the final digest — the chain fingerprint two
  /// runs of the same seed must agree on.
  std::string final_digest_hex;
  /// SHA-256 over the per-op outcome log — byte-for-byte determinism check.
  std::string outcome_fingerprint;
  /// SHA-256 over the final metrics JSON + trace JSON (DESIGN.md §13): the
  /// observability layer must itself replay byte-for-byte under a pinned
  /// metrics clock. Empty when the run died before a database existed.
  std::string metrics_fingerprint;
  uint64_t statements = 0;
  uint64_t commits = 0;
  uint64_t crashes = 0;
  uint64_t tampers = 0;
  uint64_t truncations = 0;
  uint64_t verifications = 0;
  uint64_t incremental_verifications = 0;
  uint64_t digests = 0;
  uint64_t store_outages = 0;

  std::string Summary() const;
};

class SimDriver {
 public:
  explicit SimDriver(SimConfig config);
  ~SimDriver();

  SimDriver(const SimDriver&) = delete;
  SimDriver& operator=(const SimDriver&) = delete;

  /// Wipes the data dir, opens the database, creates the base tables and
  /// replays the trace. Returns the filled-in result.
  SimResult Run(const std::vector<SimOp>& trace);

 private:
  Status Setup();
  Status OpenDb();
  void ExecuteOp(size_t i, const SimOp& op);

  // Op handlers.
  void DoBegin(size_t i, const SimOp& op);
  void DoDml(size_t i, const SimOp& op);
  void DoSavepoint(size_t i, const SimOp& op);
  void DoRollbackToSave(size_t i, const SimOp& op);
  void DoCreateTable(size_t i, const SimOp& op);
  void DoAddColumn(size_t i, const SimOp& op);
  void DoDropColumn(size_t i, const SimOp& op);
  void DoCreateIndex(size_t i, const SimOp& op);
  void DoLedgerView(size_t i, const SimOp& op);
  void DoOpsView(size_t i);
  void DoDigest(size_t i);
  void DoReceipt(size_t i, const SimOp& op);
  void DoVerify(size_t i);
  /// VerifyLedgerIncremental diffed verdict-for-verdict against a full
  /// VerifyLedger run on the same trusted digests (plus counter identities:
  /// hashed + skipped row versions must equal the full run's hashed count).
  void DoIncrementalVerify(size_t i);
  void DoCheckpoint(size_t i);
  void DoCrash(size_t i);
  void DoTamper(size_t i, const SimOp& op);
  void DoTruncate(size_t i, const SimOp& op);
  void DoStoreOutage(size_t i, const SimOp& op);

  // Lockstep plumbing.
  bool CommitOpenTxn(size_t i);
  void ResolveInDoubtCommit(size_t i,
                            const ReferenceModel::CommitOutcome& expected);
  bool IngestNewEntries(size_t i);
  bool EntriesMatch(const TransactionEntry& a, const TransactionEntry& b,
                    bool check_ts) const;
  /// Crash aftermath: destroy the db, reopen on a fresh env, run `resolve`
  /// (intent-specific model fix-up), resync counters, rebuild the model
  /// chain from the recovered system and deep-audit. Returns true when a
  /// crash was actually pending (the caller's op is finished either way).
  bool HandleIfCrashed(size_t i, const std::function<void()>& resolve,
                       bool check_prefix = true);
  bool Reopen(size_t i);
  bool RebuildChain(size_t i, bool check_prefix);
  void ProbeTxnCounter(size_t i);
  void SyncNextTableId();
  void AdoptCreatedTable(size_t i, const std::string& name, TableKind kind);
  /// Replaces model ledger-table contents with the system's physical rows
  /// after asserting user-visible content still matches `pre` (used after
  /// truncation, whose dummy updates re-stamp hidden columns).
  void AdoptTables(size_t i,
                   const std::map<std::string, std::vector<Row>>& pre);
  void FullAudit(size_t i);

  // Digest-protection plumbing (DESIGN.md §9). Every digest the driver
  // takes also flows through the database's DigestUploadPipeline toward a
  // FaultyDigestStore, so outages, lost acks, duplicates and crashes all
  // hit the retry/outbox machinery under the deterministic clock.
  /// Submits `d` through the pipeline and pumps once. Returns true when
  /// the submission was durably accepted into the outbox.
  bool SubmitDigestToPipeline(size_t i, const DatabaseDigest& d);
  /// Pumps until the outbox drains (no outage may be active). Returns
  /// false on divergence; a crash mid-drain returns true and leaves the
  /// recovery to the caller's safety net.
  bool DrainPipeline(size_t i);
  /// Cross-checks the remote store against the driver's submission log:
  /// stored digests must be an order-preserving subset of submissions, and
  /// every accepted submission must be stored or still pending replay.
  bool AuditDigestStore(size_t i);

  // Small helpers.
  DatabaseLedger* ledger() { return db_->database_ledger(); }
  Row BuildUserRow(const ReferenceModel::Table& t, const SimOp& op) const;
  const std::string* TableName(uint32_t index) const;
  uint32_t SystemTableId(const std::string& name);
  void Fail(size_t i, std::string msg);
  void Note(const std::string& line);
  static Schema GenUserSchema();

  SimConfig config_;
  std::unique_ptr<ReferenceModel> model_;
  std::unique_ptr<FaultInjectionEnv> fenv_;
  // The remote digest service: survives crashes (it is external to the
  // database host) and must outlive db_, whose pipeline points into it.
  std::unique_ptr<InMemoryDigestStore> remote_store_;
  std::unique_ptr<FaultyDigestStore> faulty_store_;
  std::unique_ptr<LedgerDatabase> db_;
  Transaction* txn_ = nullptr;
  size_t applied_ = 0;  // append-log entries already ingested by the model
  std::vector<std::string> registry_;  // table index -> name, append order
  std::set<std::pair<std::string, std::string>> indexes_;
  std::vector<DatabaseDigest> trusted_;
  int64_t clock_ = 1000000;  // driver-owned deterministic clock
  // Separate deterministic clock for the metrics/trace subsystem: metric
  // timing must not perturb commit timestamps drawn from clock_ (the db
  // clock increments per call, so sharing it would shift commit_ts values
  // whenever instrumentation adds or removes a read).
  int64_t metrics_clock_ = 5000000;
  uint64_t reopens_ = 0;
  /// Every pipeline submission in order. `accepted` = the outbox reported
  /// durable; false = the outcome was ambiguous (crash mid-append) and the
  /// digest may or may not resurface from replay.
  struct DigestSubmission {
    std::string json;
    uint64_t block_id = 0;
    bool accepted = false;
  };
  std::vector<DigestSubmission> submission_log_;
  bool store_outage_ = false;  // driver's belief, mirrored into the store

  bool diverged_ = false;
  SimResult result_;
  std::string log_;
};

/// Wipes config.data_dir and replays `trace`.
SimResult RunTrace(const SimConfig& config, const std::vector<SimOp>& trace);

/// GenerateTrace(config.seed, config.gen) + RunTrace.
SimResult RunSim(const SimConfig& config);

/// Greedy delta-debugging: removes chunks (halving the chunk size down to
/// single ops) while the divergence persists. Returns the shrunk trace; if
/// `trace` does not diverge in the first place it is returned unchanged.
std::vector<SimOp> MinimizeTrace(const SimConfig& config,
                                 std::vector<SimOp> trace);

}  // namespace sim
}  // namespace sqlledger

#endif  // SQLLEDGER_SIM_DRIVER_H_
