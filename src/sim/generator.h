// Seeded operation generator: a pure function of (seed, options) producing
// the op trace the driver replays. The generator keeps only its own
// bookkeeping (how many tables it has asked to create, whether it believes
// a transaction is open) — never any feedback from execution — so the same
// seed always yields byte-identical traces regardless of what the system
// under test does with them.

#ifndef SQLLEDGER_SIM_GENERATOR_H_
#define SQLLEDGER_SIM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "sim/trace.h"

namespace sqlledger {
namespace sim {

struct GeneratorOptions {
  size_t ops = 1000;
  /// Tables the driver pre-creates before replay; generated table indices
  /// range over [0, base_tables + created so far).
  uint32_t base_tables = 3;
  /// Keys are drawn from [0, key_space) so duplicate-key inserts and
  /// missing-row updates/deletes occur naturally (both sides must predict
  /// the same AlreadyExists/NotFound statuses).
  int64_t key_space = 48;
  /// Caps on generated schema changes.
  uint32_t max_created_tables = 4;
  uint32_t max_added_columns = 6;
  /// Adversarial event families (each still individually seeded).
  bool enable_crash = true;
  bool enable_tamper = true;
  bool enable_ddl = true;
  bool enable_truncate = true;
  /// Digest-store outage windows (kStoreOutageBegin/kStoreOutageEnd).
  bool enable_store_outage = true;
};

/// Deterministically expands (seed, options) into a trace.
std::vector<SimOp> GenerateTrace(uint64_t seed, const GeneratorOptions& opts);

}  // namespace sim
}  // namespace sqlledger

#endif  // SQLLEDGER_SIM_GENERATOR_H_
