#include "sim/driver.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "crypto/sha256.h"
#include "ledger/ledger_view.h"
#include "ledger/receipt.h"
#include "ledger/truncation.h"
#include "ledger/verifier.h"

namespace sqlledger {
namespace sim {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kIOError: return "IO_ERROR";
    case StatusCode::kNotSupported: return "NOT_SUPPORTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kIntegrityViolation: return "INTEGRITY_VIOLATION";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kBusy: return "BUSY";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); i++) {
    if (i > 0) out += ",";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

std::string HashHex(const Hash256& h) { return h.ToHex(); }

}  // namespace

std::string SimResult::Summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "DIVERGED") << " statements=" << statements
     << " commits=" << commits << " crashes=" << crashes
     << " tampers=" << tampers << " truncations=" << truncations
     << " verifications=" << verifications
     << " incr_verifications=" << incremental_verifications
     << " digests=" << digests << " outages=" << store_outages
     << " digest=" << final_digest_hex << " fp=" << outcome_fingerprint;
  if (!metrics_fingerprint.empty()) os << " mfp=" << metrics_fingerprint;
  if (!ok) os << " @" << divergent_op << ": " << message;
  return os.str();
}

SimDriver::SimDriver(SimConfig config) : config_(std::move(config)) {}

SimDriver::~SimDriver() = default;

Schema SimDriver::GenUserSchema() {
  Schema s;
  s.AddColumn("id", DataType::kBigInt, /*nullable=*/false);
  s.AddColumn("val", DataType::kVarchar, /*nullable=*/true, /*max_length=*/24);
  s.AddColumn("n", DataType::kInt, /*nullable=*/true);
  s.SetPrimaryKey({0});
  return s;
}

void SimDriver::Fail(size_t i, std::string msg) {
  if (diverged_) return;
  diverged_ = true;
  result_.ok = false;
  result_.divergent_op = i;
  result_.message = std::move(msg);
  Note("DIVERGED @" + std::to_string(i) + ": " + result_.message);
}

void SimDriver::Note(const std::string& line) {
  log_ += line;
  log_ += '\n';
}

const std::string* SimDriver::TableName(uint32_t index) const {
  if (index >= registry_.size()) return nullptr;
  return &registry_[index];
}

uint32_t SimDriver::SystemTableId(const std::string& name) {
  for (CatalogEntry* e : db_->AllTables()) {
    if (e->name == name) return e->table_id;
  }
  return 0;
}

Row SimDriver::BuildUserRow(const ReferenceModel::Table& t,
                            const SimOp& op) const {
  Row row;
  size_t vis = 0;
  for (const ColumnDef& c : t.schema.columns()) {
    if (c.hidden || c.dropped) continue;
    if (vis == 0) {
      row.push_back(Value::BigInt(op.key));
    } else if (c.nullable && (op.arg + vis) % 5 == 0) {
      row.push_back(Value::Null(c.type));
    } else {
      switch (c.type) {
        case DataType::kVarchar: {
          std::string s = op.str + "-" + c.name;
          if (c.max_length > 0 && s.size() > c.max_length)
            s.resize(c.max_length);
          row.push_back(Value::Varchar(std::move(s)));
          break;
        }
        case DataType::kInt:
          row.push_back(
              Value::Int(static_cast<int32_t>((op.arg + vis) % 100000)));
          break;
        case DataType::kBigInt:
          row.push_back(Value::BigInt(static_cast<int64_t>(op.arg)));
          break;
        default:
          row.push_back(Value::Null(c.type));
          break;
      }
    }
    vis++;
  }
  return row;
}

// ---- Setup ----

Status SimDriver::OpenDb() {
  LedgerDatabaseOptions opts;
  opts.data_dir = config_.data_dir;
  opts.database_id = "simdb";
  opts.block_size = config_.block_size;
  opts.sync_wal = true;
  opts.env = fenv_.get();
  opts.clock = [this] { return ++clock_; };
  // Pin the metrics/trace clock to its own counter (DESIGN.md §13): metric
  // timestamps replay byte-for-byte, and instrumentation never perturbs the
  // commit-timestamp clock above.
  opts.metrics_clock = [this] { return ++metrics_clock_; };
  // Determinism contract (DESIGN.md §10): no timed group formation. The
  // driver is single-threaded, so with a zero linger every commit group is
  // a singleton and traces stay byte-identical across reruns; FullAudit
  // checks the invariant.
  opts.commit.max_group_wait_micros = 0;
  auto db = LedgerDatabase::Open(opts);
  if (!db.ok()) return db.status();
  db_ = std::move(*db);
  db_->database_ledger()->EnableAppendLog();
  applied_ = 0;
  txn_ = nullptr;

  // The remote store is external to the database host: created once and
  // untouched by crashes. Its fault decorator carries seeded network
  // weather (transient errors, lost acks, duplicate deliveries) on top of
  // the trace-scripted outage windows.
  if (remote_store_ == nullptr) {
    remote_store_ = std::make_unique<InMemoryDigestStore>();
    faulty_store_ = std::make_unique<FaultyDigestStore>(
        remote_store_.get(), config_.seed ^ 0xD16E57ULL);
    FaultyDigestStore::Probabilities p;
    p.transient_error = 0.05;
    p.ack_lost = 0.05;
    p.duplicate = 0.05;
    faulty_store_->SetProbabilities(p);
    faulty_store_->SetOutage(store_outage_);
  }

  // The pipeline dies and is rebuilt with the database (its outbox replays
  // from disk through the fault env). Zero backoff/probe intervals keep
  // replay deterministic under the 1µs-per-call driver clock: a Pump always
  // attempts, and failure counting alone drives the breaker.
  DigestPipelineOptions popts;
  popts.outbox_dir = config_.data_dir + "/digest_outbox";
  popts.env = fenv_.get();
  popts.outbox_capacity = 32;
  popts.initial_backoff_micros = 0;
  popts.max_backoff_micros = 0;
  popts.jitter = 0;
  popts.probe_interval_micros = 0;
  popts.seed = config_.seed ^ 0x9D1635ULL;
  return db_->StartDigestProtection(faulty_store_.get(), std::move(popts));
}

Status SimDriver::Setup() {
  // Through Env (not std::filesystem) so the whole tree keeps a single I/O
  // choke point; the fault env is created below, so preparation of the data
  // dir intentionally uses the real filesystem.
  Env* env = Env::Default();
  Status prep = RemoveDirRecursive(env, config_.data_dir);
  if (prep.ok()) prep = env->CreateDirs(config_.data_dir);
  if (!prep.ok())
    return Status::IOError("cannot prepare data dir: " + config_.data_dir +
                           ": " + prep.message());

  ReferenceModel::Config mc;
  mc.block_size = config_.block_size;
  mc.break_hash_order = config_.break_hash_order;
  model_ = std::make_unique<ReferenceModel>(mc);
  fenv_ = std::make_unique<FaultInjectionEnv>(
      nullptr, config_.seed ^ 0x9E3779B97F4A7C15ULL);
  SL_RETURN_IF_ERROR(OpenDb());

  // Base tables cycle through the three kinds so every op family has a
  // target: updateable (history + full DML), append-only, regular.
  std::vector<TableKind> kinds;
  for (uint32_t t = 0; t < config_.gen.base_tables; t++) {
    TableKind kind = t % 3 == 0   ? TableKind::kUpdateable
                     : t % 3 == 1 ? TableKind::kAppendOnly
                                  : TableKind::kRegular;
    std::string name = "t" + std::to_string(t);
    SL_RETURN_IF_ERROR(db_->CreateTable(name, GenUserSchema(), kind));
    kinds.push_back(kind);
  }

  // Adopt everything the bootstrap produced (system-catalog entry + one DDL
  // entry per base table) into the model wholesale, then sync counters and
  // mirror the base tables.
  if (!RebuildChain(0, /*check_prefix=*/false))
    return Status::Internal("setup: " + result_.message);
  SyncNextTableId();
  ProbeTxnCounter(0);
  for (uint32_t t = 0; t < config_.gen.base_tables; t++)
    AdoptCreatedTable(0, "t" + std::to_string(t), kinds[t]);
  if (diverged_) return Status::Internal("setup: " + result_.message);
  FullAudit(0);
  if (diverged_) return Status::Internal("setup: " + result_.message);
  return Status::OK();
}

void SimDriver::AdoptCreatedTable(size_t i, const std::string& name,
                                  TableKind kind) {
  uint32_t sys_id = SystemTableId(name);
  if (sys_id == 0) {
    Fail(i, "adopt: table '" + name + "' missing from system catalog");
    return;
  }
  model_->set_next_table_id(sys_id);
  Status st = model_->CreateTable(name, GenUserSchema(), kind);
  if (!st.ok()) {
    Fail(i, "adopt: model CreateTable('" + name + "'): " + st.message());
    return;
  }
  ReferenceModel::Table* mt = model_->FindTable(name);
  if (mt == nullptr || mt->table_id != sys_id) {
    Fail(i, "adopt: table id mismatch for '" + name + "'");
    return;
  }
  TableStore* hist = db_->GetStoreForTesting(name, /*history=*/true);
  uint32_t sys_hist = hist != nullptr ? hist->table_id() : 0;
  if (mt->history_table_id != sys_hist) {
    Fail(i, "adopt: history table id mismatch for '" + name + "': model " +
                std::to_string(mt->history_table_id) + " vs system " +
                std::to_string(sys_hist));
    return;
  }
  registry_.push_back(name);
}

void SimDriver::SyncNextTableId() {
  uint32_t next = kFirstUserTableId;
  for (CatalogEntry* e : db_->AllTables()) {
    next = std::max(next, e->table_id + 1);
    if (e->history != nullptr)
      next = std::max(next, e->history->table_id() + 1);
  }
  model_->set_next_table_id(next);
}

void SimDriver::ProbeTxnCounter(size_t i) {
  auto r = db_->Begin("sim:probe");
  if (!r.ok()) {
    Fail(i, "probe Begin failed: " + r.status().message());
    return;
  }
  uint64_t id = (*r)->id();
  db_->Abort(*r);
  model_->set_next_txn_id(id + 1);
}

// ---- Chain adoption ----

bool SimDriver::RebuildChain(size_t i, bool check_prefix) {
  Status drain = ledger()->DrainQueue();
  if (!drain.ok()) {
    Fail(i, "rebuild: DrainQueue: " + drain.message());
    return false;
  }
  std::vector<TransactionEntry> entries = ledger()->AllEntries();
  std::sort(entries.begin(), entries.end(),
            [](const TransactionEntry& a, const TransactionEntry& b) {
              if (a.block_id != b.block_id) return a.block_id < b.block_id;
              return a.block_ordinal < b.block_ordinal;
            });
  std::vector<BlockRecord> blocks = ledger()->AllBlocks();
  std::sort(blocks.begin(), blocks.end(),
            [](const BlockRecord& a, const BlockRecord& b) {
              return a.block_id < b.block_id;
            });

  ReferenceModel::ChainState st;
  st.entries = entries;
  Hash256 tip{};  // all-zero before any block closes
  size_t pos = 0;
  bool first = true;
  uint64_t prev_id = 0;
  for (const BlockRecord& b : blocks) {
    if (!first && b.block_id != prev_id + 1) {
      Fail(i, "rebuild: block id gap " + std::to_string(prev_id) + " -> " +
                  std::to_string(b.block_id));
      return false;
    }
    if (first) {
      // After truncation the first retained block's prev link points at a
      // removed block; only block 0 asserts the all-zero link.
      if (b.block_id == 0 && !b.previous_block_hash.IsZero()) {
        Fail(i, "rebuild: block 0 has nonzero previous hash");
        return false;
      }
    } else if (!(b.previous_block_hash == tip)) {
      Fail(i, "rebuild: prev link mismatch at block " +
                  std::to_string(b.block_id));
      return false;
    }
    std::vector<TransactionEntry> in_block;
    while (pos < entries.size() && entries[pos].block_id == b.block_id) {
      if (entries[pos].block_ordinal != in_block.size()) {
        Fail(i, "rebuild: ordinal gap in block " + std::to_string(b.block_id));
        return false;
      }
      in_block.push_back(entries[pos]);
      pos++;
    }
    if (in_block.size() != b.transaction_count) {
      Fail(i, "rebuild: block " + std::to_string(b.block_id) + " records " +
                  std::to_string(b.transaction_count) + " txns, found " +
                  std::to_string(in_block.size()));
      return false;
    }
    Hash256 root = model_->ExpectedBlockRoot(in_block);
    if (!(root == b.transactions_root)) {
      Fail(i, "rebuild: transactions root mismatch at block " +
                  std::to_string(b.block_id) + " (naive " + HashHex(root) +
                  " vs recorded " + HashHex(b.transactions_root) + ")");
      return false;
    }
    tip = b.ComputeHash();
    prev_id = b.block_id;
    first = false;
  }

  uint64_t open_id = ledger()->open_block_id();
  for (; pos < entries.size(); pos++) {
    const TransactionEntry& e = entries[pos];
    if (e.block_id != open_id || e.block_ordinal != st.open_entries.size()) {
      Fail(i, "rebuild: stray entry txn " + std::to_string(e.txn_id) +
                  " at block " + std::to_string(e.block_id) + " ordinal " +
                  std::to_string(e.block_ordinal));
      return false;
    }
    st.open_entries.push_back(e);
  }
  if (st.open_entries.size() != ledger()->open_block_entry_count()) {
    Fail(i, "rebuild: open entry count " +
                std::to_string(st.open_entries.size()) + " vs system " +
                std::to_string(ledger()->open_block_entry_count()));
    return false;
  }
  if (!(tip == ledger()->last_block_hash())) {
    Fail(i, "rebuild: chain tip mismatch (naive " + HashHex(tip) +
                " vs system " + HashHex(ledger()->last_block_hash()) + ")");
    return false;
  }

  st.open_block_id = open_id;
  st.next_ordinal = st.open_entries.size();
  st.last_block_hash = tip;
  st.blocks = blocks;
  for (const TransactionEntry& e : entries)
    st.last_commit_ts = std::max(st.last_commit_ts, e.commit_ts_micros);

  if (check_prefix) {
    // Recovery may lose the un-synced tail but must never rewrite history:
    // the previously adopted entries must be an exact prefix.
    const std::vector<TransactionEntry>& old = model_->entries();
    if (old.size() > st.entries.size()) {
      Fail(i, "rebuild: chain shrank from " + std::to_string(old.size()) +
                  " to " + std::to_string(st.entries.size()) + " entries");
      return false;
    }
    for (size_t j = 0; j < old.size(); j++) {
      if (!EntriesMatch(old[j], st.entries[j], /*check_ts=*/true)) {
        Fail(i, "rebuild: recovered entry " + std::to_string(j) +
                    " differs from adopted history (txn " +
                    std::to_string(st.entries[j].txn_id) + ")");
        return false;
      }
    }
  }

  model_->SetChainState(std::move(st));
  applied_ = ledger()->append_log_size();

  // Digests referencing truncated blocks would (correctly) fail invariant
  // 1; they are no longer part of the trusted set.
  trusted_.erase(
      std::remove_if(trusted_.begin(), trusted_.end(),
                     [&](const DatabaseDigest& d) {
                       for (const BlockRecord& b : blocks)
                         if (b.block_id == d.block_id) return false;
                       return true;
                     }),
      trusted_.end());
  return true;
}

// ---- Crash handling ----

bool SimDriver::Reopen(size_t i) {
  db_.reset();  // destroy before swapping the env out from under it
  reopens_++;
  fenv_ = std::make_unique<FaultInjectionEnv>(
      nullptr, config_.seed ^ (0x9E3779B97F4A7C15ULL * (reopens_ + 1)));
  Status st = OpenDb();
  if (!st.ok()) {
    Fail(i, "reopen after crash failed: " + st.message());
    return false;
  }
  return true;
}

bool SimDriver::HandleIfCrashed(size_t i, const std::function<void()>& resolve,
                                bool check_prefix) {
  if (diverged_ || fenv_ == nullptr || !fenv_->crashed()) return false;
  result_.crashes++;
  Note("crash recover @" + std::to_string(i));
  txn_ = nullptr;
  if (!Reopen(i)) return true;
  resolve();
  if (diverged_) return true;
  if (model_->InTxn()) model_->AbortTxn();
  // Catalog-level state (indexes live only in checkpoints) may have rolled
  // back to the previous checkpoint; resync from the recovered catalog.
  indexes_.clear();
  for (CatalogEntry* e : db_->AllTables()) {
    for (const auto& idx : e->main->indexes())
      indexes_.insert({e->name, idx->name});
  }
  // Recovery floors the system's column-id allocators above any orphaned
  // sys_ledger_columns rows (a DDL whose checkpoint tore); column ids are
  // hashed into row versions, so mirror the recovered allocators exactly.
  for (const std::string& name : registry_) {
    ReferenceModel::Table* mt = model_->FindTable(name);
    TableStore* store = db_->GetStoreForTesting(name);
    if (mt == nullptr || store == nullptr) continue;
    uint32_t next = store->schema().next_column_id();
    if (mt->schema.next_column_id() < next)
      mt->schema.set_next_column_id(next);
    if (mt->history_table_id != 0 && mt->history_schema.next_column_id() < next)
      mt->history_schema.set_next_column_id(next);
  }
  SyncNextTableId();
  ProbeTxnCounter(i);
  if (diverged_) return true;
  if (!RebuildChain(i, check_prefix)) return true;
  FullAudit(i);
  // The rebuilt pipeline replayed the outbox; a pump re-attempts the head
  // (idempotently re-uploading anything whose ack the crash ate) and the
  // audit re-checks store/submission-log agreement.
  if (!diverged_ && db_->digest_pipeline() != nullptr) {
    (void)db_->digest_pipeline()->Pump();  // audited just below
    AuditDigestStore(i);
  }
  return true;
}

// ---- Commit plumbing ----

bool SimDriver::EntriesMatch(const TransactionEntry& a,
                             const TransactionEntry& b, bool check_ts) const {
  if (a.txn_id != b.txn_id || a.block_id != b.block_id ||
      a.block_ordinal != b.block_ordinal || a.user_name != b.user_name)
    return false;
  if (check_ts && a.commit_ts_micros != b.commit_ts_micros) return false;
  if (a.table_roots.size() != b.table_roots.size()) return false;
  for (size_t i = 0; i < a.table_roots.size(); i++) {
    if (a.table_roots[i].first != b.table_roots[i].first) return false;
    if (!(a.table_roots[i].second == b.table_roots[i].second)) return false;
  }
  return true;
}

bool SimDriver::IngestNewEntries(size_t i) {
  std::vector<TransactionEntry> fresh = ledger()->AppendLogSince(applied_);
  for (const TransactionEntry& e : fresh) {
    Status st = model_->OnEntryAppended(e);
    if (!st.ok()) {
      Fail(i, "ingest entry txn " + std::to_string(e.txn_id) + ": " +
                  st.message());
      return false;
    }
    applied_++;
  }
  return true;
}

void SimDriver::ResolveInDoubtCommit(
    size_t i, const ReferenceModel::CommitOutcome& expected) {
  if (!expected.has_entry) {
    // Nothing ever reached the WAL; table changes were in-memory only and
    // are gone either way — but an op-less commit performs no I/O, so this
    // path only triggers with an armed crash burning down elsewhere.
    model_->UndoCommit();
    return;
  }
  auto found = ledger()->FindEntry(expected.entry.txn_id);
  if (found.ok()) {
    if (!EntriesMatch(*found, expected.entry, /*check_ts=*/false)) {
      Fail(i, "in-doubt commit txn " + std::to_string(expected.entry.txn_id) +
                  " recovered with different contents");
      return;
    }
    model_->FinalizeCommit();
  } else if (found.status().IsNotFound()) {
    model_->UndoCommit();
  } else {
    Fail(i, "in-doubt commit lookup: " + found.status().message());
  }
}

bool SimDriver::CommitOpenTxn(size_t i) {
  if (diverged_) return false;
  if (txn_ == nullptr) {
    if (model_->InTxn()) Fail(i, "model txn open with no system txn");
    return !diverged_;
  }
  if (!model_->InTxn()) {
    Fail(i, "system txn open with no model txn");
    return false;
  }
  ReferenceModel::CommitOutcome expected = model_->PrepareCommit(0);
  Transaction* t = txn_;
  txn_ = nullptr;
  Status st = db_->Commit(t);
  result_.commits++;
  if (fenv_->crashed()) {
    HandleIfCrashed(i, [&] { ResolveInDoubtCommit(i, expected); });
    return !diverged_;
  }
  if (!st.ok()) {
    Fail(i, "commit failed: " + st.message());
    return false;
  }
  std::vector<TransactionEntry> fresh = ledger()->AppendLogSince(applied_);
  size_t want = expected.has_entry ? 1 : 0;
  if (fresh.size() != want) {
    Fail(i, "commit appended " + std::to_string(fresh.size()) +
                " entries, model expected " + std::to_string(want));
    return false;
  }
  if (expected.has_entry) {
    if (!EntriesMatch(fresh[0], expected.entry, /*check_ts=*/false)) {
      Fail(i, "commit entry mismatch for txn " +
                  std::to_string(expected.entry.txn_id) + ": system block " +
                  std::to_string(fresh[0].block_id) + "/" +
                  std::to_string(fresh[0].block_ordinal) + " roots " +
                  std::to_string(fresh[0].table_roots.size()) +
                  " vs model block " + std::to_string(expected.entry.block_id) +
                  "/" + std::to_string(expected.entry.block_ordinal) +
                  " roots " + std::to_string(expected.entry.table_roots.size()));
      return false;
    }
    Status ms = model_->OnEntryAppended(fresh[0]);
    if (!ms.ok()) {
      Fail(i, "model rejected appended entry: " + ms.message());
      return false;
    }
    applied_++;
  }
  model_->FinalizeCommit();
  if (!(model_->last_block_hash() == ledger()->last_block_hash())) {
    Fail(i, "chain tip mismatch after commit (naive " +
                HashHex(model_->last_block_hash()) + " vs system " +
                HashHex(ledger()->last_block_hash()) + ")");
    return false;
  }
  Note("commit txn entries=" + std::to_string(want));
  return !diverged_;
}

// ---- Op handlers ----

void SimDriver::DoBegin(size_t i, const SimOp& op) {
  (void)op;
  if (!CommitOpenTxn(i)) return;
  auto r = db_->Begin("sim");
  if (!r.ok()) {
    Fail(i, "Begin failed: " + r.status().message());
    return;
  }
  uint64_t mid = model_->BeginTxn("sim");
  if ((*r)->id() != mid) {
    db_->Abort(*r);
    model_->AbortTxn();
    Fail(i, "txn id mismatch: system " + std::to_string((*r)->id()) +
                " vs model " + std::to_string(mid));
    return;
  }
  txn_ = *r;
  Note(std::to_string(i) + " begin " + std::to_string(mid));
}

void SimDriver::DoDml(size_t i, const SimOp& op) {
  const std::string* name = TableName(op.table);
  if (txn_ == nullptr || name == nullptr) {
    Note(std::to_string(i) + " " + SimOpKindName(op.kind) + " skip");
    return;
  }
  ReferenceModel::Table* mt = model_->FindTable(*name);
  if (mt == nullptr) {
    Fail(i, "model missing table '" + *name + "'");
    return;
  }
  result_.statements++;
  Status st, ms;
  std::string extra;
  switch (op.kind) {
    case SimOpKind::kInsert: {
      Row row = BuildUserRow(*mt, op);
      st = db_->Insert(txn_, *name, row);
      ms = model_->Insert(*name, row);
      break;
    }
    case SimOpKind::kUpdate: {
      Row row = BuildUserRow(*mt, op);
      st = db_->Update(txn_, *name, row);
      ms = model_->Update(*name, row);
      break;
    }
    case SimOpKind::kDelete: {
      KeyTuple key{Value::BigInt(op.key)};
      st = db_->Delete(txn_, *name, key);
      ms = model_->Delete(*name, key);
      break;
    }
    case SimOpKind::kGet: {
      KeyTuple key{Value::BigInt(op.key)};
      auto sr = db_->Get(txn_, *name, key);
      auto mr = model_->Get(*name, key);
      st = sr.ok() ? Status::OK() : sr.status();
      ms = mr.ok() ? Status::OK() : mr.status();
      if (sr.ok() && mr.ok()) {
        std::string a = RowToString(*sr), b = RowToString(*mr);
        if (a != b) {
          Fail(i, "Get('" + *name + "', " + std::to_string(op.key) +
                      "): system " + a + " vs model " + b);
          return;
        }
        extra = " row=" + a;
      }
      break;
    }
    case SimOpKind::kScan: {
      auto sr = db_->Scan(txn_, *name);
      auto mr = model_->Scan(*name);
      st = sr.ok() ? Status::OK() : sr.status();
      ms = mr.ok() ? Status::OK() : mr.status();
      if (sr.ok() && mr.ok()) {
        if (sr->size() != mr->size()) {
          Fail(i, "Scan('" + *name + "'): system " +
                      std::to_string(sr->size()) + " rows vs model " +
                      std::to_string(mr->size()));
          return;
        }
        for (size_t j = 0; j < sr->size(); j++) {
          std::string a = RowToString((*sr)[j]), b = RowToString((*mr)[j]);
          if (a != b) {
            Fail(i, "Scan('" + *name + "') row " + std::to_string(j) +
                        ": system " + a + " vs model " + b);
            return;
          }
        }
        extra = " rows=" + std::to_string(sr->size());
      }
      break;
    }
    default:
      Fail(i, "DoDml on non-DML op");
      return;
  }
  if (st.code() != ms.code()) {
    Fail(i, std::string(SimOpKindName(op.kind)) + "('" + *name +
                "'): system " + CodeName(st.code()) + " (" + st.message() +
                ") vs model " + CodeName(ms.code()) + " (" + ms.message() +
                ")");
    return;
  }
  Note(std::to_string(i) + " " + SimOpKindName(op.kind) + " " + *name + " " +
       CodeName(st.code()) + extra);
}

void SimDriver::DoSavepoint(size_t i, const SimOp& op) {
  if (txn_ == nullptr) {
    Note(std::to_string(i) + " savepoint skip");
    return;
  }
  Status st = db_->Savepoint(txn_, op.str);
  Status ms = model_->Savepoint(op.str);
  if (st.code() != ms.code()) {
    Fail(i, "Savepoint('" + op.str + "'): system " + CodeName(st.code()) +
                " vs model " + CodeName(ms.code()));
    return;
  }
  Note(std::to_string(i) + " savepoint " + op.str + " " + CodeName(st.code()));
}

void SimDriver::DoRollbackToSave(size_t i, const SimOp& op) {
  if (txn_ == nullptr) {
    Note(std::to_string(i) + " rollback skip");
    return;
  }
  Status st = db_->RollbackToSavepoint(txn_, op.str);
  Status ms = model_->RollbackToSavepoint(op.str);
  if (st.code() != ms.code()) {
    Fail(i, "RollbackToSavepoint('" + op.str + "'): system " +
                CodeName(st.code()) + " vs model " + CodeName(ms.code()));
    return;
  }
  Note(std::to_string(i) + " rollback " + op.str + " " + CodeName(st.code()));
}

void SimDriver::DoCreateTable(size_t i, const SimOp& op) {
  if (!CommitOpenTxn(i)) return;
  TableKind kind = op.arg == 1 ? TableKind::kAppendOnly : TableKind::kUpdateable;
  bool existed = model_->FindTable(op.str) != nullptr;
  Status st = db_->CreateTable(op.str, GenUserSchema(), kind);
  if (HandleIfCrashed(i, [&] {
        // Whether the create survived depends on whether its checkpoint
        // landed; adopt the recovered catalog's verdict.
        if (SystemTableId(op.str) != 0 && model_->FindTable(op.str) == nullptr)
          AdoptCreatedTable(i, op.str, kind);
      }))
    return;
  StatusCode want = existed ? StatusCode::kAlreadyExists : StatusCode::kOk;
  if (st.code() != want) {
    Fail(i, "CreateTable('" + op.str + "'): system " + CodeName(st.code()) +
                " vs model " + CodeName(want));
    return;
  }
  if (st.ok()) AdoptCreatedTable(i, op.str, kind);
  if (diverged_) return;
  if (!IngestNewEntries(i)) return;
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " create_table " + op.str + " " +
       CodeName(st.code()));
}

void SimDriver::DoAddColumn(size_t i, const SimOp& op) {
  const std::string* name = TableName(op.table);
  if (name == nullptr) {
    Note(std::to_string(i) + " add_column skip");
    return;
  }
  if (!CommitOpenTxn(i)) return;
  DataType type = op.arg == 1 ? DataType::kVarchar : DataType::kInt;
  uint32_t max_length = op.arg == 1 ? 16 : 0;
  Status st = db_->AddColumn(*name, op.str, type, max_length);
  if (HandleIfCrashed(i, [&] {
        TableStore* store = db_->GetStoreForTesting(*name);
        bool present =
            store != nullptr && store->schema().FindColumn(op.str) >= 0;
        ReferenceModel::Table* mt = model_->FindTable(*name);
        bool model_has = mt != nullptr && mt->schema.FindColumn(op.str) >= 0;
        if (present && !model_has)
          // Reconciling the model to observed post-crash state; the column
          // is known absent, so the add cannot fail.
          (void)model_->AddColumn(*name, op.str, type, max_length);
      }))
    return;
  Status ms = model_->AddColumn(*name, op.str, type, max_length);
  if (st.code() != ms.code()) {
    Fail(i, "AddColumn('" + *name + "', '" + op.str + "'): system " +
                CodeName(st.code()) + " vs model " + CodeName(ms.code()));
    return;
  }
  if (!IngestNewEntries(i)) return;
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " add_column " + *name + "." + op.str + " " +
       CodeName(st.code()));
}

void SimDriver::DoDropColumn(size_t i, const SimOp& op) {
  const std::string* name = TableName(op.table);
  if (name == nullptr) {
    Note(std::to_string(i) + " drop_column skip");
    return;
  }
  if (!CommitOpenTxn(i)) return;
  Status st = db_->DropColumn(*name, op.str);
  if (HandleIfCrashed(i, [&] {
        TableStore* store = db_->GetStoreForTesting(*name);
        bool present =
            store != nullptr && store->schema().FindColumn(op.str) >= 0;
        ReferenceModel::Table* mt = model_->FindTable(*name);
        bool model_has = mt != nullptr && mt->schema.FindColumn(op.str) >= 0;
        // Reconciling the model to observed post-crash state; the column
        // is known present, so the drop cannot fail.
        if (!present && model_has) (void)model_->DropColumn(*name, op.str);
      }))
    return;
  Status ms = model_->DropColumn(*name, op.str);
  if (st.code() != ms.code()) {
    Fail(i, "DropColumn('" + *name + "', '" + op.str + "'): system " +
                CodeName(st.code()) + " vs model " + CodeName(ms.code()));
    return;
  }
  if (!IngestNewEntries(i)) return;
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " drop_column " + *name + "." + op.str + " " +
       CodeName(st.code()));
}

void SimDriver::DoCreateIndex(size_t i, const SimOp& op) {
  const std::string* name = TableName(op.table);
  if (name == nullptr) {
    Note(std::to_string(i) + " create_index skip");
    return;
  }
  if (!CommitOpenTxn(i)) return;
  std::pair<std::string, std::string> ix{*name, op.str};
  StatusCode want =
      indexes_.count(ix) ? StatusCode::kAlreadyExists : StatusCode::kOk;
  Status st = db_->CreateIndex(*name, op.str, {"val"}, /*unique=*/false);
  if (HandleIfCrashed(i, [] {})) return;  // index set resynced from catalog
  if (st.code() != want) {
    Fail(i, "CreateIndex('" + *name + "', '" + op.str + "'): system " +
                CodeName(st.code()) + " vs predicted " + CodeName(want));
    return;
  }
  if (st.ok()) indexes_.insert(ix);
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " create_index " + *name + "." + op.str + " " +
       CodeName(st.code()));
}

void SimDriver::DoLedgerView(size_t i, const SimOp& op) {
  const std::string* name = TableName(op.table);
  if (name == nullptr) {
    Note(std::to_string(i) + " ledger_view skip");
    return;
  }
  if (!CommitOpenTxn(i)) return;
  auto sv = db_->GetLedgerView(*name);
  auto mv = model_->ExpectedLedgerView(*name);
  StatusCode sc = sv.ok() ? StatusCode::kOk : sv.status().code();
  StatusCode mc = mv.ok() ? StatusCode::kOk : mv.status().code();
  if (sc != mc) {
    Fail(i, "GetLedgerView('" + *name + "'): system " + CodeName(sc) +
                " vs model " + CodeName(mc));
    return;
  }
  if (sv.ok()) {
    if (sv->size() != mv->size()) {
      Fail(i, "ledger view '" + *name + "': system " +
                  std::to_string(sv->size()) + " rows vs model " +
                  std::to_string(mv->size()));
      return;
    }
    for (size_t j = 0; j < sv->size(); j++) {
      const LedgerViewRow& a = (*sv)[j];
      const ReferenceModel::ViewRow& b = (*mv)[j];
      if (RowToString(a.values) != RowToString(b.values) ||
          a.operation != b.operation || a.transaction_id != b.transaction_id ||
          a.sequence_number != b.sequence_number) {
        Fail(i, "ledger view '" + *name + "' row " + std::to_string(j) +
                    ": system " + RowToString(a.values) + " " + a.operation +
                    " txn " + std::to_string(a.transaction_id) + " seq " +
                    std::to_string(a.sequence_number) + " vs model " +
                    RowToString(b.values) + " " + b.operation + " txn " +
                    std::to_string(b.transaction_id) + " seq " +
                    std::to_string(b.sequence_number));
        return;
      }
    }
  }
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " ledger_view " + *name + " " + CodeName(sc) +
       (sv.ok() ? " rows=" + std::to_string(sv->size()) : ""));
}

void SimDriver::DoOpsView(size_t i) {
  if (!CommitOpenTxn(i)) return;
  auto view = db_->GetTableOperationsView();
  if (!view.ok()) {
    Fail(i, "GetTableOperationsView: " + view.status().message());
    return;
  }
  for (const std::string& name : registry_) {
    ReferenceModel::Table* mt = model_->FindTable(name);
    if (mt == nullptr) continue;
    bool found = false;
    for (const TableOperationRow& row : *view) {
      if (row.table_name == name && row.operation == "CREATE" &&
          row.table_id == mt->table_id) {
        found = true;
        break;
      }
    }
    if (!found) {
      Fail(i, "operations view missing CREATE row for '" + name + "' (id " +
                  std::to_string(mt->table_id) + ")");
      return;
    }
  }
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " ops_view rows=" + std::to_string(view->size()));
}

void SimDriver::DoDigest(size_t i) {
  if (!CommitOpenTxn(i)) return;
  auto d = db_->GenerateDigest();
  if (HandleIfCrashed(i, [] {})) return;
  if (!d.ok()) {
    Fail(i, "GenerateDigest: " + d.status().message());
    return;
  }
  if (!IngestNewEntries(i)) return;
  DatabaseDigest expected =
      model_->ExpectedDigest(db_->options().database_id, db_->create_time());
  if (d->block_id != expected.block_id ||
      !(d->block_hash == expected.block_hash) ||
      d->last_commit_ts_micros != expected.last_commit_ts_micros) {
    Fail(i, "digest mismatch: system block " + std::to_string(d->block_id) +
                " hash " + HashHex(d->block_hash) + " last_ts " +
                std::to_string(d->last_commit_ts_micros) + " vs model block " +
                std::to_string(expected.block_id) + " hash " +
                HashHex(expected.block_hash) + " last_ts " +
                std::to_string(expected.last_commit_ts_micros));
    return;
  }
  if (!(model_->last_block_hash() == ledger()->last_block_hash())) {
    Fail(i, "chain tip mismatch after digest");
    return;
  }
  trusted_.push_back(*d);
  result_.digests++;
  ProbeTxnCounter(i);
  Note(std::to_string(i) + " digest block=" + std::to_string(d->block_id) +
       " hash=" + HashHex(d->block_hash));
  SubmitDigestToPipeline(i, *d);
}

void SimDriver::DoReceipt(size_t i, const SimOp& op) {
  if (!CommitOpenTxn(i)) return;
  std::vector<const TransactionEntry*> closed;
  for (const TransactionEntry& e : model_->entries())
    if (e.block_id < model_->open_block_id()) closed.push_back(&e);
  if (closed.empty()) {
    Note(std::to_string(i) + " receipt skip");
    return;
  }
  const TransactionEntry& pick = *closed[op.arg % closed.size()];
  auto r = MakeTransactionReceipt(db_.get(), pick.txn_id);
  if (!r.ok()) {
    Fail(i, "MakeTransactionReceipt(txn " + std::to_string(pick.txn_id) +
                "): " + r.status().message());
    return;
  }
  if (!EntriesMatch(r->entry, pick, /*check_ts=*/true)) {
    Fail(i, "receipt entry for txn " + std::to_string(pick.txn_id) +
                " differs from model entry");
    return;
  }
  const BlockRecord* mb = nullptr;
  for (const BlockRecord& b : model_->blocks())
    if (b.block_id == pick.block_id) mb = &b;
  if (mb == nullptr || !(r->transactions_root == mb->transactions_root)) {
    Fail(i, "receipt transactions root mismatch for block " +
                std::to_string(pick.block_id));
    return;
  }
  if (!VerifyTransactionReceipt(*r, db_->signer())) {
    Fail(i, "receipt for txn " + std::to_string(pick.txn_id) +
                " failed offline verification");
    return;
  }
  Note(std::to_string(i) + " receipt txn=" + std::to_string(pick.txn_id) +
       " block=" + std::to_string(pick.block_id));
}

void SimDriver::DoVerify(size_t i) {
  if (!CommitOpenTxn(i)) return;
  auto report = VerifyLedger(db_.get(), trusted_);
  if (!report.ok()) {
    Fail(i, "VerifyLedger: " + report.status().message());
    return;
  }
  result_.verifications++;
  if (!report->ok()) {
    Fail(i, "verification reported violations on untampered data: " +
                report->Summary());
    return;
  }
  Note(std::to_string(i) + " verify blocks=" +
       std::to_string(report->blocks_checked) + " txns=" +
       std::to_string(report->transactions_checked) + " rows=" +
       std::to_string(report->row_versions_checked));
}

void SimDriver::DoIncrementalVerify(size_t i) {
  if (!CommitOpenTxn(i)) return;

  // Mirror the anchor union VerifyLedgerIncremental performs (watermark
  // anchor + latest durable digest, both presence-filtered), so the full
  // comparison run verifies the identical effective digest set.
  std::vector<DatabaseDigest> full_digests = trusted_;
  auto add_anchor = [&](const DatabaseDigest& d) {
    if (d.database_id != db_->options().database_id) return;
    if (!ledger()->FindBlock(d.block_id).ok()) return;
    for (const DatabaseDigest& e : full_digests)
      if (e == d) return;
    full_digests.push_back(d);
  };
  auto state = db_->GetVerificationState();
  if (state.has_value()) add_anchor(state->anchor);
  auto durable = db_->latest_durable_digest();
  if (durable.has_value()) add_anchor(*durable);

  auto inc = VerifyLedgerIncremental(db_.get(), trusted_);
  // The watermark save inside the call may consume an armed crash; the
  // report itself is still valid (saves are best-effort), but the diff is
  // skipped — recovery takes over and re-audits everything.
  if (HandleIfCrashed(i, [] {})) return;
  if (!inc.ok()) {
    Fail(i, "VerifyLedgerIncremental: " + inc.status().message());
    return;
  }
  result_.incremental_verifications++;
  if (!inc->ok()) {
    Fail(i, "incremental verification reported violations on untampered "
            "data: " +
                inc->Summary());
    return;
  }

  auto full = VerifyLedger(db_.get(), full_digests);
  if (!full.ok()) {
    Fail(i, "VerifyLedger (incremental diff): " + full.status().message());
    return;
  }
  if (!full->ok()) {
    Fail(i, "full verification disagreed with clean incremental verdict: " +
                full->Summary());
    return;
  }
  // Counter identities: the incremental run must account for exactly the
  // work the full run did — nothing double-counted, nothing dropped.
  if (full->blocks_checked != inc->blocks_checked ||
      inc->blocks_skipped + inc->blocks_reverified != inc->blocks_checked) {
    Fail(i, "incremental block accounting mismatch: full=" +
                std::to_string(full->blocks_checked) + " inc=" +
                std::to_string(inc->blocks_checked) + " skipped=" +
                std::to_string(inc->blocks_skipped) + " reverified=" +
                std::to_string(inc->blocks_reverified));
    return;
  }
  if (full->row_versions_checked !=
      inc->row_versions_checked + inc->row_versions_skipped) {
    Fail(i, "incremental row-version accounting mismatch: full=" +
                std::to_string(full->row_versions_checked) + " inc=" +
                std::to_string(inc->row_versions_checked) + "+" +
                std::to_string(inc->row_versions_skipped));
    return;
  }
  if (full->transactions_checked != inc->transactions_checked ||
      full->has_digest_coverage != inc->has_digest_coverage ||
      full->highest_digest_block != inc->highest_digest_block) {
    Fail(i, "incremental coverage mismatch: full=" + full->Summary() +
                " inc=" + inc->Summary());
    return;
  }
  Note(std::to_string(i) + " incverify watermark=" +
       std::to_string(inc->watermark_block) + " skipped_rows=" +
       std::to_string(inc->row_versions_skipped) + " fellback=" +
       std::to_string(inc->fell_back_to_full ? 1 : 0));
}

void SimDriver::DoCheckpoint(size_t i) {
  if (!CommitOpenTxn(i)) return;
  Status st = db_->Checkpoint();
  if (HandleIfCrashed(i, [] {})) return;
  if (!st.ok()) {
    Fail(i, "Checkpoint: " + st.message());
    return;
  }
  Note(std::to_string(i) + " checkpoint OK");
}

void SimDriver::DoCrash(size_t i) {
  fenv_->SimulateCrash();
  HandleIfCrashed(i, [] {});
}

void SimDriver::DoTamper(size_t i, const SimOp& op) {
  if (!CommitOpenTxn(i)) return;
  uint64_t kind = op.arg % 6;
  uint64_t sel = static_cast<uint64_t>(op.key);

  // Closed-chain state must be durably in the tables before entry/block
  // mutations can target it.
  Status drain = ledger()->DrainQueue();
  if (!drain.ok()) {
    Fail(i, "tamper drain: " + drain.message());
    return;
  }

  // The mutation, selected deterministically from model state, plus its
  // exact inverse for the revert pass.
  std::function<bool()> mutate, revert;
  std::vector<int> expect;  // acceptable violation invariants
  std::string what;

  auto pick_table = [&](bool need_history,
                        bool need_rows) -> ReferenceModel::Table* {
    std::vector<ReferenceModel::Table*> cands;
    for (const std::string& name : registry_) {
      ReferenceModel::Table* t = model_->FindTable(name);
      if (t == nullptr || t->kind == TableKind::kRegular) continue;
      if (need_rows && t->rows.empty()) continue;
      if (need_history && (t->history_table_id == 0 || t->history.empty()))
        continue;
      cands.push_back(t);
    }
    if (cands.empty()) return nullptr;
    return cands[sel % cands.size()];
  };
  auto nth_key = [&](const std::map<KeyTuple, Row, KeyTupleLess>& m,
                     uint64_t n) {
    auto it = m.begin();
    std::advance(it, static_cast<long>(n % m.size()));
    return it->first;
  };
  auto flip_cell = [&](TableStore* store, const KeyTuple& key, size_t ord) {
    Row* row = store->mutable_clustered()->MutableGet(key);
    if (row == nullptr) return false;
    Value old = (*row)[ord];
    Value now;
    if (old.is_null()) {
      now = old.type() == DataType::kVarchar ? Value::Varchar("tampered")
                                             : Value::Int(424242);
    } else if (old.type() == DataType::kVarchar) {
      std::string s = old.string_value();
      if (s.empty()) s = "x";
      else s[0] = static_cast<char>(s[0] ^ 0x1);
      now = Value::Varchar(std::move(s));
    } else if (old.type() == DataType::kInt) {
      now = Value::Int(static_cast<int32_t>(old.AsInt64() ^ 1));
    } else {
      now = Value::BigInt(old.AsInt64() ^ 1);
    }
    (*row)[ord] = now;
    revert = [store, key, ord, old] {
      Row* r = store->mutable_clustered()->MutableGet(key);
      if (r == nullptr) return false;
      (*r)[ord] = old;
      return true;
    };
    return true;
  };
  // A visible, non-key column ordinal of the table's schema.
  auto victim_ord = [&](const Schema& schema) -> int {
    std::vector<int> ords;
    for (size_t j = 0; j < schema.columns().size(); j++) {
      const ColumnDef& c = schema.column(j);
      if (c.hidden || c.dropped) continue;
      bool is_key = false;
      for (size_t k : schema.key_ordinals()) is_key |= (k == j);
      if (!is_key) ords.push_back(static_cast<int>(j));
    }
    if (ords.empty()) return -1;
    return ords[(sel >> 8) % ords.size()];
  };

  switch (kind) {
    case 0: {  // flip a live user cell
      ReferenceModel::Table* t = pick_table(false, true);
      if (t == nullptr) break;
      TableStore* store = db_->GetStoreForTesting(t->name);
      int ord = store == nullptr ? -1 : victim_ord(store->schema());
      if (ord < 0) break;
      KeyTuple key = nth_key(t->rows, sel >> 16);
      mutate = [&, store, key, ord] {
        return flip_cell(store, key, static_cast<size_t>(ord));
      };
      expect = {4, 5};
      what = "live-cell " + t->name;
      break;
    }
    case 1: {  // flip a history cell
      ReferenceModel::Table* t = pick_table(true, false);
      if (t == nullptr) break;
      TableStore* store = db_->GetStoreForTesting(t->name, /*history=*/true);
      int ord = store == nullptr ? -1 : victim_ord(store->schema());
      if (ord < 0) break;
      KeyTuple key = nth_key(t->history, sel >> 16);
      mutate = [&, store, key, ord] {
        return flip_cell(store, key, static_cast<size_t>(ord));
      };
      expect = {4, 5};
      what = "history-cell " + t->name;
      break;
    }
    case 2: {  // delete a live row (index-maintaining, so invariant 4 only)
      ReferenceModel::Table* t = pick_table(false, true);
      if (t == nullptr) break;
      TableStore* store = db_->GetStoreForTesting(t->name);
      if (store == nullptr) break;
      KeyTuple key = nth_key(t->rows, sel >> 16);
      mutate = [&, store, key] {
        const Row* row = store->Get(key);
        if (row == nullptr) return false;
        Row saved = *row;
        if (!store->Delete(key).ok()) return false;
        revert = [store, saved] { return store->Insert(saved).ok(); };
        return true;
      };
      expect = {4, 6};
      what = "row-delete " + t->name;
      break;
    }
    case 3: {  // flip a byte inside a closed entry's table_roots blob
      std::vector<const TransactionEntry*> cands;
      for (const TransactionEntry& e : model_->entries())
        if (e.block_id < model_->open_block_id() && !e.table_roots.empty())
          cands.push_back(&e);
      if (cands.empty()) break;
      const TransactionEntry& e = *cands[sel % cands.size()];
      TableStore* txns = ledger()->transactions_table_for_testing();
      KeyTuple key{Value::BigInt(static_cast<int64_t>(e.txn_id))};
      mutate = [&, txns, key] {
        Row* row = txns->mutable_clustered()->MutableGet(key);
        if (row == nullptr || (*row)[5].string_value().size() < 2)
          return false;
        Value old = (*row)[5];
        std::vector<uint8_t> bytes(old.string_value().begin(),
                                   old.string_value().end());
        bytes[1 + (sel >> 16) % (bytes.size() - 1)] ^= 0x40;
        (*row)[5] = Value::Varbinary(std::move(bytes));
        revert = [txns, key, old] {
          Row* r = txns->mutable_clustered()->MutableGet(key);
          if (r == nullptr) return false;
          (*r)[5] = old;
          return true;
        };
        return true;
      };
      expect = {3, 4};
      what = "entry-roots txn " + std::to_string(e.txn_id);
      break;
    }
    case 4:    // flip a block's previous-block hash
    case 5: {  // flip a block's transactions root
      std::vector<const BlockRecord*> cands;
      const auto& blocks = model_->blocks();
      for (size_t j = 0; j < blocks.size(); j++) {
        // For prev-hash flips the block needs a checked prev link (block 0
        // or a retained predecessor) or a successor whose link re-checks it.
        if (kind == 4 && blocks[j].block_id != 0 && j == 0 &&
            blocks.size() == 1)
          continue;
        cands.push_back(&blocks[j]);
      }
      if (cands.empty()) break;
      const BlockRecord& b = *cands[sel % cands.size()];
      TableStore* bt = ledger()->blocks_table_for_testing();
      KeyTuple key{Value::BigInt(static_cast<int64_t>(b.block_id))};
      size_t col = kind == 4 ? 1 : 2;
      mutate = [&, bt, key, col] {
        Row* row = bt->mutable_clustered()->MutableGet(key);
        if (row == nullptr) return false;
        Value old = (*row)[col];
        std::vector<uint8_t> bytes(old.string_value().begin(),
                                   old.string_value().end());
        if (bytes.empty()) return false;
        bytes[(sel >> 16) % bytes.size()] ^= 0x01;
        (*row)[col] = Value::Varbinary(std::move(bytes));
        revert = [bt, key, col, old] {
          Row* r = bt->mutable_clustered()->MutableGet(key);
          if (r == nullptr) return false;
          (*r)[col] = old;
          return true;
        };
        return true;
      };
      expect = kind == 4 ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3};
      what = (kind == 4 ? "block-prev " : "block-root ") +
             std::to_string(b.block_id);
      break;
    }
    default:
      break;
  }

  if (!mutate) {
    Note(std::to_string(i) + " tamper skip");
    return;
  }
  if (!mutate()) {
    Fail(i, "tamper target missing in system store (" + what + ")");
    return;
  }
  result_.tampers++;

  auto report = VerifyLedger(db_.get(), trusted_);
  if (!report.ok()) {
    Fail(i, "tamper verify: " + report.status().message());
    return;
  }
  bool matched = false;
  for (const Violation& v : report->violations)
    for (int e : expect) matched |= (v.invariant == e);
  if (report->ok() || !matched) {
    Fail(i, "tamper (" + what + ") not detected with expected invariant: " +
                report->Summary());
    return;
  }
  size_t nviol = report->violations.size();

  if (!revert || !revert()) {
    Fail(i, "tamper revert failed (" + what + ")");
    return;
  }
  auto clean = VerifyLedger(db_.get(), trusted_);
  if (!clean.ok()) {
    Fail(i, "post-revert verify: " + clean.status().message());
    return;
  }
  if (!(*clean).ok()) {
    Fail(i, "violations persist after exact revert (" + what + "): " +
                clean->Summary());
    return;
  }
  Note(std::to_string(i) + " tamper " + what + " violations=" +
       std::to_string(nviol) + " reverted");
}

void SimDriver::AdoptTables(size_t i,
                            const std::map<std::string, std::vector<Row>>& pre) {
  for (const std::string& name : registry_) {
    ReferenceModel::Table* mt = model_->FindTable(name);
    TableStore* main = db_->GetStoreForTesting(name);
    if (mt == nullptr || main == nullptr) {
      Fail(i, "adopt-tables: missing table '" + name + "'");
      return;
    }
    // User-visible contents must be untouched by truncation's re-stamping.
    auto it = pre.find(name);
    if (it != pre.end()) {
      auto txn = db_->Begin("sim:adopt");
      if (!txn.ok()) {
        Fail(i, "adopt-tables Begin: " + txn.status().message());
        return;
      }
      auto scan = db_->Scan(*txn, name);
      db_->Abort(*txn);
      model_->ConsumeTxnIds(1);
      if (!scan.ok()) {
        Fail(i, "adopt-tables scan '" + name + "': " + scan.status().message());
        return;
      }
      if (scan->size() != it->second.size()) {
        Fail(i, "truncation changed visible row count of '" + name +
                    "': " + std::to_string(it->second.size()) + " -> " +
                    std::to_string(scan->size()));
        return;
      }
      for (size_t j = 0; j < scan->size(); j++) {
        if (RowToString((*scan)[j]) != RowToString(it->second[j])) {
          Fail(i, "truncation changed visible row " + std::to_string(j) +
                      " of '" + name + "': " + RowToString(it->second[j]) +
                      " -> " + RowToString((*scan)[j]));
          return;
        }
      }
    }
    if (mt->kind == TableKind::kRegular) continue;
    // Adopt the system's physical rows (hidden columns were re-stamped by
    // the truncation's dummy updates).
    std::map<KeyTuple, Row, KeyTupleLess> rows, history;
    for (BTree::Iterator bit = main->Scan(); bit.Valid(); bit.Next())
      rows[bit.key()] = bit.value();
    TableStore* hist = db_->GetStoreForTesting(name, /*history=*/true);
    if (hist != nullptr)
      for (BTree::Iterator bit = hist->Scan(); bit.Valid(); bit.Next())
        history[bit.key()] = bit.value();
    model_->ReplaceTableContents(name, std::move(rows), std::move(history));
  }
}

void SimDriver::DoTruncate(size_t i, const SimOp& op) {
  if (!CommitOpenTxn(i)) return;
  uint64_t open_id = model_->open_block_id();
  if (open_id == 0 || trusted_.empty()) {
    Note(std::to_string(i) + " truncate skip");
    return;
  }
  uint64_t below = 1 + op.arg % open_id;
  // Half the time aim below the lowest live append-only anchor so the
  // truncation can actually succeed (such a row pins its block forever — it
  // can never be dummy-updated into a fresh transaction); otherwise keep the
  // raw cutoff to exercise the refusal paths.
  if ((op.arg >> 32) & 1) {
    uint64_t safe = open_id;
    for (CatalogEntry* e : db_->AllTables()) {
      if (e->is_system || e->kind != TableKind::kAppendOnly) continue;
      for (BTree::Iterator it = e->main->Scan(); it.Valid(); it.Next()) {
        const Value& start_txn = it.value()[e->ref.start_txn_ord];
        if (start_txn.is_null()) continue;
        auto entry =
            ledger()->FindEntry(static_cast<uint64_t>(start_txn.AsInt64()));
        if (entry.ok() && entry->block_id < safe) safe = entry->block_id;
      }
    }
    if (below > safe) below = safe;
    if (below == 0) {
      Note(std::to_string(i) + " truncate skip (anchored at block 0)");
      return;
    }
  }

  // Snapshot user-visible contents; truncation must not change them.
  std::map<std::string, std::vector<Row>> pre;
  for (const std::string& name : registry_) {
    auto rows = model_->Scan(name);
    if (rows.ok()) pre[name] = std::move(*rows);
  }

  auto first_block = [this]() -> uint64_t {
    uint64_t first = UINT64_MAX;  // UINT64_MAX = no closed blocks
    for (const BlockRecord& b : ledger()->AllBlocks())
      if (b.block_id < first) first = b.block_id;
    return first;
  };
  uint64_t first_before = first_block();
  Status st = TruncateLedger(db_.get(), below, trusted_);
  if (HandleIfCrashed(
          i, [&] { AdoptTables(i, pre); }, /*check_prefix=*/false))
    return;
  bool removed_blocks = st.ok() && first_block() > first_before;
  // Even a failed truncation may have committed dummy-update transactions
  // before erroring out; resync from system truth either way.
  if (!RebuildChain(i, /*check_prefix=*/false)) return;
  AdoptTables(i, pre);
  if (diverged_) return;
  ProbeTxnCounter(i);
  FullAudit(i);
  if (diverged_) return;
  if (removed_blocks) result_.truncations++;
  Note(std::to_string(i) + " truncate below=" + std::to_string(below) + " " +
       CodeName(st.code()) + (removed_blocks ? " removed" : ""));
}

// ---- Digest protection ----

bool SimDriver::SubmitDigestToPipeline(size_t i, const DatabaseDigest& d) {
  DigestUploadPipeline* p = db_->digest_pipeline();
  if (p == nullptr) return false;
  Status st = p->SubmitDigest(d);
  if (st.ok()) {
    submission_log_.push_back({d.ToJson(), d.block_id, /*accepted=*/true});
  } else if (fenv_->crashed()) {
    // Ambiguous: the append may or may not have reached the outbox log
    // before the crash. Either resolution is legal — the audit tolerates
    // both — and recovery happens in the caller's safety net.
    submission_log_.push_back({d.ToJson(), d.block_id, /*accepted=*/false});
    return false;
  } else if (st.code() == StatusCode::kBusy) {
    // Outbox full mid-outage: a deterministic drop. The next accepted
    // digest covers the whole chain, so protection resumes at recovery.
    Note(std::to_string(i) + " digest_submit rejected (outbox full)");
    return false;
  } else {
    Fail(i, "SubmitDigest: " + st.message());
    return false;
  }
  (void)p->Pump();  // honors outage state; progress is audited below
  if (fenv_->crashed()) return true;  // safety net recovers + audits
  AuditDigestStore(i);
  return true;
}

bool SimDriver::DrainPipeline(size_t i) {
  DigestUploadPipeline* p = db_->digest_pipeline();
  if (p == nullptr) return true;
  // Seeded transient faults make individual rounds fail; with zero backoff
  // every round retries, so the guard only trips on a genuine wedge.
  for (int guard = 0; guard < 100000; guard++) {
    if (fenv_->crashed()) return true;  // caller's safety net recovers
    DigestProtectionStatus s = p->status();
    if (!s.fatal.ok()) {
      Fail(i, "pipeline latched fatal during drain: " + s.fatal.ToString());
      return false;
    }
    if (s.outbox_pending == 0) return true;
    (void)p->Pump();  // retry round; convergence enforced by the guard
  }
  Fail(i, "pipeline failed to drain " +
              std::to_string(p->status().outbox_pending) + " pending digests");
  return false;
}

bool SimDriver::AuditDigestStore(size_t i) {
  DigestUploadPipeline* p = db_->digest_pipeline();
  if (p == nullptr || diverged_) return !diverged_;
  // Read the remote store directly — the audit is an out-of-band oracle,
  // not a client subject to the injected outage.
  auto all = remote_store_->ListAll();
  if (!all.ok()) {
    Fail(i, "digest store audit: ListAll: " + all.status().message());
    return false;
  }
  std::vector<std::string> pend = p->outbox()->Pending();
  std::set<std::string> pending(pend.begin(), pend.end());

  // Stored digests must be an order-preserving subset of the submission
  // log, and any accepted submission skipped over must still be pending
  // replay (crash windows legally re-queue already-uploaded digests; the
  // idempotent store absorbs the re-upload without a duplicate).
  size_t pos = 0;
  for (const DatabaseDigest& d : *all) {
    std::string json = d.ToJson();
    size_t k = pos;
    while (k < submission_log_.size() && submission_log_[k].json != json) k++;
    if (k == submission_log_.size()) {
      Fail(i, "digest store holds an unsubmitted or out-of-order digest "
              "(block " +
                  std::to_string(d.block_id) + ")");
      return false;
    }
    for (size_t s = pos; s < k; s++) {
      if (submission_log_[s].accepted && !pending.count(submission_log_[s].json)) {
        Fail(i, "accepted digest (block " +
                    std::to_string(submission_log_[s].block_id) +
                    ") missing from the store and not pending");
        return false;
      }
    }
    pos = k + 1;
  }
  for (size_t s = pos; s < submission_log_.size(); s++) {
    if (submission_log_[s].accepted && !pending.count(submission_log_[s].json)) {
      Fail(i, "accepted digest (block " +
                  std::to_string(submission_log_[s].block_id) +
                  ") neither stored nor pending");
      return false;
    }
  }
  return true;
}

void SimDriver::DoStoreOutage(size_t i, const SimOp& op) {
  bool begin = op.kind == SimOpKind::kStoreOutageBegin;
  if (faulty_store_ == nullptr || db_->digest_pipeline() == nullptr) {
    Note(std::to_string(i) + " store_outage skip");
    return;
  }
  // The generator balances begin/end, but minimized subsequences need not;
  // resolve redundant transitions as deterministic no-ops.
  if (begin == store_outage_) {
    Note(std::to_string(i) + " store_outage skip");
    return;
  }
  store_outage_ = begin;
  faulty_store_->SetOutage(begin);
  if (begin) {
    result_.store_outages++;
    Note(std::to_string(i) + " store_outage begin");
    return;
  }
  // Outage lifted: queued digests must catch up in order and the store
  // must agree with the submission log.
  if (!DrainPipeline(i)) return;
  if (fenv_->crashed()) return;  // safety net recovers + audits
  if (!AuditDigestStore(i)) return;
  Note(std::to_string(i) + " store_outage end pending=" +
       std::to_string(db_->digest_pipeline()->status().outbox_pending));
}

// ---- Deep audit ----

void SimDriver::FullAudit(size_t i) {
  if (diverged_ || txn_ != nullptr) return;
  auto r = db_->Begin("sim:audit");
  if (!r.ok()) {
    Fail(i, "audit Begin: " + r.status().message());
    return;
  }
  uint64_t mid = model_->BeginTxn("sim:audit");
  if ((*r)->id() != mid) {
    db_->Abort(*r);
    model_->AbortTxn();
    Fail(i, "audit txn id mismatch: system " + std::to_string((*r)->id()) +
                " vs model " + std::to_string(mid));
    return;
  }
  for (const std::string& name : registry_) {
    auto ss = db_->Scan(*r, name);
    auto ms = model_->Scan(name);
    if (!ss.ok() || !ms.ok()) {
      db_->Abort(*r);
      model_->AbortTxn();
      Fail(i, "audit scan '" + name + "': system " +
                  CodeName(ss.ok() ? StatusCode::kOk : ss.status().code()) +
                  " vs model " +
                  CodeName(ms.ok() ? StatusCode::kOk : ms.status().code()));
      return;
    }
    if (ss->size() != ms->size()) {
      db_->Abort(*r);
      model_->AbortTxn();
      Fail(i, "audit '" + name + "': system " + std::to_string(ss->size()) +
                  " rows vs model " + std::to_string(ms->size()));
      return;
    }
    for (size_t j = 0; j < ss->size(); j++) {
      if (RowToString((*ss)[j]) != RowToString((*ms)[j])) {
        db_->Abort(*r);
        model_->AbortTxn();
        Fail(i, "audit '" + name + "' row " + std::to_string(j) +
                    ": system " + RowToString((*ss)[j]) + " vs model " +
                    RowToString((*ms)[j]));
        return;
      }
    }
  }
  db_->Abort(*r);
  model_->AbortTxn();
  if (ledger()->open_block_id() != model_->open_block_id() ||
      ledger()->open_block_entry_count() != model_->open_entries().size() ||
      !(ledger()->last_block_hash() == model_->last_block_hash())) {
    Fail(i, "audit chain mismatch: system block " +
                std::to_string(ledger()->open_block_id()) + "+" +
                std::to_string(ledger()->open_block_entry_count()) + " tip " +
                HashHex(ledger()->last_block_hash()) + " vs model block " +
                std::to_string(model_->open_block_id()) + "+" +
                std::to_string(model_->open_entries().size()) + " tip " +
                HashHex(model_->last_block_hash()));
    return;
  }
  // Group-commit determinism: the driver commits one transaction at a time
  // with a zero linger, so every group must be a singleton. A larger group
  // here would mean group boundaries depend on scheduling — the exact
  // nondeterminism the simulator exists to rule out.
  DatabaseStats stats = db_->GetStats();
  if (stats.commit_groups != stats.group_commit_txns ||
      stats.largest_commit_group > 1) {
    Fail(i, "audit group-commit mismatch: " +
                std::to_string(stats.commit_groups) + " groups for " +
                std::to_string(stats.group_commit_txns) +
                " grouped txns (largest " +
                std::to_string(stats.largest_commit_group) + ")");
    return;
  }
  // Incremental-verification watermark vs the model's full recomputation:
  // whatever block the persisted state claims to have verified must hash,
  // when recomputed the slow obvious way from the model, to the stored
  // anchor hash. A watermark for a block the model no longer has is legal
  // staleness (crash lost the unsynced tail); the verifier's re-anchor
  // check falls back to a full pass in that case.
  auto vstate = db_->GetVerificationState();
  if (vstate.has_value()) {
    for (const BlockRecord& b : model_->blocks()) {
      if (b.block_id != vstate->last_verified_block) continue;
      if (!(b.ComputeHash() == vstate->block_hash)) {
        Fail(i, "audit watermark mismatch: state claims block " +
                    std::to_string(vstate->last_verified_block) + " hash " +
                    HashHex(vstate->block_hash) + " but model recomputes " +
                    HashHex(b.ComputeHash()));
        return;
      }
      if (vstate->anchor.block_id != vstate->last_verified_block) {
        Fail(i, "audit watermark anchor mismatch: anchored to block " +
                    std::to_string(vstate->anchor.block_id) +
                    " but watermark is " +
                    std::to_string(vstate->last_verified_block));
      }
      break;
    }
  }
}

// ---- Main loop ----

void SimDriver::ExecuteOp(size_t i, const SimOp& op) {
  if (diverged_) return;
  switch (op.kind) {
    case SimOpKind::kBegin:
      DoBegin(i, op);
      break;
    case SimOpKind::kCommit:
      if (txn_ == nullptr) {
        Note(std::to_string(i) + " commit skip");
        break;
      }
      CommitOpenTxn(i);
      break;
    case SimOpKind::kAbort:
      if (txn_ == nullptr) {
        Note(std::to_string(i) + " abort skip");
        break;
      }
      db_->Abort(txn_);
      txn_ = nullptr;
      model_->AbortTxn();
      Note(std::to_string(i) + " abort");
      break;
    case SimOpKind::kInsert:
    case SimOpKind::kUpdate:
    case SimOpKind::kDelete:
    case SimOpKind::kGet:
    case SimOpKind::kScan:
      DoDml(i, op);
      break;
    case SimOpKind::kSavepoint:
      DoSavepoint(i, op);
      break;
    case SimOpKind::kRollbackToSave:
      DoRollbackToSave(i, op);
      break;
    case SimOpKind::kCreateTable:
      DoCreateTable(i, op);
      break;
    case SimOpKind::kAddColumn:
      DoAddColumn(i, op);
      break;
    case SimOpKind::kDropColumn:
      DoDropColumn(i, op);
      break;
    case SimOpKind::kCreateIndex:
      DoCreateIndex(i, op);
      break;
    case SimOpKind::kLedgerView:
      DoLedgerView(i, op);
      break;
    case SimOpKind::kOpsView:
      DoOpsView(i);
      break;
    case SimOpKind::kDigest:
      DoDigest(i);
      break;
    case SimOpKind::kReceipt:
      DoReceipt(i, op);
      break;
    case SimOpKind::kVerify:
      DoVerify(i);
      break;
    case SimOpKind::kIncrementalVerify:
      DoIncrementalVerify(i);
      break;
    case SimOpKind::kCheckpoint:
      DoCheckpoint(i);
      break;
    case SimOpKind::kCrash:
      DoCrash(i);
      break;
    case SimOpKind::kArmCrash:
      fenv_->CrashAtSync(static_cast<int>(op.arg));
      Note(std::to_string(i) + " arm_crash " + std::to_string(op.arg));
      break;
    case SimOpKind::kTamper:
      DoTamper(i, op);
      break;
    case SimOpKind::kTruncate:
      DoTruncate(i, op);
      break;
    case SimOpKind::kStoreOutageBegin:
    case SimOpKind::kStoreOutageEnd:
      DoStoreOutage(i, op);
      break;
  }
}

SimResult SimDriver::Run(const std::vector<SimOp>& trace) {
  Status st = Setup();
  if (!st.ok()) {
    result_.ok = false;
    if (result_.message.empty()) result_.message = "setup: " + st.message();
    result_.outcome_fingerprint = Sha256::Digest(Slice(log_)).ToHex();
    return result_;
  }
  for (size_t i = 0; i < trace.size() && !diverged_; i++) {
    ExecuteOp(i, trace[i]);
    // Safety net: an armed crash can fire inside any handler; by here every
    // handler has finished its own resolution, so a still-crashed env means
    // a generic recover is due.
    if (!diverged_ && fenv_->crashed()) HandleIfCrashed(i, [] {});
    if (!diverged_ && txn_ == nullptr && config_.audit_interval > 0 &&
        (i + 1) % config_.audit_interval == 0)
      FullAudit(i);
    if (!diverged_ && txn_ == nullptr && config_.verify_interval > 0 &&
        (i + 1) % config_.verify_interval == 0)
      DoVerify(i);
  }

  // Epilogue: disarm pending crashes, settle the open transaction, then
  // take the final digest + full verification the fingerprint is built on.
  size_t end = trace.size();
  if (!diverged_) {
    fenv_->CrashAtSync(-1);
    CommitOpenTxn(end);
  }
  bool final_submitted = false;
  if (!diverged_) {
    auto d = db_->GenerateDigest();
    if (!d.ok()) {
      Fail(end, "final digest: " + d.status().message());
    } else if (IngestNewEntries(end)) {
      DatabaseDigest expected = model_->ExpectedDigest(
          db_->options().database_id, db_->create_time());
      if (d->block_id != expected.block_id ||
          !(d->block_hash == expected.block_hash)) {
        Fail(end, "final digest mismatch: system block " +
                      std::to_string(d->block_id) + " hash " +
                      HashHex(d->block_hash) + " vs model block " +
                      std::to_string(expected.block_id) + " hash " +
                      HashHex(expected.block_hash));
      } else {
        trusted_.push_back(*d);
        result_.digests++;
        result_.final_digest_hex =
            std::to_string(d->block_id) + ":" + HashHex(d->block_hash);
        ProbeTxnCounter(end);
        final_submitted = SubmitDigestToPipeline(end, *d);
      }
    }
  }
  // Settle digest protection: lift any outage the trace left open, drain
  // the outbox, re-audit, and — when the final digest made it into the
  // outbox — assert staleness fell back to zero.
  if (!diverged_ && db_->digest_pipeline() != nullptr) {
    if (store_outage_) {
      store_outage_ = false;
      faulty_store_->SetOutage(false);
      Note("epilogue store_outage end");
    }
    if (DrainPipeline(end) && AuditDigestStore(end) && final_submitted) {
      DigestProtectionStatus s = db_->digest_pipeline()->status();
      if (!s.fully_protected())
        Fail(end, "digest protection did not catch up: " + s.ToString());
    }
  }
  if (!diverged_) DoVerify(end);
  if (!diverged_) DoIncrementalVerify(end);
  if (!diverged_) FullAudit(end);

  result_.ok = !diverged_;
  result_.outcome_fingerprint = Sha256::Digest(Slice(log_)).ToHex();
  // Observability determinism check (DESIGN.md §13): under the pinned
  // metrics clock, the final metrics snapshot and trace export must replay
  // byte-for-byte for the same seed, just like the outcome log.
  if (db_ != nullptr) {
    std::string obs = MetricsToJson(db_->MetricsSnapshot()).Dump();
    obs += db_->tracer()->ToChromeJson().Dump();
    result_.metrics_fingerprint = Sha256::Digest(Slice(obs)).ToHex();
  }
  return result_;
}

// ---- Free functions ----

SimResult RunTrace(const SimConfig& config, const std::vector<SimOp>& trace) {
  SimDriver driver(config);
  return driver.Run(trace);
}

SimResult RunSim(const SimConfig& config) {
  return RunTrace(config, GenerateTrace(config.seed, config.gen));
}

std::vector<SimOp> MinimizeTrace(const SimConfig& config,
                                 std::vector<SimOp> trace) {
  if (RunTrace(config, trace).ok) return trace;
  size_t chunk = trace.size() / 2;
  while (chunk >= 1) {
    bool removed_any = false;
    size_t i = 0;
    while (i < trace.size()) {
      std::vector<SimOp> candidate;
      candidate.reserve(trace.size());
      candidate.insert(candidate.end(), trace.begin(),
                       trace.begin() + static_cast<long>(i));
      size_t hi = std::min(trace.size(), i + chunk);
      candidate.insert(candidate.end(),
                       trace.begin() + static_cast<long>(hi), trace.end());
      if (candidate.size() < trace.size() &&
          !RunTrace(config, candidate).ok) {
        trace = std::move(candidate);
        removed_any = true;
        // keep i: the next chunk slid into place
      } else {
        i += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (!removed_any) chunk /= 2;
  }
  return trace;
}

}  // namespace sim
}  // namespace sqlledger
