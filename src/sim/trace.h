// Simulator operation traces. A trace is the unit of reproduction: the
// generator derives one deterministically from (seed, config), the driver
// replays it against both the real system and the reference model, and on
// divergence the minimizer shrinks it to the smallest op subsequence that
// still reproduces. Ops carry only generation-time decisions — everything
// resolved at execution time (keys that turn out missing, crash points that
// never fire) is handled by deterministic no-op rules in the driver, which
// is what makes arbitrary subsequences of a trace safe to replay.

#ifndef SQLLEDGER_SIM_TRACE_H_
#define SQLLEDGER_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqlledger {
namespace sim {

enum class SimOpKind : uint8_t {
  kBegin = 0,        // start a user transaction
  kCommit,           // commit the open transaction
  kAbort,            // abort the open transaction
  kInsert,           // table, key, str=payload
  kUpdate,           // table, key, str=payload
  kDelete,           // table, key
  kGet,              // table, key
  kScan,             // table
  kSavepoint,        // str=name
  kRollbackToSave,   // str=name
  kCreateTable,      // str=name, arg=TableKind
  kAddColumn,        // table, str=column name
  kDropColumn,       // table, str=column name
  kCreateIndex,      // table, str=index name
  kLedgerView,       // table
  kOpsView,          // table-operations audit view
  kDigest,           // generate + trust a database digest
  kReceipt,          // arg picks a committed txn in a closed block
  kVerify,           // full VerifyLedger cross-check
  kCheckpoint,       // durability checkpoint
  kCrash,            // immediate simulated crash + recover
  kArmCrash,         // arg = sync-countdown until crash fires
  kTamper,           // arg=mutation kind selector, key=target selector
  kTruncate,         // arg selects the cutoff below the newest closed block
  kStoreOutageBegin, // the remote digest store becomes unreachable
  kStoreOutageEnd,   // the outage lifts; queued digests catch up
  kIncrementalVerify,// VerifyLedgerIncremental diffed against full verify
};

const char* SimOpKindName(SimOpKind kind);

struct SimOp {
  SimOpKind kind = SimOpKind::kBegin;
  uint32_t table = 0;  // index into the driver's table registry
  int64_t key = 0;
  uint64_t arg = 0;
  std::string str;

  std::string ToString() const;
};

/// One op per line, prefixed with its index in the trace.
std::string FormatTrace(const std::vector<SimOp>& ops);

}  // namespace sim
}  // namespace sqlledger

#endif  // SQLLEDGER_SIM_TRACE_H_
