#include "sim/trace.h"

namespace sqlledger {
namespace sim {

const char* SimOpKindName(SimOpKind kind) {
  switch (kind) {
    case SimOpKind::kBegin: return "BEGIN";
    case SimOpKind::kCommit: return "COMMIT";
    case SimOpKind::kAbort: return "ABORT";
    case SimOpKind::kInsert: return "INSERT";
    case SimOpKind::kUpdate: return "UPDATE";
    case SimOpKind::kDelete: return "DELETE";
    case SimOpKind::kGet: return "GET";
    case SimOpKind::kScan: return "SCAN";
    case SimOpKind::kSavepoint: return "SAVEPOINT";
    case SimOpKind::kRollbackToSave: return "ROLLBACK_TO";
    case SimOpKind::kCreateTable: return "CREATE_TABLE";
    case SimOpKind::kAddColumn: return "ADD_COLUMN";
    case SimOpKind::kDropColumn: return "DROP_COLUMN";
    case SimOpKind::kCreateIndex: return "CREATE_INDEX";
    case SimOpKind::kLedgerView: return "LEDGER_VIEW";
    case SimOpKind::kOpsView: return "OPS_VIEW";
    case SimOpKind::kDigest: return "DIGEST";
    case SimOpKind::kReceipt: return "RECEIPT";
    case SimOpKind::kVerify: return "VERIFY";
    case SimOpKind::kCheckpoint: return "CHECKPOINT";
    case SimOpKind::kCrash: return "CRASH";
    case SimOpKind::kArmCrash: return "ARM_CRASH";
    case SimOpKind::kTamper: return "TAMPER";
    case SimOpKind::kTruncate: return "TRUNCATE";
    case SimOpKind::kStoreOutageBegin: return "STORE_OUTAGE_BEGIN";
    case SimOpKind::kStoreOutageEnd: return "STORE_OUTAGE_END";
    case SimOpKind::kIncrementalVerify: return "INCREMENTAL_VERIFY";
  }
  return "UNKNOWN";
}

std::string SimOp::ToString() const {
  std::string out = SimOpKindName(kind);
  out += " table=" + std::to_string(table);
  out += " key=" + std::to_string(key);
  out += " arg=" + std::to_string(arg);
  if (!str.empty()) out += " str=" + str;
  return out;
}

std::string FormatTrace(const std::vector<SimOp>& ops) {
  std::string out;
  for (size_t i = 0; i < ops.size(); i++) {
    out += "  [" + std::to_string(i) + "] " + ops[i].ToString() + "\n";
  }
  return out;
}

}  // namespace sim
}  // namespace sqlledger
