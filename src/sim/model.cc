#include "sim/model.h"

#include <algorithm>

#include "crypto/merkle.h"
#include "ledger/row_serializer.h"

namespace sqlledger {
namespace sim {

Hash256 NaiveMerkleRoot(std::vector<Hash256> leaves) {
  if (leaves.empty()) return Hash256{};
  while (leaves.size() > 1) {
    std::vector<Hash256> next;
    for (size_t i = 0; i < leaves.size(); i += 2) {
      if (i + 1 < leaves.size()) {
        next.push_back(MerkleNodeHash(leaves[i], leaves[i + 1]));
      } else {
        next.push_back(leaves[i]);  // lone node promoted unchanged
      }
    }
    leaves = std::move(next);
  }
  return leaves[0];
}

// ---- Tables ----

Status ReferenceModel::CreateTable(const std::string& name,
                                   const Schema& user_schema,
                                   TableKind kind) {
  if (by_name_.count(name))
    return Status::AlreadyExists("table '" + name + "' already exists");
  auto t = std::make_unique<Table>();
  t->name = name;
  t->kind = kind;
  t->table_id = next_table_id_++;
  // Re-derive the full physical schema the plain way: user columns, then
  // the hidden ledger pair(s), in declaration order.
  t->schema = user_schema;
  if (kind != TableKind::kRegular) {
    t->schema.AddColumn(kColStartTxn, DataType::kBigInt, true, 0, true);
    t->schema.AddColumn(kColStartSeq, DataType::kBigInt, true, 0, true);
    if (kind == TableKind::kUpdateable) {
      t->schema.AddColumn(kColEndTxn, DataType::kBigInt, true, 0, true);
      t->schema.AddColumn(kColEndSeq, DataType::kBigInt, true, 0, true);
    }
  }
  if (kind == TableKind::kUpdateable) {
    t->history_table_id = next_table_id_++;
    t->history_schema = t->schema;
    int end_txn = t->history_schema.FindColumn(kColEndTxn);
    int end_seq = t->history_schema.FindColumn(kColEndSeq);
    t->history_schema.SetPrimaryKey(
        {static_cast<size_t>(end_txn), static_cast<size_t>(end_seq)});
  }
  by_name_[name] = t->table_id;
  tables_[t->table_id] = std::move(t);
  return Status::OK();
}

Status ReferenceModel::AddColumn(const std::string& name,
                                 const std::string& column, DataType type,
                                 uint32_t max_length) {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table '" + name + "' not found");
  if (t->schema.FindColumn(column) >= 0)
    return Status::AlreadyExists("column '" + column + "' already exists");
  t->schema.AddColumn(column, type, /*nullable=*/true, max_length);
  for (auto& [key, row] : t->rows) row.push_back(Value::Null(type));
  if (t->history_table_id != 0) {
    t->history_schema.AddColumn(column, type, true, max_length);
    for (auto& [key, row] : t->history) row.push_back(Value::Null(type));
  }
  return Status::OK();
}

Status ReferenceModel::DropColumn(const std::string& name,
                                  const std::string& column) {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table '" + name + "' not found");
  int ord = t->schema.FindColumn(column);
  if (ord < 0) return Status::NotFound("column '" + column + "' not found");
  if (t->schema.column(ord).hidden)
    return Status::InvalidArgument("cannot drop a system column");
  for (size_t key_ord : t->schema.key_ordinals()) {
    if (static_cast<int>(key_ord) == ord)
      return Status::InvalidArgument("cannot drop a primary-key column");
  }
  t->schema.mutable_column(ord)->dropped = true;
  if (t->history_table_id != 0) {
    int h = t->history_schema.FindColumn(column);
    if (h >= 0) t->history_schema.mutable_column(h)->dropped = true;
  }
  return Status::OK();
}

ReferenceModel::Table* ReferenceModel::FindTable(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return tables_.at(it->second).get();
}

ReferenceModel::Table* ReferenceModel::FindTableById(uint32_t table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

void ReferenceModel::RemoveTable(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return;
  tables_.erase(it->second);
  by_name_.erase(it);
}

// ---- Transactions ----

uint64_t ReferenceModel::BeginTxn(const std::string& user) {
  txn_ = std::make_unique<Txn>();
  txn_->id = next_txn_id_++;
  txn_->user = user;
  return txn_->id;
}

std::map<KeyTuple, Row, KeyTupleLess>* ReferenceModel::ResolveStore(
    uint32_t table_id, bool history) {
  Table* t = FindTableById(table_id);
  if (t == nullptr) return nullptr;
  return history ? &t->history : &t->rows;
}

Status ReferenceModel::Insert(const std::string& table, const Row& user_row) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table '" + table + "' not found");
  auto padded = t->schema.PadRow(user_row);
  if (!padded.ok()) return padded.status();
  Row full = std::move(*padded);

  if (t->kind == TableKind::kRegular) {
    KeyTuple key = t->schema.ExtractKey(full);
    if (t->rows.count(key))
      return Status::AlreadyExists("duplicate primary key");
    t->rows[key] = full;
    txn_->undo.push_back({UndoRec::Kind::kInsert, t->table_id, false, key, {}});
    txn_->op_count++;
    return Status::OK();
  }

  // The sequence number is consumed before the duplicate check, exactly as
  // the production DML layer does (store insert fails after NextSequence).
  uint64_t seq = txn_->next_seq++;
  int start_txn = t->schema.FindColumn(kColStartTxn);
  int start_seq = t->schema.FindColumn(kColStartSeq);
  full[start_txn] = Value::BigInt(static_cast<int64_t>(txn_->id));
  full[start_seq] = Value::BigInt(static_cast<int64_t>(seq));
  KeyTuple key = t->schema.ExtractKey(full);
  if (t->rows.count(key)) return Status::AlreadyExists("duplicate primary key");
  t->rows[key] = full;
  txn_->undo.push_back({UndoRec::Kind::kInsert, t->table_id, false, key, {}});
  txn_->op_count++;
  txn_->leaves[t->table_id].push_back(RowVersionLeafHash(
      t->schema, full, RowOp::kInsert, t->table_id, txn_->id, seq));
  return Status::OK();
}

Status ReferenceModel::Update(const std::string& table, const Row& user_row) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table '" + table + "' not found");
  if (t->kind == TableKind::kAppendOnly)
    return Status::NotSupported(
        "UPDATE is not allowed on append-only ledger tables");
  auto padded = t->schema.PadRow(user_row);
  if (!padded.ok()) return padded.status();
  Row full = std::move(*padded);
  KeyTuple key = t->schema.ExtractKey(full);
  auto it = t->rows.find(key);
  if (it == t->rows.end()) return Status::NotFound("row not found");

  if (t->kind == TableKind::kRegular) {
    Row old_row = it->second;
    it->second = full;
    txn_->undo.push_back(
        {UndoRec::Kind::kUpdate, t->table_id, false, key, old_row});
    txn_->op_count++;
    return Status::OK();
  }

  Row old_row = it->second;
  int start_txn = t->schema.FindColumn(kColStartTxn);
  int start_seq = t->schema.FindColumn(kColStartSeq);
  int end_txn = t->schema.FindColumn(kColEndTxn);
  int end_seq = t->schema.FindColumn(kColEndSeq);

  // Retire the old version into history (delete half of the update)...
  uint64_t seq_del = txn_->next_seq++;
  Row retired = old_row;
  retired[end_txn] = Value::BigInt(static_cast<int64_t>(txn_->id));
  retired[end_seq] = Value::BigInt(static_cast<int64_t>(seq_del));
  KeyTuple hkey = t->history_schema.ExtractKey(retired);
  t->history[hkey] = retired;
  txn_->undo.push_back({UndoRec::Kind::kInsert, t->table_id, true, hkey, {}});
  txn_->op_count++;

  // ...then install the new version.
  uint64_t seq_ins = txn_->next_seq++;
  full[start_txn] = Value::BigInt(static_cast<int64_t>(txn_->id));
  full[start_seq] = Value::BigInt(static_cast<int64_t>(seq_ins));
  it->second = full;
  txn_->undo.push_back(
      {UndoRec::Kind::kUpdate, t->table_id, false, key, old_row});
  txn_->op_count++;

  auto& leaves = txn_->leaves[t->table_id];
  leaves.push_back(RowVersionLeafHash(t->schema, retired, RowOp::kDelete,
                                      t->table_id, txn_->id, seq_del));
  leaves.push_back(RowVersionLeafHash(t->schema, full, RowOp::kInsert,
                                      t->table_id, txn_->id, seq_ins));
  return Status::OK();
}

Status ReferenceModel::Delete(const std::string& table, const KeyTuple& key) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("table '" + table + "' not found");
  if (t->kind == TableKind::kAppendOnly)
    return Status::NotSupported(
        "DELETE is not allowed on append-only ledger tables");
  auto it = t->rows.find(key);
  if (it == t->rows.end()) return Status::NotFound("row not found");

  if (t->kind == TableKind::kRegular) {
    Row old_row = it->second;
    t->rows.erase(it);
    txn_->undo.push_back(
        {UndoRec::Kind::kDelete, t->table_id, false, key, old_row});
    txn_->op_count++;
    return Status::OK();
  }

  Row old_row = it->second;
  int end_txn = t->schema.FindColumn(kColEndTxn);
  int end_seq = t->schema.FindColumn(kColEndSeq);
  uint64_t seq = txn_->next_seq++;
  Row retired = old_row;
  retired[end_txn] = Value::BigInt(static_cast<int64_t>(txn_->id));
  retired[end_seq] = Value::BigInt(static_cast<int64_t>(seq));

  t->rows.erase(it);
  txn_->undo.push_back(
      {UndoRec::Kind::kDelete, t->table_id, false, key, old_row});
  txn_->op_count++;
  KeyTuple hkey = t->history_schema.ExtractKey(retired);
  t->history[hkey] = retired;
  txn_->undo.push_back({UndoRec::Kind::kInsert, t->table_id, true, hkey, {}});
  txn_->op_count++;

  txn_->leaves[t->table_id].push_back(RowVersionLeafHash(
      t->schema, retired, RowOp::kDelete, t->table_id, txn_->id, seq));
  return Status::OK();
}

Row ReferenceModel::VisibleProjection(const Table& t, const Row& full) const {
  Row out;
  for (size_t ord : t.schema.VisibleOrdinals()) out.push_back(full[ord]);
  return out;
}

Result<Row> ReferenceModel::Get(const std::string& table,
                                const KeyTuple& key) const {
  auto it = by_name_.find(table);
  if (it == by_name_.end())
    return Status::NotFound("table '" + table + "' not found");
  const Table& t = *tables_.at(it->second);
  auto row = t.rows.find(key);
  if (row == t.rows.end()) return Status::NotFound("row not found");
  return VisibleProjection(t, row->second);
}

Result<std::vector<Row>> ReferenceModel::Scan(const std::string& table) const {
  auto it = by_name_.find(table);
  if (it == by_name_.end())
    return Status::NotFound("table '" + table + "' not found");
  const Table& t = *tables_.at(it->second);
  std::vector<Row> out;
  for (const auto& [key, row] : t.rows)
    out.push_back(VisibleProjection(t, row));
  return out;
}

Status ReferenceModel::Savepoint(const std::string& name) {
  if (txn_ == nullptr) return Status::InvalidArgument("transaction not active");
  SavepointRec sp;
  sp.name = name;
  sp.undo_size = txn_->undo.size();
  sp.op_count = txn_->op_count;
  sp.next_seq = txn_->next_seq;
  for (const auto& [table_id, leaves] : txn_->leaves)
    sp.leaf_sizes[table_id] = leaves.size();
  txn_->savepoints.push_back(std::move(sp));
  return Status::OK();
}

Status ReferenceModel::RollbackToSavepoint(const std::string& name) {
  if (txn_ == nullptr) return Status::InvalidArgument("transaction not active");
  int found = -1;
  for (int i = static_cast<int>(txn_->savepoints.size()) - 1; i >= 0; i--) {
    if (txn_->savepoints[i].name == name) {
      found = i;
      break;
    }
  }
  if (found < 0) return Status::NotFound("savepoint '" + name + "' not found");
  SavepointRec& sp = txn_->savepoints[found];
  ApplyUndo(sp.undo_size);
  txn_->op_count = sp.op_count;
  txn_->next_seq = sp.next_seq;
  for (auto it = txn_->leaves.begin(); it != txn_->leaves.end();) {
    auto size_it = sp.leaf_sizes.find(it->first);
    if (size_it == sp.leaf_sizes.end()) {
      it = txn_->leaves.erase(it);
    } else {
      it->second.resize(size_it->second);
      ++it;
    }
  }
  txn_->savepoints.resize(static_cast<size_t>(found) + 1);
  return Status::OK();
}

void ReferenceModel::ApplyUndo(size_t from) {
  while (txn_->undo.size() > from) {
    UndoRec& u = txn_->undo.back();
    auto* store = ResolveStore(u.table_id, u.history);
    if (store != nullptr) {
      switch (u.kind) {
        case UndoRec::Kind::kInsert:
          store->erase(u.key);
          break;
        case UndoRec::Kind::kUpdate:
        case UndoRec::Kind::kDelete:
          (*store)[u.key] = u.old_row;
          break;
      }
    }
    txn_->undo.pop_back();
  }
}

void ReferenceModel::AbortTxn() {
  if (txn_ == nullptr) return;
  ApplyUndo(0);
  txn_.reset();
}

ReferenceModel::CommitOutcome ReferenceModel::PrepareCommit(
    int64_t commit_ts) {
  CommitOutcome out;
  if (txn_ == nullptr || txn_->op_count == 0) return out;
  out.has_entry = true;
  out.entry.txn_id = txn_->id;
  out.entry.block_id = chain_.open_block_id;
  out.entry.block_ordinal = chain_.next_ordinal;
  out.entry.commit_ts_micros = commit_ts;
  out.entry.user_name = txn_->user;
  for (const auto& [table_id, leaves] : txn_->leaves) {
    if (leaves.empty()) continue;  // fully rolled back
    std::vector<Hash256> ordered = leaves;
    if (config_.break_hash_order)
      std::reverse(ordered.begin(), ordered.end());
    out.entry.table_roots.emplace_back(table_id,
                                       NaiveMerkleRoot(std::move(ordered)));
  }
  return out;
}

void ReferenceModel::FinalizeCommit() { txn_.reset(); }

void ReferenceModel::UndoCommit() {
  if (txn_ == nullptr) return;
  ApplyUndo(0);
  txn_.reset();
}

// ---- Chain ----

Status ReferenceModel::OnEntryAppended(const TransactionEntry& entry) {
  if (entry.block_id != chain_.open_block_id)
    return Status::Internal(
        "model: entry for block " + std::to_string(entry.block_id) +
        " but open block is " + std::to_string(chain_.open_block_id));
  if (entry.block_ordinal != chain_.next_ordinal)
    return Status::Internal(
        "model: entry ordinal " + std::to_string(entry.block_ordinal) +
        " but next expected is " + std::to_string(chain_.next_ordinal));
  chain_.last_commit_ts = entry.commit_ts_micros;
  chain_.entries.push_back(entry);
  chain_.open_entries.push_back(entry);
  chain_.next_ordinal++;
  if (chain_.open_entries.size() >= config_.block_size) CloseBlock();
  return Status::OK();
}

Hash256 ReferenceModel::ExpectedBlockRoot(
    const std::vector<TransactionEntry>& entries) const {
  std::vector<Hash256> leaves;
  leaves.reserve(entries.size());
  for (const TransactionEntry& e : entries) leaves.push_back(e.LeafHash());
  return NaiveMerkleRoot(std::move(leaves));
}

void ReferenceModel::CloseBlock() {
  BlockRecord block;
  block.block_id = chain_.open_block_id;
  block.previous_block_hash = chain_.last_block_hash;
  block.transactions_root = ExpectedBlockRoot(chain_.open_entries);
  block.transaction_count = chain_.open_entries.size();
  block.closed_ts_micros = chain_.open_entries.empty()
                               ? 0
                               : chain_.open_entries.back().commit_ts_micros;
  chain_.last_block_hash = block.ComputeHash();
  chain_.blocks.push_back(std::move(block));
  chain_.open_block_id++;
  chain_.next_ordinal = 0;
  chain_.open_entries.clear();
}

DatabaseDigest ReferenceModel::ExpectedDigest(const std::string& database_id,
                                              const std::string& create_time) {
  if (!chain_.open_entries.empty() || chain_.blocks.empty()) CloseBlock();
  DatabaseDigest digest;
  digest.database_id = database_id;
  digest.database_create_time = create_time;
  digest.block_id = chain_.open_block_id - 1;
  digest.block_hash = chain_.last_block_hash;
  digest.last_commit_ts_micros = chain_.last_commit_ts;
  return digest;
}

ReferenceModel::ChainState ReferenceModel::GetChainState() const {
  return chain_;
}

void ReferenceModel::SetChainState(ChainState state) {
  chain_ = std::move(state);
}

void ReferenceModel::TruncateChainBelow(uint64_t below_block) {
  auto& entries = chain_.entries;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const TransactionEntry& e) {
                                 return e.block_id < below_block;
                               }),
                entries.end());
  auto& blocks = chain_.blocks;
  blocks.erase(std::remove_if(blocks.begin(), blocks.end(),
                              [&](const BlockRecord& b) {
                                return b.block_id < below_block;
                              }),
               blocks.end());
}

void ReferenceModel::ReplaceTableContents(
    const std::string& name, std::map<KeyTuple, Row, KeyTupleLess> rows,
    std::map<KeyTuple, Row, KeyTupleLess> history) {
  Table* t = FindTable(name);
  if (t == nullptr) return;
  t->rows = std::move(rows);
  t->history = std::move(history);
}

// ---- Derived expectations ----

Result<std::vector<ReferenceModel::ViewRow>>
ReferenceModel::ExpectedLedgerView(const std::string& table) const {
  auto it = by_name_.find(table);
  if (it == by_name_.end())
    return Status::NotFound("table '" + table + "' not found");
  const Table& t = *tables_.at(it->second);
  if (t.kind == TableKind::kRegular)
    return Status::InvalidArgument("table is not a ledger table");

  int start_txn = t.schema.FindColumn(kColStartTxn);
  int start_seq = t.schema.FindColumn(kColStartSeq);
  int end_txn = t.schema.FindColumn(kColEndTxn);
  int end_seq = t.schema.FindColumn(kColEndSeq);

  std::vector<ViewRow> out;
  auto append_ops = [&](const Row& row, bool include_delete) {
    if (!row[start_txn].is_null()) {
      ViewRow v;
      v.values = VisibleProjection(t, row);
      v.operation = "INSERT";
      v.transaction_id = static_cast<uint64_t>(row[start_txn].AsInt64());
      v.sequence_number = static_cast<uint64_t>(row[start_seq].AsInt64());
      out.push_back(std::move(v));
    }
    if (include_delete && end_txn >= 0 && !row[end_txn].is_null()) {
      ViewRow v;
      v.values = VisibleProjection(t, row);
      v.operation = "DELETE";
      v.transaction_id = static_cast<uint64_t>(row[end_txn].AsInt64());
      v.sequence_number = static_cast<uint64_t>(row[end_seq].AsInt64());
      out.push_back(std::move(v));
    }
  };
  for (const auto& [key, row] : t.rows) append_ops(row, false);
  for (const auto& [key, row] : t.history) append_ops(row, true);
  std::sort(out.begin(), out.end(), [](const ViewRow& a, const ViewRow& b) {
    if (a.transaction_id != b.transaction_id)
      return a.transaction_id < b.transaction_id;
    return a.sequence_number < b.sequence_number;
  });
  return out;
}

}  // namespace sim
}  // namespace sqlledger
