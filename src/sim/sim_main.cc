// sim_harness: command-line front end for the deterministic differential
// simulator. `sim_harness --seed=N --ops=M` replays the seeded trace against
// the real database and the reference model; on divergence it prints the
// seed, the failing op and a minimized reproduction trace, and exits 1.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/driver.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--ops=N] [--dir=PATH] [--block-size=N]\n"
               "          [--audit-interval=N] [--verify-interval=N]\n"
               "          [--no-crash] [--no-tamper] [--no-ddl] "
               "[--no-truncate]\n"
               "          [--break-hash-order] [--no-minimize] "
               "[--print-trace]\n",
               argv0);
}

bool ParseU64(const char* arg, const char* flag, uint64_t* out) {
  size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = std::strtoull(arg + n + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sqlledger::sim::SimConfig config;
  config.gen.ops = 1000;
  bool minimize = true;
  bool print_trace = false;
  uint64_t u = 0;

  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (ParseU64(a, "--seed", &u)) {
      config.seed = u;
    } else if (ParseU64(a, "--ops", &u)) {
      config.gen.ops = static_cast<size_t>(u);
    } else if (ParseU64(a, "--block-size", &u)) {
      config.block_size = u;
    } else if (ParseU64(a, "--audit-interval", &u)) {
      config.audit_interval = static_cast<size_t>(u);
    } else if (ParseU64(a, "--verify-interval", &u)) {
      config.verify_interval = static_cast<size_t>(u);
    } else if (std::strncmp(a, "--dir=", 6) == 0) {
      config.data_dir = a + 6;
    } else if (std::strcmp(a, "--no-crash") == 0) {
      config.gen.enable_crash = false;
    } else if (std::strcmp(a, "--no-tamper") == 0) {
      config.gen.enable_tamper = false;
    } else if (std::strcmp(a, "--no-ddl") == 0) {
      config.gen.enable_ddl = false;
    } else if (std::strcmp(a, "--no-truncate") == 0) {
      config.gen.enable_truncate = false;
    } else if (std::strcmp(a, "--break-hash-order") == 0) {
      config.break_hash_order = true;
    } else if (std::strcmp(a, "--no-minimize") == 0) {
      minimize = false;
    } else if (std::strcmp(a, "--print-trace") == 0) {
      print_trace = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (config.data_dir.empty())
    config.data_dir = "/tmp/sqlledger_sim_" + std::to_string(config.seed);

  std::vector<sqlledger::sim::SimOp> trace =
      sqlledger::sim::GenerateTrace(config.seed, config.gen);
  if (print_trace)
    std::fputs(sqlledger::sim::FormatTrace(trace).c_str(), stdout);

  sqlledger::sim::SimResult result =
      sqlledger::sim::RunTrace(config, trace);
  std::printf("seed=%llu ops=%zu %s\n",
              static_cast<unsigned long long>(config.seed), trace.size(),
              result.Summary().c_str());
  if (result.ok) return 0;

  std::printf("--- reproduce: %s --seed=%llu --ops=%zu%s%s%s%s%s ---\n",
              argv[0], static_cast<unsigned long long>(config.seed),
              config.gen.ops,
              config.gen.enable_crash ? "" : " --no-crash",
              config.gen.enable_tamper ? "" : " --no-tamper",
              config.gen.enable_ddl ? "" : " --no-ddl",
              config.gen.enable_truncate ? "" : " --no-truncate",
              config.break_hash_order ? " --break-hash-order" : "");
  if (minimize) {
    std::vector<sqlledger::sim::SimOp> shrunk =
        sqlledger::sim::MinimizeTrace(config, trace);
    std::printf("--- minimized trace (%zu of %zu ops) ---\n", shrunk.size(),
                trace.size());
    std::fputs(sqlledger::sim::FormatTrace(shrunk).c_str(), stdout);
    sqlledger::sim::SimResult again =
        sqlledger::sim::RunTrace(config, shrunk);
    std::printf("--- minimized run: %s ---\n", again.Summary().c_str());
  }
  return 1;
}
