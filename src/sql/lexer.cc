#include "sql/lexer.h"

#include <cctype>
#include <charconv>

namespace sqlledger {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto make_upper = [](const std::string& s) {
    std::string out = s;
    for (char& c : out) c = static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)));
    return out;
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') i++;
      continue;
    }
    Token token;
    token.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_'))
        i++;
      token.type = TokenType::kIdentifier;
      token.text = sql.substr(start, i - start);
      token.upper = make_upper(token.text);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        i++;
      }
      token.text = sql.substr(start, i - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::strtod(token.text.c_str(), nullptr);
      } else {
        token.type = TokenType::kInteger;
        auto [p, ec] = std::from_chars(
            token.text.data(), token.text.data() + token.text.size(),
            token.int_value);
        if (ec != std::errc())
          return Status::InvalidArgument("integer literal out of range: " +
                                         token.text);
      }
    } else if (c == '\'') {
      i++;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          i++;
          break;
        }
        value.push_back(sql[i++]);
      }
      if (!closed)
        return Status::InvalidArgument("unterminated string literal");
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else {
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1]) {
          token.type = TokenType::kSymbol;
          token.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kSingles = "(),*=<>;.+-";
        if (kSingles.find(c) == std::string::npos)
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at offset " +
                                         std::to_string(i));
        token.type = TokenType::kSymbol;
        token.text = std::string(1, c);
        i++;
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sqlledger
