// SQL lexer for the engine's dialect: a practical subset of T-SQL plus
// ledger extensions (CREATE TABLE ... WITH (LEDGER = ON), GENERATE DIGEST,
// VERIFY LEDGER, LEDGER_VIEW(t)).

#ifndef SQLLEDGER_SQL_LEXER_H_
#define SQLLEDGER_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace sqlledger {

enum class TokenType {
  kIdentifier,   // table / column names and unreserved keywords
  kInteger,      // 123, -5 handled by parser sign
  kFloat,        // 1.5
  kString,       // 'text' with '' escaping
  kSymbol,       // ( ) , * = < > <= >= <> != ; . + -
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // uppercased for identifiers? No: raw; see upper.
  std::string upper;  // uppercase form for keyword matching
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset for error messages
};

/// Tokenizes `sql`. Fails with InvalidArgument on unterminated strings or
/// unexpected characters.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sqlledger

#endif  // SQLLEDGER_SQL_LEXER_H_
