#include "sql/session.h"

#include <algorithm>

#include "ledger/verifier.h"
#include "sql/parser.h"

namespace sqlledger {

namespace {

/// Visible-column metadata for a table: names and defs in visible order.
struct VisibleSchema {
  std::vector<std::string> names;
  std::vector<const ColumnDef*> columns;
};

Result<VisibleSchema> GetVisibleSchema(LedgerDatabase* db,
                                       const std::string& table) {
  auto ref = db->GetTableRef(table);
  if (!ref.ok()) return ref.status();
  VisibleSchema out;
  const Schema& schema = ref->main->schema();
  for (size_t ord : schema.VisibleOrdinals()) {
    out.names.push_back(schema.column(ord).name);
    out.columns.push_back(&schema.column(ord));
  }
  return out;
}

int FindName(const std::vector<std::string>& names, const std::string& name) {
  for (size_t i = 0; i < names.size(); i++) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

Result<Value> CoerceLiteral(const Value& literal, const ColumnDef& column) {
  if (literal.is_null()) return Value::Null(column.type);
  if (literal.type() == column.type) return literal;
  auto cast = literal.CastTo(column.type);
  if (!cast.ok())
    return Status::InvalidArgument("cannot use this literal for column '" +
                                   column.name + "': " +
                                   cast.status().message());
  return cast;
}

Result<bool> EvalPredicates(const std::vector<SqlPredicate>& predicates,
                            const std::vector<std::string>& column_names,
                            const std::vector<const ColumnDef*>& columns,
                            const Row& row) {
  for (const SqlPredicate& pred : predicates) {
    int idx = FindName(column_names, pred.column);
    if (idx < 0)
      return Status::NotFound("unknown column '" + pred.column +
                              "' in WHERE clause");
    if (pred.op == SqlPredicate::Op::kIsNull ||
        pred.op == SqlPredicate::Op::kIsNotNull) {
      bool is_null = row[static_cast<size_t>(idx)].is_null();
      if (pred.op == SqlPredicate::Op::kIsNull ? !is_null : is_null)
        return false;
      continue;
    }
    auto literal = CoerceLiteral(pred.literal, *columns[idx]);
    if (!literal.ok()) return literal.status();
    const Value& cell = row[static_cast<size_t>(idx)];
    // SQL three-valued logic, simplified: comparisons with NULL are false.
    if (cell.is_null() || literal->is_null()) {
      if (pred.op == SqlPredicate::Op::kEq && cell.is_null() &&
          literal->is_null()) {
        continue;  // col = NULL used as IS NULL for usability
      }
      return false;
    }
    int cmp = cell.Compare(*literal);
    bool ok = false;
    switch (pred.op) {
      case SqlPredicate::Op::kEq:
        ok = cmp == 0;
        break;
      case SqlPredicate::Op::kNe:
        ok = cmp != 0;
        break;
      case SqlPredicate::Op::kLt:
        ok = cmp < 0;
        break;
      case SqlPredicate::Op::kLe:
        ok = cmp <= 0;
        break;
      case SqlPredicate::Op::kGt:
        ok = cmp > 0;
        break;
      case SqlPredicate::Op::kGe:
        ok = cmp >= 0;
        break;
      case SqlPredicate::Op::kIsNull:
      case SqlPredicate::Op::kIsNotNull:
        break;  // handled above
    }
    if (!ok) return false;
  }
  return true;
}

std::string SqlResultSet::ToString() const {
  if (column_names.empty()) return message;
  std::vector<size_t> widths;
  widths.reserve(column_names.size());
  for (const std::string& name : column_names) widths.push_back(name.size());
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); i++) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line[i].size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (size_t i = 0; i < column_names.size(); i++) {
    out += column_names[i];
    out.append(widths[i] - column_names[i].size() + 2, ' ');
  }
  out += "\n";
  for (size_t i = 0; i < column_names.size(); i++) {
    out.append(widths[i], '-');
    out += "  ";
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); i++) {
      out += line[i];
      out.append(widths[i] - line[i].size() + 2, ' ');
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

SqlSession::SqlSession(LedgerDatabase* db, std::string user)
    : db_(db), user_(std::move(user)) {}

SqlSession::~SqlSession() {
  if (txn_ != nullptr) db_->Abort(txn_);
}

Result<SqlResultSet> SqlSession::Execute(const std::string& sql) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return Dispatch(*stmt);
}

Result<int64_t> SqlSession::WithTransaction(
    const std::function<Result<int64_t>(Transaction*)>& body) {
  if (txn_ != nullptr) return body(txn_);
  auto txn = db_->Begin(user_);
  if (!txn.ok()) return txn.status();
  auto result = body(*txn);
  if (!result.ok()) {
    db_->Abort(*txn);
    return result;
  }
  Status st = db_->Commit(*txn);
  if (!st.ok()) return st;
  return result;
}

Result<SqlResultSet> SqlSession::Dispatch(const SqlStatement& stmt) {
  SqlResultSet result;
  if (stmt.create_table) {
    const CreateTableStmt& create = *stmt.create_table;
    Schema schema;
    for (const SqlColumnDef& col : create.columns)
      schema.AddColumn(col.name, col.type, col.nullable, col.max_length);
    std::vector<size_t> key;
    for (const std::string& name : create.primary_key) {
      int ord = schema.FindColumn(name);
      if (ord < 0)
        return Status::InvalidArgument("PRIMARY KEY references unknown "
                                       "column '" + name + "'");
      key.push_back(static_cast<size_t>(ord));
    }
    schema.SetPrimaryKey(std::move(key));
    SL_RETURN_IF_ERROR(db_->CreateTable(create.table, schema, create.kind));
    result.message = "table '" + create.table + "' created (" +
                     TableKindName(create.kind) + ")";
    return result;
  }
  if (stmt.drop_table) {
    SL_RETURN_IF_ERROR(db_->DropTable(stmt.drop_table->table));
    result.message = "table '" + stmt.drop_table->table + "' dropped";
    return result;
  }
  if (stmt.alter_table) {
    const AlterTableStmt& alter = *stmt.alter_table;
    switch (alter.action) {
      case AlterTableStmt::Action::kAddColumn:
        SL_RETURN_IF_ERROR(db_->AddColumn(alter.table, alter.column.name,
                                          alter.column.type,
                                          alter.column.max_length));
        result.message = "column added";
        break;
      case AlterTableStmt::Action::kDropColumn:
        SL_RETURN_IF_ERROR(db_->DropColumn(alter.table, alter.column.name));
        result.message = "column dropped";
        break;
      case AlterTableStmt::Action::kAlterColumnType:
        SL_RETURN_IF_ERROR(db_->AlterColumnType(alter.table, alter.column.name,
                                                alter.column.type));
        result.message = "column type altered";
        break;
    }
    return result;
  }
  if (stmt.create_index) {
    const CreateIndexStmt& create = *stmt.create_index;
    SL_RETURN_IF_ERROR(db_->CreateIndex(create.table, create.index,
                                        create.columns, create.unique));
    result.message = "index '" + create.index + "' created";
    return result;
  }
  if (stmt.insert) return ExecInsert(*stmt.insert);
  if (stmt.select) return ExecSelect(*stmt.select);
  if (stmt.update) return ExecUpdate(*stmt.update);
  if (stmt.del) return ExecDelete(*stmt.del);
  if (stmt.txn) return ExecTxn(*stmt.txn);
  if (stmt.ledger) return ExecLedger(*stmt.ledger);
  return Status::Internal("empty statement");
}

Result<SqlResultSet> SqlSession::ExecInsert(const InsertStmt& stmt) {
  auto visible = GetVisibleSchema(db_, stmt.table);
  if (!visible.ok()) return visible.status();

  // Map the statement's column list onto visible ordinals.
  std::vector<int> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < visible->names.size(); i++)
      targets.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : stmt.columns) {
      int idx = FindName(visible->names, name);
      if (idx < 0) return Status::NotFound("unknown column '" + name + "'");
      targets.push_back(idx);
    }
  }

  auto inserted = WithTransaction([&](Transaction* txn) -> Result<int64_t> {
    int64_t count = 0;
    for (const std::vector<Value>& literals : stmt.rows) {
      if (literals.size() != targets.size())
        return Status::InvalidArgument(
            "VALUES arity does not match the column list");
      Row row;
      for (const auto* col : visible->columns)
        row.push_back(Value::Null(col->type));
      for (size_t i = 0; i < targets.size(); i++) {
        auto coerced =
            CoerceLiteral(literals[i], *visible->columns[targets[i]]);
        if (!coerced.ok()) return coerced.status();
        row[static_cast<size_t>(targets[i])] = std::move(*coerced);
      }
      SL_RETURN_IF_ERROR(db_->Insert(txn, stmt.table, row));
      count++;
    }
    return count;
  });
  if (!inserted.ok()) return inserted.status();

  SqlResultSet result;
  result.affected_rows = *inserted;
  result.message = std::to_string(*inserted) + " row(s) inserted";
  return result;
}

namespace {
const char* AggregateFnName(SqlAggregate::Fn fn) {
  switch (fn) {
    case SqlAggregate::Fn::kCount:
      return "count";
    case SqlAggregate::Fn::kSum:
      return "sum";
    case SqlAggregate::Fn::kMin:
      return "min";
    case SqlAggregate::Fn::kMax:
      return "max";
    case SqlAggregate::Fn::kAvg:
      return "avg";
  }
  return "?";
}

Result<Value> EvalAggregate(const SqlAggregate& agg,
                            const std::vector<std::string>& names,
                            const std::vector<const ColumnDef*>& columns,
                            const std::vector<Row>& rows) {
  if (agg.fn == SqlAggregate::Fn::kCount && agg.column.empty())
    return Value::BigInt(static_cast<int64_t>(rows.size()));
  int idx = FindName(names, agg.column);
  if (idx < 0)
    return Status::NotFound("unknown column '" + agg.column +
                            "' in aggregate");
  size_t i = static_cast<size_t>(idx);

  if (agg.fn == SqlAggregate::Fn::kCount) {
    int64_t count = 0;
    for (const Row& row : rows)
      if (!row[i].is_null()) count++;
    return Value::BigInt(count);
  }
  if (agg.fn == SqlAggregate::Fn::kMin || agg.fn == SqlAggregate::Fn::kMax) {
    const Value* best = nullptr;
    for (const Row& row : rows) {
      if (row[i].is_null()) continue;
      if (best == nullptr ||
          (agg.fn == SqlAggregate::Fn::kMin ? row[i].Compare(*best) < 0
                                            : row[i].Compare(*best) > 0))
        best = &row[i];
    }
    if (best == nullptr) return Value::Null(columns[i]->type);
    return *best;
  }
  // SUM / AVG: numeric columns only.
  DataType type = columns[i]->type;
  bool is_double = type == DataType::kDouble;
  bool is_integral = type == DataType::kSmallInt || type == DataType::kInt ||
                     type == DataType::kBigInt;
  if (!is_double && !is_integral)
    return Status::InvalidArgument(std::string(AggregateFnName(agg.fn)) +
                                   " requires a numeric column");
  double dsum = 0;
  int64_t isum = 0;
  int64_t count = 0;
  for (const Row& row : rows) {
    if (row[i].is_null()) continue;
    if (is_double)
      dsum += row[i].double_value();
    else
      isum += row[i].AsInt64();
    count++;
  }
  if (agg.fn == SqlAggregate::Fn::kAvg) {
    if (count == 0) return Value::Null(DataType::kDouble);
    double total = is_double ? dsum : static_cast<double>(isum);
    return Value::Double(total / static_cast<double>(count));
  }
  return is_double ? Value::Double(dsum) : Value::BigInt(isum);
}
}  // namespace

std::string SqlAggregate::DisplayName() const {
  return std::string(AggregateFnName(fn)) + "(" +
         (column.empty() ? "*" : column) + ")";
}

Result<SqlResultSet> SqlSession::ExecSelect(const SelectStmt& stmt) {
  SqlResultSet result;
  std::vector<std::string> source_names;
  std::vector<const ColumnDef*> source_columns;
  std::vector<Row> source_rows;

  auto visible = GetVisibleSchema(db_, stmt.table);
  if (!visible.ok()) return visible.status();
  source_names = visible->names;
  source_columns = visible->columns;

  // Extra columns appended by LEDGER_VIEW.
  static const ColumnDef kOpCol{0, "operation", DataType::kVarchar, false,
                                0,  false, false};
  static const ColumnDef kTxnCol{0, "transaction_id", DataType::kBigInt,
                                 false, 0, false, false};

  if (stmt.from_ledger_view) {
    auto view = db_->GetLedgerView(stmt.table);
    if (!view.ok()) return view.status();
    source_names.push_back("operation");
    source_names.push_back("transaction_id");
    source_columns.push_back(&kOpCol);
    source_columns.push_back(&kTxnCol);
    for (const LedgerViewRow& row : *view) {
      Row r = row.values;
      r.push_back(Value::Varchar(row.operation));
      r.push_back(Value::BigInt(static_cast<int64_t>(row.transaction_id)));
      source_rows.push_back(std::move(r));
    }
  } else {
    // Point-lookup fast path: equality predicates covering the whole
    // primary key use a row-locked Get instead of a table-S scan.
    auto ref = db_->GetTableRef(stmt.table);
    if (!ref.ok()) return ref.status();
    KeyTuple point_key;
    bool is_point = true;
    for (size_t key_ord : ref->main->schema().key_ordinals()) {
      const std::string& key_name = ref->main->schema().column(key_ord).name;
      bool found = false;
      for (const SqlPredicate& pred : stmt.where) {
        if (pred.op == SqlPredicate::Op::kEq && pred.column == key_name) {
          int idx = FindName(source_names, key_name);
          auto coerced = CoerceLiteral(
              pred.literal, *source_columns[static_cast<size_t>(idx)]);
          if (!coerced.ok()) return coerced.status();
          point_key.push_back(std::move(*coerced));
          found = true;
          break;
        }
      }
      if (!found) {
        is_point = false;
        break;
      }
    }
    auto scanned = WithTransaction([&](Transaction* txn) -> Result<int64_t> {
      if (is_point) {
        auto row = db_->Get(txn, stmt.table, point_key);
        if (row.ok()) {
          source_rows.push_back(std::move(*row));
        } else if (!row.status().IsNotFound()) {
          return row.status();
        }
        return static_cast<int64_t>(source_rows.size());
      }
      auto rows = db_->Scan(txn, stmt.table);
      if (!rows.ok()) return rows.status();
      source_rows = std::move(*rows);
      return static_cast<int64_t>(source_rows.size());
    });
    if (!scanned.ok()) return scanned.status();
  }

  // Filter.
  std::vector<Row> filtered;
  for (Row& row : source_rows) {
    auto keep = EvalPredicates(stmt.where, source_names, source_columns, row);
    if (!keep.ok()) return keep.status();
    if (*keep) filtered.push_back(std::move(row));
  }

  // Order.
  if (stmt.order_by) {
    int idx = FindName(source_names, *stmt.order_by);
    if (idx < 0)
      return Status::NotFound("unknown ORDER BY column '" + *stmt.order_by +
                              "'");
    bool desc = stmt.order_desc;
    std::stable_sort(filtered.begin(), filtered.end(),
                     [idx, desc](const Row& a, const Row& b) {
                       int cmp = a[static_cast<size_t>(idx)].Compare(
                           b[static_cast<size_t>(idx)]);
                       return desc ? cmp > 0 : cmp < 0;
                     });
  }

  // Aggregates collapse the filtered set — into one row, or one row per
  // group under GROUP BY (group-value ordered).
  if (!stmt.aggregates.empty()) {
    std::vector<std::pair<const Value*, std::vector<Row>*>> groups;
    std::map<Value, std::vector<Row>> by_group;
    std::vector<Row> all;
    int group_idx = -1;
    if (stmt.group_by) {
      group_idx = FindName(source_names, *stmt.group_by);
      if (group_idx < 0)
        return Status::NotFound("unknown GROUP BY column '" + *stmt.group_by +
                                "'");
      for (Row& row : filtered)
        by_group[row[static_cast<size_t>(group_idx)]].push_back(
            std::move(row));
      for (auto& [key, rows] : by_group) groups.emplace_back(&key, &rows);
      result.column_names.push_back(*stmt.group_by);
    } else {
      all = std::move(filtered);
      groups.emplace_back(nullptr, &all);
    }
    for (const SqlAggregate& agg : stmt.aggregates)
      result.column_names.push_back(agg.DisplayName());

    for (auto& [group_value, rows] : groups) {
      Row out_row;
      if (group_value != nullptr) out_row.push_back(*group_value);
      for (const SqlAggregate& agg : stmt.aggregates) {
        auto value = EvalAggregate(agg, source_names, source_columns, *rows);
        if (!value.ok()) return value.status();
        out_row.push_back(std::move(*value));
      }
      result.rows.push_back(std::move(out_row));
    }
    result.affected_rows = static_cast<int64_t>(result.rows.size());
    return result;
  }

  // Limit.
  if (stmt.limit && filtered.size() > static_cast<size_t>(*stmt.limit))
    filtered.resize(static_cast<size_t>(*stmt.limit));

  // Project.
  std::vector<int> projection;
  if (stmt.columns.size() == 1 && stmt.columns[0] == "*") {
    for (size_t i = 0; i < source_names.size(); i++)
      projection.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : stmt.columns) {
      int idx = FindName(source_names, name);
      if (idx < 0) return Status::NotFound("unknown column '" + name + "'");
      projection.push_back(idx);
    }
  }
  for (int idx : projection)
    result.column_names.push_back(source_names[static_cast<size_t>(idx)]);
  for (const Row& row : filtered) {
    Row projected;
    for (int idx : projection) projected.push_back(row[static_cast<size_t>(idx)]);
    result.rows.push_back(std::move(projected));
  }
  result.affected_rows = static_cast<int64_t>(result.rows.size());
  return result;
}

Result<SqlResultSet> SqlSession::ExecUpdate(const UpdateStmt& stmt) {
  auto visible = GetVisibleSchema(db_, stmt.table);
  if (!visible.ok()) return visible.status();

  auto updated = WithTransaction([&](Transaction* txn) -> Result<int64_t> {
    auto rows = db_->Scan(txn, stmt.table);
    if (!rows.ok()) return rows.status();
    int64_t count = 0;
    for (Row& row : *rows) {
      auto match =
          EvalPredicates(stmt.where, visible->names, visible->columns, row);
      if (!match.ok()) return match.status();
      if (!*match) continue;
      Row new_row = row;
      for (const auto& [name, literal] : stmt.assignments) {
        int idx = FindName(visible->names, name);
        if (idx < 0) return Status::NotFound("unknown column '" + name + "'");
        auto coerced =
            CoerceLiteral(literal, *visible->columns[static_cast<size_t>(idx)]);
        if (!coerced.ok()) return coerced.status();
        new_row[static_cast<size_t>(idx)] = std::move(*coerced);
      }
      SL_RETURN_IF_ERROR(db_->Update(txn, stmt.table, new_row));
      count++;
    }
    return count;
  });
  if (!updated.ok()) return updated.status();

  SqlResultSet result;
  result.affected_rows = *updated;
  result.message = std::to_string(*updated) + " row(s) updated";
  return result;
}

Result<SqlResultSet> SqlSession::ExecDelete(const DeleteStmt& stmt) {
  auto ref = db_->GetTableRef(stmt.table);
  if (!ref.ok()) return ref.status();
  auto visible = GetVisibleSchema(db_, stmt.table);
  if (!visible.ok()) return visible.status();

  // Key ordinals relative to the visible row (keys are always visible).
  std::vector<size_t> key_positions;
  {
    const Schema& schema = ref->main->schema();
    std::vector<size_t> visible_ordinals = schema.VisibleOrdinals();
    for (size_t key_ord : schema.key_ordinals()) {
      for (size_t i = 0; i < visible_ordinals.size(); i++) {
        if (visible_ordinals[i] == key_ord) key_positions.push_back(i);
      }
    }
  }

  auto deleted = WithTransaction([&](Transaction* txn) -> Result<int64_t> {
    auto rows = db_->Scan(txn, stmt.table);
    if (!rows.ok()) return rows.status();
    int64_t count = 0;
    for (const Row& row : *rows) {
      auto match =
          EvalPredicates(stmt.where, visible->names, visible->columns, row);
      if (!match.ok()) return match.status();
      if (!*match) continue;
      KeyTuple key;
      for (size_t pos : key_positions) key.push_back(row[pos]);
      SL_RETURN_IF_ERROR(db_->Delete(txn, stmt.table, key));
      count++;
    }
    return count;
  });
  if (!deleted.ok()) return deleted.status();

  SqlResultSet result;
  result.affected_rows = *deleted;
  result.message = std::to_string(*deleted) + " row(s) deleted";
  return result;
}

Result<SqlResultSet> SqlSession::ExecTxn(const TxnStmt& stmt) {
  SqlResultSet result;
  switch (stmt.kind) {
    case TxnStmt::Kind::kBegin: {
      if (txn_ != nullptr)
        return Status::InvalidArgument("a transaction is already open");
      auto txn = db_->Begin(user_);
      if (!txn.ok()) return txn.status();
      txn_ = *txn;
      result.message = "transaction started";
      return result;
    }
    case TxnStmt::Kind::kCommit: {
      if (txn_ == nullptr)
        return Status::InvalidArgument("no open transaction");
      Status st = db_->Commit(txn_);
      txn_ = nullptr;
      SL_RETURN_IF_ERROR(st);
      result.message = "committed";
      return result;
    }
    case TxnStmt::Kind::kRollback: {
      if (txn_ == nullptr)
        return Status::InvalidArgument("no open transaction");
      db_->Abort(txn_);
      txn_ = nullptr;
      result.message = "rolled back";
      return result;
    }
    case TxnStmt::Kind::kSavepoint: {
      if (txn_ == nullptr)
        return Status::InvalidArgument("SAVEPOINT requires an open "
                                       "transaction");
      SL_RETURN_IF_ERROR(db_->Savepoint(txn_, stmt.savepoint));
      result.message = "savepoint '" + stmt.savepoint + "' created";
      return result;
    }
    case TxnStmt::Kind::kRollbackTo: {
      if (txn_ == nullptr)
        return Status::InvalidArgument("no open transaction");
      SL_RETURN_IF_ERROR(db_->RollbackToSavepoint(txn_, stmt.savepoint));
      result.message = "rolled back to savepoint '" + stmt.savepoint + "'";
      return result;
    }
  }
  return Status::Internal("unreachable");
}

Result<SqlResultSet> SqlSession::ExecLedger(const LedgerStmt& stmt) {
  SqlResultSet result;
  if (stmt.kind == LedgerStmt::Kind::kGenerateDigest) {
    if (txn_ != nullptr)
      return Status::InvalidArgument(
          "GENERATE DIGEST cannot run inside a transaction");
    auto digest = db_->GenerateDigest();
    if (!digest.ok()) return digest.status();
    result.message = digest->ToJson();
    return result;
  }
  // VERIFY LEDGER: internal-consistency verification (no external digests
  // from SQL; use the C++ API for digest-anchored verification).
  if (txn_ != nullptr)
    return Status::InvalidArgument(
        "VERIFY LEDGER cannot run inside a transaction");
  auto report = VerifyLedger(db_, {});
  if (!report.ok()) return report.status();
  result.message = report->Summary();
  if (!report->ok())
    return Status::IntegrityViolation(result.message);
  return result;
}

}  // namespace sqlledger
