// AST for the SQL dialect. Statements cover the application surface the
// paper's system exposes: DDL (with ledger options), DML, transactions and
// savepoints, plus ledger extensions (GENERATE DIGEST, VERIFY LEDGER,
// SELECT ... FROM LEDGER_VIEW(t)).

#ifndef SQLLEDGER_SQL_AST_H_
#define SQLLEDGER_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "ledger/types.h"

namespace sqlledger {

/// A literal or column reference in an expression.
struct SqlExpr {
  enum class Kind { kLiteral, kColumn };
  Kind kind = Kind::kLiteral;
  Value literal;       // kLiteral
  std::string column;  // kColumn
};

/// One conjunct of a WHERE clause: <column> <op> <literal>, or the unary
/// forms <column> IS NULL / IS NOT NULL.
struct SqlPredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIsNull, kIsNotNull };
  std::string column;
  Op op = Op::kEq;
  Value literal;  // unused for the IS NULL forms
};

/// An aggregate in a SELECT list: FN(column) or COUNT(*).
struct SqlAggregate {
  enum class Fn { kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCount;
  std::string column;  // empty for COUNT(*)
  std::string DisplayName() const;
};

struct SqlColumnDef {
  std::string name;
  DataType type = DataType::kInt;
  uint32_t max_length = 0;
  bool nullable = true;
};

struct CreateTableStmt {
  std::string table;
  std::vector<SqlColumnDef> columns;
  std::vector<std::string> primary_key;
  TableKind kind = TableKind::kRegular;  // WITH (LEDGER = ON [, APPEND_ONLY = ON])
};

struct DropTableStmt {
  std::string table;
};

struct AlterTableStmt {
  enum class Action { kAddColumn, kDropColumn, kAlterColumnType };
  std::string table;
  Action action = Action::kAddColumn;
  SqlColumnDef column;  // name always set; type for add/alter
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
};

struct InsertStmt {
  std::string table;
  /// Optional explicit column list; empty = all visible columns.
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;  // VALUES (...), (...)
};

struct SelectStmt {
  std::vector<std::string> columns;  // {"*"} for star; empty if aggregates
  std::vector<SqlAggregate> aggregates;  // aggregate query when non-empty
  /// GROUP BY column; when set the select list must be that column first
  /// followed by aggregates (one output row per group, group-ordered).
  std::optional<std::string> group_by;
  std::string table;
  bool from_ledger_view = false;  // FROM LEDGER_VIEW(table)
  std::vector<SqlPredicate> where;
  std::optional<std::string> order_by;
  bool order_desc = false;
  std::optional<int64_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  std::vector<SqlPredicate> where;
};

struct DeleteStmt {
  std::string table;
  std::vector<SqlPredicate> where;
};

struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback, kSavepoint, kRollbackTo };
  Kind kind = Kind::kBegin;
  std::string savepoint;  // for kSavepoint / kRollbackTo
};

struct LedgerStmt {
  enum class Kind { kGenerateDigest, kVerifyLedger };
  Kind kind = Kind::kGenerateDigest;
};

/// A parsed statement (exactly one member is engaged).
struct SqlStatement {
  std::optional<CreateTableStmt> create_table;
  std::optional<DropTableStmt> drop_table;
  std::optional<AlterTableStmt> alter_table;
  std::optional<CreateIndexStmt> create_index;
  std::optional<InsertStmt> insert;
  std::optional<SelectStmt> select;
  std::optional<UpdateStmt> update;
  std::optional<DeleteStmt> del;
  std::optional<TxnStmt> txn;
  std::optional<LedgerStmt> ledger;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_SQL_AST_H_
