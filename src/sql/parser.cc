#include "sql/parser.h"

#include "sql/lexer.h"

namespace sqlledger {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> Parse() {
    SqlStatement stmt;
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier)
      return Error("expected a statement keyword");

    Status st;
    if (t.upper == "CREATE") {
      if (PeekAhead(1).upper == "TABLE") {
        st = ParseCreateTable(&stmt);
      } else {
        st = ParseCreateIndex(&stmt);
      }
    } else if (t.upper == "DROP") {
      st = ParseDropTable(&stmt);
    } else if (t.upper == "ALTER") {
      st = ParseAlterTable(&stmt);
    } else if (t.upper == "INSERT") {
      st = ParseInsert(&stmt);
    } else if (t.upper == "SELECT") {
      st = ParseSelect(&stmt);
    } else if (t.upper == "UPDATE") {
      st = ParseUpdate(&stmt);
    } else if (t.upper == "DELETE") {
      st = ParseDelete(&stmt);
    } else if (t.upper == "BEGIN" || t.upper == "COMMIT" ||
               t.upper == "ROLLBACK" || t.upper == "SAVEPOINT") {
      st = ParseTxn(&stmt);
    } else if (t.upper == "GENERATE" || t.upper == "VERIFY") {
      st = ParseLedger(&stmt);
    } else {
      return Error("unknown statement '" + t.text + "'");
    }
    if (!st.ok()) return st;
    ConsumeSymbol(";");  // optional trailing semicolon
    if (Peek().type != TokenType::kEnd)
      return Error("unexpected trailing input '" + Peek().text + "'");
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        "SQL parse error near offset " + std::to_string(Peek().position) +
        ": " + message);
  }

  bool ConsumeKeyword(const std::string& upper) {
    if (Peek().type == TokenType::kIdentifier && Peek().upper == upper) {
      pos_++;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& upper) {
    if (!ConsumeKeyword(upper)) return Error("expected " + upper);
    return Status::OK();
  }
  bool ConsumeSymbol(const std::string& symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      pos_++;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& symbol) {
    if (!ConsumeSymbol(symbol)) return Error("expected '" + symbol + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier)
      return Error("expected an identifier");
    return Advance().text;
  }

  Result<DataType> ExpectType() {
    if (Peek().type != TokenType::kIdentifier)
      return Error("expected a data type");
    std::string name = Advance().upper;
    if (name == "BOOL" || name == "BOOLEAN" || name == "BIT")
      return DataType::kBool;
    if (name == "SMALLINT") return DataType::kSmallInt;
    if (name == "INT" || name == "INTEGER") return DataType::kInt;
    if (name == "BIGINT") return DataType::kBigInt;
    if (name == "DOUBLE" || name == "FLOAT" || name == "REAL")
      return DataType::kDouble;
    if (name == "VARCHAR" || name == "TEXT") return DataType::kVarchar;
    if (name == "VARBINARY" || name == "BLOB") return DataType::kVarbinary;
    if (name == "TIMESTAMP" || name == "DATETIME") return DataType::kTimestamp;
    return Error("unknown data type '" + name + "'");
  }

  /// Literal: integer (optionally negative), float, 'string', TRUE, FALSE,
  /// NULL. Typed NULLs resolve against the column later; use kInt here.
  Result<Value> ExpectLiteral() {
    bool negative = false;
    if (Peek().type == TokenType::kSymbol &&
        (Peek().text == "-" || Peek().text == "+")) {
      negative = Advance().text == "-";
    }
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        int64_t v = Advance().int_value;
        return Value::BigInt(negative ? -v : v);
      }
      case TokenType::kFloat: {
        double v = Advance().float_value;
        return Value::Double(negative ? -v : v);
      }
      case TokenType::kString:
        if (negative) return Error("cannot negate a string literal");
        return Value::Varchar(Advance().text);
      case TokenType::kIdentifier:
        if (negative) return Error("cannot negate this literal");
        if (t.upper == "TRUE") {
          Advance();
          return Value::Bool(true);
        }
        if (t.upper == "FALSE") {
          Advance();
          return Value::Bool(false);
        }
        if (t.upper == "NULL") {
          Advance();
          return Value::Null(DataType::kInt);
        }
        return Error("expected a literal, got '" + t.text + "'");
      default:
        return Error("expected a literal");
    }
  }

  Status ParseColumnDef(SqlColumnDef* col) {
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    col->name = *name;
    auto type = ExpectType();
    if (!type.ok()) return type.status();
    col->type = *type;
    if (ConsumeSymbol("(")) {
      if (Peek().type != TokenType::kInteger)
        return Error("expected a length");
      col->max_length = static_cast<uint32_t>(Advance().int_value);
      SL_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (ConsumeKeyword("NOT")) {
      SL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      col->nullable = false;
    } else {
      ConsumeKeyword("NULL");
    }
    return Status::OK();
  }

  Status ParseCreateTable(SqlStatement* stmt) {
    CreateTableStmt create;
    Advance();  // CREATE
    SL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    create.table = *table;
    SL_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      if (ConsumeKeyword("PRIMARY")) {
        SL_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        SL_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          auto col = ExpectIdentifier();
          if (!col.ok()) return col.status();
          create.primary_key.push_back(*col);
          if (!ConsumeSymbol(",")) break;
        }
        SL_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        SqlColumnDef col;
        SL_RETURN_IF_ERROR(ParseColumnDef(&col));
        create.columns.push_back(std::move(col));
      }
      if (!ConsumeSymbol(",")) break;
    }
    SL_RETURN_IF_ERROR(ExpectSymbol(")"));

    if (ConsumeKeyword("WITH")) {
      SL_RETURN_IF_ERROR(ExpectSymbol("("));
      bool ledger = false, append_only = false;
      while (true) {
        auto option = ExpectIdentifier();
        if (!option.ok()) return option.status();
        SL_RETURN_IF_ERROR(ExpectSymbol("="));
        auto value = ExpectIdentifier();
        if (!value.ok()) return value.status();
        std::string upper_opt = option->c_str();
        for (char& c : upper_opt)
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        bool on = *value == "ON" || *value == "on" || *value == "On";
        if (upper_opt == "LEDGER") {
          ledger = on;
        } else if (upper_opt == "APPEND_ONLY") {
          append_only = on;
        } else {
          return Error("unknown table option '" + *option + "'");
        }
        if (!ConsumeSymbol(",")) break;
      }
      SL_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (ledger)
        create.kind =
            append_only ? TableKind::kAppendOnly : TableKind::kUpdateable;
    }
    stmt->create_table = std::move(create);
    return Status::OK();
  }

  Status ParseDropTable(SqlStatement* stmt) {
    Advance();  // DROP
    SL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    stmt->drop_table = DropTableStmt{*table};
    return Status::OK();
  }

  Status ParseAlterTable(SqlStatement* stmt) {
    AlterTableStmt alter;
    Advance();  // ALTER
    SL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    alter.table = *table;
    if (ConsumeKeyword("ADD")) {
      ConsumeKeyword("COLUMN");
      alter.action = AlterTableStmt::Action::kAddColumn;
      SL_RETURN_IF_ERROR(ParseColumnDef(&alter.column));
    } else if (ConsumeKeyword("DROP")) {
      ConsumeKeyword("COLUMN");
      alter.action = AlterTableStmt::Action::kDropColumn;
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      alter.column.name = *col;
    } else if (ConsumeKeyword("ALTER")) {
      ConsumeKeyword("COLUMN");
      alter.action = AlterTableStmt::Action::kAlterColumnType;
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      alter.column.name = *col;
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      alter.column.type = *type;
    } else {
      return Error("expected ADD, DROP or ALTER COLUMN");
    }
    stmt->alter_table = std::move(alter);
    return Status::OK();
  }

  Status ParseCreateIndex(SqlStatement* stmt) {
    CreateIndexStmt create;
    Advance();  // CREATE
    if (ConsumeKeyword("UNIQUE")) create.unique = true;
    SL_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    auto index = ExpectIdentifier();
    if (!index.ok()) return index.status();
    create.index = *index;
    SL_RETURN_IF_ERROR(ExpectKeyword("ON"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    create.table = *table;
    SL_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      create.columns.push_back(*col);
      if (!ConsumeSymbol(",")) break;
    }
    SL_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->create_index = std::move(create);
    return Status::OK();
  }

  Status ParseInsert(SqlStatement* stmt) {
    InsertStmt insert;
    Advance();  // INSERT
    SL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    insert.table = *table;
    if (ConsumeSymbol("(")) {
      while (true) {
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        insert.columns.push_back(*col);
        if (!ConsumeSymbol(",")) break;
      }
      SL_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    SL_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      SL_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        auto literal = ExpectLiteral();
        if (!literal.ok()) return literal.status();
        row.push_back(std::move(*literal));
        if (!ConsumeSymbol(",")) break;
      }
      SL_RETURN_IF_ERROR(ExpectSymbol(")"));
      insert.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    stmt->insert = std::move(insert);
    return Status::OK();
  }

  Status ParseWhere(std::vector<SqlPredicate>* where) {
    if (!ConsumeKeyword("WHERE")) return Status::OK();
    while (true) {
      SqlPredicate pred;
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      pred.column = *col;
      if (ConsumeKeyword("IS")) {
        if (ConsumeKeyword("NOT")) {
          pred.op = SqlPredicate::Op::kIsNotNull;
        } else {
          pred.op = SqlPredicate::Op::kIsNull;
        }
        SL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        where->push_back(std::move(pred));
        if (!ConsumeKeyword("AND")) break;
        continue;
      }
      if (Peek().type != TokenType::kSymbol)
        return Error("expected a comparison operator");
      std::string op = Advance().text;
      if (op == "=") {
        pred.op = SqlPredicate::Op::kEq;
      } else if (op == "<>" || op == "!=") {
        pred.op = SqlPredicate::Op::kNe;
      } else if (op == "<") {
        pred.op = SqlPredicate::Op::kLt;
      } else if (op == "<=") {
        pred.op = SqlPredicate::Op::kLe;
      } else if (op == ">") {
        pred.op = SqlPredicate::Op::kGt;
      } else if (op == ">=") {
        pred.op = SqlPredicate::Op::kGe;
      } else {
        return Error("unknown operator '" + op + "'");
      }
      auto literal = ExpectLiteral();
      if (!literal.ok()) return literal.status();
      pred.literal = std::move(*literal);
      where->push_back(std::move(pred));
      if (!ConsumeKeyword("AND")) break;
    }
    return Status::OK();
  }

  /// Parses FN(col) / COUNT(*) when the next tokens form an aggregate.
  bool PeekAggregate() const {
    if (Peek().type != TokenType::kIdentifier) return false;
    const std::string& fn = Peek().upper;
    if (fn != "COUNT" && fn != "SUM" && fn != "MIN" && fn != "MAX" &&
        fn != "AVG")
      return false;
    return PeekAhead(1).type == TokenType::kSymbol &&
           PeekAhead(1).text == "(";
  }

  Status ParseAggregate(SqlAggregate* agg) {
    std::string fn = Advance().upper;
    if (fn == "COUNT") agg->fn = SqlAggregate::Fn::kCount;
    if (fn == "SUM") agg->fn = SqlAggregate::Fn::kSum;
    if (fn == "MIN") agg->fn = SqlAggregate::Fn::kMin;
    if (fn == "MAX") agg->fn = SqlAggregate::Fn::kMax;
    if (fn == "AVG") agg->fn = SqlAggregate::Fn::kAvg;
    SL_RETURN_IF_ERROR(ExpectSymbol("("));
    if (ConsumeSymbol("*")) {
      if (agg->fn != SqlAggregate::Fn::kCount)
        return Error("only COUNT accepts *");
      agg->column.clear();
    } else {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      agg->column = *col;
    }
    return ExpectSymbol(")");
  }

  Status ParseSelect(SqlStatement* stmt) {
    SelectStmt select;
    Advance();  // SELECT
    if (ConsumeSymbol("*")) {
      select.columns.push_back("*");
    } else if (PeekAggregate()) {
      while (true) {
        SqlAggregate agg;
        SL_RETURN_IF_ERROR(ParseAggregate(&agg));
        select.aggregates.push_back(std::move(agg));
        if (!ConsumeSymbol(",")) break;
        if (!PeekAggregate())
          return Error("cannot mix aggregates and plain columns");
      }
    } else {
      // Plain columns — except a single leading column followed by
      // aggregates, the GROUP BY form.
      while (true) {
        if (!select.columns.empty() && PeekAggregate()) {
          if (select.columns.size() != 1)
            return Error("GROUP BY form is <column>, <aggregates...>");
          while (true) {
            SqlAggregate agg;
            SL_RETURN_IF_ERROR(ParseAggregate(&agg));
            select.aggregates.push_back(std::move(agg));
            if (!ConsumeSymbol(",")) break;
            if (!PeekAggregate())
              return Error("cannot mix aggregates and plain columns");
          }
          break;
        }
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        select.columns.push_back(*col);
        if (!ConsumeSymbol(",")) break;
      }
    }
    SL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().upper == "LEDGER_VIEW") {
      Advance();
      SL_RETURN_IF_ERROR(ExpectSymbol("("));
      auto table = ExpectIdentifier();
      if (!table.ok()) return table.status();
      select.table = *table;
      select.from_ledger_view = true;
      SL_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      auto table = ExpectIdentifier();
      if (!table.ok()) return table.status();
      select.table = *table;
    }
    SL_RETURN_IF_ERROR(ParseWhere(&select.where));
    if (ConsumeKeyword("GROUP")) {
      SL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      select.group_by = *col;
      if (select.aggregates.empty())
        return Error("GROUP BY requires aggregates in the select list");
      if (select.columns.size() != 1 || select.columns[0] != *col)
        return Error(
            "the select list must start with the GROUP BY column");
    } else if (!select.aggregates.empty() && !select.columns.empty()) {
      return Error("plain columns beside aggregates require GROUP BY");
    }
    if (ConsumeKeyword("ORDER")) {
      SL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      select.order_by = *col;
      if (ConsumeKeyword("DESC")) {
        select.order_desc = true;
      } else {
        ConsumeKeyword("ASC");
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger)
        return Error("expected an integer after LIMIT");
      select.limit = Advance().int_value;
    }
    stmt->select = std::move(select);
    return Status::OK();
  }

  Status ParseUpdate(SqlStatement* stmt) {
    UpdateStmt update;
    Advance();  // UPDATE
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    update.table = *table;
    SL_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      SL_RETURN_IF_ERROR(ExpectSymbol("="));
      auto literal = ExpectLiteral();
      if (!literal.ok()) return literal.status();
      update.assignments.emplace_back(*col, std::move(*literal));
      if (!ConsumeSymbol(",")) break;
    }
    SL_RETURN_IF_ERROR(ParseWhere(&update.where));
    stmt->update = std::move(update);
    return Status::OK();
  }

  Status ParseDelete(SqlStatement* stmt) {
    DeleteStmt del;
    Advance();  // DELETE
    SL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    del.table = *table;
    SL_RETURN_IF_ERROR(ParseWhere(&del.where));
    stmt->del = std::move(del);
    return Status::OK();
  }

  Status ParseTxn(SqlStatement* stmt) {
    TxnStmt txn;
    std::string keyword = Advance().upper;
    if (keyword == "BEGIN") {
      ConsumeKeyword("TRANSACTION");
      txn.kind = TxnStmt::Kind::kBegin;
    } else if (keyword == "COMMIT") {
      ConsumeKeyword("TRANSACTION");
      txn.kind = TxnStmt::Kind::kCommit;
    } else if (keyword == "SAVEPOINT") {
      auto name = ExpectIdentifier();
      if (!name.ok()) return name.status();
      txn.kind = TxnStmt::Kind::kSavepoint;
      txn.savepoint = *name;
    } else {  // ROLLBACK [TO SAVEPOINT name]
      if (ConsumeKeyword("TO")) {
        ConsumeKeyword("SAVEPOINT");
        auto name = ExpectIdentifier();
        if (!name.ok()) return name.status();
        txn.kind = TxnStmt::Kind::kRollbackTo;
        txn.savepoint = *name;
      } else {
        ConsumeKeyword("TRANSACTION");
        txn.kind = TxnStmt::Kind::kRollback;
      }
    }
    stmt->txn = std::move(txn);
    return Status::OK();
  }

  Status ParseLedger(SqlStatement* stmt) {
    LedgerStmt ledger;
    std::string keyword = Advance().upper;
    if (keyword == "GENERATE") {
      SL_RETURN_IF_ERROR(ExpectKeyword("DIGEST"));
      ledger.kind = LedgerStmt::Kind::kGenerateDigest;
    } else {  // VERIFY LEDGER
      SL_RETURN_IF_ERROR(ExpectKeyword("LEDGER"));
      ledger.kind = LedgerStmt::Kind::kVerifyLedger;
    }
    stmt->ledger = std::move(ledger);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace sqlledger
