// Recursive-descent parser for the SQL dialect. Grammar summary:
//
//   CREATE TABLE t (col TYPE [(len)] [NOT NULL|NULL], ...,
//                   PRIMARY KEY (col, ...))
//                  [WITH (LEDGER = ON [, APPEND_ONLY = ON])]
//   DROP TABLE t
//   ALTER TABLE t ADD COLUMN col TYPE [(len)]
//   ALTER TABLE t DROP COLUMN col
//   ALTER TABLE t ALTER COLUMN col TYPE
//   CREATE [UNIQUE] INDEX i ON t (col, ...)
//   INSERT INTO t [(col, ...)] VALUES (lit, ...), ...
//   SELECT */col,... FROM t | LEDGER_VIEW(t)
//          [WHERE col op lit [AND ...]] [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET col = lit, ... [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   BEGIN | COMMIT | ROLLBACK | SAVEPOINT name | ROLLBACK TO SAVEPOINT name
//   GENERATE DIGEST | VERIFY LEDGER
//
// Literals: integers, floats, 'strings', TRUE/FALSE, NULL.

#ifndef SQLLEDGER_SQL_PARSER_H_
#define SQLLEDGER_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/result.h"

namespace sqlledger {

/// Parses a single statement (a trailing ';' is allowed).
Result<SqlStatement> ParseSql(const std::string& sql);

}  // namespace sqlledger

#endif  // SQLLEDGER_SQL_PARSER_H_
