// SqlSession: executes SQL statements against a LedgerDatabase, managing
// autocommit vs explicit transactions — the interactive surface of the
// system (see examples/sql_repl.cpp).

#ifndef SQLLEDGER_SQL_SESSION_H_
#define SQLLEDGER_SQL_SESSION_H_

#include <string>
#include <vector>

#include "ledger/ledger_database.h"
#include "sql/ast.h"
#include "util/result.h"

namespace sqlledger {

/// The outcome of one statement: either a rowset (SELECT) or a message plus
/// an affected-row count.
struct SqlResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  std::string message;
  int64_t affected_rows = 0;

  /// Renders the rowset as an aligned text table (or the message).
  std::string ToString() const;
};

class SqlSession {
 public:
  explicit SqlSession(LedgerDatabase* db, std::string user = "sql");
  ~SqlSession();

  SqlSession(const SqlSession&) = delete;
  SqlSession& operator=(const SqlSession&) = delete;

  /// Parses and executes one statement. DML outside BEGIN...COMMIT runs in
  /// its own autocommitted transaction. On error inside an explicit
  /// transaction the transaction stays open (the caller decides whether to
  /// ROLLBACK), matching interactive-database conventions.
  Result<SqlResultSet> Execute(const std::string& sql);

  bool in_transaction() const { return txn_ != nullptr; }

 private:
  Result<SqlResultSet> Dispatch(const SqlStatement& stmt);
  Result<SqlResultSet> ExecInsert(const InsertStmt& stmt);
  Result<SqlResultSet> ExecSelect(const SelectStmt& stmt);
  Result<SqlResultSet> ExecUpdate(const UpdateStmt& stmt);
  Result<SqlResultSet> ExecDelete(const DeleteStmt& stmt);
  Result<SqlResultSet> ExecTxn(const TxnStmt& stmt);
  Result<SqlResultSet> ExecLedger(const LedgerStmt& stmt);

  /// Runs `body` in the session's open transaction, or in a fresh
  /// autocommitted one.
  Result<int64_t> WithTransaction(
      const std::function<Result<int64_t>(Transaction*)>& body);

  LedgerDatabase* db_;
  std::string user_;
  Transaction* txn_ = nullptr;
};

/// Coerces a parsed literal to a column's declared type (BIGINT literals
/// into INT columns, typed NULLs, etc.). Exposed for tests.
Result<Value> CoerceLiteral(const Value& literal, const ColumnDef& column);

/// Evaluates a WHERE conjunction against a visible row.
Result<bool> EvalPredicates(const std::vector<SqlPredicate>& predicates,
                            const std::vector<std::string>& column_names,
                            const std::vector<const ColumnDef*>& columns,
                            const Row& row);

}  // namespace sqlledger

#endif  // SQLLEDGER_SQL_SESSION_H_
