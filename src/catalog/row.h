// Row encode/decode helpers for WAL records and checkpoint files.
// This is the engine's internal row wire format — distinct from the
// canonical ledger hashing format in ledger/row_serializer.h.

#ifndef SQLLEDGER_CATALOG_ROW_H_
#define SQLLEDGER_CATALOG_ROW_H_

#include <vector>

#include "catalog/value.h"
#include "util/coding.h"

namespace sqlledger {

/// Appends `row` to `dst`: varint count followed by encoded values.
void EncodeRow(const Row& row, std::vector<uint8_t>* dst);

/// Decodes one row from `dec`.
Result<Row> DecodeRow(Decoder* dec);

/// Total payload bytes of a row's variable- and fixed-width values (used by
/// benchmarks to size rows, e.g. the paper's 260-byte rows in §4.1.2).
size_t RowPayloadBytes(const Row& row);

}  // namespace sqlledger

#endif  // SQLLEDGER_CATALOG_ROW_H_
