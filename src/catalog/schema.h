// Table schemas: column definitions with stable column ids, primary keys,
// hidden system columns, and logically-dropped columns (paper §3.1, §3.5).

#ifndef SQLLEDGER_CATALOG_SCHEMA_H_
#define SQLLEDGER_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "util/result.h"
#include "util/status.h"

namespace sqlledger {

/// One column of a table. `column_id` is stable across renames/drops and is
/// what participates in row hashes, so a drop+re-add with the same name
/// yields a distinguishable column (paper §3.5.2's attack discussion).
struct ColumnDef {
  uint32_t column_id = 0;
  std::string name;
  DataType type = DataType::kInt;
  bool nullable = true;
  /// Max length in bytes for varchar/varbinary; 0 = unlimited.
  uint32_t max_length = 0;
  /// Hidden columns (ledger system columns) are invisible to applications
  /// but exposed through ledger views.
  bool hidden = false;
  /// Logically dropped: renamed out of the user schema but physically kept
  /// so historical hashes remain verifiable.
  bool dropped = false;
};

/// An ordered list of columns plus the primary-key column ordinals.
class Schema {
 public:
  Schema() = default;

  /// Appends a column, assigning the next stable column id. Returns its
  /// ordinal.
  size_t AddColumn(const std::string& name, DataType type, bool nullable,
                   uint32_t max_length = 0, bool hidden = false);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  ColumnDef* mutable_column(size_t i) { return &columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Ordinal of the named, non-dropped column; -1 if absent.
  int FindColumn(const std::string& name) const;

  void SetPrimaryKey(std::vector<size_t> ordinals) {
    key_ordinals_ = std::move(ordinals);
  }
  const std::vector<size_t>& key_ordinals() const { return key_ordinals_; }
  bool HasPrimaryKey() const { return !key_ordinals_.empty(); }

  /// Extracts the primary-key tuple from a full row.
  KeyTuple ExtractKey(const Row& row) const;
  /// Extracts an arbitrary column subset (for secondary index keys).
  static KeyTuple ExtractColumns(const Row& row,
                                 const std::vector<size_t>& ordinals);

  /// Checks arity, types, nullability and max lengths of a row against the
  /// schema. Hidden/dropped columns are expected to be present (full
  /// physical rows); use PadRow to extend an application row first.
  Status ValidateRow(const Row& row) const;

  /// Extends an application-visible row with NULLs for hidden and dropped
  /// columns, producing a full physical row. The application row must list
  /// values for visible columns in ordinal order.
  Result<Row> PadRow(const Row& user_row) const;

  /// Ordinals of columns visible to applications (not hidden, not dropped).
  std::vector<size_t> VisibleOrdinals() const;

  uint32_t next_column_id() const { return next_column_id_; }
  void set_next_column_id(uint32_t id) { next_column_id_ = id; }

 private:
  std::vector<ColumnDef> columns_;
  std::vector<size_t> key_ordinals_;
  uint32_t next_column_id_ = 1;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_CATALOG_SCHEMA_H_
