#include "catalog/row.h"

namespace sqlledger {

void EncodeRow(const Row& row, std::vector<uint8_t>* dst) {
  PutVarint32(dst, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) v.EncodeTo(dst);
}

Result<Row> DecodeRow(Decoder* dec) {
  auto count = dec->GetVarint32();
  if (!count.ok()) return count.status();
  Row row;
  row.reserve(*count);
  for (uint32_t i = 0; i < *count; i++) {
    auto v = Value::DecodeFrom(dec);
    if (!v.ok()) return v.status();
    row.push_back(std::move(*v));
  }
  return row;
}

size_t RowPayloadBytes(const Row& row) {
  size_t total = 0;
  for (const Value& v : row) {
    if (v.is_null()) continue;
    size_t w = DataTypeFixedWidth(v.type());
    total += w > 0 ? w : v.string_value().size();
  }
  return total;
}

}  // namespace sqlledger
