#include "catalog/schema.h"

namespace sqlledger {

size_t Schema::AddColumn(const std::string& name, DataType type, bool nullable,
                         uint32_t max_length, bool hidden) {
  ColumnDef col;
  col.column_id = next_column_id_++;
  col.name = name;
  col.type = type;
  col.nullable = nullable;
  col.max_length = max_length;
  col.hidden = hidden;
  columns_.push_back(std::move(col));
  return columns_.size() - 1;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); i++) {
    if (!columns_[i].dropped && columns_[i].name == name)
      return static_cast<int>(i);
  }
  return -1;
}

KeyTuple Schema::ExtractKey(const Row& row) const {
  return ExtractColumns(row, key_ordinals_);
}

KeyTuple Schema::ExtractColumns(const Row& row,
                                const std::vector<size_t>& ordinals) {
  KeyTuple key;
  key.reserve(ordinals.size());
  for (size_t ord : ordinals) key.push_back(row[ord]);
  return key;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size())
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  for (size_t i = 0; i < columns_.size(); i++) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable && !col.dropped)
        return Status::InvalidArgument("NULL in non-nullable column '" +
                                       col.name + "'");
      continue;
    }
    if (v.type() != col.type)
      return Status::InvalidArgument(
          "type mismatch in column '" + col.name + "': expected " +
          DataTypeName(col.type) + ", got " + DataTypeName(v.type()));
    if (col.max_length > 0 && (col.type == DataType::kVarchar ||
                               col.type == DataType::kVarbinary) &&
        v.string_value().size() > col.max_length)
      return Status::InvalidArgument("value too long for column '" +
                                     col.name + "'");
  }
  return Status::OK();
}

Result<Row> Schema::PadRow(const Row& user_row) const {
  Row full;
  full.reserve(columns_.size());
  size_t next_user = 0;
  for (const ColumnDef& col : columns_) {
    if (col.hidden || col.dropped) {
      full.push_back(Value::Null(col.type));
    } else {
      if (next_user >= user_row.size())
        return Status::InvalidArgument("too few values for visible columns");
      full.push_back(user_row[next_user++]);
    }
  }
  if (next_user != user_row.size())
    return Status::InvalidArgument("too many values for visible columns");
  return full;
}

std::vector<size_t> Schema::VisibleOrdinals() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); i++) {
    if (!columns_[i].hidden && !columns_[i].dropped) out.push_back(i);
  }
  return out;
}

}  // namespace sqlledger
