// Typed SQL values. The type system intentionally mirrors the paper's
// examples (§3.2 uses INT vs SMALLINT metadata-swap attacks), so each type
// carries a distinct wire id that participates in row hashing.

#ifndef SQLLEDGER_CATALOG_VALUE_H_
#define SQLLEDGER_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/slice.h"

namespace sqlledger {

/// SQL data types supported by the engine. The numeric values are part of
/// the canonical row serialization format and must never be renumbered.
enum class DataType : uint8_t {
  kBool = 1,
  kSmallInt = 2,   // 16-bit signed
  kInt = 3,        // 32-bit signed
  kBigInt = 4,     // 64-bit signed
  kDouble = 5,
  kVarchar = 6,    // variable-length UTF-8 text
  kVarbinary = 7,  // variable-length bytes
  kTimestamp = 8,  // microseconds since Unix epoch, 64-bit signed
};

const char* DataTypeName(DataType t);
/// Fixed width in bytes, or 0 for variable-length types.
size_t DataTypeFixedWidth(DataType t);

/// A single typed, nullable SQL value.
class Value {
 public:
  /// NULL of the given type.
  static Value Null(DataType type);
  static Value Bool(bool v);
  static Value SmallInt(int16_t v);
  static Value Int(int32_t v);
  static Value BigInt(int64_t v);
  static Value Double(double v);
  static Value Varchar(std::string v);
  static Value Varbinary(std::vector<uint8_t> v);
  static Value Timestamp(int64_t micros);

  Value() : type_(DataType::kInt), null_(true) {}

  DataType type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return int_ != 0; }
  int16_t smallint_value() const { return static_cast<int16_t>(int_); }
  int32_t int_value() const { return static_cast<int32_t>(int_); }
  int64_t bigint_value() const { return int_; }
  /// Integral content regardless of width (bool/smallint/int/bigint/ts).
  int64_t AsInt64() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return str_; }
  Slice binary_value() const { return Slice(str_); }

  /// Total ordering used by index keys: NULL < everything; values of
  /// integral types compare numerically across widths; cross-kind
  /// comparisons order by type id (never expected in well-typed keys).
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable form for views and examples, e.g. 42, 'abc', NULL.
  std::string ToString() const;

  /// Checked cast to a different type (used by ALTER COLUMN, §3.5.3).
  Result<Value> CastTo(DataType target) const;

  /// Compact binary encoding used by WAL records and checkpoints (NOT the
  /// canonical ledger hash format — see ledger/row_serializer.h for that).
  void EncodeTo(std::vector<uint8_t>* dst) const;
  static Result<Value> DecodeFrom(class Decoder* dec);

 private:
  DataType type_;
  bool null_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;  // varchar bytes or varbinary bytes
};

/// A row is a vector of values, positionally matching its table's schema.
using Row = std::vector<Value>;

/// Index/primary keys are value tuples with lexicographic ordering.
using KeyTuple = std::vector<Value>;

/// Lexicographic comparison of two value tuples.
int CompareKeys(const KeyTuple& a, const KeyTuple& b);

struct KeyTupleLess {
  bool operator()(const KeyTuple& a, const KeyTuple& b) const {
    return CompareKeys(a, b) < 0;
  }
};

}  // namespace sqlledger

#endif  // SQLLEDGER_CATALOG_VALUE_H_
