#include "catalog/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "util/coding.h"

namespace sqlledger {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kSmallInt:
      return "SMALLINT";
    case DataType::kInt:
      return "INT";
    case DataType::kBigInt:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kVarbinary:
      return "VARBINARY";
    case DataType::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

size_t DataTypeFixedWidth(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kSmallInt:
      return 2;
    case DataType::kInt:
      return 4;
    case DataType::kBigInt:
    case DataType::kTimestamp:
    case DataType::kDouble:
      return 8;
    case DataType::kVarchar:
    case DataType::kVarbinary:
      return 0;
  }
  return 0;
}

Value Value::Null(DataType type) {
  Value v;
  v.type_ = type;
  v.null_ = true;
  return v;
}
Value Value::Bool(bool b) {
  Value v;
  v.type_ = DataType::kBool;
  v.null_ = false;
  v.int_ = b ? 1 : 0;
  return v;
}
Value Value::SmallInt(int16_t i) {
  Value v;
  v.type_ = DataType::kSmallInt;
  v.null_ = false;
  v.int_ = i;
  return v;
}
Value Value::Int(int32_t i) {
  Value v;
  v.type_ = DataType::kInt;
  v.null_ = false;
  v.int_ = i;
  return v;
}
Value Value::BigInt(int64_t i) {
  Value v;
  v.type_ = DataType::kBigInt;
  v.null_ = false;
  v.int_ = i;
  return v;
}
Value Value::Double(double d) {
  Value v;
  v.type_ = DataType::kDouble;
  v.null_ = false;
  v.double_ = d;
  return v;
}
Value Value::Varchar(std::string s) {
  Value v;
  v.type_ = DataType::kVarchar;
  v.null_ = false;
  v.str_ = std::move(s);
  return v;
}
Value Value::Varbinary(std::vector<uint8_t> b) {
  Value v;
  v.type_ = DataType::kVarbinary;
  v.null_ = false;
  v.str_.assign(reinterpret_cast<const char*>(b.data()), b.size());
  return v;
}
Value Value::Timestamp(int64_t micros) {
  Value v;
  v.type_ = DataType::kTimestamp;
  v.null_ = false;
  v.int_ = micros;
  return v;
}

namespace {
bool IsIntegralType(DataType t) {
  return t == DataType::kBool || t == DataType::kSmallInt ||
         t == DataType::kInt || t == DataType::kBigInt ||
         t == DataType::kTimestamp;
}
}  // namespace

int Value::Compare(const Value& other) const {
  // NULLs sort first; two NULLs are equal regardless of type.
  if (null_ && other.null_) return 0;
  if (null_) return -1;
  if (other.null_) return 1;

  bool a_int = IsIntegralType(type_), b_int = IsIntegralType(other.type_);
  if (a_int && b_int) {
    if (int_ < other.int_) return -1;
    if (int_ > other.int_) return 1;
    return 0;
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case DataType::kDouble:
      if (double_ < other.double_) return -1;
      if (double_ > other.double_) return 1;
      return 0;
    case DataType::kVarchar:
    case DataType::kVarbinary: {
      int r = str_.compare(other.str_);
      return r < 0 ? -1 : (r > 0 ? 1 : 0);
    }
    default:
      return 0;  // unreachable: integral handled above
  }
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return int_ ? "TRUE" : "FALSE";
    case DataType::kSmallInt:
    case DataType::kInt:
    case DataType::kBigInt:
    case DataType::kTimestamp:
      return std::to_string(int_);
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case DataType::kVarchar:
      return "'" + str_ + "'";
    case DataType::kVarbinary: {
      std::string out = "0x";
      static const char kDigits[] = "0123456789abcdef";
      for (unsigned char c : str_) {
        out.push_back(kDigits[c >> 4]);
        out.push_back(kDigits[c & 0xF]);
      }
      return out;
    }
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (null_) return Value::Null(target);
  if (type_ == target) return *this;

  if (IsIntegralType(type_)) {
    int64_t v = int_;
    switch (target) {
      case DataType::kBool:
        return Value::Bool(v != 0);
      case DataType::kSmallInt:
        if (v < std::numeric_limits<int16_t>::min() ||
            v > std::numeric_limits<int16_t>::max())
          return Status::InvalidArgument("value out of SMALLINT range");
        return Value::SmallInt(static_cast<int16_t>(v));
      case DataType::kInt:
        if (v < std::numeric_limits<int32_t>::min() ||
            v > std::numeric_limits<int32_t>::max())
          return Status::InvalidArgument("value out of INT range");
        return Value::Int(static_cast<int32_t>(v));
      case DataType::kBigInt:
        return Value::BigInt(v);
      case DataType::kTimestamp:
        return Value::Timestamp(v);
      case DataType::kDouble:
        return Value::Double(static_cast<double>(v));
      case DataType::kVarchar:
        return Value::Varchar(std::to_string(v));
      default:
        break;
    }
  }
  if (type_ == DataType::kDouble) {
    switch (target) {
      case DataType::kBigInt:
        return Value::BigInt(static_cast<int64_t>(double_));
      case DataType::kInt: {
        double d = double_;
        if (d < std::numeric_limits<int32_t>::min() ||
            d > std::numeric_limits<int32_t>::max())
          return Status::InvalidArgument("value out of INT range");
        return Value::Int(static_cast<int32_t>(d));
      }
      case DataType::kVarchar:
        return Value::Varchar(ToString());
      default:
        break;
    }
  }
  if (type_ == DataType::kVarchar && target == DataType::kVarbinary) {
    return Value::Varbinary(
        std::vector<uint8_t>(str_.begin(), str_.end()));
  }
  if (type_ == DataType::kVarbinary && target == DataType::kVarchar) {
    return Value::Varchar(str_);
  }
  return Status::NotSupported(std::string("cannot cast ") +
                              DataTypeName(type_) + " to " +
                              DataTypeName(target));
}

void Value::EncodeTo(std::vector<uint8_t>* dst) const {
  dst->push_back(static_cast<uint8_t>(type_));
  dst->push_back(null_ ? 1 : 0);
  if (null_) return;
  switch (type_) {
    case DataType::kBool:
    case DataType::kSmallInt:
    case DataType::kInt:
    case DataType::kBigInt:
    case DataType::kTimestamp:
      PutFixed64(dst, static_cast<uint64_t>(int_));
      break;
    case DataType::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &double_, 8);
      PutFixed64(dst, bits);
      break;
    }
    case DataType::kVarchar:
    case DataType::kVarbinary:
      PutLengthPrefixed(dst, Slice(str_));
      break;
  }
}

Result<Value> Value::DecodeFrom(Decoder* dec) {
  auto type_byte = dec->GetBytes(1);
  if (!type_byte.ok()) return type_byte.status();
  auto null_byte = dec->GetBytes(1);
  if (!null_byte.ok()) return null_byte.status();
  DataType type = static_cast<DataType>((*type_byte)[0]);
  if ((*type_byte)[0] < 1 || (*type_byte)[0] > 8)
    return Status::Corruption("invalid data type id in encoded value");
  bool is_null = (*null_byte)[0] != 0;
  if (is_null) return Value::Null(type);

  switch (type) {
    case DataType::kBool:
    case DataType::kSmallInt:
    case DataType::kInt:
    case DataType::kBigInt:
    case DataType::kTimestamp: {
      auto v = dec->GetFixed64();
      if (!v.ok()) return v.status();
      Value out;
      out.type_ = type;
      out.null_ = false;
      out.int_ = static_cast<int64_t>(*v);
      return out;
    }
    case DataType::kDouble: {
      auto v = dec->GetFixed64();
      if (!v.ok()) return v.status();
      double d;
      uint64_t bits = *v;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case DataType::kVarchar:
    case DataType::kVarbinary: {
      auto s = dec->GetLengthPrefixed();
      if (!s.ok()) return s.status();
      Value out;
      out.type_ = type;
      out.null_ = false;
      out.str_ = s->ToString();
      return out;
    }
  }
  return Status::Corruption("unreachable value decode");
}

int CompareKeys(const KeyTuple& a, const KeyTuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; i++) {
    int r = a[i].Compare(b[i]);
    if (r != 0) return r;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

}  // namespace sqlledger
