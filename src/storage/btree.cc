#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace sqlledger {

struct BTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTree::LeafNode : BTree::Node {
  LeafNode() : Node(true) {}
  std::vector<KeyTuple> keys;
  std::vector<Row> values;
  LeafNode* prev = nullptr;
  LeafNode* next = nullptr;
};

struct BTree::InternalNode : BTree::Node {
  InternalNode() : Node(false) {}
  // children.size() == keys.size() + 1. keys[i] separates children[i]
  // (strictly less) from children[i+1] (greater or equal).
  std::vector<KeyTuple> keys;
  std::vector<Node*> children;
};

namespace {
/// Index of the first element in `keys` >= `key`.
size_t LowerBound(const std::vector<KeyTuple>& keys, const KeyTuple& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareKeys(keys[mid], key) < 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Index of the first element in `keys` > `key` (child index for descent).
size_t UpperBound(const std::vector<KeyTuple>& keys, const KeyTuple& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareKeys(keys[mid], key) <= 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}
}  // namespace

BTree::BTree(size_t fanout)
    : fanout_(fanout < 4 ? 4 : fanout), root_(new LeafNode()), size_(0),
      height_(1) {}

BTree::~BTree() { FreeNode(root_); }

void BTree::FreeNode(Node* node) {
  if (!node->is_leaf) {
    auto* in = static_cast<InternalNode*>(node);
    for (Node* child : in->children) FreeNode(child);
  }
  if (node->is_leaf)
    delete static_cast<LeafNode*>(node);
  else
    delete static_cast<InternalNode*>(node);
}

void BTree::Clear() {
  FreeNode(root_);
  root_ = new LeafNode();
  size_ = 0;
  height_ = 1;
}

BTree::LeafNode* BTree::DescendWithPath(
    const KeyTuple& key, std::vector<InternalNode*>* path) const {
  Node* node = root_;
  while (!node->is_leaf) {
    auto* in = static_cast<InternalNode*>(node);
    if (path) path->push_back(in);
    node = in->children[UpperBound(in->keys, key)];
  }
  return static_cast<LeafNode*>(node);
}

BTree::LeafNode* BTree::FindLeaf(const KeyTuple& key) const {
  return DescendWithPath(key, nullptr);
}

const Row* BTree::Get(const KeyTuple& key) const {
  LeafNode* leaf = FindLeaf(key);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && CompareKeys(leaf->keys[pos], key) == 0)
    return &leaf->values[pos];
  return nullptr;
}

Row* BTree::MutableGet(const KeyTuple& key) {
  LeafNode* leaf = FindLeaf(key);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && CompareKeys(leaf->keys[pos], key) == 0)
    return &leaf->values[pos];
  return nullptr;
}

Status BTree::Insert(const KeyTuple& key, Row value) {
  std::vector<InternalNode*> path;
  LeafNode* leaf = DescendWithPath(key, &path);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && CompareKeys(leaf->keys[pos], key) == 0)
    return Status::AlreadyExists("duplicate key");
  leaf->keys.insert(leaf->keys.begin() + pos, key);
  leaf->values.insert(leaf->values.begin() + pos, std::move(value));
  size_++;
  if (leaf->keys.size() > fanout_) SplitLeaf(leaf, &path);
  return Status::OK();
}

void BTree::Upsert(const KeyTuple& key, Row value) {
  std::vector<InternalNode*> path;
  LeafNode* leaf = DescendWithPath(key, &path);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && CompareKeys(leaf->keys[pos], key) == 0) {
    leaf->values[pos] = std::move(value);
    return;
  }
  leaf->keys.insert(leaf->keys.begin() + pos, key);
  leaf->values.insert(leaf->values.begin() + pos, std::move(value));
  size_++;
  if (leaf->keys.size() > fanout_) SplitLeaf(leaf, &path);
}

Status BTree::Update(const KeyTuple& key, Row value) {
  LeafNode* leaf = FindLeaf(key);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos >= leaf->keys.size() || CompareKeys(leaf->keys[pos], key) != 0)
    return Status::NotFound("key not found");
  leaf->values[pos] = std::move(value);
  return Status::OK();
}

void BTree::SplitLeaf(LeafNode* leaf, std::vector<InternalNode*>* path) {
  auto* right = new LeafNode();
  size_t mid = leaf->keys.size() / 2;
  right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                     std::make_move_iterator(leaf->keys.end()));
  right->values.assign(std::make_move_iterator(leaf->values.begin() + mid),
                       std::make_move_iterator(leaf->values.end()));
  leaf->keys.resize(mid);
  leaf->values.resize(mid);

  right->next = leaf->next;
  right->prev = leaf;
  if (leaf->next) leaf->next->prev = right;
  leaf->next = right;

  KeyTuple separator = right->keys.front();
  if (path->empty()) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(std::move(separator));
    new_root->children.push_back(leaf);
    new_root->children.push_back(right);
    root_ = new_root;
    height_++;
    return;
  }
  InternalNode* parent = path->back();
  path->pop_back();
  size_t pos = UpperBound(parent->keys, separator);
  parent->keys.insert(parent->keys.begin() + pos, std::move(separator));
  parent->children.insert(parent->children.begin() + pos + 1, right);
  if (parent->keys.size() > fanout_) SplitInternal(parent, path);
}

void BTree::SplitInternal(InternalNode* node,
                          std::vector<InternalNode*>* path) {
  auto* right = new InternalNode();
  size_t mid = node->keys.size() / 2;
  KeyTuple separator = node->keys[mid];  // moves up, not into right

  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);

  if (path->empty()) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(std::move(separator));
    new_root->children.push_back(node);
    new_root->children.push_back(right);
    root_ = new_root;
    height_++;
    return;
  }
  InternalNode* parent = path->back();
  path->pop_back();
  size_t pos = UpperBound(parent->keys, separator);
  parent->keys.insert(parent->keys.begin() + pos, std::move(separator));
  parent->children.insert(parent->children.begin() + pos + 1, right);
  if (parent->keys.size() > fanout_) SplitInternal(parent, path);
}

Status BTree::Delete(const KeyTuple& key) {
  std::vector<InternalNode*> path;
  LeafNode* leaf = DescendWithPath(key, &path);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos >= leaf->keys.size() || CompareKeys(leaf->keys[pos], key) != 0)
    return Status::NotFound("key not found");
  leaf->keys.erase(leaf->keys.begin() + pos);
  leaf->values.erase(leaf->values.begin() + pos);
  size_--;
  if (leaf->keys.empty() && leaf != root_) RemoveEmptyLeaf(leaf, &path);
  return Status::OK();
}

void BTree::RemoveEmptyLeaf(LeafNode* leaf, std::vector<InternalNode*>* path) {
  // Unlink from the leaf chain.
  if (leaf->prev) leaf->prev->next = leaf->next;
  if (leaf->next) leaf->next->prev = leaf->prev;

  // Remove the child pointer (and its separator) from the parent chain,
  // collapsing now-childless ancestors.
  Node* child = leaf;
  while (!path->empty()) {
    InternalNode* parent = path->back();
    path->pop_back();
    size_t ci = 0;
    while (ci < parent->children.size() && parent->children[ci] != child) ci++;
    assert(ci < parent->children.size());
    parent->children.erase(parent->children.begin() + ci);
    if (!parent->keys.empty())
      parent->keys.erase(parent->keys.begin() + (ci == 0 ? 0 : ci - 1));
    if (child->is_leaf)
      delete static_cast<LeafNode*>(child);
    else
      delete static_cast<InternalNode*>(child);
    if (!parent->children.empty()) {
      // If the (non-root) parent is left with a single child, collapse it
      // into the grandparent to keep the tree slim.
      if (parent->children.size() == 1 && parent != root_) {
        InternalNode* grand = path->back();
        size_t gi = 0;
        while (gi < grand->children.size() && grand->children[gi] != parent)
          gi++;
        assert(gi < grand->children.size());
        grand->children[gi] = parent->children[0];
        parent->children.clear();
        delete parent;
        return;
      }
      if (parent == root_ && parent->children.size() == 1) {
        root_ = parent->children[0];
        height_--;
        parent->children.clear();
        delete parent;
      }
      return;
    }
    child = parent;  // parent became empty; remove it from its own parent
  }
  // The whole tree emptied out: reset to a single empty leaf root.
  root_ = new LeafNode();
  height_ = 1;
}

bool BTree::Iterator::Valid() const {
  return ref_.leaf != nullptr &&
         ref_.pos < static_cast<const LeafNode*>(ref_.leaf)->keys.size();
}

void BTree::Iterator::Next() {
  const auto* leaf = static_cast<const LeafNode*>(ref_.leaf);
  ref_.pos++;
  while (leaf != nullptr && ref_.pos >= leaf->keys.size()) {
    leaf = leaf->next;
    ref_.pos = 0;
  }
  ref_.leaf = leaf;
}

const KeyTuple& BTree::Iterator::key() const {
  return static_cast<const LeafNode*>(ref_.leaf)->keys[ref_.pos];
}

const Row& BTree::Iterator::value() const {
  return static_cast<const LeafNode*>(ref_.leaf)->values[ref_.pos];
}

BTree::Iterator BTree::Begin() const {
  const Node* node = root_;
  while (!node->is_leaf)
    node = static_cast<const InternalNode*>(node)->children.front();
  Iterator it;
  it.ref_.leaf = node;
  it.ref_.pos = 0;
  // Skip an empty root leaf.
  if (static_cast<const LeafNode*>(node)->keys.empty()) it.ref_.leaf = nullptr;
  return it;
}

BTree::Iterator BTree::Seek(const KeyTuple& key) const {
  LeafNode* leaf = FindLeaf(key);
  size_t pos = LowerBound(leaf->keys, key);
  Iterator it;
  it.ref_.leaf = leaf;
  it.ref_.pos = pos;
  const LeafNode* l = leaf;
  while (l != nullptr && it.ref_.pos >= l->keys.size()) {
    l = l->next;
    it.ref_.pos = 0;
  }
  it.ref_.leaf = l;
  return it;
}

Status BTree::CheckInvariants() const {
  // Walk the leaf chain: keys strictly increasing, count matches size_.
  size_t count = 0;
  const KeyTuple* prev = nullptr;
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    if (prev != nullptr && CompareKeys(*prev, it.key()) >= 0)
      return Status::Corruption("keys out of order in leaf chain");
    prev = &it.key();
    count++;
  }
  if (count != size_)
    return Status::Corruption("size mismatch: counted " +
                              std::to_string(count) + ", recorded " +
                              std::to_string(size_));
  return Status::OK();
}

}  // namespace sqlledger
