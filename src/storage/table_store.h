// TableStore: the physical representation of one table — a clustered
// B+-tree (primary key -> full row) plus any non-clustered indexes
// (index key + primary key -> primary key). Non-clustered indexes duplicate
// base-table data and can be tampered with independently, which is why the
// ledger verifier checks them against the base table (paper §3.4.1
// invariant 5).
//
// Thread safety: the mutating operations and the *Copy readers latch a
// per-table reader/writer latch internally, so point reads and writes of
// different rows may run concurrently under row-level transaction locks.
// The iterator-returning Scan/Seek and pointer-returning Get are unlatched:
// callers must exclude writers for their duration (a table-level S lock, a
// database quiesce, or single-threaded context).

#ifndef SQLLEDGER_STORAGE_TABLE_STORE_H_
#define SQLLEDGER_STORAGE_TABLE_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/btree.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlledger {

/// A non-clustered index over a subset of columns. The stored key is the
/// index columns followed by the primary-key columns, which both makes
/// non-unique indexes representable and gives deterministic iteration
/// order for verification.
struct SecondaryIndex {
  std::string name;
  std::vector<size_t> ordinals;  // indexed column ordinals
  bool unique = false;
  BTree tree;

  SecondaryIndex() : tree(64) {}
};

class TableStore {
 public:
  TableStore(uint32_t table_id, std::string name, Schema schema);

  uint32_t table_id() const { return table_id_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t row_count() const {
    ReaderMutexLock latch(&latch_);
    return clustered_.size();
  }

  // ---- Row operations. Rows are full physical rows (hidden columns
  // included); all secondary indexes are maintained. ----

  /// Fails with AlreadyExists on primary-key duplicates or unique-index
  /// violations (no partial effects in that case).
  Status Insert(const Row& row);
  /// Replaces the row whose primary key matches `row`'s key columns.
  Status Update(const Row& row);
  /// Removes the row with the given primary key; NotFound if absent.
  Status Delete(const KeyTuple& key);

  /// Point lookup by primary key; pointer valid until next mutation.
  /// Unlatched BY CONTRACT (class comment): callers exclude writers via a
  /// table S lock, a quiesce, or single-threaded context, which the
  /// analysis cannot see — hence the annotation escape.
  const Row* Get(const KeyTuple& key) const NO_THREAD_SAFETY_ANALYSIS;

  /// Latched point lookup returning a copy; safe under concurrent writers
  /// of other rows.
  std::optional<Row> GetCopy(const KeyTuple& key) const;

  /// Latched prefix seek returning a copy of the first row whose clustered
  /// key starts with `prefix`.
  std::optional<Row> SeekFirstCopy(const KeyTuple& prefix) const;

  /// Ordered scan over the clustered index. Unlatched BY CONTRACT (class
  /// comment): the returned iterator outlives any latch we could take here,
  /// so callers must exclude writers for its lifetime — invisible to the
  /// analysis, hence the escapes.
  BTree::Iterator Scan() const NO_THREAD_SAFETY_ANALYSIS {
    return clustered_.Begin();
  }
  /// Same unlatched contract as Scan().
  BTree::Iterator Seek(const KeyTuple& key) const NO_THREAD_SAFETY_ANALYSIS {
    return clustered_.Seek(key);
  }

  // ---- Index management (physical schema changes, paper §3.5). ----

  Status CreateIndex(const std::string& index_name,
                     const std::vector<size_t>& ordinals, bool unique);
  Status DropIndex(const std::string& index_name);
  /// Unlatched BY CONTRACT like Scan: the returned reference outlives any
  /// latch; used by the verifier under quiesce and by DDL under a table X
  /// lock.
  const std::vector<std::unique_ptr<SecondaryIndex>>& indexes() const
      NO_THREAD_SAFETY_ANALYSIS {
    return indexes_;
  }
  SecondaryIndex* FindIndex(const std::string& index_name);

  /// Appends `value` as a new trailing cell of every physical row. Used by
  /// ADD COLUMN (paper §3.5.1): the schema must already list the new
  /// column. Keys and secondary indexes are unaffected.
  void ExtendRows(const Value& value);

  /// Used only by tamper-simulation tests and benches: mutate index/base
  /// rows directly, bypassing all maintenance (the storage-level attacker
  /// of the paper's threat model §2.5.2). Unlatched by design — the
  /// attacker does not honor latches.
  BTree* mutable_clustered() NO_THREAD_SAFETY_ANALYSIS { return &clustered_; }

  KeyTuple KeyOf(const Row& row) const { return schema_.ExtractKey(row); }

 private:
  KeyTuple IndexKeyOf(const SecondaryIndex& idx, const Row& row) const;
  SecondaryIndex* FindIndexLocked(const std::string& index_name)
      REQUIRES_SHARED(latch_);

  uint32_t table_id_;
  std::string name_;
  // schema_ is mutated only by DDL under a table X lock (2PL protocol, not
  // latch_) — see DESIGN.md §8.
  Schema schema_;
  // Physical consistency, not isolation.
  mutable SharedMutex latch_;
  BTree clustered_ GUARDED_BY(latch_);
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_ GUARDED_BY(latch_);
};

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_TABLE_STORE_H_
