#include "storage/wal.h"

#include <unistd.h>

#include <cstring>

#include "catalog/row.h"
#include "util/coding.h"

namespace sqlledger {

void WalCommitRecord::EncodeTo(std::vector<uint8_t>* dst) const {
  PutVarint64(dst, txn_id);
  PutFixed64(dst, static_cast<uint64_t>(commit_ts_micros));
  PutLengthPrefixed(dst, Slice(user_name));
  PutVarint64(dst, block_id);
  PutVarint64(dst, block_ordinal);
  PutVarint32(dst, static_cast<uint32_t>(table_roots.size()));
  for (const auto& [table_id, root] : table_roots) {
    PutVarint32(dst, table_id);
    dst->insert(dst->end(), root.bytes.begin(), root.bytes.end());
  }
  PutVarint32(dst, static_cast<uint32_t>(ops.size()));
  for (const WalOp& op : ops) {
    dst->push_back(static_cast<uint8_t>(op.type));
    PutVarint32(dst, op.table_id);
    EncodeRow(op.key, dst);
    EncodeRow(op.new_row, dst);
  }
}

Result<WalCommitRecord> WalCommitRecord::Decode(Slice payload) {
  Decoder dec(payload);
  WalCommitRecord rec;

  auto txn_id = dec.GetVarint64();
  if (!txn_id.ok()) return txn_id.status();
  rec.txn_id = *txn_id;

  auto ts = dec.GetFixed64();
  if (!ts.ok()) return ts.status();
  rec.commit_ts_micros = static_cast<int64_t>(*ts);

  auto user = dec.GetLengthPrefixed();
  if (!user.ok()) return user.status();
  rec.user_name = user->ToString();

  auto block_id = dec.GetVarint64();
  if (!block_id.ok()) return block_id.status();
  rec.block_id = *block_id;

  auto ordinal = dec.GetVarint64();
  if (!ordinal.ok()) return ordinal.status();
  rec.block_ordinal = *ordinal;

  auto num_roots = dec.GetVarint32();
  if (!num_roots.ok()) return num_roots.status();
  rec.table_roots.reserve(*num_roots);
  for (uint32_t i = 0; i < *num_roots; i++) {
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    auto hash_bytes = dec.GetBytes(32);
    if (!hash_bytes.ok()) return hash_bytes.status();
    Hash256 root;
    std::memcpy(root.bytes.data(), hash_bytes->data(), 32);
    rec.table_roots.emplace_back(*table_id, root);
  }

  auto num_ops = dec.GetVarint32();
  if (!num_ops.ok()) return num_ops.status();
  rec.ops.reserve(*num_ops);
  for (uint32_t i = 0; i < *num_ops; i++) {
    auto type_byte = dec.GetBytes(1);
    if (!type_byte.ok()) return type_byte.status();
    WalOp op;
    uint8_t t = (*type_byte)[0];
    if (t < 1 || t > 3) return Status::Corruption("bad WAL op type");
    op.type = static_cast<WalOpType>(t);
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    op.table_id = *table_id;
    auto key = DecodeRow(&dec);
    if (!key.ok()) return key.status();
    op.key = std::move(*key);
    auto new_row = DecodeRow(&dec);
    if (!new_row.ok()) return new_row.status();
    op.new_row = std::move(*new_row);
    rec.ops.push_back(std::move(op));
  }
  if (!dec.done()) return Status::Corruption("trailing bytes in WAL record");
  return rec;
}

Wal::Wal(std::string path, std::FILE* file, WalOptions options)
    : path_(std::move(path)), file_(file), options_(options) {}

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       WalOptions options) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr)
    return Status::IOError("cannot open WAL file: " + path);
  return std::unique_ptr<Wal>(new Wal(path, f, options));
}

Status Wal::AppendRecord(Slice payload) {
  std::vector<uint8_t> header;
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  PutFixed32(&header, Crc32c(payload));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size())
    return Status::IOError("WAL write failed");
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  bytes_written_ += header.size() + payload.size();
  if (options_.sync) return Sync();
  return Status::OK();
}

Status Wal::AppendCommit(const WalCommitRecord& record) {
  std::vector<uint8_t> payload;
  record.EncodeTo(&payload);
  return AppendRecord(Slice(payload));
}

Status Wal::Reset() {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr)
    return Status::IOError("cannot truncate WAL file: " + path_);
  bytes_written_ = 0;
  return Status::OK();
}

Status Wal::Sync() {
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  // fileno+fsync keeps this portable across POSIX systems.
  if (fsync(fileno(file_)) != 0) return Status::IOError("WAL fsync failed");
  return Status::OK();
}

Result<uint64_t> Wal::Replay(
    const std::string& path,
    const std::function<Status(Slice payload)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return static_cast<uint64_t>(0);  // no log yet

  uint64_t records = 0;
  std::vector<uint8_t> buf;
  while (true) {
    uint8_t header[8];
    size_t n = std::fread(header, 1, 8, f);
    if (n < 8) break;  // clean EOF or torn header: stop
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; i++) len |= static_cast<uint32_t>(header[i]) << (8 * i);
    for (int i = 0; i < 4; i++)
      crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    if (len > (1u << 30)) break;  // implausible length: treat as torn tail
    buf.resize(len);
    if (std::fread(buf.data(), 1, len, f) != len) break;  // torn payload
    if (Crc32c(buf.data(), len) != crc) break;            // corrupt record
    Status st = fn(Slice(buf));
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    records++;
  }
  std::fclose(f);
  return records;
}

}  // namespace sqlledger
