#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "catalog/row.h"
#include "util/coding.h"

namespace sqlledger {

namespace {
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}
}  // namespace

size_t WalCommitRecord::EncodeTo(std::vector<uint8_t>* dst) const {
  PutVarint64(dst, txn_id);
  PutFixed64(dst, static_cast<uint64_t>(commit_ts_micros));
  PutLengthPrefixed(dst, Slice(user_name));
  // Fixed width so the group-commit leader can patch the slot in after
  // encoding (the slot is only known once the leader assigns it).
  size_t slot_offset = dst->size();
  PutFixed64(dst, block_id);
  PutFixed64(dst, block_ordinal);
  PutVarint32(dst, static_cast<uint32_t>(table_roots.size()));
  for (const auto& [table_id, root] : table_roots) {
    PutVarint32(dst, table_id);
    dst->insert(dst->end(), root.bytes.begin(), root.bytes.end());
  }
  PutVarint32(dst, static_cast<uint32_t>(ops.size()));
  for (const WalOp& op : ops) {
    dst->push_back(static_cast<uint8_t>(op.type));
    PutVarint32(dst, op.table_id);
    EncodeRow(op.key, dst);
    EncodeRow(op.new_row, dst);
  }
  return slot_offset;
}

void WalCommitRecord::PatchSlot(std::vector<uint8_t>* buf, size_t slot_offset,
                                uint64_t block_id, uint64_t block_ordinal) {
  std::vector<uint8_t> slot;
  slot.reserve(16);
  PutFixed64(&slot, block_id);
  PutFixed64(&slot, block_ordinal);
  std::memcpy(buf->data() + slot_offset, slot.data(), slot.size());
}

Result<WalCommitRecord> WalCommitRecord::Decode(Slice payload) {
  Decoder dec(payload);
  WalCommitRecord rec;

  auto txn_id = dec.GetVarint64();
  if (!txn_id.ok()) return txn_id.status();
  rec.txn_id = *txn_id;

  auto ts = dec.GetFixed64();
  if (!ts.ok()) return ts.status();
  rec.commit_ts_micros = static_cast<int64_t>(*ts);

  auto user = dec.GetLengthPrefixed();
  if (!user.ok()) return user.status();
  rec.user_name = user->ToString();

  auto block_id = dec.GetFixed64();
  if (!block_id.ok()) return block_id.status();
  rec.block_id = *block_id;

  auto ordinal = dec.GetFixed64();
  if (!ordinal.ok()) return ordinal.status();
  rec.block_ordinal = *ordinal;

  auto num_roots = dec.GetVarint32();
  if (!num_roots.ok()) return num_roots.status();
  rec.table_roots.reserve(*num_roots);
  for (uint32_t i = 0; i < *num_roots; i++) {
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    auto hash_bytes = dec.GetBytes(32);
    if (!hash_bytes.ok()) return hash_bytes.status();
    Hash256 root;
    std::memcpy(root.bytes.data(), hash_bytes->data(), 32);
    rec.table_roots.emplace_back(*table_id, root);
  }

  auto num_ops = dec.GetVarint32();
  if (!num_ops.ok()) return num_ops.status();
  rec.ops.reserve(*num_ops);
  for (uint32_t i = 0; i < *num_ops; i++) {
    auto type_byte = dec.GetBytes(1);
    if (!type_byte.ok()) return type_byte.status();
    WalOp op;
    uint8_t t = (*type_byte)[0];
    if (t < 1 || t > 3) return Status::Corruption("bad WAL op type");
    op.type = static_cast<WalOpType>(t);
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    op.table_id = *table_id;
    auto key = DecodeRow(&dec);
    if (!key.ok()) return key.status();
    op.key = std::move(*key);
    auto new_row = DecodeRow(&dec);
    if (!new_row.ok()) return new_row.status();
    op.new_row = std::move(*new_row);
    rec.ops.push_back(std::move(op));
  }
  if (!dec.done()) return Status::Corruption("trailing bytes in WAL record");
  return rec;
}

Wal::Wal(std::string path, std::unique_ptr<WritableFile> file,
         WalOptions options)
    : path_(std::move(path)),
      file_(std::move(file)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

Wal::~Wal() {
  // Destructor has nowhere to report; loss is bounded by the last Sync.
  if (file_ != nullptr) (void)file_->Close();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       WalOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  auto file = env->NewWritableFile(path, WritableFileOptions{});
  if (!file.ok())
    return Status::IOError("cannot open WAL file " + path + ": " +
                           file.status().message());
  return std::unique_ptr<Wal>(new Wal(path, std::move(*file), options));
}

Status Wal::Poison(Status error) {
  // First failure wins; it names the record at the hole.
  if (sticky_error_.ok())
    sticky_error_ = Status::IOError("WAL poisoned after lost write: " +
                                    error.ToString());
  return error;
}

Status Wal::AppendRecord(Slice payload) {
  return AppendBatch({payload});
}

void Wal::SetMetrics(MetricRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_append_micros_ = nullptr;
    m_sync_micros_ = nullptr;
    m_syncs_total_ = nullptr;
    m_bytes_total_ = nullptr;
    return;
  }
  m_append_micros_ = registry->GetHistogram("wal.append_micros");
  m_sync_micros_ = registry->GetHistogram("wal.sync_micros");
  m_syncs_total_ = registry->GetCounter("wal.syncs_total");
  m_bytes_total_ = registry->GetCounter("wal.bytes_total");
}

Status Wal::AppendBatch(const std::vector<Slice>& payloads) {
  if (payloads.empty()) return Status::OK();
  if (!sticky_error_.ok()) return sticky_error_;
  // All frames go out as one write so a torn append tears a suffix of
  // whole frames (plus at most one partial frame the replayer truncates),
  // never a header/payload split it would misparse. One trailing fsync
  // makes the whole group durable — this is where group commit amortizes
  // the sync cost across members.
  size_t total = 0;
  for (const Slice& p : payloads) total += 8 + p.size();
  std::vector<uint8_t> frames;
  frames.reserve(total);
  for (const Slice& p : payloads) {
    PutFixed32(&frames, static_cast<uint32_t>(p.size()));
    PutFixed32(&frames, Crc32c(p));
    frames.insert(frames.end(), p.data(), p.data() + p.size());
  }
  // Two latency sections when instrumented: the buffered write+flush
  // (wal.append_micros) and the trailing fsync (wal.sync_micros) — the
  // split Figure 7 cares about, since group commit amortizes only the
  // second. Uninstrumented WALs never read the metrics clock.
  const int64_t t0 = metrics_ != nullptr ? metrics_->NowMicros() : 0;
  Status st = file_->Append(Slice(frames));
  if (!st.ok()) return Poison(st);
  st = file_->Flush();
  if (!st.ok()) return Poison(st);
  bytes_written_ += frames.size();
  if (m_bytes_total_ != nullptr) m_bytes_total_->Add(frames.size());
  const int64_t t1 = metrics_ != nullptr ? metrics_->NowMicros() : 0;
  if (m_append_micros_ != nullptr)
    m_append_micros_->Record(static_cast<uint64_t>(std::max<int64_t>(0, t1 - t0)));
  if (options_.sync) {
    syncs_issued_++;
    if (m_syncs_total_ != nullptr) m_syncs_total_->Add();
    st = file_->Sync();
    if (!st.ok()) return Poison(st);
    if (m_sync_micros_ != nullptr) {
      m_sync_micros_->Record(static_cast<uint64_t>(
          std::max<int64_t>(0, metrics_->NowMicros() - t1)));
    }
  }
  return Status::OK();
}

Status Wal::AppendCommit(const WalCommitRecord& record) {
  std::vector<uint8_t> payload;
  record.EncodeTo(&payload);
  return AppendRecord(Slice(payload));
}

Status Wal::Reset() {
  // Every durable record was already fsynced by AppendRecord; a failed
  // close of the outgoing generation cannot lose committed data.
  (void)file_->Close();
  file_ = nullptr;
  // Keep the outgoing log as the fallback generation: if the checkpoint
  // just written turns out unreadable, recovery loads the previous
  // checkpoint and replays path.prev + path to reach the same state.
  Status st = env_->RenameFile(path_, path_ + ".prev");
  if (st.ok()) {
    auto file =
        env_->NewWritableFile(path_, WritableFileOptions{.truncate = true});
    if (file.ok()) {
      file_ = std::move(*file);
      st = env_->SyncDir(ParentDir(path_));
    } else {
      st = file.status();
    }
  }
  if (!st.ok()) {
    // No usable log file: poison so appends fail instead of vanishing.
    sticky_error_ =
        Status::IOError("WAL unavailable after failed reset: " + st.ToString());
    return st;
  }
  bytes_written_ = 0;
  sticky_error_ = Status::OK();  // fresh log, no hole to append past
  return Status::OK();
}

Status Wal::Sync() {
  if (!sticky_error_.ok()) return sticky_error_;
  SL_RETURN_IF_ERROR(file_->Flush());
  syncs_issued_++;
  if (m_syncs_total_ != nullptr) m_syncs_total_->Add();
  const int64_t t0 = metrics_ != nullptr ? metrics_->NowMicros() : 0;
  Status st = file_->Sync();
  if (!st.ok()) return Poison(st);
  if (m_sync_micros_ != nullptr) {
    m_sync_micros_->Record(static_cast<uint64_t>(
        std::max<int64_t>(0, metrics_->NowMicros() - t0)));
  }
  return Status::OK();
}

Result<uint64_t> Wal::Replay(
    const std::string& path,
    const std::function<Status(Slice payload)>& fn, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto file = env->NewSequentialFile(path);
  if (!file.ok()) {
    if (file.status().IsNotFound()) return static_cast<uint64_t>(0);
    return file.status();
  }

  uint64_t records = 0;
  std::vector<uint8_t> buf;
  while (true) {
    uint8_t header[8];
    auto n = (*file)->Read(8, header);
    if (!n.ok()) return n.status();
    if (*n < 8) break;  // clean EOF or torn header: stop
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; i++) len |= static_cast<uint32_t>(header[i]) << (8 * i);
    for (int i = 0; i < 4; i++)
      crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    if (len > (1u << 30)) break;  // implausible length: treat as torn tail
    buf.resize(len);
    auto got = (*file)->Read(len, buf.data());
    if (!got.ok()) return got.status();
    if (*got != len) break;                    // torn payload
    if (Crc32c(buf.data(), len) != crc) break;  // corrupt record
    SL_RETURN_IF_ERROR(fn(Slice(buf)));
    records++;
  }
  return records;
}

}  // namespace sqlledger
