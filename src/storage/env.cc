#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace sqlledger {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(Slice data) override {
    const uint8_t* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write to " + path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // unbuffered

  Status Sync() override {
    if (::fsync(fd_) != 0)
      return Status::IOError(ErrnoMessage("fsync " + path_));
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0)
      return Status::IOError(ErrnoMessage("close " + path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  explicit PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Result<size_t> Read(size_t n, uint8_t* scratch) override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::read(fd_, scratch + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("read " + path_));
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    return got;
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Status RemoveDirRecursive(Env* env, const std::string& dir) {
  if (!env->FileExists(dir)) return Status::OK();
  if (!env->IsDirectory(dir)) return env->RemoveFile(dir);
  auto children = env->GetChildren(dir);
  if (!children.ok()) return children.status();
  for (const std::string& name : *children) {
    const std::string path = dir + "/" + name;
    if (env->IsDirectory(path)) {
      SL_RETURN_IF_ERROR(RemoveDirRecursive(env, path));
    } else {
      SL_RETURN_IF_ERROR(env->RemoveFile(path));
    }
  }
  return env->RemoveDir(dir);
}

Status CopyDirRecursive(Env* env, const std::string& from,
                        const std::string& to) {
  if (!env->IsDirectory(from))
    return Status::InvalidArgument("copy source is not a directory: " + from);
  SL_RETURN_IF_ERROR(env->CreateDirs(to));
  auto children = env->GetChildren(from);
  if (!children.ok()) return children.status();
  for (const std::string& name : *children) {
    const std::string src = from + "/" + name;
    const std::string dst = to + "/" + name;
    if (env->IsDirectory(src)) {
      SL_RETURN_IF_ERROR(CopyDirRecursive(env, src, dst));
      continue;
    }
    auto data = env->ReadFile(src);
    if (!data.ok()) return data.status();
    WritableFileOptions opts;
    opts.truncate = true;
    auto file = env->NewWritableFile(dst, opts);
    if (!file.ok()) return file.status();
    SL_RETURN_IF_ERROR((*file)->Append(Slice(data->data(), data->size())));
    SL_RETURN_IF_ERROR((*file)->Sync());
    SL_RETURN_IF_ERROR((*file)->Close());
  }
  return env->SyncDir(to);
}

Result<std::vector<uint8_t>> Env::ReadFile(const std::string& path) {
  auto file = NewSequentialFile(path);
  if (!file.ok()) return file.status();
  std::vector<uint8_t> out;
  uint8_t buf[1 << 16];
  while (true) {
    auto n = (*file)->Read(sizeof(buf), buf);
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    out.insert(out.end(), buf, buf + *n);
  }
  return out;
}

// ---- PosixEnv ----

Result<std::unique_ptr<WritableFile>> PosixEnv::NewWritableFile(
    const std::string& path, const WritableFileOptions& opts) {
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  flags |= opts.truncate ? O_TRUNC : O_APPEND;
  if (opts.exclusive) flags |= O_EXCL;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (opts.exclusive && errno == EEXIST)
      return Status::AlreadyExists("file already exists: " + path);
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

Result<std::unique_ptr<SequentialFile>> PosixEnv::NewSequentialFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<SequentialFile>(new PosixSequentialFile(fd, path));
}

bool PosixEnv::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool PosixEnv::IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Result<uint64_t> PosixEnv::GetFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> PosixEnv::GetChildren(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return Status::IOError(ErrnoMessage("opendir " + dir));
  }
  std::vector<std::string> out;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

Status PosixEnv::CreateDirs(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t next = dir.find('/', pos);
    if (next == std::string::npos) next = dir.size();
    partial = dir.substr(0, next);
    pos = next + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
      return Status::IOError(ErrnoMessage("mkdir " + partial));
  }
  return Status::OK();
}

Status PosixEnv::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    return Status::IOError(ErrnoMessage("unlink " + path));
  return Status::OK();
}

Status PosixEnv::RemoveDir(const std::string& dir) {
  if (::rmdir(dir.c_str()) != 0 && errno != ENOENT)
    return Status::IOError(ErrnoMessage("rmdir " + dir));
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0)
    return Status::IOError(ErrnoMessage("rename " + from + " -> " + to));
  return Status::OK();
}

Status PosixEnv::TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    return Status::IOError(ErrnoMessage("truncate " + path));
  return Status::OK();
}

Status PosixEnv::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("open dir " + dir));
  Status st;
  if (::fsync(fd) != 0) st = Status::IOError(ErrnoMessage("fsync dir " + dir));
  ::close(fd);
  return st;
}

Status PosixEnv::MakeReadOnly(const std::string& path) {
  if (::chmod(path.c_str(), 0444) != 0)
    return Status::IOError(ErrnoMessage("chmod " + path));
  return Status::OK();
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

// ---- FaultInjectionEnv ----

namespace {
constexpr char kCrashedMessage[] = "injected crash: storage unavailable";
}  // namespace

class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> target)
      : env_(env), path_(std::move(path)), target_(std::move(target)) {}

  Status Append(Slice data) override {
    MutexLock lock(&env_->mu_);
    if (env_->crashed_) return Status::IOError(kCrashedMessage);
    env_->writes_++;
    SL_RETURN_IF_ERROR(env_->CheckWriteLocked());
    SL_RETURN_IF_ERROR(target_->Append(data));
    env_->files_[path_].written_size += data.size();
    return Status::OK();
  }

  Status Flush() override {
    MutexLock lock(&env_->mu_);
    if (env_->crashed_) return Status::IOError(kCrashedMessage);
    return target_->Flush();
  }

  Status Sync() override {
    MutexLock lock(&env_->mu_);
    if (env_->crashed_) return Status::IOError(kCrashedMessage);
    env_->syncs_++;
    SL_RETURN_IF_ERROR(env_->CheckSyncLocked());
    SL_RETURN_IF_ERROR(target_->Sync());
    FaultInjectionEnv::FileState& state = env_->files_[path_];
    state.synced_size = state.written_size;
    return Status::OK();
  }

  Status Close() override {
    // Closing is allowed after a crash (destructors run); it adds no
    // durability, so it never counts as a fault point.
    return target_->Close();
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> target_;
};

class FaultInjectionSequentialFile : public SequentialFile {
 public:
  FaultInjectionSequentialFile(FaultInjectionEnv* env, bool corrupt,
                               std::unique_ptr<SequentialFile> target)
      : env_(env), corrupt_(corrupt), target_(std::move(target)) {}

  Result<size_t> Read(size_t n, uint8_t* scratch) override {
    auto got = target_->Read(n, scratch);
    if (!got.ok() || *got == 0 || !corrupt_) return got;
    MutexLock lock(&env_->mu_);
    size_t byte = env_->rng_.Uniform(*got);
    scratch[byte] ^= static_cast<uint8_t>(1u << env_->rng_.Uniform(8));
    return got;
  }

 private:
  FaultInjectionEnv* env_;
  bool corrupt_;
  std::unique_ptr<SequentialFile> target_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* target, uint64_t seed)
    : target_(target != nullptr ? target : Env::Default()), rng_(seed) {}

void FaultInjectionEnv::FailNthWrite(int n) {
  MutexLock lock(&mu_);
  fail_write_countdown_ = n;
}

void FaultInjectionEnv::FailNthSync(int n) {
  MutexLock lock(&mu_);
  fail_sync_countdown_ = n;
}

void FaultInjectionEnv::FailNthRename(int n) {
  MutexLock lock(&mu_);
  fail_rename_countdown_ = n;
}

void FaultInjectionEnv::CrashAtSync(int n) {
  MutexLock lock(&mu_);
  crash_sync_countdown_ = n;
}

void FaultInjectionEnv::SimulateCrash() {
  MutexLock lock(&mu_);
  // Callers observe the crash through subsequent operations failing.
  (void)CrashLocked();
}

void FaultInjectionEnv::CorruptReadsMatching(const std::string& substring) {
  MutexLock lock(&mu_);
  corrupt_read_substring_ = substring;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::sync_count() const {
  MutexLock lock(&mu_);
  return syncs_;
}

uint64_t FaultInjectionEnv::write_count() const {
  MutexLock lock(&mu_);
  return writes_;
}

uint64_t FaultInjectionEnv::rename_count() const {
  MutexLock lock(&mu_);
  return renames_;
}

Status FaultInjectionEnv::CheckWriteLocked() {
  if (fail_write_countdown_ > 0 && --fail_write_countdown_ == 0)
    return Status::IOError("injected write failure");
  return Status::OK();
}

Status FaultInjectionEnv::CheckSyncLocked() {
  if (crash_sync_countdown_ > 0 && --crash_sync_countdown_ == 0)
    return CrashLocked();
  if (fail_sync_countdown_ > 0 && --fail_sync_countdown_ == 0)
    return Status::IOError("injected sync failure");
  return Status::OK();
}

Status FaultInjectionEnv::CrashLocked() {
  if (crashed_) return Status::IOError(kCrashedMessage);
  crashed_ = true;
  // Drop every byte that was never fsynced. Sometimes keep a pseudo-random
  // prefix of the un-synced tail — the torn write a real power loss leaves.
  for (const auto& [path, state] : files_) {
    if (state.written_size <= state.synced_size) continue;
    if (!target_->FileExists(path)) continue;  // renamed away or removed
    uint64_t unsynced = state.written_size - state.synced_size;
    uint64_t torn = rng_.Uniform(unsynced + 1);
    if (torn == unsynced) torn = 0;  // keeping all of it isn't a crash test
    // Best effort: a file that cannot be truncated simply keeps its
    // un-synced tail, like a disk that got the data out before dying.
    (void)target_->TruncateFile(path, state.synced_size + torn);
  }
  // Roll back renames that were never made durable by a directory sync,
  // newest first. Best effort: a rollback target that was overwritten by
  // the rename is unrecoverable, exactly as on a real filesystem.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    if (target_->FileExists(it->to) && !target_->FileExists(it->from))
      (void)target_->RenameFile(it->to, it->from);  // best-effort rollback
  }
  pending_renames_.clear();
  return Status::IOError("injected crash: un-synced data dropped");
}

std::string FaultInjectionEnv::DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, const WritableFileOptions& opts) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  uint64_t existing = 0;
  if (!opts.truncate) {
    auto size = target_->GetFileSize(path);
    if (size.ok()) existing = *size;
  }
  auto file = target_->NewWritableFile(path, opts);
  if (!file.ok()) return file.status();
  FileState& state = files_[path];
  // Pre-existing bytes were either synced by a previous incarnation or are
  // someone else's problem; only data written through us is droppable.
  state.written_size = existing;
  state.synced_size = existing;
  return std::unique_ptr<WritableFile>(
      new FaultInjectionWritableFile(this, path, std::move(*file)));
}

Result<std::unique_ptr<SequentialFile>> FaultInjectionEnv::NewSequentialFile(
    const std::string& path) {
  bool corrupt = false;
  {
    MutexLock lock(&mu_);
    if (crashed_) return Status::IOError(kCrashedMessage);
    corrupt = !corrupt_read_substring_.empty() &&
              path.find(corrupt_read_substring_) != std::string::npos;
  }
  auto file = target_->NewSequentialFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<SequentialFile>(
      new FaultInjectionSequentialFile(this, corrupt, std::move(*file)));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return target_->FileExists(path);
}

bool FaultInjectionEnv::IsDirectory(const std::string& path) {
  return target_->IsDirectory(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return target_->GetFileSize(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::GetChildren(
    const std::string& dir) {
  return target_->GetChildren(dir);
}

Status FaultInjectionEnv::CreateDirs(const std::string& dir) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  return target_->CreateDirs(dir);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  return target_->RemoveFile(path);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dir) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  return target_->RemoveDir(dir);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  renames_++;
  if (fail_rename_countdown_ > 0 && --fail_rename_countdown_ == 0)
    return Status::IOError("injected rename failure");
  SL_RETURN_IF_ERROR(target_->RenameFile(from, to));
  pending_renames_.push_back({DirOf(to), from, to});
  // The rename carries the file's identity with it; its synced state moves
  // to the new name.
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  SL_RETURN_IF_ERROR(target_->TruncateFile(path, size));
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.written_size = size;
    if (it->second.synced_size > size) it->second.synced_size = size;
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  syncs_++;
  SL_RETURN_IF_ERROR(CheckSyncLocked());
  SL_RETURN_IF_ERROR(target_->SyncDir(dir));
  // Renames inside this directory are now durable.
  pending_renames_.erase(
      std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                     [&dir](const PendingRename& r) { return r.dir == dir; }),
      pending_renames_.end());
  return Status::OK();
}

Status FaultInjectionEnv::MakeReadOnly(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IOError(kCrashedMessage);
  return target_->MakeReadOnly(path);
}

}  // namespace sqlledger
