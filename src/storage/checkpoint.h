// Checkpointing: an atomically-written snapshot of all table stores plus an
// opaque metadata blob (catalog + ledger state serialized by the layer
// above). After a successful checkpoint the WAL is reset; recovery loads
// the latest checkpoint and replays the WAL tail (paper §3.3.2).

#ifndef SQLLEDGER_STORAGE_CHECKPOINT_H_
#define SQLLEDGER_STORAGE_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table_store.h"
#include "util/result.h"
#include "util/slice.h"

namespace sqlledger {

/// Everything a checkpoint holds.
struct CheckpointData {
  std::vector<uint8_t> meta;  // opaque blob owned by the caller's layer
  std::vector<std::unique_ptr<TableStore>> tables;
};

/// Serializes `meta` and `tables` to `path` via write-temp-then-rename, so a
/// crash mid-checkpoint leaves the previous checkpoint intact. The entire
/// payload is CRC-protected.
Status WriteCheckpoint(const std::string& path, Slice meta,
                       const std::vector<const TableStore*>& tables);

/// Loads a checkpoint. NotFound if the file does not exist; Corruption on
/// CRC or format errors.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

/// Schema wire helpers (shared with tests).
void EncodeSchema(const Schema& schema, std::vector<uint8_t>* dst);
Result<Schema> DecodeSchema(class Decoder* dec);

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_CHECKPOINT_H_
