// Checkpointing: an atomically-written snapshot of all table stores plus an
// opaque metadata blob (catalog + ledger state serialized by the layer
// above). After a successful checkpoint the WAL is reset; recovery loads
// the latest checkpoint and replays the WAL tail (paper §3.3.2).
//
// Durability protocol (see DESIGN.md "Failure model"): the snapshot is
// written to `path + ".tmp"` and fsynced BEFORE any rename, the previous
// checkpoint is retained as `path + ".prev"`, the temp file is renamed into
// place, and the parent directory is fsynced so the renames survive a
// crash. A crash at any point leaves either the new checkpoint or the
// previous one loadable.

#ifndef SQLLEDGER_STORAGE_CHECKPOINT_H_
#define SQLLEDGER_STORAGE_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/table_store.h"
#include "util/result.h"
#include "util/slice.h"

namespace sqlledger {

/// Everything a checkpoint holds.
struct CheckpointData {
  std::vector<uint8_t> meta;  // opaque blob owned by the caller's layer
  std::vector<std::unique_ptr<TableStore>> tables;
};

/// Serializes `meta` and `tables` to `path` via write-temp-fsync-rename
/// (file and parent directory both synced), keeping the checkpoint being
/// replaced as `path + ".prev"`. The entire payload is CRC-protected.
/// `env` = nullptr uses Env::Default().
Status WriteCheckpoint(const std::string& path, Slice meta,
                       const std::vector<const TableStore*>& tables,
                       Env* env = nullptr);

/// Loads a checkpoint. NotFound if the file does not exist; Corruption on
/// CRC or format errors. `env` = nullptr uses Env::Default().
Result<CheckpointData> ReadCheckpoint(const std::string& path,
                                      Env* env = nullptr);

/// Schema wire helpers (shared with tests).
void EncodeSchema(const Schema& schema, std::vector<uint8_t>* dst);
Result<Schema> DecodeSchema(class Decoder* dec);

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_CHECKPOINT_H_
