// Durable digest outbox (DESIGN.md §9). When the trusted digest store is
// unreachable, generated digests must not be lost or reordered: the upload
// pipeline appends each digest document to this bounded, crash-safe queue
// *before* the first upload attempt, and acknowledges it only after the
// store accepted it. All I/O goes through Env so the same fault-injection
// machinery that exercises the WAL exercises the outbox.
//
// On-disk layout (inside `dir`):
//   outbox.log   append-only record log: [fixed32 len][fixed32 crc32c][bytes]
//                Records are write-once — appended, fsynced, never modified.
//   cursor       count of acknowledged records ([fixed64 count][fixed32 crc]),
//                replaced atomically (temp + rename + dir sync).
//
// Crash semantics:
//   - An append is only reported OK after the record is fsynced, so a torn
//     tail can only be a record whose Append never returned success; replay
//     drops it AND truncates it off the file (the WAL-recovery discipline),
//     so a later append is never written after un-replayable garbage.
//   - The cursor may lag the truth after a crash (a rename that was never
//     made durable rolls back). Replaying an already-uploaded digest is
//     safe because digest-store uploads are idempotent for byte-identical
//     content, so the cursor errs conservatively: corrupt/missing = 0.

#ifndef SQLLEDGER_STORAGE_DIGEST_OUTBOX_H_
#define SQLLEDGER_STORAGE_DIGEST_OUTBOX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace sqlledger {

struct DigestOutboxOptions {
  /// Directory holding the log + cursor; created if absent.
  std::string dir;
  /// nullptr = Env::Default(). Not owned; must outlive the outbox.
  Env* env = nullptr;
  /// Maximum unacknowledged records; Append fails with Busy beyond it. The
  /// bound keeps a long outage from growing the log without limit — the
  /// newest digest always subsumes older ones for protection purposes, so
  /// rejecting new appends (and counting them) is safe.
  size_t capacity = 64;
};

/// Bounded durable FIFO of opaque payloads (digest JSON documents).
/// Thread-safe; a background uploader and foreground submitters may share
/// one instance.
class DigestOutbox {
 public:
  /// Opens (or creates) the outbox and replays the log: records past the
  /// acknowledged cursor become the pending queue, in append order. A torn
  /// final record is dropped; corruption anywhere earlier is an error.
  static Result<std::unique_ptr<DigestOutbox>> Open(DigestOutboxOptions opts);

  /// Durably appends one payload. Busy when `capacity` payloads are already
  /// pending.
  Status Append(const std::string& payload);
  /// Durably acknowledges the oldest `count` pending payloads (they reached
  /// the store). Compacts the log once everything is acknowledged.
  Status Ack(size_t count);

  /// Pending payloads, oldest first.
  std::vector<std::string> Pending() const;
  size_t pending_count() const;

  // Lifetime counters (monotonic, not persisted).
  uint64_t appended() const;
  uint64_t acked() const;
  uint64_t rejected() const;  // appends refused because the outbox was full

 private:
  explicit DigestOutbox(DigestOutboxOptions opts);

  Status Replay() EXCLUDES(mu_);
  Status PersistCursorLocked(uint64_t value) REQUIRES(mu_);
  Status CompactLocked() REQUIRES(mu_);
  std::string LogPath() const { return opts_.dir + "/outbox.log"; }
  std::string CursorPath() const { return opts_.dir + "/cursor"; }

  DigestOutboxOptions opts_;
  Env* env_;  // resolved from opts_.env

  mutable Mutex mu_;
  /// Payloads appended but not yet acknowledged, oldest first.
  std::deque<std::string> pending_ GUARDED_BY(mu_);
  /// Records in outbox.log that are already acknowledged (the cursor).
  uint64_t log_acked_ GUARDED_BY(mu_) = 0;
  uint64_t appended_ GUARDED_BY(mu_) = 0;
  uint64_t acked_total_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_ GUARDED_BY(mu_) = 0;
};

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_DIGEST_OUTBOX_H_
