// Write-ahead log. The engine logs at commit time: a committing transaction
// appends one record holding its redo operations plus the ledger commit
// metadata — transaction id, commit timestamp, user, the (block id, ordinal)
// slot assigned in the Database Ledger, and the per-table Merkle roots
// (paper §3.3.2: "the COMMIT log record tracks the block ID and ordinal of
// the transaction within the block to make this information recoverable").
//
// Records are framed as [fixed32 length][fixed32 crc32c][payload]; replay
// stops at the first torn or corrupt record, which is then truncated away.
//
// All file I/O flows through the Env abstraction, so fault-injection tests
// can fail writes/fsyncs and simulate crashes. A failed write or sync
// poisons the writer: once a record may have been lost or torn, no further
// record is ever appended after the hole (the log would replay past the
// gap and silently resurrect a prefix of a later transaction's effects).

#ifndef SQLLEDGER_STORAGE_WAL_H_
#define SQLLEDGER_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "crypto/sha256.h"
#include "storage/env.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace sqlledger {

/// Kind of a logged row operation.
enum class WalOpType : uint8_t {
  kInsert = 1,  // new_row inserted into table_id
  kUpdate = 2,  // key identified row replaced by new_row (old_row logged for
                // completeness/audit; redo uses new_row)
  kDelete = 3,  // row with key removed
};

/// One redo operation within a committed transaction.
struct WalOp {
  WalOpType type = WalOpType::kInsert;
  uint32_t table_id = 0;
  KeyTuple key;  // clustered key of the affected row
  Row new_row;   // full physical row for insert/update; empty for delete
};

/// A committed transaction's WAL record.
struct WalCommitRecord {
  uint64_t txn_id = 0;
  int64_t commit_ts_micros = 0;
  std::string user_name;
  /// Database Ledger slot assigned at commit (paper §3.3.2). Zero block id
  /// with ordinal 0 is valid (first transaction of block 0).
  uint64_t block_id = 0;
  uint64_t block_ordinal = 0;
  /// (ledger table id, Merkle root over row versions updated by this
  /// transaction in that table), one entry per ledger table touched.
  std::vector<std::pair<uint32_t, Hash256>> table_roots;
  std::vector<WalOp> ops;

  /// Appends the encoded record to `dst` and returns the offset (within
  /// `dst`) of the fixed-width (block id, block ordinal) pair. The group
  /// commit pipeline encodes records before the ledger slot is known and
  /// the leader patches the slot in with PatchSlot.
  size_t EncodeTo(std::vector<uint8_t>* dst) const;
  /// Overwrites the slot pair previously encoded at `slot_offset`.
  static void PatchSlot(std::vector<uint8_t>* buf, size_t slot_offset,
                        uint64_t block_id, uint64_t block_ordinal);
  static Result<WalCommitRecord> Decode(Slice payload);
};

/// Durability knobs.
struct WalOptions {
  /// fsync after every AppendRecord.
  bool sync = false;
  /// Storage environment; nullptr = Env::Default().
  Env* env = nullptr;
};

/// Append-only log file.
class Wal {
 public:
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one framed record. Thread-compatible: callers serialize.
  /// After any failed write/flush/sync the WAL is poisoned and every
  /// subsequent append fails with the original error (sticky), because a
  /// record appended after a hole would replay without its predecessor.
  Status AppendRecord(Slice payload);
  Status AppendCommit(const WalCommitRecord& record);

  /// Appends many framed records as ONE buffered write with ONE trailing
  /// fsync (when options.sync) — the group commit fast path. All-or-nothing
  /// durability for the group: a failed write or sync poisons the WAL and
  /// the error is returned for every record in the batch (none of them may
  /// be treated as committed). An empty batch is a no-op.
  Status AppendBatch(const std::vector<Slice>& payloads);

  /// Attaches latency instrumentation (DESIGN.md §13): wal.append_micros
  /// (buffered write+flush), wal.sync_micros (the trailing fsync) and
  /// wal.syncs_total, resolved from `registry`. Call once right after Open,
  /// before the WAL sees concurrency; nullptr detaches. The registry must
  /// outlive the Wal. With no registry attached, appends never read the
  /// metrics clock.
  void SetMetrics(MetricRegistry* registry);

  /// Rotates the log after a successful checkpoint: the current file moves
  /// to `path + ".prev"` (paired with the just-superseded checkpoint, so
  /// recovery can fall back one checkpoint generation) and a fresh empty
  /// log is created and made durable. Clears any sticky error — every
  /// record the new log will hold postdates the checkpoint.
  Status Reset();

  Status Sync();
  uint64_t bytes_written() const { return bytes_written_; }
  /// Number of fsyncs actually issued against the log file (per-append
  /// syncs, batched group syncs and explicit Sync() calls). The commit
  /// bench derives fsyncs/txn from this.
  uint64_t sync_count() const { return syncs_issued_; }
  const std::string& path() const { return path_; }
  /// Non-OK once a write/sync has failed; all appends return this.
  const Status& sticky_error() const { return sticky_error_; }

  /// Replays every intact record in `path`, invoking `fn` per record.
  /// A torn/corrupt tail is tolerated (replay stops); genuine mid-log
  /// corruption also stops replay but is reported via the returned count
  /// vs. expectations of the caller. Returns the number of records read.
  static Result<uint64_t> Replay(
      const std::string& path,
      const std::function<Status(Slice payload)>& fn, Env* env = nullptr);

 private:
  Wal(std::string path, std::unique_ptr<WritableFile> file, WalOptions options);

  Status Poison(Status error);

  std::string path_;
  std::unique_ptr<WritableFile> file_;
  WalOptions options_;
  Env* env_;
  uint64_t bytes_written_ = 0;
  uint64_t syncs_issued_ = 0;
  Status sticky_error_;
  // Optional instrumentation (SetMetrics). Null when detached. syncs_issued_
  // stays authoritative for sync_count(); the registry counter mirrors it so
  // the stats surface has one namespace.
  MetricRegistry* metrics_ = nullptr;
  Histogram* m_append_micros_ = nullptr;  // wal.append_micros
  Histogram* m_sync_micros_ = nullptr;    // wal.sync_micros
  Counter* m_syncs_total_ = nullptr;      // wal.syncs_total
  Counter* m_bytes_total_ = nullptr;      // wal.bytes_total
};

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_WAL_H_
