#include "storage/table_store.h"

namespace sqlledger {

TableStore::TableStore(uint32_t table_id, std::string name, Schema schema)
    : table_id_(table_id), name_(std::move(name)), schema_(std::move(schema)),
      clustered_(64) {}

KeyTuple TableStore::IndexKeyOf(const SecondaryIndex& idx,
                                const Row& row) const {
  KeyTuple key = Schema::ExtractColumns(row, idx.ordinals);
  // Append the primary key so non-unique index entries stay distinct.
  KeyTuple pk = schema_.ExtractKey(row);
  key.insert(key.end(), pk.begin(), pk.end());
  return key;
}

Status TableStore::Insert(const Row& row) {
  WriterMutexLock latch(&latch_);
  SL_RETURN_IF_ERROR(schema_.ValidateRow(row));
  KeyTuple pk = schema_.ExtractKey(row);
  if (clustered_.Contains(pk))
    return Status::AlreadyExists("duplicate primary key in table '" + name_ +
                                 "'");
  // Check unique indexes before mutating anything.
  for (const auto& idx : indexes_) {
    if (!idx->unique) continue;
    KeyTuple prefix = Schema::ExtractColumns(row, idx->ordinals);
    BTree::Iterator it = idx->tree.Seek(prefix);
    if (it.Valid()) {
      KeyTuple existing_prefix(it.key().begin(),
                               it.key().begin() + idx->ordinals.size());
      if (CompareKeys(existing_prefix, prefix) == 0)
        return Status::AlreadyExists("unique index violation on '" +
                                     idx->name + "'");
    }
  }
  for (const auto& idx : indexes_) {
    Row pk_row(pk.begin(), pk.end());
    idx->tree.Upsert(IndexKeyOf(*idx, row), std::move(pk_row));
  }
  return clustered_.Insert(pk, row);
}

Status TableStore::Update(const Row& row) {
  WriterMutexLock latch(&latch_);
  SL_RETURN_IF_ERROR(schema_.ValidateRow(row));
  KeyTuple pk = schema_.ExtractKey(row);
  const Row* old_row = clustered_.Get(pk);
  if (old_row == nullptr)
    return Status::NotFound("row not found in table '" + name_ + "'");
  for (const auto& idx : indexes_) {
    KeyTuple old_key = IndexKeyOf(*idx, *old_row);
    KeyTuple new_key = IndexKeyOf(*idx, row);
    if (CompareKeys(old_key, new_key) != 0) {
      // The clustered row was just read, so its index entry exists.
      (void)idx->tree.Delete(old_key);
      Row pk_row(pk.begin(), pk.end());
      idx->tree.Upsert(std::move(new_key), std::move(pk_row));
    }
  }
  return clustered_.Update(pk, row);
}

Status TableStore::Delete(const KeyTuple& key) {
  WriterMutexLock latch(&latch_);
  const Row* old_row = clustered_.Get(key);
  if (old_row == nullptr)
    return Status::NotFound("row not found in table '" + name_ + "'");
  for (const auto& idx : indexes_) {
    // The clustered row was just read, so its index entry exists.
    (void)idx->tree.Delete(IndexKeyOf(*idx, *old_row));
  }
  return clustered_.Delete(key);
}

const Row* TableStore::Get(const KeyTuple& key) const {
  return clustered_.Get(key);
}

std::optional<Row> TableStore::GetCopy(const KeyTuple& key) const {
  ReaderMutexLock latch(&latch_);
  const Row* row = clustered_.Get(key);
  if (row == nullptr) return std::nullopt;
  return *row;
}

std::optional<Row> TableStore::SeekFirstCopy(const KeyTuple& prefix) const {
  ReaderMutexLock latch(&latch_);
  BTree::Iterator it = clustered_.Seek(prefix);
  if (!it.Valid() || it.key().size() < prefix.size()) return std::nullopt;
  for (size_t i = 0; i < prefix.size(); i++) {
    if (it.key()[i].Compare(prefix[i]) != 0) return std::nullopt;
  }
  return it.value();
}

void TableStore::ExtendRows(const Value& value) {
  WriterMutexLock latch(&latch_);
  std::vector<KeyTuple> keys;
  keys.reserve(clustered_.size());
  for (BTree::Iterator it = clustered_.Begin(); it.Valid(); it.Next())
    keys.push_back(it.key());
  for (const KeyTuple& key : keys) {
    Row* row = clustered_.MutableGet(key);
    if (row != nullptr) row->push_back(value);
  }
}

Status TableStore::CreateIndex(const std::string& index_name,
                               const std::vector<size_t>& ordinals,
                               bool unique) {
  WriterMutexLock latch(&latch_);
  if (FindIndexLocked(index_name) != nullptr)
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  for (size_t ord : ordinals) {
    if (ord >= schema_.num_columns())
      return Status::InvalidArgument("index column ordinal out of range");
  }
  auto idx = std::make_unique<SecondaryIndex>();
  idx->name = index_name;
  idx->ordinals = ordinals;
  idx->unique = unique;
  // Build from existing rows.
  for (BTree::Iterator it = clustered_.Begin(); it.Valid(); it.Next()) {
    Row pk_row(it.key().begin(), it.key().end());
    idx->tree.Upsert(IndexKeyOf(*idx, it.value()), std::move(pk_row));
  }
  if (unique) {
    // Stored keys carry the primary key as a suffix, so duplicates of the
    // indexed columns appear as adjacent entries sharing the prefix.
    const KeyTuple* prev = nullptr;
    for (BTree::Iterator it = idx->tree.Begin(); it.Valid(); it.Next()) {
      if (prev != nullptr) {
        KeyTuple a(prev->begin(), prev->begin() + ordinals.size());
        KeyTuple b(it.key().begin(), it.key().begin() + ordinals.size());
        if (CompareKeys(a, b) == 0)
          return Status::InvalidArgument(
              "cannot create unique index: duplicate values present");
      }
      prev = &it.key();
    }
  }
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status TableStore::DropIndex(const std::string& index_name) {
  WriterMutexLock latch(&latch_);
  for (size_t i = 0; i < indexes_.size(); i++) {
    if (indexes_[i]->name == index_name) {
      indexes_.erase(indexes_.begin() + i);
      return Status::OK();
    }
  }
  return Status::NotFound("index '" + index_name + "' not found");
}

SecondaryIndex* TableStore::FindIndex(const std::string& index_name) {
  ReaderMutexLock latch(&latch_);
  return FindIndexLocked(index_name);
}

SecondaryIndex* TableStore::FindIndexLocked(const std::string& index_name) {
  for (const auto& idx : indexes_) {
    if (idx->name == index_name) return idx.get();
  }
  return nullptr;
}

}  // namespace sqlledger
