#include "storage/digest_outbox.h"

#include "util/coding.h"

namespace sqlledger {

namespace {

std::vector<uint8_t> EncodeRecord(const std::string& payload) {
  std::vector<uint8_t> rec;
  rec.reserve(payload.size() + 8);
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  PutFixed32(&rec, Crc32c(Slice(payload)));
  rec.insert(rec.end(), payload.begin(), payload.end());
  return rec;
}

}  // namespace

DigestOutbox::DigestOutbox(DigestOutboxOptions opts)
    : opts_(std::move(opts)),
      env_(opts_.env != nullptr ? opts_.env : Env::Default()) {}

Result<std::unique_ptr<DigestOutbox>> DigestOutbox::Open(
    DigestOutboxOptions opts) {
  if (opts.dir.empty())
    return Status::InvalidArgument("digest outbox requires a directory");
  std::unique_ptr<DigestOutbox> outbox(new DigestOutbox(std::move(opts)));
  Status st = outbox->env_->CreateDirs(outbox->opts_.dir);
  if (!st.ok())
    return Status::IOError("cannot create outbox dir: " + st.message());
  SL_RETURN_IF_ERROR(outbox->Replay());
  return outbox;
}

Status DigestOutbox::Replay() {
  // The cursor errs toward 0 (see header): missing or corrupt reads as
  // "nothing acknowledged" and replay re-queues everything; uploads of
  // byte-identical digests are idempotent, so the worst case is wasted work.
  uint64_t cursor = 0;
  auto cbytes = env_->ReadFile(CursorPath());
  if (cbytes.ok() && cbytes->size() == 12) {
    Decoder dec(Slice(cbytes->data(), cbytes->size()));
    auto value = dec.GetFixed64();
    auto crc = dec.GetFixed32();
    if (value.ok() && crc.ok() &&
        *crc == Crc32c(cbytes->data(), 8))
      cursor = *value;
  }

  std::vector<std::string> records;
  auto bytes = env_->ReadFile(LogPath());
  if (!bytes.ok() && !bytes.status().IsNotFound())
    return Status::IOError("cannot read outbox log: " +
                           bytes.status().message());
  if (bytes.ok()) {
    const size_t total = bytes->size();
    size_t valid_bytes = 0;  // log prefix covered by intact records
    Decoder dec(Slice(bytes->data(), total));
    while (!dec.done()) {
      // A record that cannot be fully decoded is a torn tail — the append
      // never returned success, so the digest was never considered queued —
      // unless complete bytes FOLLOW it, which means mid-log damage.
      if (dec.remaining() < 8) break;
      auto len = dec.GetFixed32();
      auto crc = dec.GetFixed32();
      if (!len.ok() || !crc.ok()) break;
      if (dec.remaining() < *len) break;  // torn payload: tail by definition
      auto payload = dec.GetBytes(*len);
      if (!payload.ok()) break;
      if (*crc != Crc32c(*payload)) {
        if (dec.remaining() >= 8)
          return Status::Corruption("outbox record " +
                                    std::to_string(records.size()) +
                                    " fails its CRC mid-log");
        break;  // corrupt final record: treat as torn tail
      }
      records.emplace_back(reinterpret_cast<const char*>(payload->data()),
                           payload->size());
      valid_bytes = total - dec.remaining();
    }
    // Truncate the torn tail away (the WAL-recovery discipline): appends go
    // to the end of the file, so garbage left in place would sit BETWEEN
    // intact records and the next append and read as mid-log corruption on
    // the replay after that.
    if (valid_bytes < total) {
      Status st = env_->TruncateFile(LogPath(), valid_bytes);
      if (!st.ok())
        return Status::IOError("cannot truncate torn outbox tail: " +
                               st.message());
    }
  }

  MutexLock lock(&mu_);
  log_acked_ = cursor < records.size() ? cursor : records.size();
  pending_.assign(records.begin() + static_cast<long>(log_acked_),
                  records.end());
  return Status::OK();
}

Status DigestOutbox::Append(const std::string& payload) {
  MutexLock lock(&mu_);
  if (pending_.size() >= opts_.capacity) {
    rejected_++;
    return Status::Busy("digest outbox full (" +
                        std::to_string(opts_.capacity) + " pending)");
  }
  std::vector<uint8_t> rec = EncodeRecord(payload);
  auto file = env_->NewWritableFile(LogPath(), WritableFileOptions{});
  if (!file.ok())
    return Status::IOError("cannot open outbox log: " +
                           file.status().message());
  Status st = (*file)->Append(Slice(rec.data(), rec.size()));
  // The append is only reported OK once the record — and, for the first
  // record, the log's directory entry — would survive a crash; the caller
  // counts the digest as queued on that basis.
  if (st.ok()) st = (*file)->Sync();
  Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = env_->SyncDir(opts_.dir);
  if (!st.ok())
    return Status::IOError("outbox append failed: " + st.message());
  pending_.push_back(payload);
  appended_++;
  return Status::OK();
}

Status DigestOutbox::Ack(size_t count) {
  MutexLock lock(&mu_);
  if (count > pending_.size())
    return Status::InvalidArgument("ack of " + std::to_string(count) +
                                   " exceeds " +
                                   std::to_string(pending_.size()) +
                                   " pending");
  SL_RETURN_IF_ERROR(PersistCursorLocked(log_acked_ + count));
  log_acked_ += count;
  acked_total_ += count;
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(count));
  if (pending_.empty() && log_acked_ > 0) SL_RETURN_IF_ERROR(CompactLocked());
  return Status::OK();
}

Status DigestOutbox::PersistCursorLocked(uint64_t value) {
  std::vector<uint8_t> doc;
  PutFixed64(&doc, value);
  PutFixed32(&doc, Crc32c(doc.data(), doc.size()));
  std::string tmp = CursorPath() + ".tmp";
  auto file = env_->NewWritableFile(tmp, WritableFileOptions{.truncate = true});
  if (!file.ok()) return file.status();
  Status st = (*file)->Append(Slice(doc.data(), doc.size()));
  if (st.ok()) st = (*file)->Sync();
  Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = env_->RenameFile(tmp, CursorPath());
  if (st.ok()) st = env_->SyncDir(opts_.dir);
  if (!st.ok())
    return Status::IOError("outbox cursor update failed: " + st.message());
  return Status::OK();
}

Status DigestOutbox::CompactLocked() {
  // Reset the cursor FIRST: a crash between the two steps then re-queues
  // already-acknowledged records (safe — uploads are idempotent) instead of
  // silently dropping pending ones.
  SL_RETURN_IF_ERROR(PersistCursorLocked(0));
  std::string tmp = LogPath() + ".tmp";
  auto file = env_->NewWritableFile(tmp, WritableFileOptions{.truncate = true});
  if (!file.ok()) return file.status();
  Status st = (*file)->Sync();
  Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = env_->RenameFile(tmp, LogPath());
  if (st.ok()) st = env_->SyncDir(opts_.dir);
  if (!st.ok())
    return Status::IOError("outbox compaction failed: " + st.message());
  log_acked_ = 0;
  return Status::OK();
}

std::vector<std::string> DigestOutbox::Pending() const {
  MutexLock lock(&mu_);
  return {pending_.begin(), pending_.end()};
}

size_t DigestOutbox::pending_count() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

uint64_t DigestOutbox::appended() const {
  MutexLock lock(&mu_);
  return appended_;
}

uint64_t DigestOutbox::acked() const {
  MutexLock lock(&mu_);
  return acked_total_;
}

uint64_t DigestOutbox::rejected() const {
  MutexLock lock(&mu_);
  return rejected_;
}

}  // namespace sqlledger
