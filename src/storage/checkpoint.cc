#include "storage/checkpoint.h"

#include <cstdio>
#include <filesystem>

#include "catalog/row.h"
#include "util/coding.h"

namespace sqlledger {

namespace {
constexpr char kMagic[] = "SLCKPT01";
constexpr size_t kMagicLen = 8;
}  // namespace

void EncodeSchema(const Schema& schema, std::vector<uint8_t>* dst) {
  PutVarint32(dst, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutVarint32(dst, col.column_id);
    PutLengthPrefixed(dst, Slice(col.name));
    dst->push_back(static_cast<uint8_t>(col.type));
    dst->push_back(col.nullable ? 1 : 0);
    PutVarint32(dst, col.max_length);
    dst->push_back(col.hidden ? 1 : 0);
    dst->push_back(col.dropped ? 1 : 0);
  }
  PutVarint32(dst, static_cast<uint32_t>(schema.key_ordinals().size()));
  for (size_t ord : schema.key_ordinals())
    PutVarint32(dst, static_cast<uint32_t>(ord));
  PutVarint32(dst, schema.next_column_id());
}

Result<Schema> DecodeSchema(Decoder* dec) {
  Schema schema;
  auto num_cols = dec->GetVarint32();
  if (!num_cols.ok()) return num_cols.status();
  for (uint32_t i = 0; i < *num_cols; i++) {
    auto id = dec->GetVarint32();
    if (!id.ok()) return id.status();
    auto name = dec->GetLengthPrefixed();
    if (!name.ok()) return name.status();
    auto type_b = dec->GetBytes(1);
    if (!type_b.ok()) return type_b.status();
    auto nullable_b = dec->GetBytes(1);
    if (!nullable_b.ok()) return nullable_b.status();
    auto max_len = dec->GetVarint32();
    if (!max_len.ok()) return max_len.status();
    auto hidden_b = dec->GetBytes(1);
    if (!hidden_b.ok()) return hidden_b.status();
    auto dropped_b = dec->GetBytes(1);
    if (!dropped_b.ok()) return dropped_b.status();

    size_t ord = schema.AddColumn(name->ToString(),
                                  static_cast<DataType>((*type_b)[0]),
                                  (*nullable_b)[0] != 0, *max_len,
                                  (*hidden_b)[0] != 0);
    ColumnDef* col = schema.mutable_column(ord);
    col->column_id = *id;
    col->dropped = (*dropped_b)[0] != 0;
  }
  auto num_key = dec->GetVarint32();
  if (!num_key.ok()) return num_key.status();
  std::vector<size_t> key_ordinals;
  for (uint32_t i = 0; i < *num_key; i++) {
    auto ord = dec->GetVarint32();
    if (!ord.ok()) return ord.status();
    key_ordinals.push_back(*ord);
  }
  schema.SetPrimaryKey(std::move(key_ordinals));
  auto next_id = dec->GetVarint32();
  if (!next_id.ok()) return next_id.status();
  schema.set_next_column_id(*next_id);
  return schema;
}

Status WriteCheckpoint(const std::string& path, Slice meta,
                       const std::vector<const TableStore*>& tables) {
  std::vector<uint8_t> payload;
  PutLengthPrefixed(&payload, meta);
  PutVarint32(&payload, static_cast<uint32_t>(tables.size()));
  for (const TableStore* table : tables) {
    PutVarint32(&payload, table->table_id());
    PutLengthPrefixed(&payload, Slice(table->name()));
    EncodeSchema(table->schema(), &payload);
    PutVarint32(&payload, static_cast<uint32_t>(table->indexes().size()));
    for (const auto& idx : table->indexes()) {
      PutLengthPrefixed(&payload, Slice(idx->name));
      PutVarint32(&payload, static_cast<uint32_t>(idx->ordinals.size()));
      for (size_t ord : idx->ordinals)
        PutVarint32(&payload, static_cast<uint32_t>(ord));
      payload.push_back(idx->unique ? 1 : 0);
    }
    PutVarint64(&payload, table->row_count());
    for (BTree::Iterator it = table->Scan(); it.Valid(); it.Next()) {
      EncodeRow(it.value(), &payload);
    }
  }

  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status::IOError("cannot create checkpoint temp file: " + tmp);

  std::vector<uint8_t> header;
  header.insert(header.end(), kMagic, kMagic + kMagicLen);
  PutFixed64(&header, payload.size());
  PutFixed32(&header, Crc32c(Slice(payload)));
  bool write_ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("checkpoint write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IOError("checkpoint rename failed: " + ec.message());
  return Status::OK();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no checkpoint at " + path);

  uint8_t header[kMagicLen + 12];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    std::fclose(f);
    return Status::Corruption("checkpoint header truncated");
  }
  if (std::memcmp(header, kMagic, kMagicLen) != 0) {
    std::fclose(f);
    return Status::Corruption("bad checkpoint magic");
  }
  uint64_t len = 0;
  for (int i = 0; i < 8; i++)
    len |= static_cast<uint64_t>(header[kMagicLen + i]) << (8 * i);
  uint32_t crc = 0;
  for (int i = 0; i < 4; i++)
    crc |= static_cast<uint32_t>(header[kMagicLen + 8 + i]) << (8 * i);

  std::vector<uint8_t> payload(len);
  if (std::fread(payload.data(), 1, len, f) != len) {
    std::fclose(f);
    return Status::Corruption("checkpoint payload truncated");
  }
  std::fclose(f);
  if (Crc32c(Slice(payload)) != crc)
    return Status::Corruption("checkpoint CRC mismatch");

  Decoder dec{Slice(payload)};
  CheckpointData out;
  auto meta = dec.GetLengthPrefixed();
  if (!meta.ok()) return meta.status();
  out.meta = meta->ToVector();

  auto num_tables = dec.GetVarint32();
  if (!num_tables.ok()) return num_tables.status();
  for (uint32_t t = 0; t < *num_tables; t++) {
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    auto name = dec.GetLengthPrefixed();
    if (!name.ok()) return name.status();
    auto schema = DecodeSchema(&dec);
    if (!schema.ok()) return schema.status();

    auto table = std::make_unique<TableStore>(*table_id, name->ToString(),
                                              std::move(*schema));

    auto num_indexes = dec.GetVarint32();
    if (!num_indexes.ok()) return num_indexes.status();
    struct IndexDef {
      std::string name;
      std::vector<size_t> ordinals;
      bool unique;
    };
    std::vector<IndexDef> index_defs;
    for (uint32_t i = 0; i < *num_indexes; i++) {
      auto idx_name = dec.GetLengthPrefixed();
      if (!idx_name.ok()) return idx_name.status();
      auto num_ords = dec.GetVarint32();
      if (!num_ords.ok()) return num_ords.status();
      IndexDef def;
      def.name = idx_name->ToString();
      for (uint32_t k = 0; k < *num_ords; k++) {
        auto ord = dec.GetVarint32();
        if (!ord.ok()) return ord.status();
        def.ordinals.push_back(*ord);
      }
      auto unique_b = dec.GetBytes(1);
      if (!unique_b.ok()) return unique_b.status();
      def.unique = (*unique_b)[0] != 0;
      index_defs.push_back(std::move(def));
    }

    auto row_count = dec.GetVarint64();
    if (!row_count.ok()) return row_count.status();
    for (uint64_t r = 0; r < *row_count; r++) {
      auto row = DecodeRow(&dec);
      if (!row.ok()) return row.status();
      SL_RETURN_IF_ERROR(table->Insert(*row));
    }
    // Rebuild secondary indexes after rows are loaded so unique checks see
    // the final data.
    for (const IndexDef& def : index_defs) {
      SL_RETURN_IF_ERROR(table->CreateIndex(def.name, def.ordinals, def.unique));
    }
    out.tables.push_back(std::move(table));
  }
  if (!dec.done()) return Status::Corruption("trailing bytes in checkpoint");
  return out;
}

}  // namespace sqlledger
