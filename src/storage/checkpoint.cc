#include "storage/checkpoint.h"

#include <cstring>

#include "catalog/row.h"
#include "util/coding.h"

namespace sqlledger {

namespace {
constexpr char kMagic[] = "SLCKPT01";
constexpr size_t kMagicLen = 8;

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}
}  // namespace

void EncodeSchema(const Schema& schema, std::vector<uint8_t>* dst) {
  PutVarint32(dst, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutVarint32(dst, col.column_id);
    PutLengthPrefixed(dst, Slice(col.name));
    dst->push_back(static_cast<uint8_t>(col.type));
    dst->push_back(col.nullable ? 1 : 0);
    PutVarint32(dst, col.max_length);
    dst->push_back(col.hidden ? 1 : 0);
    dst->push_back(col.dropped ? 1 : 0);
  }
  PutVarint32(dst, static_cast<uint32_t>(schema.key_ordinals().size()));
  for (size_t ord : schema.key_ordinals())
    PutVarint32(dst, static_cast<uint32_t>(ord));
  PutVarint32(dst, schema.next_column_id());
}

Result<Schema> DecodeSchema(Decoder* dec) {
  Schema schema;
  auto num_cols = dec->GetVarint32();
  if (!num_cols.ok()) return num_cols.status();
  for (uint32_t i = 0; i < *num_cols; i++) {
    auto id = dec->GetVarint32();
    if (!id.ok()) return id.status();
    auto name = dec->GetLengthPrefixed();
    if (!name.ok()) return name.status();
    auto type_b = dec->GetBytes(1);
    if (!type_b.ok()) return type_b.status();
    auto nullable_b = dec->GetBytes(1);
    if (!nullable_b.ok()) return nullable_b.status();
    auto max_len = dec->GetVarint32();
    if (!max_len.ok()) return max_len.status();
    auto hidden_b = dec->GetBytes(1);
    if (!hidden_b.ok()) return hidden_b.status();
    auto dropped_b = dec->GetBytes(1);
    if (!dropped_b.ok()) return dropped_b.status();

    size_t ord = schema.AddColumn(name->ToString(),
                                  static_cast<DataType>((*type_b)[0]),
                                  (*nullable_b)[0] != 0, *max_len,
                                  (*hidden_b)[0] != 0);
    ColumnDef* col = schema.mutable_column(ord);
    col->column_id = *id;
    col->dropped = (*dropped_b)[0] != 0;
  }
  auto num_key = dec->GetVarint32();
  if (!num_key.ok()) return num_key.status();
  std::vector<size_t> key_ordinals;
  for (uint32_t i = 0; i < *num_key; i++) {
    auto ord = dec->GetVarint32();
    if (!ord.ok()) return ord.status();
    key_ordinals.push_back(*ord);
  }
  schema.SetPrimaryKey(std::move(key_ordinals));
  auto next_id = dec->GetVarint32();
  if (!next_id.ok()) return next_id.status();
  schema.set_next_column_id(*next_id);
  return schema;
}

Status WriteCheckpoint(const std::string& path, Slice meta,
                       const std::vector<const TableStore*>& tables,
                       Env* env) {
  if (env == nullptr) env = Env::Default();
  std::vector<uint8_t> payload;
  PutLengthPrefixed(&payload, meta);
  PutVarint32(&payload, static_cast<uint32_t>(tables.size()));
  for (const TableStore* table : tables) {
    PutVarint32(&payload, table->table_id());
    PutLengthPrefixed(&payload, Slice(table->name()));
    EncodeSchema(table->schema(), &payload);
    PutVarint32(&payload, static_cast<uint32_t>(table->indexes().size()));
    for (const auto& idx : table->indexes()) {
      PutLengthPrefixed(&payload, Slice(idx->name));
      PutVarint32(&payload, static_cast<uint32_t>(idx->ordinals.size()));
      for (size_t ord : idx->ordinals)
        PutVarint32(&payload, static_cast<uint32_t>(ord));
      payload.push_back(idx->unique ? 1 : 0);
    }
    PutVarint64(&payload, table->row_count());
    for (BTree::Iterator it = table->Scan(); it.Valid(); it.Next()) {
      EncodeRow(it.value(), &payload);
    }
  }

  std::vector<uint8_t> header;
  header.insert(header.end(), kMagic, kMagic + kMagicLen);
  PutFixed64(&header, payload.size());
  PutFixed32(&header, Crc32c(Slice(payload)));

  std::string tmp = path + ".tmp";
  {
    auto file = env->NewWritableFile(tmp, WritableFileOptions{.truncate = true});
    if (!file.ok())
      return Status::IOError("cannot create checkpoint temp file " + tmp +
                             ": " + file.status().message());
    Status st = (*file)->Append(Slice(header));
    if (st.ok()) st = (*file)->Append(Slice(payload));
    if (st.ok()) st = (*file)->Flush();
    // fsync BEFORE rename: without this, the rename can become durable
    // ahead of the data and a crash leaves an empty/torn file under the
    // checkpoint's name — which recovery would trust.
    if (st.ok()) st = (*file)->Sync();
    Status close_st = (*file)->Close();
    if (st.ok()) st = close_st;
    if (!st.ok()) {
      (void)env->RemoveFile(tmp);  // best-effort cleanup of the temp file
      return Status::IOError("checkpoint write failed: " + st.message());
    }
  }
  // Retain the checkpoint being replaced: recovery falls back to it (plus
  // the rotated WAL) if the new one is ever found torn or corrupt.
  if (env->FileExists(path))
    SL_RETURN_IF_ERROR(env->RenameFile(path, path + ".prev"));
  SL_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  // fsync the parent directory so the renames themselves survive a crash.
  SL_RETURN_IF_ERROR(env->SyncDir(ParentDir(path)));
  return Status::OK();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto file = env->NewSequentialFile(path);
  if (!file.ok()) {
    if (file.status().IsNotFound())
      return Status::NotFound("no checkpoint at " + path);
    return file.status();
  }

  uint8_t header[kMagicLen + 12];
  auto header_n = (*file)->Read(sizeof(header), header);
  if (!header_n.ok()) return header_n.status();
  if (*header_n != sizeof(header))
    return Status::Corruption("checkpoint header truncated");
  if (std::memcmp(header, kMagic, kMagicLen) != 0)
    return Status::Corruption("bad checkpoint magic");
  uint64_t len = 0;
  for (int i = 0; i < 8; i++)
    len |= static_cast<uint64_t>(header[kMagicLen + i]) << (8 * i);
  uint32_t crc = 0;
  for (int i = 0; i < 4; i++)
    crc |= static_cast<uint32_t>(header[kMagicLen + 8 + i]) << (8 * i);
  // A corrupted length field must not drive a giant allocation: the payload
  // can never exceed what is actually in the file.
  auto file_size = env->GetFileSize(path);
  if (file_size.ok() && len > *file_size)
    return Status::Corruption("checkpoint length field exceeds file size");

  std::vector<uint8_t> payload(len);
  auto payload_n = (*file)->Read(len, payload.data());
  if (!payload_n.ok()) return payload_n.status();
  if (*payload_n != len)
    return Status::Corruption("checkpoint payload truncated");
  if (Crc32c(Slice(payload)) != crc)
    return Status::Corruption("checkpoint CRC mismatch");

  Decoder dec{Slice(payload)};
  CheckpointData out;
  auto meta = dec.GetLengthPrefixed();
  if (!meta.ok()) return meta.status();
  out.meta = meta->ToVector();

  auto num_tables = dec.GetVarint32();
  if (!num_tables.ok()) return num_tables.status();
  for (uint32_t t = 0; t < *num_tables; t++) {
    auto table_id = dec.GetVarint32();
    if (!table_id.ok()) return table_id.status();
    auto name = dec.GetLengthPrefixed();
    if (!name.ok()) return name.status();
    auto schema = DecodeSchema(&dec);
    if (!schema.ok()) return schema.status();

    auto table = std::make_unique<TableStore>(*table_id, name->ToString(),
                                              std::move(*schema));

    auto num_indexes = dec.GetVarint32();
    if (!num_indexes.ok()) return num_indexes.status();
    struct IndexDef {
      std::string name;
      std::vector<size_t> ordinals;
      bool unique = false;
    };
    std::vector<IndexDef> index_defs;
    for (uint32_t i = 0; i < *num_indexes; i++) {
      auto idx_name = dec.GetLengthPrefixed();
      if (!idx_name.ok()) return idx_name.status();
      auto num_ords = dec.GetVarint32();
      if (!num_ords.ok()) return num_ords.status();
      IndexDef def;
      def.name = idx_name->ToString();
      for (uint32_t k = 0; k < *num_ords; k++) {
        auto ord = dec.GetVarint32();
        if (!ord.ok()) return ord.status();
        def.ordinals.push_back(*ord);
      }
      auto unique_b = dec.GetBytes(1);
      if (!unique_b.ok()) return unique_b.status();
      def.unique = (*unique_b)[0] != 0;
      index_defs.push_back(std::move(def));
    }

    auto row_count = dec.GetVarint64();
    if (!row_count.ok()) return row_count.status();
    for (uint64_t r = 0; r < *row_count; r++) {
      auto row = DecodeRow(&dec);
      if (!row.ok()) return row.status();
      SL_RETURN_IF_ERROR(table->Insert(*row));
    }
    // Rebuild secondary indexes after rows are loaded so unique checks see
    // the final data.
    for (const IndexDef& def : index_defs) {
      SL_RETURN_IF_ERROR(table->CreateIndex(def.name, def.ordinals, def.unique));
    }
    out.tables.push_back(std::move(table));
  }
  if (!dec.done()) return Status::Corruption("trailing bytes in checkpoint");
  return out;
}

}  // namespace sqlledger
