// Pluggable storage environment. Every file touched by the durability
// machinery — the WAL, checkpoints and the file-backed digest store — goes
// through this interface instead of calling fopen/fstream directly. That
// gives production code one place to get durability right (fsync of files
// AND parent directories) and gives tests a seam to inject faults: the
// FaultInjectionEnv wrapper can fail the Nth write/fsync/rename, simulate a
// crash that drops all un-synced data (torn tails included), and flip bits
// on read, so the crash-recovery paths of paper §3.3.2 are actually
// exercised rather than assumed.

#ifndef SQLLEDGER_STORAGE_ENV_H_
#define SQLLEDGER_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlledger {

/// A file open for writing. Data passed to Append may sit in OS buffers;
/// only data covered by a successful Sync is guaranteed to survive a crash.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(Slice data) = 0;
  /// Pushes buffered data to the OS (no durability guarantee).
  virtual Status Flush() = 0;
  /// Makes all appended data crash-durable (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A file open for sequential reading.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Reads up to `n` bytes into `scratch`; returns the number of bytes
  /// actually read, which is less than `n` only at end of file.
  virtual Result<size_t> Read(size_t n, uint8_t* scratch) = 0;
};

struct WritableFileOptions {
  bool truncate = false;   // start from an empty file instead of appending
  bool exclusive = false;  // AlreadyExists if the file is already present
};

/// Filesystem abstraction. All paths are plain filesystem paths; the
/// default implementation (PosixEnv, via Env::Default()) maps straight to
/// POSIX calls.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide default environment (PosixEnv singleton).
  static Env* Default();

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts = {}) = 0;
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual bool IsDirectory(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  /// Names (not paths) of the entries of `dir`, sorted.
  virtual Result<std::vector<std::string>> GetChildren(
      const std::string& dir) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Removes an empty directory. OK if it does not exist.
  virtual Status RemoveDir(const std::string& dir) = 0;
  /// Atomic replace. NOT durable until the parent directory is synced.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  /// fsyncs the directory itself, making renames/creates/removes of its
  /// entries durable.
  virtual Status SyncDir(const std::string& dir) = 0;
  /// Strips write permission (immutable-blob emulation).
  virtual Status MakeReadOnly(const std::string& path) = 0;

  /// Convenience: whole-file read via NewSequentialFile.
  Result<std::vector<uint8_t>> ReadFile(const std::string& path);
};

/// Recursively removes `dir` and everything under it through the Env
/// interface (so fault injection sees every operation). OK if `dir` does
/// not exist.
Status RemoveDirRecursive(Env* env, const std::string& dir);

/// Recursively copies the tree rooted at `from` into `to` (created if
/// missing) through the Env interface. Every copied file is synced and
/// each directory dir-synced, so the copy is crash-durable when the call
/// returns — the restore path depends on that.
Status CopyDirRecursive(Env* env, const std::string& from,
                        const std::string& to);

/// Direct POSIX implementation. Stateless; safe to share across threads.
class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  bool IsDirectory(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  Status MakeReadOnly(const std::string& path) override;
};

/// Wraps another Env (Env::Default() if none given) and injects storage
/// faults. Three independent fault families:
///
///  1. One-shot countdown errors: FailNthWrite/FailNthSync/FailNthRename
///     make the Nth subsequent operation of that kind return IOError.
///  2. Crash simulation: SimulateCrash() (or CrashAtSync(n), which fires
///     while performing the nth sync-type operation) truncates every file
///     written through this env back to its last successfully synced size —
///     optionally keeping a pseudo-random prefix of the un-synced tail, the
///     "torn write" — and rolls back renames that were never made durable
///     by a SyncDir. After the crash every operation fails with IOError, so
///     the engine under test cannot quietly keep working.
///  3. Read corruption: CorruptReadsMatching(substr) flips one bit in every
///     read from files whose path contains `substr`.
///
/// All state is process-local; the wrapped env still writes real files, so
/// a post-crash reopen with a clean env sees exactly what a machine would
/// after power loss.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* target = nullptr, uint64_t seed = 42);

  // ---- Fault controls ----
  void FailNthWrite(int n);   // n = 1 fails the very next write
  void FailNthSync(int n);
  void FailNthRename(int n);
  void CrashAtSync(int n);    // the nth sync/syncdir fails and crashes
  void SimulateCrash();
  void CorruptReadsMatching(const std::string& substring);
  bool crashed() const;

  // ---- Counters (for sizing crash schedules in tests) ----
  uint64_t sync_count() const;
  uint64_t write_count() const;
  uint64_t rename_count() const;

  // ---- Env interface ----
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  bool IsDirectory(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  Status MakeReadOnly(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;
  friend class FaultInjectionSequentialFile;

  struct FileState {
    uint64_t written_size = 0;  // bytes on disk right now
    uint64_t synced_size = 0;   // bytes guaranteed to survive a crash
  };
  struct PendingRename {
    std::string dir;
    std::string from;
    std::string to;
  };

  /// Returns the injected error if a fault should fire for this operation
  /// kind, decrementing the countdown.
  Status CheckWriteLocked() REQUIRES(mu_);
  Status CheckSyncLocked() REQUIRES(mu_);
  /// Drops un-synced state; returns the crash error.
  Status CrashLocked() REQUIRES(mu_);
  static std::string DirOf(const std::string& path);

  Env* const target_;
  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  bool crashed_ GUARDED_BY(mu_) = false;
  int fail_write_countdown_ GUARDED_BY(mu_) = -1;
  int fail_sync_countdown_ GUARDED_BY(mu_) = -1;
  int fail_rename_countdown_ GUARDED_BY(mu_) = -1;
  int crash_sync_countdown_ GUARDED_BY(mu_) = -1;
  std::string corrupt_read_substring_ GUARDED_BY(mu_);
  uint64_t writes_ GUARDED_BY(mu_) = 0;
  uint64_t syncs_ GUARDED_BY(mu_) = 0;
  uint64_t renames_ GUARDED_BY(mu_) = 0;
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
  std::vector<PendingRename> pending_renames_ GUARDED_BY(mu_);
};

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_ENV_H_
