// In-memory B+-tree keyed by value tuples. Backs both clustered indexes
// (primary key -> full row) and non-clustered indexes (index key -> primary
// key, stored as a Row). Leaves are chained for ordered scans, which the
// ledger verifier relies on (it recomputes Merkle roots over rows in
// clustered-key order, paper §3.4.2 invariant 5).
//
// Deletion removes entries in place and unlinks pages only when they become
// empty (the PostgreSQL approach) rather than eagerly rebalancing; ordered
// iteration and lookup costs are unaffected for the workloads at hand.
//
// Thread safety: none. Callers (the transaction layer) serialize access via
// table locks.

#ifndef SQLLEDGER_STORAGE_BTREE_H_
#define SQLLEDGER_STORAGE_BTREE_H_

#include <memory>
#include <vector>

#include "catalog/value.h"
#include "util/result.h"
#include "util/status.h"

namespace sqlledger {

class BTree {
 public:
  /// `fanout` is the max number of keys per node before a split.
  explicit BTree(size_t fanout = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts; fails with AlreadyExists if the key is present.
  Status Insert(const KeyTuple& key, Row value);
  /// Inserts or overwrites.
  void Upsert(const KeyTuple& key, Row value);
  /// Replaces the value of an existing key; NotFound otherwise.
  Status Update(const KeyTuple& key, Row value);
  /// Removes; NotFound if absent.
  Status Delete(const KeyTuple& key);

  /// Point lookup. The returned pointer is valid until the next mutation.
  const Row* Get(const KeyTuple& key) const;
  /// Mutable point lookup for in-place value edits that do not change the
  /// key (schema evolution appends NULL cells to every row).
  Row* MutableGet(const KeyTuple& key);
  bool Contains(const KeyTuple& key) const { return Get(key) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Forward iterator over (key, value) pairs in key order. Invalidated by
  /// any mutation.
  class Iterator {
   public:
    bool Valid() const;
    void Next();
    const KeyTuple& key() const;
    const Row& value() const;

   private:
    friend class BTree;
    struct LeafRef {
      const void* leaf = nullptr;
      size_t pos = 0;
    } ref_;
  };

  /// Iterator positioned at the smallest key.
  Iterator Begin() const;
  /// Iterator positioned at the first key >= `key`.
  Iterator Seek(const KeyTuple& key) const;

  /// Structural self-check used by property tests: key ordering within and
  /// across leaves, child separator consistency, size bookkeeping.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  LeafNode* FindLeaf(const KeyTuple& key) const;
  void SplitLeaf(LeafNode* leaf, std::vector<InternalNode*>* path);
  void SplitInternal(InternalNode* node, std::vector<InternalNode*>* path);
  LeafNode* DescendWithPath(const KeyTuple& key,
                            std::vector<InternalNode*>* path) const;
  void RemoveEmptyLeaf(LeafNode* leaf, std::vector<InternalNode*>* path);
  void FreeNode(Node* node);

  size_t fanout_;
  Node* root_;
  size_t size_;
  size_t height_;  // 1 = root is a leaf
};

}  // namespace sqlledger

#endif  // SQLLEDGER_STORAGE_BTREE_H_
