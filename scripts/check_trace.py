#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by the Tracer
(DESIGN.md §13).  Used by the CI bench-smoke step on the stats_tool trace
artifact; exits non-zero with a diagnostic on the first violation.

Checks:
  - top-level shape: traceEvents list, displayTimeUnit, otherData with a
    non-negative integer dropped_events;
  - every event has the required keys for its phase ('X' needs a
    non-negative dur, 'i' needs the "t" scope), integer timestamps, and
    positive integer pid/tid;
  - events are in recording order: per-tid 'X' timestamps never go
    backwards (the ring exports oldest first).

Usage: check_trace.py <trace.json> [--min-events N]
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}
KNOWN_PHASES = {"X", "i"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path, min_events):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit must be 'ms'")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("missing otherData object")
    dropped = other.get("dropped_events")
    if not isinstance(dropped, int) or isinstance(dropped, bool) or dropped < 0:
        fail(f"otherData.dropped_events must be a non-negative int, got {dropped!r}")
    if len(events) < min_events:
        fail(f"expected at least {min_events} events, got {len(events)}")

    last_ts_by_tid = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        missing = REQUIRED_EVENT_KEYS - ev.keys()
        if missing:
            fail(f"{where} missing keys: {sorted(missing)}")
        if not ev["name"] or not isinstance(ev["name"], str):
            fail(f"{where} has an empty name")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            fail(f"{where} has unknown phase {ph!r}")
        for key in ("ts", "pid", "tid"):
            v = ev[key]
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"{where}.{key} is not an integer: {v!r}")
        if ev["ts"] < 0 or ev["pid"] < 1 or ev["tid"] < 1:
            fail(f"{where} has out-of-range ts/pid/tid")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                fail(f"{where} ('X') needs a non-negative integer dur")
            # Oldest-first export: per-tid span starts never go backwards.
            tid = ev["tid"]
            if tid in last_ts_by_tid and ev["ts"] < last_ts_by_tid[tid]:
                fail(f"{where} ts {ev['ts']} precedes earlier event on tid {tid}")
            last_ts_by_tid[tid] = ev["ts"]
        elif ph == "i":
            if ev.get("s") != "t":
                fail(f"{where} ('i') needs instant scope \"s\":\"t\"")
        args = ev.get("args")
        if args is not None and (not isinstance(args, dict) or not args):
            fail(f"{where}.args must be a non-empty object when present")

    print(
        f"check_trace: OK: {len(events)} events, {dropped} dropped, "
        f"{len(last_ts_by_tid)} span thread(s)"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to the trace JSON file")
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of events expected (default 1)",
    )
    ns = ap.parse_args()
    check(ns.trace, ns.min_events)


if __name__ == "__main__":
    main()
