// Escape-hatch fixtures: a justified allow() suppresses, an unjustified
// one suppresses but is itself flagged, an unknown rule name is flagged.
#include <cstdio>

namespace fx {

int justified_fopen(const char* path) {
  // lint: allow(env-bypass): fixture exercises the justified escape hatch
  FILE* f = fopen(path, "rb");
  if (f != nullptr) {
    fclose(f);  // lint: allow(env-bypass): fixture, same escape hatch
  }
  return 0;
}

int unjustified_case(const char* path) {
  // lint: allow(env-bypass)
  FILE* f = fopen(path, "rb");
  if (f != nullptr) {
    fclose(f);  // lint: allow(env-bypass): fixture, justified sibling
  }
  return 0;
}

int unknown_rule_case() {
  // lint: allow(made-up-rule): names a rule that does not exist
  return 1;
}

}  // namespace fx
