// Minimal stand-ins for util/thread_annotations.h so fixtures parse (and
// compile under libclang) without pulling in the real repo headers.
#ifndef FIXTURE_MUTEX_H_
#define FIXTURE_MUTEX_H_

struct Mutex {
  void Lock() {}
  void Unlock() {}
};

struct MutexLock {
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }
  Mutex* mu_;
};

#endif  // FIXTURE_MUTEX_H_
