// Seeded violation: direct stdio call outside the Env abstraction.
#include <cstdio>

namespace fx {

int ReadConfigDirect(const char* path) {
  FILE* f = fopen(path, "rb");  // env-bypass: direct fopen
  if (f == nullptr) {
    return -1;
  }
  fclose(f);  // env-bypass: direct fclose
  return 0;
}

}  // namespace fx
