// Seeded violation: the error path acquires b_ then a_, inverting the
// declared a_ -> b_ order and closing a cycle in the observed graph.
#include "fixture_mutex.h"

namespace fx {

class Inv {
 public:
  void Forward() {
    MutexLock a(&a_);
    MutexLock b(&b_);  // declared order: a_ -> b_
  }

  void ErrorPath(bool fail) {
    MutexLock b(&b_);
    if (fail) {
      MutexLock a(&a_);  // inversion: b_ held while acquiring a_
    }
  }

 private:
  Mutex a_;
  Mutex b_;
};

}  // namespace fx
