// Compliant twin: the nesting a_ -> b_ (reached interprocedurally via
// Nested()) matches the declared hierarchy, so no finding may fire.
#include "fixture_mutex.h"

namespace fx {

class Ord {
 public:
  void Locked() {
    MutexLock a(&a_);
    Nested();
  }

  void Nested() { MutexLock b(&b_); }

 private:
  Mutex a_;
  Mutex b_;
};

}  // namespace fx
