// Sanctioned file: raw POSIX calls are the whole point of the Env
// implementation, so nothing here may fire env-bypass.
#include <fcntl.h>
#include <unistd.h>

namespace fx {

int SanctionedOpen(const char* path) {
  int fd = ::open(path, 0);
  if (fd >= 0) {
    ::close(fd);
  }
  return fd;
}

}  // namespace fx
