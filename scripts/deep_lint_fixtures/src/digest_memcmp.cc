// Seeded violations: short-circuiting comparisons on secret digests.
#include <array>
#include <cstring>

namespace fx {

struct Digest32 {
  std::array<unsigned char, 32> bytes;
};

bool CompareDigests(const unsigned char* digest_a,
                    const unsigned char* digest_b) {
  return memcmp(digest_a, digest_b, 32) == 0;  // digest-hygiene: memcmp
}

bool RawBytesCompare(const Digest32& a, const Digest32& b) {
  return a.bytes == b.bytes;  // digest-hygiene: raw .bytes comparison
}

}  // namespace fx
