// Seeded violation: raw open() reached only through two call hops; the
// analyzer must surface the TransEntry -> OpenHelper -> RawOpenImpl chain.
#include <fcntl.h>

namespace fx {

static int RawOpenImpl(const char* path) {
  return ::open(path, 0);  // env-bypass, two hops below the entry point
}

static int OpenHelper(const char* path) { return RawOpenImpl(path); }

int TransEntry(const char* path) { return OpenHelper(path); }

}  // namespace fx
