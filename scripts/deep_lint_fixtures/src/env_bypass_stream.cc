// Seeded violation: stream I/O dodges Env just as surely as fopen does.
#include <fstream>

namespace fx {

bool DumpStateToStream(const char* path) {
  std::ofstream out(path);  // env-bypass: ofstream
  return out.good();
}

}  // namespace fx
