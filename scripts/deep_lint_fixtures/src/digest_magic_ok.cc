// Compliant twin: magic-number / file-header comparisons are format
// checks, not secret comparisons, and must stay quiet.
#include <cstring>

namespace fx {

constexpr char kMagic[4] = {'S', 'L', 'D', 'B'};

bool CheckFileMagic(const char* buf) {
  return memcmp(buf, kMagic, sizeof(kMagic)) == 0;
}

bool CheckHeaderHash(const char* header_hash_a, const char* header_hash_b) {
  return memcmp(header_hash_a, header_hash_b, 8) == 0;
}

}  // namespace fx
