// Seeded violation: a_ -> c_ is a real nesting but is not declared in
// lock_hierarchy.txt, so it must be reported as an undeclared edge.
#include "fixture_mutex.h"

namespace fx {

class Und {
 public:
  void TakeBoth() {
    MutexLock a(&a_);
    MutexLock c(&c_);  // edge a_ -> c_: never declared
  }

 private:
  Mutex a_;
  Mutex c_;
};

}  // namespace fx
