#!/usr/bin/env python3
"""deep_lint.py -- semantic analyzer for the sqlledger tree.

Three checker families run over a shared intermediate representation
(functions, call sites, lock acquisitions):

  env-bypass      raw POSIX/stdio/std::filesystem I/O reached from src/
                  outside the Env abstraction (src/storage/env.{cc,h}),
                  reported with the full call chain
  lock-order      interprocedural acquired-while-held lock graph, diffed
                  against the declared hierarchy (scripts/lock_hierarchy.txt);
                  cycles and undeclared edges fail the build
  digest-hygiene  memcmp/std::equal/raw-array == on digest/MAC byte buffers
                  that dodge util/constant_time.h::ConstantTimeEqual

Two interchangeable frontends produce the IR:

  clang     libclang (python3 clang.cindex) driven by compile_commands.json;
            used in CI where python3-clang is installed
  fallback  built-in token-level parser tuned to this repo's idiom; used
            where libclang is unavailable (prints a loud note)

Escape hatch: `// lint: allow(<rule>): <justification>` on the offending
line or the line above.  The justification after the colon is mandatory;
an allow() without one is itself a finding.

Exit codes: 0 clean, 1 findings, 2 infrastructure error.
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "env-bypass",
    "lock-order",
    "digest-hygiene",
    "allow-without-justification",
}

# RAII guard types from util/thread_annotations.h.
GUARD_TYPES = {"MutexLock", "ReaderMutexLock", "WriterMutexLock"}
LOCK_METHODS = {"Lock", "LockShared", "TryLock"}
UNLOCK_METHODS = {"Unlock", "UnlockShared"}
MUTEX_TYPES = {"Mutex", "SharedMutex"}

# Free-function POSIX / stdio calls that must only appear inside the Env
# implementation.  Matched only as free calls (no '.'/'->' receiver), so
# repo methods like file->Close() never collide.
BANNED_POSIX = {
    "open", "openat", "creat", "fopen", "freopen", "fdopen",
    "close", "fclose",
    "read", "pread", "fread", "fgets", "fscanf",
    "write", "pwrite", "fwrite", "fputs", "fputc",
    "fsync", "fdatasync", "syncfs", "fflush",
    "rename", "renameat", "unlink", "unlinkat",
    "mkdir", "mkdirat", "rmdir",
    "truncate", "ftruncate",
    "chmod", "fchmod", "stat", "fstat", "lstat", "access",
    "opendir", "readdir", "closedir",
    "link", "symlink", "realpath", "tmpfile", "mkstemp",
}

# Token-level bans: these identifiers appearing at all in non-sanctioned
# src/ files are bypasses (stream I/O and std::filesystem dodge Env).
BANNED_TOKENS = {"ifstream", "ofstream", "fstream", "filesystem"}

SANCTIONED = {"src/storage/env.cc", "src/storage/env.h"}
EXCLUDED = {"src/util/thread_annotations.h"}

DIGEST_ARG_RE = re.compile(
    r"(?i)(hash|digest|hmac|\bmac\b|signature|fingerprint|tag\b|\broot\b)")
DIGEST_EXEMPT_RE = re.compile(r"(?i)(magic|header)")

ALLOW_RE = re.compile(
    r"//\s*lint:\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)"
    r"(\s*:\s*(\S.*))?")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "else", "do", "case", "new", "delete", "throw", "static_assert",
    "alignas", "alignof", "decltype",
}

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*|::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||"
    r"\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|[0-9][0-9a-fA-FxX.uUlL']*|.")


class Finding:
    def __init__(self, rule, file, line, msg, chain=None):
        self.rule = rule
        self.file = file
        self.line = line
        self.msg = msg
        self.chain = chain or []

    def render(self):
        out = "%s:%d: [%s] %s" % (self.file, self.line, self.rule, self.msg)
        for step in self.chain:
            out += "\n    via %s" % step
        return out


class Func:
    """One function definition: ordered lock/call ops plus raw I/O sites."""

    def __init__(self, key, cls, name, file, line):
        self.key = key      # "Class::name" or "name"
        self.cls = cls      # enclosing class name or None
        self.name = name
        self.file = file
        self.line = line
        self.params = {}    # var name -> type name
        self.locals = {}
        # ops: ("acq", lock, line) / ("rel", lock, line) /
        #      ("call", callee, recv_type_or_None, line)
        self.ops = []
        self.raw_calls = []  # (posix name, line)


class ClassInfo:
    def __init__(self, name):
        self.name = name
        self.bases = []
        self.members = {}   # member name -> type name


class Model:
    """Shared IR produced by either frontend."""

    def __init__(self):
        self.functions = {}   # key -> Func (overloads merged: over-approx)
        self.classes = {}     # name -> ClassInfo
        self.subclasses = {}  # base -> set of derived
        self.allow = {}       # file -> {line: (set(rules), has_justification)}
        self.token_hits = {}  # file -> [(line, token)] banned token usage
        self.frontend = "?"

    def get_func(self, key, cls, name, file, line):
        if key not in self.functions:
            self.functions[key] = Func(key, cls, name, file, line)
        return self.functions[key]

    def member_type(self, cls, field):
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen or c not in self.classes:
                continue
            seen.add(c)
            info = self.classes[c]
            if field in info.members:
                return info.members[field], c
            stack.extend(info.bases)
        return None, None

    def descendants(self, cls):
        out = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            for d in self.subclasses.get(c, ()):
                if d not in out:
                    out.add(d)
                    stack.append(d)
        return out


def scan_allow_comments(path, text):
    """Map line -> (rules, has_justification) for lint: allow comments."""
    out = {}
    for i, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            out[i] = (rules, m.group(3) is not None)
    return out


def strip_code(text):
    """Removes comments, string/char literals and preprocessor lines while
    preserving the newline structure (so token line numbers survive)."""
    out = []
    i, n = 0, len(text)
    line_start = True
    while i < n:
        c = text[i]
        if line_start and c == "#":
            # Preprocessor line (with continuations).
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    out.append("\n")
                    i += 2
                    continue
                i += 1
            continue
        if c == "\n":
            out.append("\n")
            line_start = True
            i += 1
            continue
        if c not in " \t":
            line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
            continue
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append('""' if quote == '"' else "'x'")
            continue
        out.append(c)
        i += 1
    return "".join(out)


def tokenize(code):
    """-> list of (token_text, line_number)."""
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        t = m.group(0)
        if not t.isspace():
            toks.append((t, line))
    return toks


# ---------------------------------------------------------------------------
# Fallback frontend: token-level parser tuned to this repo's idiom.
# ---------------------------------------------------------------------------

def match_paren(toks, i):
    """toks[i] == '(' -> index of matching ')', or len(toks)."""
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks)


def classify_head(head):
    """Classify the statement head preceding a '{' at namespace/class scope.

    Returns ("namespace", name) / ("class", name, bases) /
            ("function", cls_or_None, name, param_range) / ("block",).
    `head` is a list of (tok, line); param_range indexes into head.
    """
    texts = [t for t, _ in head]
    if not texts:
        return ("block",)
    if "namespace" in texts:
        idx = texts.index("namespace")
        name = texts[idx + 1] if idx + 1 < len(texts) and \
            texts[idx + 1].replace("_", "a").isalnum() else ""
        return ("namespace", name)
    if "enum" in texts or "union" in texts:
        return ("block",)
    for kw in ("class", "struct"):
        if kw in texts:
            idx = texts.index(kw)
            # Skip attribute macros like CAPABILITY("mutex"); the class name
            # is the last plain identifier before ':' (bases) or end of head.
            j = idx + 1
            name = None
            while j < len(texts) and texts[j] != ":":
                t = texts[j]
                if re.fullmatch(r"[A-Za-z_]\w*", t):
                    if j + 1 < len(texts) and texts[j + 1] == "(":
                        j = next((k for k, (x, _) in enumerate(head[j:], j)
                                  if x == ")"), len(texts)) + 1
                        continue
                    if t not in ("final", "alignas"):
                        name = t
                j += 1
            if name is None:
                return ("block",)
            bases = []
            if j < len(texts) and texts[j] == ":":
                k = j + 1
                while k < len(texts):
                    t = texts[k]
                    if re.fullmatch(r"[A-Za-z_]\w*", t) and t not in (
                            "public", "private", "protected", "virtual"):
                        # take the last component of qualified bases
                        if k + 1 >= len(texts) or texts[k + 1] != "::":
                            bases.append(t)
                    k += 1
            return ("class", name, bases)
    # Function?  Find the first '(' preceded by a callable name.
    if "(" not in texts:
        return ("block",)
    if "=" in texts and texts.index("=") < texts.index("("):
        return ("block",)
    pidx = texts.index("(")
    if pidx == 0:
        return ("block",)
    prev = texts[pidx - 1]
    name = None
    if re.fullmatch(r"[A-Za-z_]\w*", prev) and prev not in CONTROL_KEYWORDS:
        name = prev
        nidx = pidx - 1
    elif pidx >= 2 and texts[pidx - 2] == "operator":
        name = "operator" + prev
        nidx = pidx - 2
    else:
        return ("block",)
    cls = None
    if nidx >= 2 and texts[nidx - 1] == "::" and \
            re.fullmatch(r"[A-Za-z_]\w*", texts[nidx - 2]):
        cls = texts[nidx - 2]
    pend = None
    depth = 0
    for k in range(pidx, len(texts)):
        if texts[k] == "(":
            depth += 1
        elif texts[k] == ")":
            depth -= 1
            if depth == 0:
                pend = k
                break
    if pend is None:
        return ("block",)
    return ("function", cls, name, (pidx, pend))


def split_params(texts):
    """Parameter list tokens (no outer parens) -> {name: type}."""
    out = {}
    depth = 0
    cur = []
    groups = []
    for t in texts:
        if t in "(<[{":
            depth += 1
        elif t in ")>]}":
            depth -= 1
        if t == "," and depth == 0:
            groups.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        groups.append(cur)
    for g in groups:
        idents = [t for t in g if re.fullmatch(r"[A-Za-z_]\w*", t)
                  and t not in ("const", "struct", "unsigned", "signed",
                                "volatile", "mutable")]
        if len(idents) >= 2:
            out[idents[-1]] = unwrap_type(g, idents[-2])
    return out


def unwrap_type(tokens, fallback):
    """Best-effort element type: unique_ptr<T>/shared_ptr<T> -> T,
    A::B -> B, otherwise `fallback`."""
    text = "".join(t for t in tokens if isinstance(t, str))
    m = re.search(r"(?:unique_ptr|shared_ptr)<([\w:]+)", text)
    if m:
        return m.group(1).split("::")[-1]
    return fallback.split("::")[-1] if fallback else fallback


DECL_STOP = {";", "{", "}"}


def parse_fallback_file(model, root, rel):
    path = os.path.join(root, rel)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        raise RuntimeError("cannot read %s: %s" % (path, e))
    model.allow[rel] = scan_allow_comments(path, text)
    code = strip_code(text)
    toks = tokenize(code)

    # Banned-token sweep (stream I/O, std::filesystem) for env-bypass.
    hits = []
    for i, (t, ln) in enumerate(toks):
        if t in BANNED_TOKENS:
            if t == "filesystem" and not (i >= 2 and toks[i - 1][0] == "::"
                                          and toks[i - 2][0] == "std"):
                continue
            hits.append((ln, t))
    if hits:
        model.token_hits[rel] = hits

    # Structure pass: walk braces, classify scopes, record class members and
    # function body token ranges.
    scope = []            # list of dicts {kind, name, head_start}
    head_start = 0
    functions = []        # (Func, param_range, body_start, body_end)
    stmt_start = 0
    i = 0
    while i < len(toks):
        t, ln = toks[i]
        if t == "{":
            kind = scope[-1]["kind"] if scope else "namespace"
            if kind in ("namespace", "class"):
                head = toks[head_start:i]
                info = classify_head(head)
            else:
                info = ("block",)
            entry = {"kind": info[0], "body_start": i + 1, "line": ln}
            if info[0] == "class":
                entry["name"] = info[1]
                ci = model.classes.setdefault(info[1], ClassInfo(info[1]))
                ci.bases = info[2] or ci.bases
                for b in info[2]:
                    model.subclasses.setdefault(b, set()).add(info[1])
            elif info[0] == "function":
                cls = info[1]
                if cls is None:
                    for s in reversed(scope):
                        if s["kind"] == "class":
                            cls = s["name"]
                            break
                key = "%s::%s" % (cls, info[2]) if cls else info[2]
                fn = model.get_func(key, cls, info[2], rel, ln)
                head = toks[head_start:i]
                ps, pe = info[3]
                fn.params.update(split_params([x for x, _ in head[ps + 1:pe]]))
                entry["func"] = fn
            elif info[0] == "namespace":
                entry["name"] = info[1]
            scope.append(entry)
            head_start = i + 1
            stmt_start = i + 1
        elif t == "}":
            if scope:
                entry = scope.pop()
                if entry.get("func") is not None:
                    functions.append((entry["func"], entry["body_start"], i))
            head_start = i + 1
            stmt_start = i + 1
        elif t == ";":
            # Member declarations directly inside a class body.
            if scope and scope[-1]["kind"] == "class":
                record_member(model, scope[-1]["name"],
                              toks[stmt_start:i])
            head_start = i + 1
            stmt_start = i + 1
        i += 1

    for fn, bs, be in functions:
        extract_ops(model, fn, toks, bs, be)


def record_member(model, cls, stmt):
    texts = [t for t, _ in stmt]
    while len(texts) >= 2 and texts[0] in ("public", "private",
                                           "protected") and texts[1] == ":":
        texts = texts[2:]
    if not texts or texts[0] in ("using", "typedef", "friend", "template"):
        return
    idents = []
    depth = 0
    for k, t in enumerate(texts):
        if t in "(<":
            depth += 1
        elif t in ")>":
            depth -= 1
        if t in ("=",):
            break
        if depth == 0 and re.fullmatch(r"[A-Za-z_]\w*", t):
            nxt = texts[k + 1] if k + 1 < len(texts) else ""
            idents.append((t, nxt))
    idents = [(t, nxt) for t, nxt in idents
              if t not in ("const", "static", "mutable", "virtual",
                           "constexpr", "explicit", "inline", "override",
                           "final", "volatile", "unsigned", "signed")]
    if len(idents) < 2:
        return
    name, nxt = idents[-1]
    if nxt == "(":  # method declaration, not a data member
        return
    # Drop trailing annotation macros: `Mutex mu_ GUARDED_BY(x)` leaves
    # GUARDED_BY as the last ident with nxt == "(" (handled above); a plain
    # macro without parens is unlikely.
    ty = idents[-2][0]
    if ty == "GUARDED_BY" or name == "GUARDED_BY":
        return
    model.classes.setdefault(cls, ClassInfo(cls)).members[name] = \
        unwrap_type(texts, ty)


def resolve_receiver_type(model, fn, recv):
    """Receiver expression tokens (e.g. ['db'], ['this']) -> type name."""
    if not recv:
        return None
    if recv == ["this"]:
        return fn.cls
    if len(recv) == 1:
        name = recv[0]
        if name in fn.locals:
            return fn.locals[name]
        if name in fn.params:
            return fn.params[name]
        if fn.cls:
            ty, _ = model.member_type(fn.cls, name)
            if ty:
                return ty
        if name in model.classes:   # static call: Type::Method()
            return name
    return None


def canon_lock(model, fn, expr):
    """Lock expression tokens -> canonical 'Owner::member' name.

    ['mu_'] in a LedgerDatabase method -> 'LedgerDatabase::mu_' (or the
    base class that declares it); ['db', '->', 'verify_mu_'] resolves the
    receiver via param/local/member type maps.  Unresolvable expressions
    return None so no speculative graph edges appear (the libclang
    frontend resolves these exactly).
    """
    expr = [t for t in expr if t not in ("(", ")")]
    if not expr:
        return None
    if len(expr) == 1 or (expr[0] == "this" and expr[1] in (".", "->")):
        if expr[0] == "this":
            expr = expr[2:]
    if len(expr) == 1:
        name = expr[0]
        if fn.cls:
            ty, owner = model.member_type(fn.cls, name)
            if ty in MUTEX_TYPES:
                return "%s::%s" % (owner, name)
        if name in fn.locals and fn.locals[name] in MUTEX_TYPES:
            return "%s(local)::%s" % (fn.key, name)
        if name in fn.params:
            # A mutex passed by pointer/reference: name it by its type if
            # known, otherwise leave unresolved.
            return None
        if fn.cls is None and name.endswith("_"):
            return None
        return None
    # member access: recv ('.'|'->') field [('.'|'->') field ...]
    if expr[-2] in (".", "->"):
        field = expr[-1]
        recv = expr[:-2]
        rt = resolve_receiver_type(model, fn, recv)
        if rt:
            ty, owner = model.member_type(rt, field)
            if ty in MUTEX_TYPES:
                return "%s::%s" % (owner or rt, field)
            if owner:
                return "%s::%s" % (owner, field)
            return "%s::%s" % (rt, field)
    return None


VAR_DECL_RE = re.compile(
    r"^(?:const\s+)?([A-Za-z_][\w:]*)(?:<[\w:,\s*&]*>)?\s*[*&]*\s*"
    r"(?:const\s+)?([a-z_]\w*)\s*($|=|\(|\{)")


def extract_ops(model, fn, toks, bs, be):
    """Scan a function body token range for locals, lock ops and calls."""
    # First pass: locals, from statement-leading declarations.
    stmt = []
    depth = 0
    for k in range(bs, be):
        t = toks[k][0]
        if t in ("{",):
            depth += 1
            stmt = []
            continue
        if t == "}":
            depth -= 1
            stmt = []
            continue
        if t == ";":
            stmt = []
            continue
        stmt.append(t)
        if len(stmt) <= 8 and t in ("=", "(", "{"):
            m = VAR_DECL_RE.match(" ".join(stmt))
            if m:
                ty = unwrap_type(stmt, m.group(1))
                name = m.group(2)
                if ty and (ty in model.classes or ty in MUTEX_TYPES
                           or ty[0].isupper()):
                    fn.locals.setdefault(name, ty)

    # Second pass: ordered ops.  RAII guards release when their enclosing
    # brace depth closes; manual Lock()/Unlock() are tracked linearly.
    guards = []   # (depth, lock) -- RAII, release at scope exit
    manual = []   # (depth, lock) -- explicit Lock(), release at Unlock()
    depth = 0
    k = bs
    while k < be:
        t, ln = toks[k]
        if t == "[":
            nk = skip_lambda(toks, k, be)
            if nk is not None:
                k = nk
                continue
        if t in ("break", "continue", "return", "goto") and depth > 0:
            # Control leaves the enclosing block: manual locks taken inside
            # this block are not held on the fall-through path the linear
            # scan continues along (e.g. `if (x) { mu_.Lock(); break; }`).
            while manual and manual[-1][0] >= depth:
                _, lk = manual.pop()
                fn.ops.append(("rel", lk, ln))
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            while guards and guards[-1][0] > depth:
                _, lk = guards.pop()
                fn.ops.append(("rel", lk, ln))
        elif t in GUARD_TYPES and k + 2 < be and \
                re.fullmatch(r"[A-Za-z_]\w*", toks[k + 1][0]) and \
                toks[k + 2][0] == "(":
            close = match_paren(toks, k + 2)
            expr = [x for x, _ in toks[k + 3:close]]
            if expr and expr[0] == "&":
                expr = expr[1:]
            lk = canon_lock(model, fn, expr)
            if lk is None and expr:
                lk = "~" + "".join(expr)
            if lk:
                fn.ops.append(("acq", lk, ln))
                guards.append((depth, lk))
            k = close
        elif t in LOCK_METHODS | UNLOCK_METHODS and k >= 2 and \
                toks[k - 1][0] in (".", "->") and k + 2 < len(toks) and \
                toks[k + 1][0] == "(" and toks[k + 2][0] == ")":
            # expr.Lock() / expr->Unlock() with EMPTY parens: a mutex op
            # (LockManager::Lock(txn, ...) always has arguments).
            recv = collect_receiver(toks, k - 2, bs)
            lk = canon_lock(model, fn, recv) if recv else None
            if lk:
                if t in LOCK_METHODS:
                    fn.ops.append(("acq", lk, ln))
                    manual.append((depth, lk))
                else:
                    fn.ops.append(("rel", lk, ln))
                    for mi in range(len(manual) - 1, -1, -1):
                        if manual[mi][1] == lk:
                            manual.pop(mi)
                            break
            k += 2
        elif re.fullmatch(r"[A-Za-z_]\w*", t) and k + 1 < be and \
                toks[k + 1][0] == "(" and t not in CONTROL_KEYWORDS and \
                t not in GUARD_TYPES:
            prev = toks[k - 1][0] if k > bs else ""
            if prev in (".", "->"):
                recv = collect_receiver(toks, k - 2, bs)
                rt = resolve_receiver_type(model, fn, recv)
                # An explicit receiver that we cannot type must NOT fall
                # back to same-class resolution (false self-recursion);
                # "?" matches no candidates.
                fn.ops.append(("call", t, rt if rt else "?", ln))
            elif prev == "::":
                qual = toks[k - 2][0] if k >= 2 else ""
                if re.fullmatch(r"[A-Za-z_]\w*", qual) and \
                        qual not in CONTROL_KEYWORDS:
                    if qual == "std" or qual == "fs":
                        pass  # std::move etc.; std::filesystem via tokens
                    else:
                        fn.ops.append(("call", t, qual, ln))
                elif t in BANNED_POSIX:
                    fn.raw_calls.append((t, ln))  # ::open(...) global call
            else:
                nxt2 = toks[k + 2][0] if k + 2 < be else ""
                if t in BANNED_POSIX:
                    fn.raw_calls.append((t, ln))
                else:
                    fn.ops.append(("call", t, None, ln))
        k += 1
    while guards:
        _, lk = guards.pop()
        fn.ops.append(("rel", lk, be and toks[be - 1][1] or fn.line))


def skip_lambda(toks, k, be):
    """toks[k] == '['.  If this starts a lambda with a braced body, return
    the index just past the body's closing '}'; else None.  Deferred
    lambda bodies must not inherit the enclosing function's held locks
    (thread bodies, pool submissions); they are simply not analyzed by
    the fallback frontend."""
    j = k
    depth = 0
    while j < be:
        t = toks[j][0]
        if t == "[":
            depth += 1
        elif t == "]":
            depth -= 1
            if depth == 0:
                break
        j += 1
    if j >= be:
        return None
    j += 1
    if j < be and toks[j][0] == "(":
        j = match_paren(toks, j) + 1
    while j < be and toks[j][0] in ("mutable", "noexcept", "constexpr"):
        j += 1
    if j < be and toks[j][0] == "->":  # trailing return type
        while j < be and toks[j][0] != "{":
            j += 1
    if j >= be or toks[j][0] != "{":
        return None
    depth = 0
    while j < be:
        t = toks[j][0]
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return j + 1
        j += 1
    return None


def collect_receiver(toks, k, lo):
    """Walk backwards from index k collecting an `a->b.c` chain."""
    out = []
    expect_ident = True
    while k >= lo:
        t = toks[k][0]
        if expect_ident and (re.fullmatch(r"[A-Za-z_]\w*", t) or t == "this"):
            out.append(t)
            expect_ident = False
            k -= 1
        elif not expect_ident and t in (".", "->"):
            out.append(t)
            expect_ident = True
            k -= 1
        else:
            break
    out.reverse()
    return out


# ---------------------------------------------------------------------------
# Checkers (frontend-independent; operate on the Model IR).
# ---------------------------------------------------------------------------

def resolve_call(model, fn, callee, recv_type):
    """-> list of Func keys a call may dispatch to (virtuals included)."""
    out = []
    if recv_type == "?":
        return out
    if recv_type:
        cands = [recv_type] + sorted(model.descendants(recv_type))
        # also walk up: the static type may inherit the method
        info = model.classes.get(recv_type)
        if info:
            cands += info.bases
        for c in cands:
            key = "%s::%s" % (c, callee)
            if key in model.functions:
                out.append(key)
        return out
    if fn.cls:
        # Unqualified call inside a method: same class or its bases first.
        stack = [fn.cls]
        seen = set()
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            key = "%s::%s" % (c, callee)
            if key in model.functions:
                out.append(key)
                # virtual dispatch may land in a derived override
                for d in model.descendants(c):
                    dk = "%s::%s" % (d, callee)
                    if dk in model.functions:
                        out.append(dk)
                return out
            stack.extend(model.classes.get(c, ClassInfo(c)).bases)
    if callee in model.functions:
        out.append(callee)
    return out


def compute_acquires_star(model):
    """key -> set of locks the function may acquire, transitively."""
    memo = {}
    on_stack = set()

    def go(key):
        if key in memo:
            return memo[key]
        if key in on_stack:
            return set()
        on_stack.add(key)
        fn = model.functions[key]
        acc = set()
        for op in fn.ops:
            if op[0] == "acq":
                acc.add(op[1])
            elif op[0] == "call":
                for t in resolve_call(model, fn, op[1], op[2]):
                    acc |= go(t)
        on_stack.discard(key)
        memo[key] = acc
        return acc

    for key in model.functions:
        go(key)
    return memo


def compute_lock_edges(model):
    """-> dict (held, acquired) -> list of (file, line, description)."""
    acq_star = compute_acquires_star(model)
    edges = {}

    def add(h, l, f, ln, desc):
        edges.setdefault((h, l), []).append((f, ln, desc))

    for fn in model.functions.values():
        held = []
        for op in fn.ops:
            kind = op[0]
            if kind == "acq":
                lk, ln = op[1], op[2]
                for h in held:
                    add(h, lk, fn.file, ln, "%s acquires %s while holding %s"
                        % (fn.key, lk, h))
                held.append(lk)
            elif kind == "rel":
                lk = op[1]
                if lk in held:
                    held.reverse()
                    held.remove(lk)
                    held.reverse()
            elif kind == "call" and held:
                for t in resolve_call(model, fn, op[1], op[2]):
                    for lk in acq_star.get(t, ()):
                        add_needed = True
                        for h in held:
                            if add_needed:
                                add(h, lk, fn.file, op[3],
                                    "%s -> %s() may acquire %s while %s "
                                    "holds %s" % (fn.key, t, lk, fn.key, h))
        # unbalanced manual locks simply leave `held` non-empty; harmless.
    return edges


def parse_hierarchy(path):
    """Parse `A -> B` lines.  Returns (declared_edges, errors)."""
    declared = []
    errors = []
    if not os.path.exists(path):
        return declared, ["lock hierarchy file not found: %s" % path]
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            m = re.fullmatch(r"(\S+)\s*->\s*(\S+)", line)
            if not m:
                errors.append("%s:%d: unparsable hierarchy line: %r"
                              % (path, i, line))
                continue
            declared.append((m.group(1), m.group(2)))
    return declared, errors


def transitive_closure(edges):
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    closure = set()
    for a in adj:
        stack = list(adj[a])
        seen = set()
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            closure.add((a, b))
            stack.extend(adj.get(b, ()))
    return closure


def find_cycle(edges):
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    parent = {}

    def dfs(u):
        color[u] = GRAY
        for v in adj.get(u, ()):
            if color.get(v, WHITE) == GRAY:
                cyc = [v, u]
                w = u
                while w != v and w in parent:
                    w = parent[w]
                    cyc.append(w)
                return list(reversed(cyc))
            if color.get(v, WHITE) == WHITE:
                parent[v] = u
                r = dfs(v)
                if r:
                    return r
        color[u] = BLACK
        return None

    for u in list(adj):
        if color.get(u, WHITE) == WHITE:
            r = dfs(u)
            if r:
                return r
    return None


def check_lock_order(model, hierarchy_path, dot_path=None, list_edges=False):
    findings = []
    observed = compute_lock_edges(model)
    declared, errors = parse_hierarchy(hierarchy_path)
    for e in errors:
        findings.append(Finding("lock-order", hierarchy_path, 0, e))
    closure = transitive_closure(declared)
    declared_set = set(declared)

    if list_edges:
        for (h, l), sites in sorted(observed.items()):
            f, ln, desc = sites[0]
            print("edge: %s -> %s   (%s:%d %s; %d site%s)"
                  % (h, l, f, ln, desc, len(sites),
                     "s" if len(sites) > 1 else ""))

    declared_nonself = [(a, b) for a, b in declared if a != b]
    cyc = find_cycle(declared_nonself)
    if cyc:
        findings.append(Finding(
            "lock-order", hierarchy_path, 0,
            "declared hierarchy contains a cycle: %s" % " -> ".join(cyc)))

    for (h, l), sites in sorted(observed.items()):
        if h == l:
            if (h, l) in declared_set:
                continue
            f, ln, desc = sites[0]
            findings.append(Finding(
                "lock-order", f, ln,
                "self-edge on %s (recursive acquisition): %s" % (h, desc)))
            continue
        if (h, l) in closure:
            continue
        f, ln, desc = sites[0]
        findings.append(Finding(
            "lock-order", f, ln,
            "undeclared lock edge %s -> %s (not implied by %s): %s"
            % (h, l, os.path.basename(hierarchy_path), desc)))

    nonself = {(a, b) for a, b in observed if a != b}
    cyc = find_cycle(nonself | set(declared_nonself))
    if cyc and not find_cycle(declared_nonself):
        findings.append(Finding(
            "lock-order", "<graph>", 0,
            "observed lock graph contains a cycle: %s" % " -> ".join(cyc)))

    if dot_path:
        emit_dot(dot_path, observed, declared, closure)
    return findings


def emit_dot(path, observed, declared, closure):
    lines = ["digraph lock_order {",
             '  rankdir=TB;',
             '  node [shape=box, fontname="monospace"];']
    nodes = set()
    for h, l in list(observed) + declared:
        nodes.add(h)
        nodes.add(l)
    for n in sorted(nodes):
        lines.append('  "%s";' % n)
    drawn = set()
    for h, l in sorted(observed):
        ok = (h, l) in closure or (h == l and (h, l) in set(declared))
        style = "solid" if ok else "solid, color=red, penwidth=2"
        lines.append('  "%s" -> "%s" [style="%s"];  // observed%s'
                     % (h, l, style, "" if ok else " UNDECLARED"))
        drawn.add((h, l))
    for h, l in declared:
        if (h, l) not in drawn:
            lines.append('  "%s" -> "%s" [style=dashed, color=gray50];'
                         '  // declared, not (yet) observed' % (h, l))
    lines.append("}")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def check_env_bypass(model):
    findings = []
    # Reverse call graph for chain reporting.
    callers = {}
    for fn in model.functions.values():
        for op in fn.ops:
            if op[0] == "call":
                for t in resolve_call(model, fn, op[1], op[2]):
                    callers.setdefault(t, set()).add(fn.key)

    def chain_for(key):
        """Shortest caller chain ending at `key` (BFS up the call graph)."""
        best = [key]
        seen = {key}
        frontier = [[key]]
        while frontier:
            nxt = []
            for path in frontier:
                for c in callers.get(path[0], ()):
                    if c in seen:
                        continue
                    seen.add(c)
                    nxt.append([c] + path)
            if not nxt:
                break
            best = max(nxt, key=len)
            frontier = nxt
            if len(best) >= 6:
                break
        return best

    for fn in model.functions.values():
        if not in_scope(fn.file):
            continue
        for name, ln in fn.raw_calls:
            ch = chain_for(fn.key)
            findings.append(Finding(
                "env-bypass", fn.file, ln,
                "raw %s() call outside the Env abstraction (in %s); route "
                "through storage/env.h" % (name, fn.key),
                chain=["call chain: %s" % " -> ".join(ch)] if len(ch) > 1
                else []))
    for rel, hits in sorted(model.token_hits.items()):
        if not in_scope(rel):
            continue
        for ln, tok in hits:
            what = ("std::filesystem" if tok == "filesystem"
                    else "std::%s" % tok)
            findings.append(Finding(
                "env-bypass", rel, ln,
                "%s usage bypasses the Env abstraction; route through "
                "storage/env.h" % what))
    return findings


def in_scope(rel):
    rel = rel.replace(os.sep, "/")
    return (rel.startswith("src/") and rel not in SANCTIONED
            and rel not in EXCLUDED)


def check_digest_hygiene(root, files):
    """Line-level scan: digest/MAC byte-buffer comparisons must go through
    util/constant_time.h::ConstantTimeEqual.  Magic-number / file-header
    comparisons are exempt (their operands name magic/header)."""
    findings = []
    cmp_re = re.compile(r"\b(memcmp|bcmp)\s*\(|std\s*::\s*equal\s*\(")
    bytes_cmp_re = re.compile(r"\.bytes\s*(==|!=)")
    for rel in files:
        if not in_scope(rel):
            continue
        path = os.path.join(root, rel)
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            code = strip_code(f.read())
        lines = code.splitlines()
        for i, line in enumerate(lines, start=1):
            m = cmp_re.search(line)
            if m:
                # Args may continue on the next line; grab a 2-line window.
                window = line[m.start():] + " " + \
                    (lines[i] if i < len(lines) else "")
                if DIGEST_ARG_RE.search(window) and \
                        not DIGEST_EXEMPT_RE.search(window):
                    fn = m.group(1) or "std::equal"
                    findings.append(Finding(
                        "digest-hygiene", rel, i,
                        "%s on digest/MAC-named buffer leaks a timing "
                        "oracle; use ConstantTimeEqual from "
                        "util/constant_time.h" % fn))
            if bytes_cmp_re.search(line):
                findings.append(Finding(
                    "digest-hygiene", rel, i,
                    "raw .bytes array comparison bypasses the "
                    "constant-time Hash256 operator==; compare the "
                    "Hash256 objects or use ConstantTimeEqual"))
    return findings


def apply_allows(findings, model):
    """Suppress findings covered by `// lint: allow(rule)` on the same or
    preceding line; flag allows that lack a justification or name an
    unknown rule."""
    out = []
    used = set()
    for f in findings:
        allows = model.allow.get(f.file, {})
        hit = None
        for ln in (f.line, f.line - 1):
            ent = allows.get(ln)
            if ent and f.rule in ent[0]:
                hit = ln
                break
        if hit is not None:
            used.add((f.file, hit))
            continue
        out.append(f)
    for rel, entries in sorted(model.allow.items()):
        for ln, (rules, has_just) in sorted(entries.items()):
            for r in rules:
                if r not in RULES:
                    out.append(Finding(
                        "allow-without-justification", rel, ln,
                        "allow() names unknown rule %r (known: %s)"
                        % (r, ", ".join(sorted(RULES)))))
            if not has_just:
                out.append(Finding(
                    "allow-without-justification", rel, ln,
                    "lint: allow(%s) has no justification; write "
                    "`// lint: allow(%s): <why this is safe>`"
                    % (",".join(sorted(rules)), ",".join(sorted(rules)))))
    return out


def discover_files(root):
    out = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for n in sorted(names):
            if n.endswith((".cc", ".h")):
                rel = os.path.relpath(os.path.join(dirpath, n), root)
                rel = rel.replace(os.sep, "/")
                if rel not in EXCLUDED:
                    out.append(rel)
    return sorted(out)


def build_model_fallback(root, files):
    model = Model()
    model.frontend = "fallback"
    # Headers first so class members/bases are known when bodies parse;
    # order is otherwise irrelevant (resolution happens after the full
    # model is built).
    for rel in sorted(files, key=lambda r: (not r.endswith(".h"), r)):
        parse_fallback_file(model, root, rel)
    return model


def analyze(root, hierarchy_path, frontend="auto", compdb=None,
            dot_path=None, list_edges=False):
    files = discover_files(root)
    model = None
    if frontend in ("auto", "clang"):
        model = build_model_clang(root, files, compdb)
        if model is None:
            if frontend == "clang":
                raise RuntimeError(
                    "libclang frontend requested but unavailable "
                    "(python3 clang.cindex + libclang.so required)")
            print("deep_lint: NOTE: libclang (python3 clang.cindex) not "
                  "available -- falling back to the built-in token-level "
                  "frontend. Install python3-clang + libclang for full "
                  "semantic analysis.", file=sys.stderr)
    if model is None:
        model = build_model_fallback(root, files)

    findings = []
    findings += check_env_bypass(model)
    findings += check_lock_order(model, hierarchy_path, dot_path, list_edges)
    findings += check_digest_hygiene(root, files)
    findings = apply_allows(findings, model)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, model


# ---------------------------------------------------------------------------
# libclang frontend (used in CI; requires python3-clang + libclang.so).
# ---------------------------------------------------------------------------

def build_model_clang(root, files, compdb_dir):
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        try:
            index = cindex.Index.create()
        except cindex.LibclangError:
            for cand in ("libclang-14.so.1", "libclang.so.1", "libclang.so"):
                try:
                    cindex.Config.loaded = False
                    cindex.Config.set_library_file(cand)
                    index = cindex.Index.create()
                    break
                except Exception:
                    continue
            else:
                return None
    except Exception:
        return None

    args_by_file = {}
    if compdb_dir:
        cc_json = os.path.join(compdb_dir, "compile_commands.json")
        if os.path.exists(cc_json):
            with open(cc_json, "r", encoding="utf-8") as f:
                for ent in json.load(f):
                    path = os.path.normpath(
                        os.path.join(ent.get("directory", "."), ent["file"]))
                    argv = ent.get("arguments")
                    if argv is None:
                        argv = ent.get("command", "").split()
                    # strip compiler, -c/-o pairs and the source file itself
                    clean = []
                    skip = False
                    for a in argv[1:]:
                        if skip:
                            skip = False
                            continue
                        if a in ("-c", "-o"):
                            skip = (a == "-o")
                            continue
                        if a.endswith((".cc", ".cpp", ".o")):
                            continue
                        clean.append(a)
                    args_by_file[path] = clean

    default_args = ["-std=c++17", "-I", os.path.join(root, "src"),
                    "-xc++"]
    model = Model()
    model.frontend = "clang"
    CK = cindex.CursorKind

    for rel in files:
        with open(os.path.join(root, rel), "r", encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        model.allow[rel] = scan_allow_comments(rel, text)
        code = strip_code(text)
        hits = []
        for m in re.finditer(r"\bstd\s*::\s*filesystem\b", code):
            hits.append((code.count("\n", 0, m.start()) + 1, "filesystem"))
        for m in re.finditer(r"\b([io]?fstream)\b", code):
            hits.append((code.count("\n", 0, m.start()) + 1, m.group(1)))
        if hits:
            model.token_hits[rel] = sorted(hits)

    def relpath_of(cursor):
        try:
            f = cursor.location.file
            if f is None:
                return None
            p = os.path.normpath(os.path.abspath(f.name))
            r = os.path.normpath(os.path.abspath(root))
            if not p.startswith(r + os.sep):
                return None
            return os.path.relpath(p, r).replace(os.sep, "/")
        except Exception:
            return None

    def base_type_name(t):
        s = t.spelling
        s = re.sub(r"\b(const|volatile|mutable)\b", "", s)
        s = s.replace("*", "").replace("&", "").strip()
        m = re.search(r"(?:unique_ptr|shared_ptr)<([\w:\s]+)", s)
        if m:
            s = m.group(1).strip()
        return s.split("::")[-1].split("<")[0].strip()

    def field_lock_name(c):
        """MEMBER_REF/DECL_REF cursor referencing a mutex -> canonical."""
        ref = c.referenced
        if ref is None:
            return None
        if base_type_name(ref.type) not in MUTEX_TYPES:
            return None
        parent = ref.semantic_parent
        owner = parent.spelling if parent and parent.spelling else "?"
        return "%s::%s" % (owner, ref.spelling)

    def find_lock_ref(c):
        if c.kind in (CK.MEMBER_REF_EXPR, CK.DECL_REF_EXPR):
            name = field_lock_name(c)
            if name:
                return name
        for ch in c.get_children():
            r = find_lock_ref(ch)
            if r:
                return r
        return None

    def visit_body(c, fn):
        for ch in c.get_children():
            k = ch.kind
            if k == CK.LAMBDA_EXPR:
                # Deferred bodies do not run under the caller's locks.
                continue
            if k == CK.COMPOUND_STMT:
                start = len(fn.ops)
                pre_guards = list(visit_body.guards)
                visit_body(ch, fn)
                endln = ch.extent.end.line
                while len(visit_body.guards) > len(pre_guards):
                    lk = visit_body.guards.pop()
                    fn.ops.append(("rel", lk, endln))
                continue
            if k == CK.VAR_DECL and base_type_name(ch.type) in GUARD_TYPES:
                lk = find_lock_ref(ch)
                if lk:
                    fn.ops.append(("acq", lk, ch.location.line))
                    visit_body.guards.append(lk)
                continue
            if k == CK.CALL_EXPR:
                callee = ch.referenced
                ln = ch.location.line
                if callee is not None:
                    name = callee.spelling
                    sp = callee.semantic_parent
                    cls = sp.spelling if sp is not None and sp.kind in (
                        CK.CLASS_DECL, CK.STRUCT_DECL) else None
                    if cls in MUTEX_TYPES and (
                            name in LOCK_METHODS or name in UNLOCK_METHODS):
                        lk = find_lock_ref(ch)
                        if lk:
                            fn.ops.append((
                                "acq" if name in LOCK_METHODS else "rel",
                                lk, ln))
                    elif relpath_of(callee) is None and name in BANNED_POSIX \
                            and cls is None:
                        fn.raw_calls.append((name, ln))
                    else:
                        fn.ops.append(("call", name, cls, ln))
                visit_body(ch, fn)
                continue
            visit_body(ch, fn)

    def walk_tu(cursor):
        for c in cursor.walk_preorder():
            rel = relpath_of(c)
            if rel is None or not rel.startswith("src/"):
                continue
            if c.kind in (CK.CLASS_DECL, CK.STRUCT_DECL) and \
                    c.is_definition():
                name = c.spelling
                if not name:
                    continue
                ci = model.classes.setdefault(name, ClassInfo(name))
                for ch in c.get_children():
                    if ch.kind == CK.CXX_BASE_SPECIFIER:
                        b = base_type_name(ch.type)
                        if b and b not in ci.bases:
                            ci.bases.append(b)
                            model.subclasses.setdefault(b, set()).add(name)
                    elif ch.kind == CK.FIELD_DECL:
                        ci.members[ch.spelling] = base_type_name(ch.type)
            elif c.kind in (CK.FUNCTION_DECL, CK.CXX_METHOD,
                            CK.CONSTRUCTOR, CK.DESTRUCTOR) and \
                    c.is_definition():
                sp = c.semantic_parent
                cls = sp.spelling if sp is not None and sp.kind in (
                    CK.CLASS_DECL, CK.STRUCT_DECL) else None
                key = "%s::%s" % (cls, c.spelling) if cls else c.spelling
                fn = model.get_func(key, cls, c.spelling, rel,
                                    c.location.line)
                visit_body.guards = []
                visit_body(c, fn)
                endln = c.extent.end.line
                while visit_body.guards:
                    fn.ops.append(("rel", visit_body.guards.pop(), endln))

    try:
        parsed_any = False
        for rel in files:
            if not rel.endswith(".cc"):
                continue
            path = os.path.abspath(os.path.join(root, rel))
            args = args_by_file.get(os.path.normpath(path), default_args)
            tu = index.parse(path, args=args)
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                print("deep_lint: clang frontend: fatal diagnostics in %s: %s"
                      % (rel, "; ".join(d.spelling for d in fatal[:3])),
                      file=sys.stderr)
                return None
            walk_tu(tu.cursor)
            parsed_any = True
        if not parsed_any:
            return None
    except Exception as e:
        print("deep_lint: clang frontend failed (%s: %s); falling back"
              % (type(e).__name__, e), file=sys.stderr)
        return None
    return model


# ---------------------------------------------------------------------------
# Self-test: seeded violations under scripts/deep_lint_fixtures/.
# ---------------------------------------------------------------------------

def run_self_test(script_dir, frontend):
    fixroot = os.path.join(script_dir, "deep_lint_fixtures")
    hierarchy = os.path.join(fixroot, "lock_hierarchy.txt")
    if not os.path.isdir(fixroot):
        print("deep_lint: self-test fixtures missing: %s" % fixroot,
              file=sys.stderr)
        return 2

    frontends = []
    if frontend == "auto":
        frontends = ["fallback"]
        try:
            import clang.cindex  # noqa: F401
            frontends.append("clang")
        except ImportError:
            pass
    else:
        frontends = [frontend]

    failures = []
    for fe in frontends:
        try:
            findings, model = analyze(fixroot, hierarchy, frontend=fe)
        except RuntimeError as e:
            failures.append("[%s] analyze failed: %s" % (fe, e))
            continue
        if model.frontend != fe:
            # clang requested but import-only check passed and the library
            # itself is missing: treat as skipped, not failed.
            print("deep_lint: self-test: frontend %r unavailable, ran %r"
                  % (fe, model.frontend))
        rendered = [f.render() for f in findings]

        def fired(rule, file_sub, msg_sub=None):
            for f in findings:
                if f.rule == rule and file_sub in f.file:
                    text = f.render()
                    if msg_sub is None or msg_sub in text:
                        return True
            return False

        def expect(cond, what):
            if not cond:
                failures.append("[%s] %s" % (fe, what))

        expect(fired("env-bypass", "env_bypass_direct.cc", "fopen"),
               "env-bypass must fire on direct fopen()")
        expect(fired("env-bypass", "env_bypass_transitive.cc", "open"),
               "env-bypass must fire on transitive raw open()")
        expect(fired("env-bypass", "env_bypass_transitive.cc",
                     "TransEntry"),
               "transitive env-bypass must report the caller chain")
        expect(fired("env-bypass", "env_bypass_stream.cc"),
               "env-bypass must fire on std::ofstream usage")
        expect(not fired("env-bypass", "src/storage/env.cc"),
               "sanctioned src/storage/env.cc must NOT fire env-bypass")
        expect(fired("lock-order", "lock_inversion.cc"),
               "lock-order must fire on the error-path lock inversion")
        expect(fired("lock-order", "lock_undeclared.cc", "undeclared"),
               "lock-order must fire on an undeclared edge")
        expect(any(f.rule == "lock-order" and "cycle" in f.msg
                   for f in findings),
               "lock-order must report the observed cycle")
        expect(not fired("lock-order", "lock_clean.cc"),
               "declared-order locking must NOT fire lock-order")
        expect(fired("digest-hygiene", "digest_memcmp.cc", "memcmp"),
               "digest-hygiene must fire on memcmp of hashes")
        expect(fired("digest-hygiene", "digest_memcmp.cc", ".bytes"),
               "digest-hygiene must fire on raw .bytes comparison")
        expect(not fired("digest-hygiene", "digest_magic_ok.cc"),
               "magic-number memcmp must NOT fire digest-hygiene")
        expect(not fired("env-bypass", "allow_cases.cc", "justified_fopen"),
               "a justified allow() must suppress the finding")
        expect(fired("allow-without-justification", "allow_cases.cc",
                     "no justification"),
               "allow() without justification must be flagged")
        expect(fired("allow-without-justification", "allow_cases.cc",
                     "unknown rule"),
               "allow() naming an unknown rule must be flagged")
        print("deep_lint: self-test[%s]: %d findings over fixtures"
              % (fe, len(findings)))
        if os.environ.get("DEEP_LINT_SELF_TEST_VERBOSE"):
            print("\n".join(rendered))

    if failures:
        print("deep_lint: SELF-TEST FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("deep_lint: self-test OK (%s)" % ", ".join(frontends))
    return 0


def main(argv=None):
    script_dir = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(script_dir)
    p = argparse.ArgumentParser(
        description="semantic lints: env-bypass, lock-order, digest-hygiene")
    p.add_argument("--root", default=default_root,
                   help="repo root (default: parent of scripts/)")
    p.add_argument("--compdb", default=None,
                   help="build dir containing compile_commands.json "
                        "(enables exact clang args)")
    p.add_argument("--frontend", choices=["auto", "clang", "fallback"],
                   default="auto")
    p.add_argument("--hierarchy", default=None,
                   help="declared lock hierarchy file "
                        "(default: ROOT/scripts/lock_hierarchy.txt)")
    p.add_argument("--dot", default=None,
                   help="write the lock-order graph as Graphviz DOT")
    p.add_argument("--list-edges", action="store_true",
                   help="print every observed acquired-while-held edge")
    p.add_argument("--self-test", action="store_true",
                   help="run the seeded-violation fixture suite")
    args = p.parse_args(argv)

    if args.self_test:
        return run_self_test(script_dir, args.frontend)

    hierarchy = args.hierarchy or os.path.join(
        args.root, "scripts", "lock_hierarchy.txt")
    try:
        findings, model = analyze(
            args.root, hierarchy, frontend=args.frontend,
            compdb=args.compdb, dot_path=args.dot,
            list_edges=args.list_edges)
    except RuntimeError as e:
        print("deep_lint: error: %s" % e, file=sys.stderr)
        return 2
    for f in findings:
        print(f.render())
    n = len(findings)
    print("deep_lint[%s]: %d finding%s across %d function%s"
          % (model.frontend, n, "" if n == 1 else "s",
             len(model.functions),
             "" if len(model.functions) == 1 else "s"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
