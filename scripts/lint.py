#!/usr/bin/env python3
"""Repo-specific lint pass for sqlledger.

Fast, regex-based checks for invariants the compiler cannot (or will not)
enforce for us. Run from anywhere inside the repo:

    python3 scripts/lint.py            # lint the tree, exit non-zero on findings
    python3 scripts/lint.py --self-test  # verify each rule fires on a seeded violation

Rules (each one has a # lint-off escape hatch: append `// lint: allow(<rule>)`
to the offending line — use sparingly and say why on an adjacent comment):

  determinism     rand()/srand()/std::random_device/time(NULL) outside
                  src/util/random.*. Everything that needs randomness or a
                  clock must go through util/random.h (seedable, replayable:
                  the deterministic simulator depends on it).
  raw-sha         SHA-256 compression primitives (Sha256Compress*, direct
                  Sha256Kernel construction) referenced outside src/crypto/.
                  All hashing goes through crypto/sha256.h so kernel dispatch
                  and the hashing pipeline stay in one place.
  raw-sync        std::mutex / std::shared_mutex / std::condition_variable /
                  std::lock_guard / std::unique_lock / std::scoped_lock /
                  std::shared_lock in src/ outside util/thread_annotations.h.
                  Use the annotated Mutex/SharedMutex/CondVar wrappers so
                  Clang -Wthread-safety sees every lock.
  tsa-escape      NO_THREAD_SAFETY_ANALYSIS without an explanatory comment on
                  the same or an adjacent line. Every analysis opt-out must
                  say why it is sound.
  void-discard    `(void)` discard of an expression with no trailing comment.
                  Status and Result are [[nodiscard]]; a silenced discard must
                  justify itself (e.g. `// best-effort cleanup`).
  commit-sync     a direct `Sync()` call inside a `commit_mu_` critical
                  section in src/. The group-commit pipeline (DESIGN.md §10)
                  amortises exactly one fsync per commit group via
                  Wal::AppendBatch; an extra per-call fsync on the commit
                  path silently undoes the batching and the Figure-7 numbers.
  metric-naming   a string literal passed to GetCounter/GetGauge/
                  GetHistogram that does not follow the `subsystem.noun_unit`
                  convention (DESIGN.md §13): lowercase subsystem, one dot,
                  lowercase_underscore noun ending in a known unit token
                  (micros/bytes/total/count/size/depth/ratio/state). Mirrors
                  IsValidMetricName in src/util/metrics.cc.
  digest-decorator-coverage
                  (repo-level) every class in src/ deriving from DigestStore —
                  store implementations and fault-injecting decorators alike —
                  must be exercised by at least one tier1 test (named in a
                  source listed in tests/CMakeLists.txt SL_TEST_SOURCES). A
                  decorator nobody tests silently stops injecting the faults
                  the robustness suite depends on.

Runtime budget: the whole pass must stay under 10 seconds (it runs as a CI
job and as a pre-commit habit); it is pure stdlib + regex over a few hundred
files, typically < 1s.
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned per rule. Tests and benches get a pass on some rules
# (they may poke internals deliberately) but not on determinism.
SRC_DIRS = ["src"]
ALL_CODE_DIRS = ["src", "tests", "bench", "examples"]

CPP_EXT = (".cc", ".h")

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Finding:
    def __init__(self, rule, path, lineno, message):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.lineno}: [{self.rule}] {self.message}"


def iter_files(dirs):
    for d in dirs:
        base = os.path.join(REPO_ROOT, d)
        for root, _dirs, files in os.walk(base):
            for f in sorted(files):
                if f.endswith(CPP_EXT):
                    yield os.path.join(root, f)


def strip_noise(line):
    """Removes string literals and // comments so patterns in either don't
    produce false positives. Keeps character count irrelevant (we only need
    line numbers)."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


def allowed(line, rule):
    m = ALLOW_RE.search(line)
    if not m:
        return False
    rules = [r.strip() for r in m.group(1).split(",")]
    return rule in rules


# ---------------------------------------------------------------------------
# Rule: determinism
# ---------------------------------------------------------------------------

DETERMINISM_RE = re.compile(
    r"(?<![\w:])(?:"
    r"rand\s*\(\s*\)"
    r"|srand\s*\("
    r"|std::random_device"
    r"|random_device\s+\w"
    r"|time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r")"
)


def check_determinism(path, lines, findings):
    rel = os.path.relpath(path, REPO_ROOT)
    if rel.startswith(os.path.join("src", "util", "random")):
        return
    for i, raw in enumerate(lines, 1):
        line = strip_noise(raw)
        if DETERMINISM_RE.search(line):
            if allowed(raw, "determinism"):
                continue
            findings.append(Finding(
                "determinism", path, i,
                "raw randomness/clock source; use util/random.h "
                "(seedable — the deterministic simulator replays seeds)"))


# ---------------------------------------------------------------------------
# Rule: raw-sha
# ---------------------------------------------------------------------------

RAW_SHA_RE = re.compile(
    r"Sha256Compress(?:Scalar|ShaNi|Armv8|Fn)?\b|struct\s+Sha256Kernel\b"
)


def check_raw_sha(path, lines, findings):
    rel = os.path.relpath(path, REPO_ROOT)
    # The crypto subsystem owns the primitives; its tests/benches may
    # exercise individual kernels directly.
    if rel.startswith(os.path.join("src", "crypto")):
        return
    if os.path.basename(path) in ("sha256_kernel_test.cc", "crypto_test.cc",
                                  "bench_hashing.cc", "bench_hashing_smoke.cc",
                                  "fig8_hashing.cc"):
        return
    for i, raw in enumerate(lines, 1):
        line = strip_noise(raw)
        if RAW_SHA_RE.search(line):
            if allowed(raw, "raw-sha"):
                continue
            findings.append(Finding(
                "raw-sha", path, i,
                "raw SHA-256 primitive outside src/crypto/; "
                "use crypto/sha256.h (Sha256::Digest / hashing pipeline)"))


# ---------------------------------------------------------------------------
# Rule: raw-sync
# ---------------------------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)


def check_raw_sync(path, lines, findings):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith("src" + os.sep):
        return  # tests may use raw primitives to build race scaffolding
    if rel == os.path.join("src", "util", "thread_annotations.h"):
        return  # the one place allowed to wrap the std primitives
    for i, raw in enumerate(lines, 1):
        line = strip_noise(raw)
        m = RAW_SYNC_RE.search(line)
        if m:
            if allowed(raw, "raw-sync"):
                continue
            findings.append(Finding(
                "raw-sync", path, i,
                f"raw {m.group(0)} in src/; use the annotated wrappers in "
                "util/thread_annotations.h so -Wthread-safety sees the lock"))


# ---------------------------------------------------------------------------
# Rule: tsa-escape
# ---------------------------------------------------------------------------


def check_tsa_escape(path, lines, findings):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith("src" + os.sep):
        return
    if rel == os.path.join("src", "util", "thread_annotations.h"):
        return  # the macro definition itself
    for i, raw in enumerate(lines, 1):
        line = strip_noise(raw)
        if "NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        if allowed(raw, "tsa-escape"):
            continue
        # Look for an explanatory comment on this line or within the two
        # lines above (the repo convention is a justification block comment
        # directly above the escape).
        context = lines[max(0, i - 3):i]
        if any("//" in c for c in context):
            continue
        findings.append(Finding(
            "tsa-escape", path, i,
            "NO_THREAD_SAFETY_ANALYSIS without an adjacent comment "
            "explaining why the opt-out is sound"))


# ---------------------------------------------------------------------------
# Rule: void-discard
# ---------------------------------------------------------------------------

# Only flag discards of *call* expressions — `(void)param;` is the
# unused-parameter idiom and carries no Status/Result.
VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*[\w:.\->]+\s*\(")


def check_void_discard(path, lines, findings):
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith("src" + os.sep):
        return
    for i, raw in enumerate(lines, 1):
        if not VOID_DISCARD_RE.search(raw):
            continue
        if allowed(raw, "void-discard"):
            continue
        # A justification comment may trail the statement (possibly on the
        # line where the statement ends) or sit up to two lines above it —
        # one block comment may cover a pair of adjacent discards.
        context = lines[max(0, i - 3):min(len(lines), i + 2)]
        if any("//" in c for c in context):
            continue
        findings.append(Finding(
            "void-discard", path, i,
            "silenced [[nodiscard]] value without a justification comment "
            "(say why ignoring the Status/Result is safe)"))


# ---------------------------------------------------------------------------
# Rule: commit-sync
# ---------------------------------------------------------------------------

COMMIT_LOCK_RE = re.compile(
    r"MutexLock\s+\w+\s*\(\s*&\s*commit_mu_\s*\)|commit_mu_\s*\.\s*Lock\s*\(")
COMMIT_UNLOCK_RE = re.compile(r"commit_mu_\s*\.\s*Unlock\s*\(")
# A bare Sync() token: matches `file_->Sync()`, `wal_->Sync()`, `Sync();`
# but not `sync_count()` or `SyncDir(...)`.
SYNC_CALL_RE = re.compile(r"\bSync\s*\(\s*\)")


def check_commit_sync(path, lines, findings):
    """Tracks `MutexLock x(&commit_mu_)` scopes by brace depth (plus manual
    commit_mu_.Lock()/Unlock() pairs) and flags any Sync() call site within.
    Brace counting on noise-stripped lines is approximate but sufficient for
    the repo's clang-format style (no braces smuggled into strings/comments).
    """
    rel = os.path.relpath(path, REPO_ROOT)
    if not rel.startswith("src" + os.sep):
        return
    depth = 0
    lock_depths = []       # brace depth of each live MutexLock on commit_mu_
    manual_locked = False  # commit_mu_.Lock() without RAII
    for i, raw in enumerate(lines, 1):
        line = strip_noise(raw)
        if COMMIT_LOCK_RE.search(line):
            if "MutexLock" in line:
                lock_depths.append(depth)
            else:
                manual_locked = True
        if COMMIT_UNLOCK_RE.search(line):
            manual_locked = False
        if (lock_depths or manual_locked) and SYNC_CALL_RE.search(line):
            if not allowed(raw, "commit-sync"):
                findings.append(Finding(
                    "commit-sync", path, i,
                    "Sync() inside a commit_mu_ critical section; the group "
                    "commit pipeline owns the fsync (one per group, via "
                    "Wal::AppendBatch) — a direct Sync() here re-serialises "
                    "commits"))
        depth += line.count("{") - line.count("}")
        while lock_depths and lock_depths[-1] > depth:
            lock_depths.pop()


# ---------------------------------------------------------------------------
# Rule: metric-naming
# ---------------------------------------------------------------------------

# Metric names live in string literals, so this rule scans RAW lines (most
# rules strip literals first). Only literal arguments are checked; a name
# built at runtime is rare and gets a free pass.
METRIC_GET_RE = re.compile(r'\bGet(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"')

METRIC_UNITS = {"micros", "bytes", "total", "count", "size", "depth",
                "ratio", "state"}
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9]*\.[a-z][a-z0-9_]*$")


def is_valid_metric_name(name):
    """Python mirror of IsValidMetricName (src/util/metrics.cc): lowercase
    subsystem '.' lowercase_underscore noun whose final '_'-separated token
    is a known unit."""
    if not METRIC_NAME_RE.match(name):
        return False
    noun = name.split(".", 1)[1]
    return noun.rsplit("_", 1)[-1] in METRIC_UNITS


def check_metric_naming(path, lines, findings):
    for i, raw in enumerate(lines, 1):
        for m in METRIC_GET_RE.finditer(raw):
            name = m.group(1)
            if is_valid_metric_name(name):
                continue
            if allowed(raw, "metric-naming"):
                continue
            findings.append(Finding(
                "metric-naming", path, i,
                f'metric name "{name}" violates the subsystem.noun_unit '
                "convention (lowercase subsystem, one dot, noun ending in "
                f"one of {sorted(METRIC_UNITS)}); see DESIGN.md §13"))


# ---------------------------------------------------------------------------
# Rule: digest-decorator-coverage (repo-level)
# ---------------------------------------------------------------------------

DIGEST_STORE_CLASS_RE = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*(?:public\s+)?DigestStore\b")
SL_TEST_SOURCES_RE = re.compile(r"set\s*\(\s*SL_TEST_SOURCES(.*?)\)", re.DOTALL)


def check_digest_decorator_coverage(findings, root=None):
    """Repo-level check: collects every DigestStore subclass declared in src/
    and requires its name to appear in at least one tier1 test source."""
    root = root or REPO_ROOT
    classes = {}  # name -> (path, lineno)
    base = os.path.join(root, "src")
    for dirpath, _dirs, files in os.walk(base):
        for f in sorted(files):
            if not f.endswith(CPP_EXT):
                continue
            path = os.path.join(dirpath, f)
            try:
                with open(path, encoding="utf-8", errors="replace") as fh:
                    lines = fh.readlines()
            except OSError:
                continue
            for i, raw in enumerate(lines, 1):
                m = DIGEST_STORE_CLASS_RE.search(strip_noise(raw))
                if m and not allowed(raw, "digest-decorator-coverage"):
                    classes[m.group(1)] = (path, i)
    if not classes:
        return

    cmake_path = os.path.join(root, "tests", "CMakeLists.txt")
    try:
        with open(cmake_path, encoding="utf-8") as fh:
            cmake = fh.read()
    except OSError:
        findings.append(Finding(
            "digest-decorator-coverage", cmake_path, 1,
            "cannot read tests/CMakeLists.txt to resolve tier1 sources"))
        return
    m = SL_TEST_SOURCES_RE.search(cmake)
    if not m:
        findings.append(Finding(
            "digest-decorator-coverage", cmake_path, 1,
            "no set(SL_TEST_SOURCES ...) block found"))
        return
    tier1_text = ""
    for token in m.group(1).split():
        if not token.endswith(".cc"):
            continue
        test_path = os.path.join(root, "tests", token)
        try:
            with open(test_path, encoding="utf-8", errors="replace") as fh:
                tier1_text += fh.read()
        except OSError:
            continue

    for name, (path, lineno) in sorted(classes.items()):
        if name not in tier1_text:
            findings.append(Finding(
                "digest-decorator-coverage", path, lineno,
                f"DigestStore subclass {name} is not exercised by any tier1 "
                "test (no mention in the SL_TEST_SOURCES files); add one so "
                "its injected faults/contract stay covered"))


CHECKS = [
    ("determinism", ALL_CODE_DIRS, check_determinism),
    ("raw-sha", ALL_CODE_DIRS, check_raw_sha),
    ("raw-sync", SRC_DIRS, check_raw_sync),
    ("tsa-escape", SRC_DIRS, check_tsa_escape),
    ("void-discard", SRC_DIRS, check_void_discard),
    ("commit-sync", SRC_DIRS, check_commit_sync),
    ("metric-naming", ALL_CODE_DIRS, check_metric_naming),
]

# Checks that look at the whole tree at once rather than one file at a time.
REPO_CHECKS = [
    ("digest-decorator-coverage", check_digest_decorator_coverage),
]


def run_lint():
    findings = []
    # One pass per directory set; file contents cached so each file is read
    # once even when several rules scan it.
    cache = {}
    for _rule, dirs, check in CHECKS:
        for path in iter_files(dirs):
            if path not in cache:
                try:
                    with open(path, encoding="utf-8", errors="replace") as f:
                        cache[path] = f.readlines()
                except OSError as e:
                    print(f"lint.py: cannot read {path}: {e}", file=sys.stderr)
                    return 2
            check(path, cache[path], findings)
    for _rule, check in REPO_CHECKS:
        check(findings)
    findings.sort(key=lambda f: (f.path, f.lineno, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint.py: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("lint.py: clean.")
    return 0


# ---------------------------------------------------------------------------
# Self test: each rule must fire on a seeded violation and stay quiet on the
# compliant twin. Exercised by the CI lint job so a silently-dead regex is
# caught the moment it dies.
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule, dir-relative path, bad line, good line)
    ("determinism", "src/ledger/x_selftest.cc",
     "int r = rand();",
     "Random rng(seed); int r = rng.Next();"),
    ("determinism", "src/ledger/x_selftest.cc",
     "uint64_t t = time(NULL);",
     "uint64_t t = clock->NowMicros();"),
    ("raw-sha", "src/ledger/x_selftest.cc",
     "Sha256CompressScalar(state, data, 1);",
     "Hash256 h = Sha256::Digest(data);"),
    ("raw-sync", "src/ledger/x_selftest.cc",
     "std::mutex mu;",
     "Mutex mu;"),
    ("raw-sync", "src/ledger/x_selftest.cc",
     "std::lock_guard<std::mutex> lock(mu);",
     "MutexLock lock(&mu);"),
    ("tsa-escape", "src/ledger/x_selftest.h",
     "void Get() const NO_THREAD_SAFETY_ANALYSIS;",
     "// Unlatched by contract: snapshot reads only.\n"
     "void Get() const NO_THREAD_SAFETY_ANALYSIS;"),
    ("void-discard", "src/ledger/x_selftest.cc",
     "(void)env->RemoveFile(path);",
     "(void)env->RemoveFile(path);  // best-effort cleanup"),
    ("void-discard", "src/ledger/x_selftest.cc",
     "(void)st.Update(env->RemoveFile(path));",
     "(void)unused_param;"),
    ("commit-sync", "src/ledger/x_selftest.cc",
     "void F() {\n"
     "  MutexLock lock(&commit_mu_);\n"
     "  file_->Sync();\n"
     "}",
     "void F() {\n"
     "  {\n"
     "    MutexLock lock(&commit_mu_);\n"
     "    wal_->AppendBatch(payloads);\n"
     "  }\n"
     "  file_->Sync();\n"
     "}"),
    ("commit-sync", "src/ledger/x_selftest.cc",
     "commit_mu_.Lock();\n"
     "wal_->Sync();\n"
     "commit_mu_.Unlock();",
     "commit_mu_.Lock();\n"
     "commit_mu_.Unlock();\n"
     "wal_->Sync();"),
    ("metric-naming", "src/ledger/x_selftest.cc",
     'Counter* c = metrics->GetCounter("walSyncs");',
     'Counter* c = metrics->GetCounter("wal.syncs_total");'),
    ("metric-naming", "src/ledger/x_selftest.cc",
     'Histogram* h = registry.GetHistogram("wal.sync_seconds");',
     'Histogram* h = registry.GetHistogram("wal.sync_micros");'),
]


def self_test_digest_decorator_coverage():
    """The repo-level rule needs a whole miniature tree, not a single file:
    fire when a DigestStore subclass is absent from every tier1 source, stay
    quiet once a listed test names it."""
    failures = 0
    for variant, test_body, expect_fire in (
            ("bad", "TEST(X, Y) { InMemoryDigestStore s; }", True),
            ("good", "TEST(X, Y) { GhostDigestStore s; }", False)):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "src", "ledger")
            tests = os.path.join(tmp, "tests")
            os.makedirs(src)
            os.makedirs(tests)
            with open(os.path.join(src, "ghost_store.h"), "w",
                      encoding="utf-8") as f:
                f.write("class GhostDigestStore : public DigestStore {};\n")
            with open(os.path.join(tests, "CMakeLists.txt"), "w",
                      encoding="utf-8") as f:
                f.write("set(SL_TEST_SOURCES\n  ghost_test.cc\n)\n")
            with open(os.path.join(tests, "ghost_test.cc"), "w",
                      encoding="utf-8") as f:
                f.write(test_body + "\n")
            findings = []
            check_digest_decorator_coverage(findings, root=tmp)
            fired = any(f.rule == "digest-decorator-coverage"
                        for f in findings)
            if fired != expect_fire:
                failures += 1
                print(f"SELF-TEST FAIL [digest-decorator-coverage/{variant}]:"
                      f" {'did not fire' if expect_fire else 'fired'}",
                      file=sys.stderr)
    return failures


def run_self_test():
    global REPO_ROOT
    real_root = REPO_ROOT
    failures = 0
    failures += self_test_digest_decorator_coverage()
    for rule, rel, bad, good in SELF_TEST_CASES:
        for variant, text, expect_fire in (("bad", bad, True),
                                           ("good", good, False)):
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(text + "\n")
                REPO_ROOT = tmp
                try:
                    findings = []
                    lines = open(path, encoding="utf-8").readlines()
                    for r, _dirs, check in CHECKS:
                        if r == rule:
                            check(path, lines, findings)
                    fired = any(f.rule == rule for f in findings)
                finally:
                    REPO_ROOT = real_root
                if fired != expect_fire:
                    failures += 1
                    print(f"SELF-TEST FAIL [{rule}/{variant}]: "
                          f"{'did not fire on' if expect_fire else 'fired on'}"
                          f" {text!r}", file=sys.stderr)
    if failures:
        print(f"lint.py --self-test: {failures} failure(s).", file=sys.stderr)
        return 1
    print(f"lint.py --self-test: all {len(SELF_TEST_CASES) + 2} cases pass "
          "(each rule fires on its seeded violation, stays quiet on the fix).")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a seeded violation")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_lint()


if __name__ == "__main__":
    sys.exit(main())
