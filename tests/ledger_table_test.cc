// Ledger-table DML through the LedgerDatabase facade: hidden system
// columns, history maintenance, per-transaction Merkle roots, append-only
// restrictions, and abort behaviour.

#include <gtest/gtest.h>

#include "ledger/row_serializer.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class LedgerTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/100);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    ASSERT_TRUE(
        db_->CreateTable("audit", SimpleUserSchema(), TableKind::kAppendOnly)
            .ok());
    ASSERT_TRUE(
        db_->CreateTable("plain", SimpleUserSchema(), TableKind::kRegular)
            .ok());
  }

  std::unique_ptr<LedgerDatabase> db_;
};

TEST_F(LedgerTableTest, SchemaGetsHiddenColumns) {
  auto ref = db_->GetTableRef("accounts");
  ASSERT_TRUE(ref.ok());
  const Schema& schema = ref->main->schema();
  EXPECT_EQ(schema.num_columns(), 6u);  // 2 user + 4 hidden
  EXPECT_EQ(schema.VisibleOrdinals().size(), 2u);
  EXPECT_GE(ref->start_txn_ord, 0);
  EXPECT_GE(ref->end_seq_ord, 0);

  auto audit_ref = db_->GetTableRef("audit");
  ASSERT_TRUE(audit_ref.ok());
  EXPECT_EQ(audit_ref->main->schema().num_columns(), 4u);  // 2 user + 2 hidden
  EXPECT_EQ(audit_ref->end_txn_ord, -1);
  EXPECT_EQ(audit_ref->history, nullptr);

  auto plain_ref = db_->GetTableRef("plain");
  ASSERT_TRUE(plain_ref.ok());
  EXPECT_EQ(plain_ref->main->schema().num_columns(), 2u);
}

TEST_F(LedgerTableTest, InsertStampsSystemColumns) {
  uint64_t txn_id = 0;
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(txn.ok());
  txn_id = (*txn)->id();
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("Nick"), VB(100)}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  auto ref = db_->GetTableRef("accounts");
  const Row* row = ref->main->Get({VS("Nick")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[ref->start_txn_ord].AsInt64(),
            static_cast<int64_t>(txn_id));
  EXPECT_EQ((*row)[ref->start_seq_ord].AsInt64(), 0);
  EXPECT_TRUE((*row)[ref->end_txn_ord].is_null());
}

TEST_F(LedgerTableTest, UpdateMovesOldVersionToHistory) {
  ASSERT_TRUE(InsertOne(db_.get(), "plain", 0, "warm-up").ok());
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("Nick"), VB(50)}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  auto txn2 = db_->Begin("bob");
  uint64_t update_txn = (*txn2)->id();
  ASSERT_TRUE(db_->Update(*txn2, "accounts", {VS("Nick"), VB(100)}).ok());
  ASSERT_TRUE(db_->Commit(*txn2).ok());

  auto ref = db_->GetTableRef("accounts");
  EXPECT_EQ(ref->main->row_count(), 1u);
  EXPECT_EQ(ref->history->row_count(), 1u);

  const Row* live = ref->main->Get({VS("Nick")});
  ASSERT_NE(live, nullptr);
  EXPECT_EQ((*live)[1].AsInt64(), 100);
  EXPECT_EQ((*live)[ref->start_txn_ord].AsInt64(),
            static_cast<int64_t>(update_txn));

  // The retired version holds the old balance and its end-stamp.
  BTree::Iterator it = ref->history->Scan();
  ASSERT_TRUE(it.Valid());
  const Row& retired = it.value();
  EXPECT_EQ(retired[1].AsInt64(), 50);
  EXPECT_EQ(retired[ref->end_txn_ord].AsInt64(),
            static_cast<int64_t>(update_txn));
  EXPECT_FALSE(retired[ref->start_txn_ord].is_null());
}

TEST_F(LedgerTableTest, DeleteRetiresVersion) {
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("Joe"), VB(30)}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  auto txn2 = db_->Begin("bob");
  ASSERT_TRUE(db_->Delete(*txn2, "accounts", {VS("Joe")}).ok());
  ASSERT_TRUE(db_->Commit(*txn2).ok());

  auto ref = db_->GetTableRef("accounts");
  EXPECT_EQ(ref->main->row_count(), 0u);
  EXPECT_EQ(ref->history->row_count(), 1u);
}

TEST_F(LedgerTableTest, AppendOnlyRejectsUpdateAndDelete) {
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "audit", {VB(1), VS("event")}).ok());
  EXPECT_EQ(db_->Update(*txn, "audit", {VB(1), VS("rewritten")}).code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(db_->Delete(*txn, "audit", {VB(1)}).code(),
            StatusCode::kNotSupported);
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(LedgerTableTest, RegularTableHasNoLedgerEntry) {
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "plain", {VB(1), VS("x")}).ok());
  EXPECT_FALSE((*txn)->HasLedgerUpdates());
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(LedgerTableTest, MerkleRootMatchesManualRecomputation) {
  auto txn = db_->Begin("alice");
  uint64_t txn_id = (*txn)->id();
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("A"), VB(1)}).ok());
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("B"), VB(2)}).ok());
  ASSERT_TRUE(db_->Update(*txn, "accounts", {VS("A"), VB(3)}).ok());
  auto roots = (*txn)->TableRoots();
  ASSERT_TRUE(db_->Commit(*txn).ok());

  auto ref = db_->GetTableRef("accounts");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].first, ref->table_id);

  // Manually recompute: INSERT A(seq0), INSERT B(seq1), DELETE old-A(seq2),
  // INSERT new-A(seq3) — from the current table state.
  const Schema& schema = ref->main->schema();
  MerkleBuilder builder;
  const Row* b_row = ref->main->Get({VS("B")});
  const Row* a_row = ref->main->Get({VS("A")});
  BTree::Iterator hist = ref->history->Scan();
  ASSERT_TRUE(hist.Valid());
  Row old_a = hist.value();

  builder.AddLeafHash(RowVersionLeafHash(schema, old_a, RowOp::kInsert,
                                         ref->table_id, txn_id, 0));
  builder.AddLeafHash(RowVersionLeafHash(schema, *b_row, RowOp::kInsert,
                                         ref->table_id, txn_id, 1));
  builder.AddLeafHash(RowVersionLeafHash(schema, old_a, RowOp::kDelete,
                                         ref->table_id, txn_id, 2));
  builder.AddLeafHash(RowVersionLeafHash(schema, *a_row, RowOp::kInsert,
                                         ref->table_id, txn_id, 3));
  EXPECT_EQ(builder.Root(), roots[0].second);
}

TEST_F(LedgerTableTest, AbortLeavesNoTrace) {
  auto ref = db_->GetTableRef("accounts");
  uint64_t entries_before = db_->database_ledger()->total_entries();

  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("Ghost"), VB(1)}).ok());
  ASSERT_TRUE(db_->Update(*txn, "accounts", {VS("Ghost"), VB(2)}).ok());
  db_->Abort(*txn);

  EXPECT_EQ(ref->main->row_count(), 0u);
  EXPECT_EQ(ref->history->row_count(), 0u);
  EXPECT_EQ(db_->database_ledger()->total_entries(), entries_before);
}

TEST_F(LedgerTableTest, SavepointRollbackRestoresRoot) {
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("A"), VB(1)}).ok());
  auto roots_before = (*txn)->TableRoots();
  ASSERT_TRUE(db_->Savepoint(*txn, "sp").ok());
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("B"), VB(2)}).ok());
  ASSERT_TRUE(db_->RollbackToSavepoint(*txn, "sp").ok());
  auto roots_after = (*txn)->TableRoots();
  ASSERT_TRUE(db_->Commit(*txn).ok());

  ASSERT_EQ(roots_before.size(), 1u);
  ASSERT_EQ(roots_after.size(), 1u);
  EXPECT_EQ(roots_before[0].second, roots_after[0].second);
  auto ref = db_->GetTableRef("accounts");
  EXPECT_EQ(ref->main->row_count(), 1u);
}

TEST_F(LedgerTableTest, DuplicateKeyRejected) {
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("A"), VB(1)}).ok());
  EXPECT_EQ(db_->Insert(*txn, "accounts", {VS("A"), VB(2)}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(LedgerTableTest, UpdateMissingRowIsNotFound) {
  auto txn = db_->Begin("alice");
  EXPECT_TRUE(db_->Update(*txn, "accounts", {VS("Nobody"), VB(1)}).IsNotFound());
  EXPECT_TRUE(db_->Delete(*txn, "accounts", {VS("Nobody")}).IsNotFound());
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(LedgerTableTest, GetAndScanReturnVisibleColumns) {
  auto txn = db_->Begin("alice");
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("A"), VB(1)}).ok());
  ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS("B"), VB(2)}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  auto txn2 = db_->Begin("bob");
  auto row = db_->Get(*txn2, "accounts", {VS("A")});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 2u);
  auto all = db_->Scan(*txn2, "accounts");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0][0].string_value(), "A");
  ASSERT_TRUE(db_->Commit(*txn2).ok());
}

TEST_F(LedgerTableTest, EveryCommittedWriteGetsLedgerEntry) {
  uint64_t before = db_->database_ledger()->total_entries();
  uint64_t txn_id = 0;
  ASSERT_TRUE(InsertOne(db_.get(), "plain", 1, "x", &txn_id).ok());
  EXPECT_EQ(db_->database_ledger()->total_entries(), before + 1);
  auto entry = db_->database_ledger()->FindEntry(txn_id);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(entry->table_roots.empty());  // no ledger tables touched
}

TEST_F(LedgerTableTest, ReadOnlyTransactionGetsNoLedgerEntry) {
  ASSERT_TRUE(InsertOne(db_.get(), "plain", 1, "x").ok());
  uint64_t before = db_->database_ledger()->total_entries();
  auto txn = db_->Begin("reader");
  ASSERT_TRUE(db_->Get(*txn, "plain", {VB(1)}).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(db_->database_ledger()->total_entries(), before);
}

}  // namespace
}  // namespace sqlledger
