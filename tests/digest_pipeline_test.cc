// DigestUploadPipeline + DigestOutbox (DESIGN.md §9): the digest cadence
// must survive an unreliable network path to the trusted store. Covers the
// durable outbox (append/ack/replay/capacity/torn tail), retry + breaker
// behaviour, idempotent recovery from ambiguous acks, fatal fork latching,
// crash-mid-outage replay, and the seeded torture run from the issue's
// acceptance criteria.

#include <gtest/gtest.h>

#include <filesystem>

#include "ledger/digest_pipeline.h"
#include "ledger/digest_store.h"
#include "ledger/faulty_digest_store.h"
#include "storage/digest_outbox.h"
#include "test_util.h"
#include "util/random.h"

namespace sqlledger {
namespace {

// Zero backoff / jitter / probe interval: under the test fake clock (1µs
// per reading) every Pump() makes an attempt, so tests count attempts
// deterministically instead of sleeping.
DigestPipelineOptions FastOptions(const std::string& outbox_dir,
                                  Env* env = nullptr) {
  DigestPipelineOptions o;
  o.outbox_dir = outbox_dir;
  o.env = env;
  o.initial_backoff_micros = 0;
  o.max_backoff_micros = 0;
  o.jitter = 0;
  o.probe_interval_micros = 0;
  o.seed = TestSeed();
  return o;
}

// ---- DigestOutbox ----

class DigestOutboxTest : public TempDirTest {};

TEST_F(DigestOutboxTest, AppendAckReplayPreservesOrder) {
  DigestOutboxOptions opts;
  opts.dir = Path("outbox");
  {
    auto box = DigestOutbox::Open(opts);
    ASSERT_TRUE(box.ok()) << box.status().ToString();
    ASSERT_TRUE((*box)->Append("alpha").ok());
    ASSERT_TRUE((*box)->Append("beta").ok());
    ASSERT_TRUE((*box)->Append("gamma").ok());
    ASSERT_TRUE((*box)->Ack(1).ok());
    EXPECT_EQ((*box)->pending_count(), 2u);
  }
  // A new process replays only the unacknowledged tail, in append order.
  auto box = DigestOutbox::Open(opts);
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  std::vector<std::string> pending = (*box)->Pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0], "beta");
  EXPECT_EQ(pending[1], "gamma");
}

TEST_F(DigestOutboxTest, FullyAckedOutboxCompactsAndReopensEmpty) {
  DigestOutboxOptions opts;
  opts.dir = Path("outbox");
  {
    auto box = DigestOutbox::Open(opts);
    ASSERT_TRUE(box.ok());
    ASSERT_TRUE((*box)->Append("a").ok());
    ASSERT_TRUE((*box)->Append("b").ok());
    ASSERT_TRUE((*box)->Ack(2).ok());
    EXPECT_EQ((*box)->pending_count(), 0u);
  }
  auto box = DigestOutbox::Open(opts);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ((*box)->pending_count(), 0u);
}

TEST_F(DigestOutboxTest, CapacityBoundRejectsWithBusy) {
  DigestOutboxOptions opts;
  opts.dir = Path("outbox");
  opts.capacity = 2;
  auto box = DigestOutbox::Open(opts);
  ASSERT_TRUE(box.ok());
  ASSERT_TRUE((*box)->Append("a").ok());
  ASSERT_TRUE((*box)->Append("b").ok());
  EXPECT_EQ((*box)->Append("c").code(), StatusCode::kBusy);
  EXPECT_EQ((*box)->rejected(), 1u);
  // Acking frees a slot.
  ASSERT_TRUE((*box)->Ack(1).ok());
  EXPECT_TRUE((*box)->Append("c").ok());
}

TEST_F(DigestOutboxTest, TornFinalRecordIsDroppedOnReplay) {
  DigestOutboxOptions opts;
  opts.dir = Path("outbox");
  {
    auto box = DigestOutbox::Open(opts);
    ASSERT_TRUE(box.ok());
    ASSERT_TRUE((*box)->Append("first").ok());
    ASSERT_TRUE((*box)->Append("second-payload").ok());
  }
  // A crash mid-append leaves a torn tail: chop bytes off the last record.
  std::filesystem::path log = std::filesystem::path(Path("outbox")) /
                              "outbox.log";
  uint64_t size = std::filesystem::file_size(log);
  std::filesystem::resize_file(log, size - 4);
  auto box = DigestOutbox::Open(opts);
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  std::vector<std::string> pending = (*box)->Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], "first");
}

// Regression test found by the simulator (sim seed 614480483733483466): a
// torn tail must be truncated OFF THE FILE at replay, not just skipped,
// because the next append goes to the end of the file — garbage left in
// place would sit between intact records and that append and read as
// mid-log corruption on the replay after the NEXT crash.
TEST_F(DigestOutboxTest, AppendAfterTornTailSurvivesSecondReplay) {
  DigestOutboxOptions opts;
  opts.dir = Path("outbox");
  {
    auto box = DigestOutbox::Open(opts);
    ASSERT_TRUE(box.ok());
    ASSERT_TRUE((*box)->Append("first").ok());
    ASSERT_TRUE((*box)->Append("second-payload").ok());
  }
  std::filesystem::path log = std::filesystem::path(Path("outbox")) /
                              "outbox.log";
  uint64_t size = std::filesystem::file_size(log);
  std::filesystem::resize_file(log, size - 4);  // crash tore the last record
  {
    auto box = DigestOutbox::Open(opts);
    ASSERT_TRUE(box.ok()) << box.status().ToString();
    ASSERT_EQ((*box)->Pending().size(), 1u);
    ASSERT_TRUE((*box)->Append("third").ok());  // lands after the torn spot
  }
  auto box = DigestOutbox::Open(opts);
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  std::vector<std::string> pending = (*box)->Pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0], "first");
  EXPECT_EQ(pending[1], "third");
}

// ---- Pipeline fixture ----

class DigestPipelineTest : public TempDirTest {
 protected:
  std::unique_ptr<LedgerDatabase> db_;
  InMemoryDigestStore remote_;

  void SetUp() override {
    TempDirTest::SetUp();
    db_ = OpenTestDb();
    ASSERT_TRUE(
        db_->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable)
            .ok());
  }

  // Inserts `rows` rows so the open block is non-empty and the next digest
  // covers a fresh block.
  void Fill(int rows) {
    for (int i = 0; i < rows; i++)
      ASSERT_TRUE(InsertOne(db_.get(), "t", next_id_++, "x").ok());
  }

 private:
  int64_t next_id_ = 1;
};

TEST_F(DigestPipelineTest, HealthyPathUploadsAndReportsProtected) {
  auto pipeline =
      DigestUploadPipeline::Open(db_.get(), &remote_, FastOptions(Path("ob")));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  DigestUploadPipeline* p = pipeline->get();

  Fill(3);
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  EXPECT_EQ(p->status().outbox_pending, 1u);
  EXPECT_EQ(p->Pump(), 1u);

  DigestProtectionStatus s = p->status();
  EXPECT_TRUE(s.fully_protected()) << s.ToString();
  EXPECT_EQ(s.blocks_behind, 0u);
  EXPECT_EQ(s.uploads_ok, 1u);
  EXPECT_EQ(s.outbox_pending, 0u);
  EXPECT_GE(s.seconds_since_last_durable, 0.0);
  EXPECT_EQ(remote_.ListAll()->size(), 1u);

  auto report = VerifyLedgerAgainstStore(db_.get(), remote_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(DigestPipelineTest, OutageQueuesThenCatchesUpToZeroStaleness) {
  FaultyDigestStore flaky(&remote_, TestSeed());
  auto pipeline =
      DigestUploadPipeline::Open(db_.get(), &flaky, FastOptions(Path("ob")));
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();

  flaky.SetOutage(true);
  for (int i = 0; i < 3; i++) {
    Fill(2);
    ASSERT_TRUE(p->GenerateAndSubmit().ok());
    (void)p->Pump();  // attempts fail; digests stay durably queued
  }
  DigestProtectionStatus during = p->status();
  EXPECT_EQ(during.outbox_pending, 3u);
  EXPECT_GT(during.blocks_behind, 0u);
  EXPECT_FALSE(during.fully_protected());
  EXPECT_GT(during.transient_errors, 0u);
  EXPECT_EQ(remote_.ListAll()->size(), 0u);

  flaky.SetOutage(false);
  ASSERT_TRUE(p->DrainFully().ok());
  DigestProtectionStatus after = p->status();
  EXPECT_TRUE(after.fully_protected()) << after.ToString();
  EXPECT_EQ(after.outbox_pending, 0u);
  // Catch-up preserved submission order.
  auto stored = remote_.ListAll();
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(stored->size(), 3u);
  for (size_t i = 1; i < stored->size(); i++)
    EXPECT_GT((*stored)[i].block_id, (*stored)[i - 1].block_id);
}

TEST_F(DigestPipelineTest, BreakerDegradesOpensAndRecoversViaProbe) {
  FaultyDigestStore flaky(&remote_, TestSeed());
  DigestPipelineOptions opts = FastOptions(Path("ob"));
  opts.degraded_after_failures = 1;
  opts.open_after_failures = 3;
  auto pipeline = DigestUploadPipeline::Open(db_.get(), &flaky, opts);
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();

  Fill(2);
  flaky.SetOutage(true);
  ASSERT_TRUE(p->GenerateAndSubmit().ok());

  EXPECT_EQ(p->Pump(), 0u);
  EXPECT_EQ(p->status().breaker, DigestBreakerState::kDegraded);
  EXPECT_EQ(p->Pump(), 0u);
  EXPECT_EQ(p->status().breaker, DigestBreakerState::kDegraded);
  EXPECT_EQ(p->Pump(), 0u);
  EXPECT_EQ(p->status().breaker, DigestBreakerState::kOpen);
  EXPECT_EQ(p->status().consecutive_failures, 3);

  // With the breaker open a probe is still allowed (probe interval 0); the
  // first one that lands closes the circuit.
  flaky.SetOutage(false);
  EXPECT_EQ(p->Pump(), 1u);
  DigestProtectionStatus s = p->status();
  EXPECT_EQ(s.breaker, DigestBreakerState::kHealthy);
  EXPECT_EQ(s.consecutive_failures, 0);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.recovered_after_retry, 0u);
}

TEST_F(DigestPipelineTest, BackoffBlocksAttemptsUntilDeadline) {
  FaultyDigestStore flaky(&remote_, TestSeed());
  DigestPipelineOptions opts = FastOptions(Path("ob"));
  // The fake clock ticks 1µs per reading, so this deadline never arrives.
  opts.initial_backoff_micros = 1000L * 1000 * 1000 * 1000;
  opts.max_backoff_micros = opts.initial_backoff_micros;
  auto pipeline = DigestUploadPipeline::Open(db_.get(), &flaky, opts);
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();

  Fill(2);
  flaky.SetOutage(true);
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  EXPECT_EQ(p->Pump(), 0u);
  EXPECT_EQ(p->status().attempts, 1u);
  flaky.SetOutage(false);
  EXPECT_EQ(p->Pump(), 0u);  // backoff gates the retry even though healthy
  EXPECT_EQ(p->status().attempts, 1u);
  EXPECT_EQ(p->DrainFully().code(), StatusCode::kBusy);
}

TEST_F(DigestPipelineTest, OutboxFullRejectsSubmissionWithBusy) {
  FaultyDigestStore flaky(&remote_, TestSeed());
  DigestPipelineOptions opts = FastOptions(Path("ob"));
  opts.outbox_capacity = 2;
  auto pipeline = DigestUploadPipeline::Open(db_.get(), &flaky, opts);
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();

  flaky.SetOutage(true);
  Fill(2);
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  Fill(2);
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  Fill(2);
  EXPECT_EQ(p->GenerateAndSubmit().code(), StatusCode::kBusy);
  EXPECT_EQ(p->status().submissions_rejected, 1u);

  // Recovery still drains the queued tail and the next digest covers the
  // whole chain, so protection returns to zero staleness.
  flaky.SetOutage(false);
  ASSERT_TRUE(p->DrainFully().ok());
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  ASSERT_TRUE(p->DrainFully().ok());
  EXPECT_TRUE(p->status().fully_protected()) << p->status().ToString();
}

TEST_F(DigestPipelineTest, AmbiguousAckRecoversIdempotently) {
  FaultyDigestStore flaky(&remote_, TestSeed());
  auto pipeline =
      DigestUploadPipeline::Open(db_.get(), &flaky, FastOptions(Path("ob")));
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();

  Fill(2);
  flaky.LoseAcks(1);
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  // First attempt: the store persisted the digest but the ack was lost, so
  // the pipeline must treat it as failed and keep it queued.
  EXPECT_EQ(p->Pump(), 0u);
  EXPECT_EQ(p->status().outbox_pending, 1u);
  EXPECT_EQ(remote_.ListAll()->size(), 1u);
  // The retry re-uploads byte-identical content; the idempotent store
  // answers OK without a second copy and the outbox acks.
  EXPECT_EQ(p->Pump(), 1u);
  DigestProtectionStatus s = p->status();
  EXPECT_TRUE(s.fully_protected()) << s.ToString();
  EXPECT_EQ(s.recovered_after_retry, 1u);
  EXPECT_EQ(remote_.ListAll()->size(), 1u);
}

TEST_F(DigestPipelineTest, ForkAtStoreLatchesFatalAndStopsPipeline) {
  auto pipeline =
      DigestUploadPipeline::Open(db_.get(), &remote_, FastOptions(Path("ob")));
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();

  Fill(2);
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  // An attacker (or a forked replica) already published a digest for the
  // same block with different content.
  DatabaseDigest forged = *digest;
  forged.block_hash = Sha256::Digest(Slice("somebody else's history"));
  ASSERT_TRUE(remote_.Upload(forged).ok());

  ASSERT_TRUE(p->SubmitDigest(*digest).ok());
  EXPECT_EQ(p->Pump(), 0u);
  DigestProtectionStatus s = p->status();
  EXPECT_TRUE(s.fatal.IsIntegrityViolation()) << s.ToString();
  EXPECT_FALSE(s.fully_protected());
  // Latched: further submissions and pumps refuse to paper over the fork.
  Fill(2);
  EXPECT_TRUE(p->GenerateAndSubmit().IsIntegrityViolation());
  EXPECT_EQ(p->Pump(), 0u);
  EXPECT_EQ(p->DrainFully().code(), StatusCode::kIntegrityViolation);
}

TEST_F(DigestPipelineTest, CrashMidOutageReplaysOutboxInOrder) {
  FaultyDigestStore flaky(&remote_, TestSeed());
  FaultInjectionEnv fenv;
  std::vector<std::string> submitted;

  {
    auto pipeline = DigestUploadPipeline::Open(
        db_.get(), &flaky, FastOptions(Path("ob"), &fenv));
    ASSERT_TRUE(pipeline.ok());
    DigestUploadPipeline* p = pipeline->get();
    flaky.SetOutage(true);
    for (int i = 0; i < 4; i++) {
      Fill(2);
      auto d = db_->GenerateDigest();
      ASSERT_TRUE(d.ok());
      ASSERT_TRUE(p->SubmitDigest(*d).ok());
      submitted.push_back(d->ToJson());
      (void)p->Pump();
    }
    // Power loss while the store is still down. Every accepted submission
    // was fsynced by the outbox before SubmitDigest returned.
    fenv.SimulateCrash();
  }

  // Next process: clean env over the same directory sees exactly what
  // survived the crash — all four digests, in submission order.
  auto pipeline = DigestUploadPipeline::Open(db_.get(), &flaky,
                                             FastOptions(Path("ob")));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  DigestUploadPipeline* p = pipeline->get();
  EXPECT_EQ(p->outbox()->Pending(), submitted);

  flaky.SetOutage(false);
  ASSERT_TRUE(p->DrainFully().ok());
  auto stored = remote_.ListAll();
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(stored->size(), submitted.size());
  for (size_t i = 0; i < stored->size(); i++)
    EXPECT_EQ((*stored)[i].ToJson(), submitted[i]);

  auto report = VerifyLedgerAgainstStore(db_.get(), remote_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_TRUE(p->status().fully_protected()) << p->status().ToString();
}

// The issue's acceptance scenario: seeded random outages + ambiguous acks +
// a crash mid-outage. Afterwards the outbox must have been replayed in
// order, VerifyLedgerAgainstStore must pass, and staleness must return to
// zero once the store is reachable again.
TEST_F(DigestPipelineTest, TortureSeededOutagesAmbiguousAcksAndCrash) {
  uint64_t seed = TestSeed();
  Random rng(seed ^ 0x70217u);
  FaultyDigestStore flaky(&remote_, seed ^ 0xFA017u);
  FaultyDigestStore::Probabilities probs;
  probs.ack_lost = 0.1;
  probs.duplicate = 0.1;
  probs.transient_error = 0.1;
  flaky.SetProbabilities(probs);

  DigestPipelineOptions opts = FastOptions(Path("ob"));
  opts.outbox_capacity = 16;

  auto fenv = std::make_unique<FaultInjectionEnv>(nullptr, seed);
  opts.env = fenv.get();
  auto pipeline = DigestUploadPipeline::Open(db_.get(), &flaky, opts);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  DigestUploadPipeline* p = pipeline->get();

  std::vector<std::string> accepted;  // every digest the outbox accepted
  bool outage = false;
  bool crashed_once = false;
  const int kRounds = 60;
  for (int round = 0; round < kRounds; round++) {
    // One crash mid-run, forced to land inside an outage window.
    if (!crashed_once && round == kRounds / 2) {
      if (!outage) {
        outage = true;
        flaky.SetOutage(true);
      }
      fenv->SimulateCrash();
      crashed_once = true;
      pipeline->reset();
      fenv = std::make_unique<FaultInjectionEnv>(nullptr, seed ^ 0xC4A54ull);
      opts.env = fenv.get();
      pipeline = DigestUploadPipeline::Open(db_.get(), &flaky, opts);
      ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
      p = pipeline->get();
      // Crash-safety: the replayed queue is a contiguous tail of what was
      // accepted, in order (the ack cursor may conservatively rewind, so
      // the tail may extend further back than the unacked set).
      std::vector<std::string> replayed = p->outbox()->Pending();
      ASSERT_LE(replayed.size(), accepted.size());
      std::vector<std::string> tail(accepted.end() - replayed.size(),
                                    accepted.end());
      EXPECT_EQ(replayed, tail)
          << "outbox replay is not an ordered tail of accepted submissions "
             "(SQLLEDGER_TEST_SEED=" << seed << ")";
    }

    if (rng.Bernoulli(0.15)) {
      outage = !outage;
      flaky.SetOutage(outage);
    }
    Fill(static_cast<int>(rng.UniformRange(1, 3)));
    if (rng.Bernoulli(0.7)) {
      auto d = db_->GenerateDigest();
      ASSERT_TRUE(d.ok()) << d.status().ToString();
      Status st = p->SubmitDigest(*d);
      if (st.ok()) {
        accepted.push_back(d->ToJson());
      } else {
        ASSERT_EQ(st.code(), StatusCode::kBusy)
            << "unexpected submit failure (SQLLEDGER_TEST_SEED=" << seed
            << "): " << st.ToString();
      }
    }
    (void)p->Pump();
    ASSERT_TRUE(p->status().fatal.ok())
        << "fatal latched under pure network faults (SQLLEDGER_TEST_SEED="
        << seed << "): " << p->status().ToString();
  }
  ASSERT_TRUE(crashed_once);

  // Weather clears: the pipeline must catch all the way up.
  flaky.SetOutage(false);
  flaky.SetProbabilities({});
  ASSERT_TRUE(p->DrainFully().ok()) << p->status().ToString();
  auto d = db_->GenerateDigest();
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(p->SubmitDigest(*d).ok());
  accepted.push_back(d->ToJson());
  ASSERT_TRUE(p->DrainFully().ok()) << p->status().ToString();

  DigestProtectionStatus s = p->status();
  EXPECT_TRUE(s.fully_protected()) << s.ToString();
  EXPECT_EQ(s.blocks_behind, 0u);
  EXPECT_EQ(s.outbox_pending, 0u);

  // The store holds an order-preserving subset of accepted submissions
  // (duplicate deliveries and ack-loss replays absorbed, nothing reordered,
  // nothing from outside the accepted sequence).
  auto stored = remote_.ListAll();
  ASSERT_TRUE(stored.ok());
  ASSERT_FALSE(stored->empty());
  size_t pos = 0;
  for (const DatabaseDigest& sd : *stored) {
    std::string json = sd.ToJson();
    while (pos < accepted.size() && accepted[pos] != json) pos++;
    ASSERT_LT(pos, accepted.size())
        << "store holds a digest that was never accepted, or out of order "
           "(block " << sd.block_id << ", SQLLEDGER_TEST_SEED=" << seed
        << ")";
    pos++;
  }
  // The final digest (covering the whole chain) must have landed.
  EXPECT_EQ(stored->back().ToJson(), accepted.back());

  auto report = VerifyLedgerAgainstStore(db_.get(), remote_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

// ---- LedgerDatabase wiring ----

class DigestProtectionWiringTest : public TempDirTest {};

TEST_F(DigestProtectionWiringTest, StartStopAndStatusSurface) {
  auto db = OpenTestDb();
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  for (int i = 1; i <= 5; i++)
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());

  // Without a pipeline the status is the honest worst case.
  ASSERT_TRUE(db->GenerateDigest().ok());
  DigestProtectionStatus bare = db->GetDigestProtectionStatus();
  EXPECT_GT(bare.blocks_behind, 0u);
  EXPECT_FALSE(bare.fully_protected());

  // Ephemeral database with no outbox_dir: nowhere durable to queue.
  InMemoryDigestStore store;
  EXPECT_EQ(db->StartDigestProtection(&store).code(),
            StatusCode::kInvalidArgument);

  DigestPipelineOptions opts;
  opts.outbox_dir = Path("ob");
  opts.initial_backoff_micros = 0;
  opts.max_backoff_micros = 0;
  opts.jitter = 0;
  opts.probe_interval_micros = 0;
  ASSERT_TRUE(db->StartDigestProtection(&store, opts).ok());
  ASSERT_NE(db->digest_pipeline(), nullptr);
  EXPECT_EQ(db->StartDigestProtection(&store, opts).code(),
            StatusCode::kBusy);

  ASSERT_TRUE(db->digest_pipeline()->GenerateAndSubmit().ok());
  ASSERT_TRUE(db->digest_pipeline()->DrainFully().ok());
  EXPECT_TRUE(db->GetDigestProtectionStatus().fully_protected())
      << db->GetDigestProtectionStatus().ToString();

  db->StopDigestProtection();
  EXPECT_EQ(db->digest_pipeline(), nullptr);
}

TEST_F(DigestProtectionWiringTest, StalenessTracksInjectableClockExactly) {
  // seconds_since_last_durable must be computed from the database's
  // injectable clock, never wall time: a 5-second jump of the fake clock
  // (while <1ms of real time passes) must show up in the status verbatim.
  auto ticks = std::make_shared<std::atomic<int64_t>>(1000000);
  LedgerDatabaseOptions options;
  options.block_size = 4;
  options.database_id = "staleness";
  options.clock = [ticks] { return ++*ticks; };
  auto opened = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto db = std::move(*opened);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  ASSERT_TRUE(InsertOne(db.get(), "t", 1, "x").ok());

  InMemoryDigestStore store;
  auto pipeline =
      DigestUploadPipeline::Open(db.get(), &store, FastOptions(Path("ob")));
  ASSERT_TRUE(pipeline.ok());
  DigestUploadPipeline* p = pipeline->get();
  ASSERT_TRUE(p->GenerateAndSubmit().ok());
  ASSERT_EQ(p->Pump(), 1u);

  // Advance only the injected clock, then re-read. The per-call +1 ticks
  // add at most a few microseconds on top of the 5-second jump.
  *ticks += 5 * 1000 * 1000;
  double stale = p->status().seconds_since_last_durable;
  EXPECT_GE(stale, 5.0);
  EXPECT_LT(stale, 5.001);
}

TEST_F(DigestProtectionWiringTest, BackgroundCadenceUploadsDigests) {
  auto db = OpenTestDb();
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kUpdateable).ok());
  InMemoryDigestStore store;
  DigestPipelineOptions opts;
  opts.outbox_dir = Path("ob");
  opts.initial_backoff_micros = 0;
  opts.max_backoff_micros = 0;
  opts.jitter = 0;
  opts.probe_interval_micros = 0;
  ASSERT_TRUE(db->StartDigestProtection(&store, opts,
                                        std::chrono::milliseconds(1))
                  .ok());
  for (int i = 1; i <= 5; i++)
    ASSERT_TRUE(InsertOne(db.get(), "t", i, "x").ok());
  // The cadence thread should generate + upload without any manual pumping.
  for (int spin = 0; spin < 2000; spin++) {
    if (db->GetDigestProtectionStatus().uploads_ok >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(db->GetDigestProtectionStatus().uploads_ok, 1u)
      << db->GetDigestProtectionStatus().ToString();
  db->StopDigestProtection();
  EXPECT_GE(store.ListAll()->size(), 1u);
}

}  // namespace
}  // namespace sqlledger
