// Long-tier exercises of the differential simulator: multi-seed sweeps with
// the full adversarial mix (crashes, tampering, DDL, truncation), large-run
// determinism, and the delta-debugging minimizer contract. Labeled "long"
// in ctest; the nightly CI job runs bigger sweeps still.

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "test_util.h"

namespace sqlledger {
namespace sim {
namespace {

class SimHarnessTest : public TempDirTest {
 protected:
  SimConfig MakeConfig(uint64_t seed, size_t ops) {
    SimConfig config;
    config.seed = seed;
    config.gen.ops = ops;
    config.data_dir = Path("sim");
    return config;
  }
};

TEST_F(SimHarnessTest, MultiSeedSweepWithCrashesAndTampering) {
  for (uint64_t s = 0; s < 5; s++) {
    SimConfig config = MakeConfig(TestCaseSeed(100 + s), 4000);
    SimResult result = RunSim(config);
    EXPECT_TRUE(result.ok)
        << "seed " << config.seed << " (SQLLEDGER_TEST_SEED=" << TestSeed()
        << ") diverged @" << result.divergent_op << ": " << result.message;
    // The adversarial mix must actually fire, or the sweep proves nothing.
    EXPECT_GT(result.crashes, 0u) << "seed " << config.seed;
    EXPECT_GT(result.tampers, 0u) << "seed " << config.seed;
    EXPECT_GT(result.digests, 0u) << "seed " << config.seed;
  }
}

TEST_F(SimHarnessTest, DeterministicAtScale) {
  SimConfig config = MakeConfig(TestCaseSeed(200), 4000);
  SimResult first = RunSim(config);
  SimResult second = RunSim(config);
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.outcome_fingerprint, second.outcome_fingerprint);
  EXPECT_EQ(first.final_digest_hex, second.final_digest_hex);
  EXPECT_EQ(first.metrics_fingerprint, second.metrics_fingerprint);
}

TEST_F(SimHarnessTest, MinimizerShrinksFailingTraceAndPreservesFailure) {
  SimConfig config = MakeConfig(TestCaseSeed(300), 500);
  config.break_hash_order = true;
  std::vector<SimOp> trace = GenerateTrace(config.seed, config.gen);
  SimResult full = RunTrace(config, trace);
  ASSERT_FALSE(full.ok) << "planted bug did not diverge";

  std::vector<SimOp> shrunk = MinimizeTrace(config, trace);
  EXPECT_LT(shrunk.size(), trace.size());
  SimResult again = RunTrace(config, shrunk);
  EXPECT_FALSE(again.ok) << "minimized trace no longer reproduces";
  // Replaying the minimized trace is itself deterministic.
  SimResult thrice = RunTrace(config, shrunk);
  EXPECT_EQ(again.outcome_fingerprint, thrice.outcome_fingerprint);
  EXPECT_EQ(again.divergent_op, thrice.divergent_op);
}

}  // namespace
}  // namespace sim
}  // namespace sqlledger
