// Verifier tests on untampered databases: clean verification, digest
// coverage accounting, subset verification, and input validation.

#include <gtest/gtest.h>

#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/4);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    ASSERT_TRUE(
        db_->CreateTable("audit", SimpleUserSchema(), TableKind::kAppendOnly)
            .ok());
  }

  void RunTraffic(int n) {
    for (int k = 0; k < n; k++) {
      int i = next_++;
      auto txn = db_->Begin("app");
      ASSERT_TRUE(txn.ok());
      std::string name = "acct" + std::to_string(i);
      ASSERT_TRUE(db_->Insert(*txn, "accounts", {VS(name), VB(i)}).ok());
      ASSERT_TRUE(db_->Insert(*txn, "audit",
                              {VB(i), VS("created " + name)})
                      .ok());
      if (i > 0) {
        ASSERT_TRUE(db_->Update(*txn, "accounts",
                                {VS("acct" + std::to_string(i - 1)),
                                 VB(i * 10)})
                        .ok());
      }
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
  }

  std::unique_ptr<LedgerDatabase> db_;
  int next_ = 0;
};

TEST_F(VerifierTest, CleanDatabaseVerifies) {
  RunTraffic(10);
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GT(report->blocks_checked, 0u);
  EXPECT_GT(report->transactions_checked, 0u);
  EXPECT_GT(report->row_versions_checked, 0u);
  EXPECT_TRUE(report->has_digest_coverage);
  EXPECT_EQ(report->highest_digest_block, digest->block_id);
}

TEST_F(VerifierTest, VerifiesWithMultipleDigests) {
  RunTraffic(3);
  auto d1 = db_->GenerateDigest();
  ASSERT_TRUE(d1.ok());
  RunTraffic(3);
  auto d2 = db_->GenerateDigest();
  ASSERT_TRUE(d2.ok());
  auto report = VerifyLedger(db_.get(), {*d1, *d2});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->highest_digest_block, d2->block_id);
}

TEST_F(VerifierTest, VerifiesWithNoDigests) {
  // Internal consistency check only (no digest coverage).
  RunTraffic(5);
  auto report = VerifyLedger(db_.get(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_FALSE(report->has_digest_coverage);
}

TEST_F(VerifierTest, PendingTransactionsAreConsistent) {
  // Traffic after the last digest lives in the open block; verification
  // still checks it for internal consistency.
  RunTraffic(3);
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  RunTraffic(2);  // not covered by any digest
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(VerifierTest, SubsetVerificationOnlyChecksRequestedTables) {
  RunTraffic(5);
  auto digest = db_->GenerateDigest();
  VerificationOptions options;
  options.tables = {"accounts"};
  auto report = VerifyLedger(db_.get(), {*digest}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  // Tamper with audit; a subset verification of accounts won't see it...
  TableStore* audit = db_->GetStoreForTesting("audit");
  Row* row = audit->mutable_clustered()->MutableGet({VB(1)});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VS("FORGED");
  report = VerifyLedger(db_.get(), {*digest}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  // ...but a full verification does.
  report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(VerifierTest, DigestForWrongDatabaseFlagged) {
  RunTraffic(2);
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  DatabaseDigest foreign = *digest;
  foreign.database_id = "some-other-db";
  auto report = VerifyLedger(db_.get(), {foreign});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->violations[0].invariant, 0);
}

TEST_F(VerifierTest, DigestForMissingBlockFlagged) {
  RunTraffic(2);
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  DatabaseDigest future = *digest;
  future.block_id = 999;
  auto report = VerifyLedger(db_.get(), {future});
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());
  EXPECT_EQ(report->violations[0].invariant, 1);
}

TEST_F(VerifierTest, LedgerDisabledIsNotSupported) {
  auto plain = OpenTestDb(4, /*enable_ledger=*/false);
  EXPECT_EQ(VerifyLedger(plain.get(), {}).status().code(),
            StatusCode::kNotSupported);
}

TEST_F(VerifierTest, SummaryMentionsOutcome) {
  RunTraffic(2);
  auto digest = db_->GenerateDigest();
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->Summary().find("VERIFICATION PASSED"), std::string::npos);
}

TEST_F(VerifierTest, SystemTablesAreVerifiedToo) {
  // Even with zero user traffic the metadata system tables have rows from
  // table creation, and they must verify.
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GT(report->row_versions_checked, 0u);  // sys_ledger_tables rows
}

TEST_F(VerifierTest, ParallelVerificationMatchesSerial) {
  RunTraffic(20);
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());

  VerificationOptions parallel;
  parallel.parallelism = 4;
  auto serial_report = VerifyLedger(db_.get(), {*digest});
  auto parallel_report = VerifyLedger(db_.get(), {*digest}, parallel);
  ASSERT_TRUE(serial_report.ok());
  ASSERT_TRUE(parallel_report.ok());
  EXPECT_TRUE(parallel_report->ok()) << parallel_report->Summary();
  EXPECT_EQ(parallel_report->row_versions_checked,
            serial_report->row_versions_checked);
  EXPECT_EQ(parallel_report->transactions_checked,
            serial_report->transactions_checked);

  // Tampering is found identically under parallel verification.
  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct5")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(777);
  serial_report = VerifyLedger(db_.get(), {*digest});
  parallel_report = VerifyLedger(db_.get(), {*digest}, parallel);
  ASSERT_TRUE(serial_report.ok());
  ASSERT_TRUE(parallel_report.ok());
  EXPECT_FALSE(parallel_report->ok());
  EXPECT_EQ(parallel_report->violations.size(),
            serial_report->violations.size());
}

TEST_F(VerifierTest, ViewCheckCanBeDisabled) {
  RunTraffic(2);
  auto digest = db_->GenerateDigest();
  VerificationOptions options;
  options.check_views = false;
  options.check_indexes = false;
  auto report = VerifyLedger(db_.get(), {*digest}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

}  // namespace
}  // namespace sqlledger
