// Concurrency tests: parallel committers, lock-conflict aborts, quiescing,
// and verification consistency under concurrent load.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LedgerDatabaseOptions options;
    options.enable_ledger = true;
    options.block_size = 16;
    options.database_id = "ccdb";
    options.lock_timeout = std::chrono::milliseconds(2000);
    auto db = LedgerDatabase::Open(std::move(options));
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    // One table per worker avoids table-lock serialization; plus a shared
    // table for the contention test.
    for (int i = 0; i < kWorkers; i++) {
      ASSERT_TRUE(db_->CreateTable("t" + std::to_string(i),
                                   SimpleUserSchema(), TableKind::kUpdateable)
                      .ok());
    }
    ASSERT_TRUE(db_->CreateTable("shared", SimpleUserSchema(),
                                 TableKind::kUpdateable)
                    .ok());
  }

  static constexpr int kWorkers = 4;
  std::unique_ptr<LedgerDatabase> db_;
};

TEST_F(ConcurrencyTest, ParallelCommittersOnDisjointTables) {
  constexpr int kTxnsPerWorker = 100;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWorkers; w++) {
    threads.emplace_back([&, w] {
      std::string table = "t" + std::to_string(w);
      for (int i = 0; i < kTxnsPerWorker; i++) {
        auto txn = db_->Begin("worker" + std::to_string(w));
        if (!txn.ok()) {
          failures++;
          continue;
        }
        Status st = db_->Insert(
            *txn, table, {VB(i), VS("w" + std::to_string(w))});
        if (st.ok() && i > 0) {
          st = db_->Update(*txn, table, {VB(i - 1), VS("touched")});
        }
        if (st.ok()) {
          if (!db_->Commit(*txn).ok()) failures++;
        } else {
          db_->Abort(*txn);
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every transaction must have a distinct, gap-free slot in the ledger.
  ASSERT_TRUE(db_->database_ledger()->DrainQueue().ok());
  auto entries = db_->database_ledger()->AllEntries();
  std::set<std::pair<uint64_t, uint64_t>> slots;
  for (const TransactionEntry& e : entries)
    slots.insert({e.block_id, e.block_ordinal});
  EXPECT_EQ(slots.size(), entries.size());

  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(ConcurrencyTest, ContendedTableSerializesCorrectly) {
  // All workers increment the same row; table X locks serialize them.
  {
    auto txn = db_->Begin("init");
    ASSERT_TRUE(db_->Insert(*txn, "shared", {VB(1), VS("0")}).ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  constexpr int kIncrementsPerWorker = 50;
  std::vector<std::thread> threads;
  std::atomic<int> aborted{0};
  for (int w = 0; w < kWorkers; w++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerWorker; i++) {
        while (true) {
          auto txn = db_->Begin("inc");
          if (!txn.ok()) continue;
          auto row = db_->Get(*txn, "shared", {VB(1)});
          if (!row.ok()) {
            db_->Abort(*txn);
            aborted++;
            continue;
          }
          int64_t v = std::stoll((*row)[1].string_value());
          Status st =
              db_->Update(*txn, "shared", {VB(1), VS(std::to_string(v + 1))});
          if (st.ok() && db_->Commit(*txn).ok()) break;
          db_->Abort(*txn);
          aborted++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  auto txn = db_->Begin("check");
  auto row = db_->Get(*txn, "shared", {VB(1)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].string_value(),
            std::to_string(kWorkers * kIncrementsPerWorker));
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(ConcurrencyTest, RowLevelLockingAllowsDisjointRows) {
  LedgerDatabaseOptions options;
  options.lock_timeout = std::chrono::milliseconds(30);
  auto db = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable("t", SimpleUserSchema(),
                                 TableKind::kUpdateable)
                  .ok());
  auto holder = (*db)->Begin("holder");
  ASSERT_TRUE((*db)->Insert(*holder, "t", {VB(1), VS("x")}).ok());

  // A different row of the same table does NOT conflict (row-level locks).
  auto other = (*db)->Begin("other");
  EXPECT_TRUE((*db)->Insert(*other, "t", {VB(2), VS("y")}).ok());
  ASSERT_TRUE((*db)->Commit(*other).ok());

  // The SAME row does conflict and aborts after the timeout.
  auto waiter = (*db)->Begin("waiter");
  Status st = (*db)->Insert(*waiter, "t", {VB(1), VS("dup")});
  EXPECT_TRUE(st.IsAborted());
  (*db)->Abort(*waiter);
  ASSERT_TRUE((*db)->Commit(*holder).ok());

  // Scans (table S) conflict with an open writer's IX.
  auto writer = (*db)->Begin("writer");
  ASSERT_TRUE((*db)->Insert(*writer, "t", {VB(3), VS("z")}).ok());
  auto scanner = (*db)->Begin("scanner");
  EXPECT_TRUE((*db)->Scan(*scanner, "t").status().IsAborted());
  (*db)->Abort(*scanner);
  ASSERT_TRUE((*db)->Commit(*writer).ok());
}

TEST_F(ConcurrencyTest, ReadOfUncommittedRowBlocks) {
  LedgerDatabaseOptions options;
  options.lock_timeout = std::chrono::milliseconds(30);
  auto db = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable("t", SimpleUserSchema(),
                                 TableKind::kUpdateable)
                  .ok());
  {
    auto txn = (*db)->Begin("init");
    ASSERT_TRUE((*db)->Insert(*txn, "t", {VB(1), VS("v1")}).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  auto writer = (*db)->Begin("writer");
  ASSERT_TRUE((*db)->Update(*writer, "t", {VB(1), VS("v2")}).ok());

  // No dirty reads: a reader of the locked row times out; a reader of a
  // different row proceeds.
  auto reader = (*db)->Begin("reader");
  EXPECT_TRUE((*db)->Get(*reader, "t", {VB(1)}).status().IsAborted());
  (*db)->Abort(*reader);
  ASSERT_TRUE((*db)->Commit(*writer).ok());

  auto after = (*db)->Begin("after");
  auto row = (*db)->Get(*after, "t", {VB(1)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].string_value(), "v2");
  ASSERT_TRUE((*db)->Commit(*after).ok());
}

TEST_F(ConcurrencyTest, DigestGenerationDuringLoad) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop) {
      auto txn = db_->Begin("w");
      if (!txn.ok()) continue;
      if (db_->Insert(*txn, "t0", {VB(100000 + i++), VS("x")}).ok()) {
        (void)db_->Commit(*txn);  // contention aborts are expected here
      } else {
        (void)db_->Abort(*txn);
      }
    }
  });
  std::vector<DatabaseDigest> digests;
  for (int i = 0; i < 10; i++) {
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digests.push_back(*digest);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop = true;
  writer.join();

  // Digest chain is fork-free end to end.
  for (size_t i = 1; i < digests.size(); i++) {
    auto derivable =
        db_->database_ledger()->VerifyDigestChain(digests[i - 1], digests[i]);
    ASSERT_TRUE(derivable.ok());
    EXPECT_TRUE(*derivable) << "digest " << i;
  }
  auto report = VerifyLedger(db_.get(), digests);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(ConcurrencyTest, ReadersShareLocks) {
  {
    auto txn = db_->Begin("init");
    ASSERT_TRUE(db_->Insert(*txn, "shared", {VB(1), VS("v")}).ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  std::vector<std::thread> threads;
  std::atomic<int> ok_reads{0};
  for (int w = 0; w < 8; w++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; i++) {
        auto txn = db_->Begin("r");
        if (!txn.ok()) continue;
        if (db_->Get(*txn, "shared", {VB(1)}).ok()) ok_reads++;
        ASSERT_TRUE(db_->Commit(*txn).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_reads.load(), 8 * 50);
}

}  // namespace
}  // namespace sqlledger
