// Concurrency stress: many writers, concurrent verifiers and periodic
// digest generation against one ledger database, with a full verification
// at quiesce. The tier1 variant is sized to finish in a few seconds; the
// `long`-labeled nightly variant multiplies the workload via
// SQLLEDGER_STRESS_SCALE (also settable by hand to reproduce TSan runs).
//
// This doubles as the regression suite for the races fixed while annotating
// the tree for -Wthread-safety: InMemoryDigestStore's unsynchronized map,
// ThreadPool shutdown with queued work, and unlatched DatabaseLedger
// accessors racing block closes.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <cstdlib>
#include <thread>
#include <vector>

#include "ledger/digest_store.h"
#include "ledger/verifier.h"
#include "test_util.h"
#include "util/random.h"
#include "util/threadpool.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

/// Workload multiplier: 1 for the tier1 run; the nightly job sets
/// SQLLEDGER_STRESS_SCALE to run the same scenario an order of magnitude
/// longer (and under TSan).
int StressScale() {
  const char* env = std::getenv("SQLLEDGER_STRESS_SCALE");
  if (env != nullptr && *env != '\0') {
    int scale = std::atoi(env);
    if (scale > 0) return scale;
  }
  return 1;
}

struct StressConfig {
  int writers = 4;
  int verifiers = 2;
  int txns_per_writer = 60;
  int verify_rounds = 3;
};

/// Shared scenario: `writers` threads hammer their own table plus one
/// shared (contended) table, a digest thread uploads on a tight loop, and
/// `verifiers` threads run full verification mid-flight. Every mid-flight
/// report and the final at-quiesce report must be clean.
void RunMixedWorkload(const StressConfig& cfg) {
  LedgerDatabaseOptions options;
  options.enable_ledger = true;
  options.block_size = 8;  // small blocks => many closes under load
  options.database_id = "stressdb";
  options.lock_timeout = std::chrono::milliseconds(2000);
  auto opened = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<LedgerDatabase> db = std::move(*opened);

  for (int w = 0; w < cfg.writers; w++) {
    ASSERT_TRUE(db->CreateTable("t" + std::to_string(w), SimpleUserSchema(),
                                TableKind::kUpdateable)
                    .ok());
  }
  ASSERT_TRUE(
      db->CreateTable("shared", SimpleUserSchema(), TableKind::kUpdateable)
          .ok());

  InMemoryDigestStore store;
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::atomic<int> verify_failures{0};
  std::mutex failure_mu;
  std::vector<std::string> failure_messages;
  auto record_failure = [&](const std::string& msg) {
    verify_failures++;
    std::lock_guard<std::mutex> lock(failure_mu);
    failure_messages.push_back(msg);
  };
  std::vector<std::thread> threads;

  // Writers: insert into the private table every round; every third round
  // also touch the shared table (update-or-insert) so lock conflicts and
  // aborts actually happen.
  for (int w = 0; w < cfg.writers; w++) {
    threads.emplace_back([&, w] {
      Random rng(TestCaseSeed(static_cast<uint64_t>(w)));
      std::string table = "t" + std::to_string(w);
      for (int i = 0; i < cfg.txns_per_writer; i++) {
        auto txn = db->Begin("writer" + std::to_string(w));
        if (!txn.ok()) continue;
        Status st = db->Insert(*txn, table, {VB(i), VS("v")});
        if (st.ok() && i % 3 == 0) {
          int64_t key = static_cast<int64_t>(rng.UniformRange(0, 4));
          Status up = db->Update(*txn, "shared", {VB(key), VS("touched")});
          if (up.IsNotFound())
            up = db->Insert(*txn, "shared", {VB(key), VS("touched")});
          st = up;
        }
        if (st.ok() && db->Commit(*txn).ok()) {
          committed++;
        } else {
          db->Abort(*txn);
        }
      }
    });
  }

  // Digest generator: uploads as fast as the commit lock allows. The fork
  // check inside GenerateAndUploadDigest asserts chain consistency on every
  // upload, so this thread is itself a verifier of sorts.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto digest = GenerateAndUploadDigest(db.get(), &store);
      // Any failure here is a chain fork or storage error — both fatal.
      if (!digest.ok()) {
        record_failure("digest: " + digest.status().ToString());
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Verifiers: full verification (which quiesces internally) while the
  // writers keep going. Reports must be clean every time.
  for (int v = 0; v < cfg.verifiers; v++) {
    threads.emplace_back([&, v] {
      for (int round = 0; round < cfg.verify_rounds; round++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10 + 5 * v));
        VerificationOptions vopts;
        vopts.parallelism = 2;
        auto digests = store.ListAll();
        if (!digests.ok()) {
          record_failure("ListAll: " + digests.status().ToString());
          return;
        }
        auto report = VerifyLedger(db.get(), *digests, vopts);
        if (!report.ok()) {
          record_failure("VerifyLedger: " + report.status().ToString());
        } else if (!report->ok()) {
          std::string msg = "violations:";
          for (size_t k = 0; k < report->violations.size() && k < 3; k++)
            msg += " [inv" + std::to_string(report->violations[k].invariant) +
                   "] " + report->violations[k].message;
          record_failure(msg);
        }
      }
    });
  }

  // Writers finish on their own; then stop the digest thread and join the
  // rest (verifiers exit after their fixed number of rounds).
  for (int w = 0; w < cfg.writers; w++) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = static_cast<size_t>(cfg.writers); i < threads.size(); i++)
    threads[i].join();

  {
    std::lock_guard<std::mutex> lock(failure_mu);
    for (const std::string& msg : failure_messages)
      ADD_FAILURE() << msg;
  }
  EXPECT_EQ(verify_failures.load(), 0);
  EXPECT_GT(committed.load(), 0);

  // Quiesced end state: one more digest, then a full verification against
  // everything the store accumulated during the run.
  auto final_digest = GenerateAndUploadDigest(db.get(), &store);
  ASSERT_TRUE(final_digest.ok()) << final_digest.status().ToString();
  VerificationOptions vopts;
  vopts.parallelism = 4;
  auto report = VerifyLedgerAgainstStore(db.get(), store, vopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_TRUE(report->has_digest_coverage);

  // Each writer's committed private-table inserts must all be present.
  auto txn = db->Begin("audit");
  ASSERT_TRUE(txn.ok());
  uint64_t rows = 0;
  for (int w = 0; w < cfg.writers; w++) {
    auto scan = db->Scan(*txn, "t" + std::to_string(w));
    ASSERT_TRUE(scan.ok());
    rows += scan->size();
  }
  ASSERT_TRUE(db->Commit(*txn).ok());
  EXPECT_GT(rows, 0u);
}

TEST(ConcurrencyStressTest, MixedWorkloadTier1) {
  StressConfig cfg;
  RunMixedWorkload(cfg);
}

// The nightly/TSan variant: same scenario, scaled. With the default
// SQLLEDGER_STRESS_SCALE=1 this is only ~2x the tier1 shape, so a local
// plain `ctest` stays quick; the nightly job exports a larger scale.
TEST(ConcurrencyStressLongTest, MixedWorkloadScaled) {
  int scale = StressScale();
  StressConfig cfg;
  cfg.writers = 4 + 2 * (scale > 1 ? 2 : 0);
  cfg.verifiers = 2 + (scale > 1 ? 2 : 0);
  cfg.txns_per_writer = 120 * scale;
  cfg.verify_rounds = 3 + scale;
  RunMixedWorkload(cfg);
}

// Regression: InMemoryDigestStore was unsynchronized; concurrent Upload /
// ListAll / Latest raced on the underlying map.
TEST(ConcurrencyStressTest, DigestStoreConcurrentUploadAndList) {
  InMemoryDigestStore store;
  constexpr int kUploaders = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> upload_failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kUploaders; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        DatabaseDigest d;
        d.database_id = "db";
        d.database_create_time = "2026-01-01T00:00:00Z";
        // Distinct block per (thread, i) so every upload is a fresh entry.
        d.block_id = static_cast<uint64_t>(t * kPerThread + i);
        d.generated_at_micros = static_cast<int64_t>(d.block_id);
        if (!store.Upload(d).ok()) upload_failures++;
      }
    });
  }
  // Readers hammer ListAll/Latest concurrently with the uploads.
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto all = store.ListAll();
        if (all.ok() && !all->empty()) {
          auto latest = store.Latest(all->front().database_create_time);
          if (latest.ok()) {
            // Latest must be the max block among what ListAll saw (more may
            // have arrived since; never fewer).
            EXPECT_GE(latest->block_id, all->back().block_id);
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  for (int t = 0; t < kUploaders; t++) threads[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kUploaders; i < threads.size(); i++) threads[i].join();

  EXPECT_EQ(upload_failures.load(), 0);
  auto all = store.ListAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), static_cast<size_t>(kUploaders * kPerThread));
}

// Regression: ThreadPool destruction with queued-but-unstarted work, and
// several ParallelFor phases sharing one pool from different threads.
TEST(ConcurrencyStressTest, ThreadPoolShutdownDrainsQueue) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; i++) pool.Submit([&] { executed++; });
    // Destructor runs immediately: it must drain the queue, not drop it.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ConcurrencyStressTest, ParallelForConcurrentPhases) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr size_t kN = 10000;
  std::vector<std::thread> callers;
  std::vector<std::atomic<uint64_t>> sums(kCallers);
  for (auto& s : sums) s = 0;
  for (int c = 0; c < kCallers; c++) {
    callers.emplace_back([&, c] {
      ParallelFor(&pool, kN, [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; i++) local += i;
        sums[static_cast<size_t>(c)] += local;
      });
    });
  }
  for (auto& t : callers) t.join();
  const uint64_t want = kN * (kN - 1) / 2;
  for (int c = 0; c < kCallers; c++)
    EXPECT_EQ(sums[static_cast<size_t>(c)].load(), want) << "caller " << c;
}

// Regression: PeriodicDigestUploader's stop flag and error slot raced its
// background loop; Stop must also be idempotent and safe right after start.
TEST(ConcurrencyStressTest, PeriodicUploaderStartStopChurn) {
  LedgerDatabaseOptions options;
  options.enable_ledger = true;
  options.block_size = 4;
  options.database_id = "churn";
  auto opened = LedgerDatabase::Open(std::move(options));
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<LedgerDatabase> db = std::move(*opened);
  ASSERT_TRUE(
      db->CreateTable("t", SimpleUserSchema(), TableKind::kAppendOnly).ok());
  InMemoryDigestStore store;
  for (int round = 0; round < 5; round++) {
    PeriodicDigestUploader uploader(db.get(), &store,
                                    std::chrono::milliseconds(1));
    auto txn = db->Begin("w");
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db->Insert(*txn, "t", {VB(round), VS("x")}).ok());
    ASSERT_TRUE(db->Commit(*txn).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    uploader.Stop();
    uploader.Stop();  // idempotent
    EXPECT_TRUE(uploader.last_error().ok())
        << uploader.last_error().ToString();
  }
}

}  // namespace
}  // namespace sqlledger
