// Ledger truncation tests (paper §5.2): verify -> dummy-update -> truncate
// -> audit, then continued verifiability with recent digests.

#include <gtest/gtest.h>

#include "ledger/truncation.h"
#include "ledger/verifier.h"
#include "test_util.h"

namespace sqlledger {
namespace {

Value VB(int64_t v) { return Value::BigInt(v); }
Value VS(const std::string& s) { return Value::Varchar(s); }

class TruncationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenTestDb(/*block_size=*/4);
    ASSERT_TRUE(db_->CreateTable("accounts", AccountSchema(),
                                 TableKind::kUpdateable)
                    .ok());
    // Enough traffic to span several blocks, including updates so history
    // exists.
    for (int i = 0; i < 10; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Insert(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    for (int i = 0; i < 4; i++) {
      auto txn = db_->Begin("app");
      ASSERT_TRUE(db_->Update(*txn, "accounts",
                              {VS("acct" + std::to_string(i)), VB(i + 100)})
                      .ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    auto digest = db_->GenerateDigest();
    ASSERT_TRUE(digest.ok());
    digest_ = *digest;
  }

  std::unique_ptr<LedgerDatabase> db_;
  DatabaseDigest digest_;
};

TEST_F(TruncationTest, TruncateRemovesOldBlocksAndKeepsVerifying) {
  uint64_t cutoff = 2;
  ASSERT_GE(db_->database_ledger()->closed_block_count(), 3u);
  ASSERT_TRUE(db_->database_ledger()->FindBlock(0).ok());

  Status st = TruncateLedger(db_.get(), cutoff, {digest_});
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Old blocks physically gone.
  EXPECT_TRUE(db_->database_ledger()->FindBlock(0).status().IsNotFound());
  EXPECT_TRUE(db_->database_ledger()->FindBlock(1).status().IsNotFound());

  // The truncation is audited.
  auto records = db_->GetTruncationRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].truncated_below_block, cutoff);
  EXPECT_GE(records[0].max_txn_id, records[0].min_txn_id);

  // A fresh digest verifies post-truncation.
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(TruncationTest, LiveDataStillReadableAndCorrect) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  auto txn = db_->Begin("app");
  for (int i = 0; i < 10; i++) {
    auto row = db_->Get(*txn, "accounts", {VS("acct" + std::to_string(i))});
    ASSERT_TRUE(row.ok()) << "acct" << i;
    EXPECT_EQ((*row)[1].AsInt64(), i < 4 ? i + 100 : i);
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(TruncationTest, OldDigestsStopVerifyingAfterTruncation) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  // digest_ covers a truncated block only if its block < 2; ours covers the
  // last closed block, so craft an old digest instead: a digest for block 0
  // can no longer verify.
  DatabaseDigest old = digest_;
  old.block_id = 0;
  auto report = VerifyLedger(db_.get(), {old});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(TruncationTest, RefusesWithoutDigests) {
  EXPECT_EQ(TruncateLedger(db_.get(), 2, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TruncationTest, RefusesBeyondOpenBlock) {
  EXPECT_EQ(TruncateLedger(db_.get(), 10000, {digest_}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TruncationTest, RefusesOnTamperedDatabase) {
  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct5")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(666);
  EXPECT_TRUE(
      TruncateLedger(db_.get(), 2, {digest_}).IsIntegrityViolation());
}

TEST_F(TruncationTest, TamperDetectionStillWorksAfterTruncation) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());

  TableStore* store = db_->GetStoreForTesting("accounts");
  Row* row = store->mutable_clustered()->MutableGet({VS("acct7")});
  ASSERT_NE(row, nullptr);
  (*row)[1] = VB(31337);

  auto report = VerifyLedger(db_.get(), {*digest});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(TruncationTest, SecondTruncationWorks) {
  ASSERT_TRUE(TruncateLedger(db_.get(), 2, {digest_}).ok());
  auto digest = db_->GenerateDigest();
  ASSERT_TRUE(digest.ok());
  // More traffic, then truncate again past the first cutoff.
  for (int i = 10; i < 14; i++) {
    auto txn = db_->Begin("app");
    ASSERT_TRUE(db_->Insert(*txn, "accounts",
                            {VS("acct" + std::to_string(i)), VB(i)})
                    .ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  auto digest2 = db_->GenerateDigest();
  ASSERT_TRUE(digest2.ok());
  uint64_t cutoff2 = digest2->block_id;  // truncate everything but the tail
  Status st = TruncateLedger(db_.get(), cutoff2, {*digest2});
  ASSERT_TRUE(st.ok()) << st.ToString();

  ASSERT_EQ(db_->GetTruncationRecords().size(), 2u);
  auto digest3 = db_->GenerateDigest();
  ASSERT_TRUE(digest3.ok());
  auto report = VerifyLedger(db_.get(), {*digest3});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(TruncationTest, NothingToTruncateIsOk) {
  // Cutoff 0 truncates nothing.
  EXPECT_TRUE(TruncateLedger(db_.get(), 0, {digest_}).ok());
  EXPECT_TRUE(db_->GetTruncationRecords().empty());
}

}  // namespace
}  // namespace sqlledger
